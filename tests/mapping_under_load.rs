//! Mapping robustness under platform load (paper §4.3, "Reliability and
//! accuracy"): "The results given by ENV may be corrupted if the network
//! load evolves greatly (increasing or decreasing) between tests."
//!
//! These tests put numbers on that worry: light cross-traffic must not
//! change the ENS-Lyon map; saturating traffic on the measured media is
//! allowed to corrupt it (and does — which is the paper's point).

use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput, NetKind};
use gridml::merge::GatewayAlias;
use netsim::prelude::*;
use netsim::scenarios::{ens_lyon, Calibration};
use netsim::traffic::{attach_noise, CbrTraffic};
use netsim::Sim;

fn outside_inputs() -> Vec<HostInput> {
    [
        "the-doors.ens-lyon.fr",
        "canaria.ens-lyon.fr",
        "moby.cri2000.ens-lyon.fr",
        "myri.ens-lyon.fr",
        "popc.ens-lyon.fr",
        "sci.ens-lyon.fr",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect()
}

fn inside_inputs() -> Vec<HostInput> {
    [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "myri1.popc.private",
        "myri2.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
        "sci4.popc.private",
        "sci5.popc.private",
        "sci6.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect()
}

fn aliases() -> Vec<GatewayAlias> {
    vec![
        GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
        GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
        GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
    ]
}

#[test]
fn light_background_traffic_does_not_change_the_map() {
    let platform = ens_lyon(Calibration::Paper);
    let mut eng = Sim::new(platform.topo.clone());
    // Occasional 2 MiB transfers inside Hub 1 and across the backbone.
    attach_noise(
        &mut eng,
        &[(platform.moby, platform.canaria), (platform.canaria, platform.popc0)],
        Bytes::mib(2),
        TimeDelta::from_secs(15.0),
        77,
    );
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .unwrap();
    let inside = mapper.map(&mut eng, &inside_inputs(), "sci0.popc.private", None).unwrap();
    let merged = merge_runs(&outside, &inside, &aliases());

    assert_eq!(merged.network_count(), 4, "{}", merged.render());
    assert_eq!(merged.find_containing("sci2.popc.private").unwrap().kind, NetKind::Switched);
    assert_eq!(merged.find_containing("canaria.ens-lyon.fr").unwrap().kind, NetKind::Shared);
    assert_eq!(
        merged.find_containing("myri1.popc.private").unwrap().via.as_deref(),
        Some("myri0.popc.private")
    );
}

#[test]
fn saturating_traffic_corrupts_the_map_as_the_paper_warns() {
    let platform = ens_lyon(Calibration::Paper);
    let mut eng = Sim::new(platform.topo.clone());
    // A permanent bulk transfer saturating Hub 1 for the whole mapping.
    eng.add_process(
        platform.moby,
        Box::new(CbrTraffic::new(
            platform.canaria,
            Bytes::mib(64),
            TimeDelta::from_millis(300.0),
            0.0,
            5,
        )),
    );
    // Let the load build up before the mapping starts (the fast config's
    // probes could otherwise finish before the first transfer fires).
    let warm = eng.now() + TimeDelta::from_secs(5.0);
    eng.run_until(warm);
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .unwrap();

    // The master's own hub is saturated: its bandwidth view of everything
    // is depressed, so the map differs from the quiet one somewhere —
    // either memberships shift or measured rates collapse.
    let hub1 = outside.view.find_containing("canaria.ens-lyon.fr");
    let distorted = match hub1 {
        None => true,
        Some(net) => net.base_bw_mbps < 80.0 || net.hosts.len() != 2,
    };
    assert!(
        distorted,
        "a saturated medium must leave a visible mark on the map: {}",
        outside.view.render()
    );
}

#[test]
fn noise_during_operation_shows_up_in_series_not_structure() {
    // Once deployed, load shows up where it should: in the measurement
    // series (that is NWS's whole purpose), while the plan stays valid.
    use envdeploy::{apply_plan_with, plan_deployment, PlannerConfig};
    use netsim::Engine;
    use nws::{NwsMsg, Resource, SeriesKey};

    let platform = ens_lyon(Calibration::Paper);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .unwrap();
    let inside = mapper.map(&mut eng, &inside_inputs(), "sci0.popc.private", None).unwrap();
    let merged = merge_runs(&outside, &inside, &aliases());
    let plan = plan_deployment(&merged, &PlannerConfig::default());
    let sys = apply_plan_with(&mut eng, &plan, true).unwrap();

    // Quiet phase.
    sys.run_for(&mut eng, TimeDelta::from_secs(200.0));
    let key =
        SeriesKey::link(Resource::Bandwidth, "canaria.ens-lyon.fr", "moby.cri2000.ens-lyon.fr");
    let quiet_last = sys.series(&key).unwrap().last().unwrap().1;

    // Loaded phase: saturate Hub 1.
    eng.add_process(
        platform.the_doors,
        Box::new(CbrTraffic::new(
            platform.moby,
            Bytes::mib(32),
            TimeDelta::from_millis(500.0),
            0.0,
            9,
        )),
    );
    sys.run_for(&mut eng, TimeDelta::from_secs(200.0));
    let loaded_last = sys.series(&key).unwrap().last().unwrap().1;

    assert!(quiet_last > 85.0, "quiet reading {quiet_last}");
    assert!(
        loaded_last < quiet_last * 0.75,
        "the sensors must see the load: {quiet_last} → {loaded_last}"
    );
}
