//! Differential test: the batched probe scheduler must produce the same
//! effective view as ENV's strictly serial schedule.
//!
//! Batching only co-schedules probes whose directed paths share no resource
//! (no link direction, no hub medium), so every co-scheduled flow sees
//! exactly the bandwidth it would see alone — the measured samples, and
//! therefore the whole refined view, must match the serial run.

use envmap::score::intact_fraction;
use envmap::{cluster_agreement, EnvConfig, EnvMapper, EnvView, HostInput};
use netsim::synth::{synth, SynthFamily};
use netsim::Sim;

fn map_with(
    topo: &netsim::Topology,
    inputs: &[HostInput],
    master: &str,
    external: Option<&str>,
    config: EnvConfig,
) -> EnvView {
    let mut eng = Sim::new(topo.clone());
    EnvMapper::new(config).map(&mut eng, inputs, master, external).expect("mapping succeeds").view
}

/// Structural equality plus bandwidth equality to within floating-point
/// noise (a co-scheduled max-min fill can round the last bit differently).
fn assert_views_match(serial: &EnvView, batched: &EnvView, context: &str) {
    fn nets_match(a: &[envmap::EnvNet], b: &[envmap::EnvNet], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: network count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.label, y.label, "{context}");
            assert_eq!(x.kind, y.kind, "{context}: kind of {}", x.label);
            assert_eq!(x.hosts, y.hosts, "{context}: members of {}", x.label);
            assert_eq!(x.via, y.via, "{context}");
            assert_eq!(x.router_path, y.router_path, "{context}");
            let close = |p: f64, q: f64| (p - q).abs() <= p.abs().max(q.abs()) * 1e-9 + 1e-12;
            assert!(
                close(x.base_bw_mbps, y.base_bw_mbps),
                "{context}: base {} vs {}",
                x.base_bw_mbps,
                y.base_bw_mbps
            );
            match (x.local_bw_mbps, y.local_bw_mbps) {
                (Some(p), Some(q)) => {
                    assert!(close(p, q), "{context}: local {p} vs {q}")
                }
                (p, q) => assert_eq!(p, q, "{context}"),
            }
            match (x.jam_ratio, y.jam_ratio) {
                (Some(p), Some(q)) => assert!(close(p, q), "{context}: jam {p} vs {q}"),
                (p, q) => assert_eq!(p, q, "{context}"),
            }
            nets_match(&x.children, &y.children, context);
        }
    }
    assert_eq!(serial.master, batched.master, "{context}");
    nets_match(&serial.networks, &batched.networks, context);
}

#[test]
fn batched_mapper_matches_serial_on_ens_lyon() {
    use netsim::scenarios::{ens_lyon, Calibration};
    let net = ens_lyon(Calibration::Paper);
    let inputs: Vec<HostInput> = [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "myri1.popc.private",
        "myri2.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
        "sci4.popc.private",
        "sci5.popc.private",
        "sci6.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    // The inside run exercises nested clusters, the firewall and the sci
    // switch whose internal phase is where batching actually kicks in.
    let serial = map_with(&net.topo, &inputs, "sci0.popc.private", None, EnvConfig::fast());
    let batched =
        map_with(&net.topo, &inputs, "sci0.popc.private", None, EnvConfig::fast_batched());
    assert_views_match(&serial, &batched, "ens-lyon inside");
}

#[test]
fn batched_mapper_matches_serial_on_synth_families() {
    for family in [SynthFamily::Campus, SynthFamily::FatTree] {
        let sc = synth(family, 17, 60);
        let inputs: Vec<HostInput> = sc.input_names().iter().map(|n| HostInput::new(n)).collect();
        let master = sc.master_name();
        let external = sc.external_name();
        let serial =
            map_with(&sc.net.topo, &inputs, &master, external.as_deref(), EnvConfig::fast());
        let batched = map_with(
            &sc.net.topo,
            &inputs,
            &master,
            external.as_deref(),
            EnvConfig::fast_batched(),
        );
        assert_views_match(&serial, &batched, sc.family.name());
        // And both agree with the family's ground truth.
        let truth = sc.truth_labels();
        for view in [&serial, &batched] {
            let score = cluster_agreement(view, &truth, &[master.as_str()]);
            assert!(score >= 0.95, "{} agreement {score}", sc.family.name());
        }
    }
}

#[test]
fn small_tier_pipeline_meets_accuracy_gate_on_all_families() {
    // A tier-1-sized version of the exp_pipeline_scaling gates, so mapper
    // accuracy regressions fail `cargo test`, not only the bench binary.
    use envdeploy::{plan_deployment, validate_plan, PlannerConfig};
    for family in SynthFamily::ALL {
        let sc = synth(family, 2004, 40);
        let inputs: Vec<HostInput> = sc.input_names().iter().map(|n| HostInput::new(n)).collect();
        let master = sc.master_name();
        let external = sc.external_name();
        let mut eng = Sim::new(sc.net.topo.clone());
        let run = EnvMapper::new(EnvConfig::fast_batched())
            .map(&mut eng, &inputs, &master, external.as_deref())
            .unwrap_or_else(|e| panic!("{}: {e}", sc.family.name()));
        let truth = sc.truth_labels();
        let score = cluster_agreement(&run.view, &truth, &[master.as_str()]);
        assert!(score >= 0.95, "{} agreement {score}\n{}", sc.family.name(), run.view.render());
        // The Rand index alone saturates against fragmentation; the
        // intactness gate is the split detector.
        let intact = intact_fraction(&run.view, &truth, &[master.as_str()]);
        assert!(intact >= 0.95, "{} intact {intact}\n{}", sc.family.name(), run.view.render());
        let plan = plan_deployment(&run.view, &PlannerConfig::default());
        let report = validate_plan(&plan, &run.view, &sc.net.topo);
        assert!(report.unresolved_hosts.is_empty(), "{}", sc.family.name());
        assert!(report.complete, "{}: {}", sc.family.name(), report.render());
    }
}
