//! Determinism: the whole stack is a deterministic function of its seeds.
//! Two identical runs must agree bit-for-bit on every observable — the
//! property that makes the reproduction's numbers citable.

use envdeploy::{plan_deployment, PlannerConfig};
use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
use gridml::merge::GatewayAlias;
use netsim::prelude::*;
use netsim::scenarios::{ens_lyon, random_campus, Calibration, CampusParams};
use netsim::Engine;
use nws::{NwsMsg, NwsSystem, NwsSystemSpec};

fn map_and_plan() -> (String, String, u64) {
    let platform = ens_lyon(Calibration::Paper);
    let mut eng = netsim::Sim::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside_hosts: Vec<HostInput> = [
        "the-doors.ens-lyon.fr",
        "canaria.ens-lyon.fr",
        "moby.cri2000.ens-lyon.fr",
        "myri.ens-lyon.fr",
        "popc.ens-lyon.fr",
        "sci.ens-lyon.fr",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let outside = mapper
        .map(&mut eng, &outside_hosts, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .unwrap();
    let inside_hosts: Vec<HostInput> = [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let inside = mapper.map(&mut eng, &inside_hosts, "sci0.popc.private", None).unwrap();
    let merged = merge_runs(
        &outside,
        &inside,
        &[
            GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
            GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
            GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
        ],
    );
    let plan = plan_deployment(&merged, &PlannerConfig::default());
    (merged.render(), plan.render(), outside.stats.total_experiments())
}

#[test]
fn mapping_and_planning_are_deterministic() {
    let (view1, plan1, probes1) = map_and_plan();
    let (view2, plan2, probes2) = map_and_plan();
    assert_eq!(view1, view2);
    assert_eq!(plan1, plan2);
    assert_eq!(probes1, probes2);
}

#[test]
fn gridml_output_is_deterministic() {
    let run = || {
        let platform = ens_lyon(Calibration::Paper);
        let mut eng = netsim::Sim::new(platform.topo);
        EnvMapper::new(EnvConfig::fast())
            .map(
                &mut eng,
                &[
                    HostInput::new("the-doors.ens-lyon.fr"),
                    HostInput::new("canaria.ens-lyon.fr"),
                    HostInput::new("myri.ens-lyon.fr"),
                ],
                "the-doors.ens-lyon.fr",
                Some("well-known.example.org"),
            )
            .unwrap()
            .to_gridml()
            .to_xml()
    };
    assert_eq!(run(), run());
}

#[test]
fn nws_operation_is_deterministic_per_seed() {
    let run = |seed: u64| -> (u64, Vec<(f64, f64)>) {
        let net = random_campus(3, &CampusParams::default()).0;
        let names: Vec<String> = net
            .hosts
            .iter()
            .take(4)
            .map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap())
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut eng: Engine<NwsMsg> = Engine::new(net.topo);
        let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
        spec.seed = seed;
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));
        let key = nws::SeriesKey::link(nws::Resource::Bandwidth, &names[0], &names[1]);
        (sys.total_stores(), sys.series(&key).unwrap_or_default())
    };
    let (stores_a, series_a) = run(7);
    let (stores_b, series_b) = run(7);
    assert_eq!(stores_a, stores_b);
    assert_eq!(series_a, series_b);
    // A different seed changes the schedule (jittered token gaps) but the
    // system still works.
    let (stores_c, series_c) = run(8);
    assert!(stores_c > 0);
    assert!(!series_c.is_empty());
}

#[test]
fn generated_platforms_are_seed_deterministic() {
    let a = random_campus(42, &CampusParams::default()).0;
    let b = random_campus(42, &CampusParams::default()).0;
    assert_eq!(a.topo.node_count(), b.topo.node_count());
    assert_eq!(a.topo.link_count(), b.topo.link_count());
    let names_a: Vec<_> = a.topo.nodes().map(|n| n.label.clone()).collect();
    let names_b: Vec<_> = b.topo.nodes().map(|n| n.label.clone()).collect();
    assert_eq!(names_a, names_b);
}
