//! Scaling smoke tests: the whole pipeline on platforms larger than the
//! paper's LAN — the "WAN constellation of LAN resources" Grids of §5.

use envdeploy::{apply_plan_with, plan_deployment, validate_plan, PlannerConfig};
use envmap::{EnvConfig, EnvMapper, HostInput};
use netsim::prelude::*;
use netsim::scenarios::{grid_constellation, random_campus, CampusParams};
use netsim::Engine;
use nws::NwsMsg;

fn inputs_for(net: &netsim::scenarios::GeneratedNet) -> Vec<HostInput> {
    net.hosts
        .iter()
        .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
        .collect()
}

#[test]
fn large_campus_maps_plans_and_validates_complete() {
    let params = CampusParams {
        lans: 8,
        hosts_per_lan: (4, 8),
        hub_fraction: 0.5,
        lan_rates_mbps: vec![100.0],
        backbone_mbps: 1000.0,
    };
    let (gen, truth) = random_campus(99, &params);
    assert!(gen.hosts.len() >= 30, "platform should be sizeable");

    let inputs = inputs_for(&gen);
    let master = inputs[0].0.clone();
    let mut eng = netsim::Sim::new(gen.topo.clone());
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, Some("well-known.example.org"))
        .expect("mapping succeeds at scale");

    // Every multi-host LAN recovered as one cluster.
    for (members, _is_hub, _) in &truth.lans {
        let names: Vec<String> = members
            .iter()
            .filter(|n| **n != gen.master)
            .map(|n| gen.topo.node(*n).ifaces[0].name.clone().unwrap())
            .collect();
        if names.len() < 2 {
            continue;
        }
        let net = run
            .view
            .find_containing(&names[0])
            .unwrap_or_else(|| panic!("no cluster contains {}", names[0]));
        for n in &names {
            assert!(net.hosts.contains(n), "{n} not clustered with its LAN");
        }
    }

    let plan = plan_deployment(&run.view, &PlannerConfig::default());
    let report = validate_plan(&plan, &run.view, &gen.topo);
    assert!(report.complete, "{}", report.render());
    assert!(
        report.intrusiveness() < 0.35,
        "large platforms must stay cheap: {:.2}",
        report.intrusiveness()
    );
}

#[test]
fn constellation_deploys_and_operates() {
    let params = CampusParams {
        lans: 2,
        hosts_per_lan: (2, 4),
        hub_fraction: 0.5,
        lan_rates_mbps: vec![100.0],
        backbone_mbps: 1000.0,
    };
    let gen = grid_constellation(23, 3, &params);
    let inputs = inputs_for(&gen);
    let master = inputs[0].0.clone();
    let mut eng: Engine<NwsMsg> = Engine::new(gen.topo.clone());
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, Some("well-known.example.org"))
        .expect("constellation maps");

    let cfg = PlannerConfig { memory_per_top_network: true, ..Default::default() };
    let plan = plan_deployment(&run.view, &cfg);
    let sys = apply_plan_with(&mut eng, &plan, true).expect("constellation deploys");
    sys.run_for(&mut eng, TimeDelta::from_secs(300.0));

    // Every clique produced measurements.
    assert!(sys.total_stores() > plan.cliques.len() as u64 * 4);
    // Stores landed on more than one memory (hierarchical placement).
    let populated = sys.memories.values().filter(|(_, h)| h.borrow().stores > 0).count();
    assert!(populated >= 2, "expected multiple active memories, got {populated}");
}

#[test]
fn mapping_cost_grows_subquadratically_in_probes_per_host() {
    // Experiments per host should stay near-linear for clustered platforms
    // (the hierarchy is what saves ENV from the naive quartic cost).
    let count_for = |lans: usize| -> (u64, usize) {
        let params = CampusParams {
            lans,
            hosts_per_lan: (3, 3),
            hub_fraction: 1.0,
            lan_rates_mbps: vec![100.0],
            backbone_mbps: 1000.0,
        };
        let (gen, _) = random_campus(5, &params);
        let inputs = inputs_for(&gen);
        let master = inputs[0].0.clone();
        let mut eng = netsim::Sim::new(gen.topo.clone());
        let run = EnvMapper::new(EnvConfig::fast())
            .map(&mut eng, &inputs, &master, Some("well-known.example.org"))
            .unwrap();
        (run.stats.total_experiments(), gen.hosts.len())
    };
    let (e_small, n_small) = count_for(2);
    let (e_big, n_big) = count_for(8);
    let per_host_small = e_small as f64 / n_small as f64;
    let per_host_big = e_big as f64 / n_big as f64;
    assert!(
        per_host_big < per_host_small * 2.0,
        "probes/host should not blow up: {per_host_small:.1} → {per_host_big:.1}"
    );
}
