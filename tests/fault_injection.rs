//! Fault injection against the full NWS stack: lossy links, duplicated
//! packets, crashed processes — and the self-healing machinery (ack/retry
//! buffers, idempotent stores, heartbeat supervision) that keeps the
//! measurement record intact through all of it.

use netsim::engine::Engine;
use netsim::faults::{apply_link_fault, FaultEvent, FaultPlan, LossModel, StormConfig};
use netsim::prelude::*;
use netsim::scenarios::star_hub;
use nws::supervisor::SupervisorConfig;
use nws::{NwsMsg, NwsSystem, NwsSystemSpec, Resource, SeriesKey};
use proptest::prelude::*;

fn deploy(n: usize, seed: u64) -> (Engine<NwsMsg>, NwsSystem, Vec<String>) {
    let net = star_hub(n, Bandwidth::mbps(100.0));
    let names: Vec<String> =
        net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut eng: Engine<NwsMsg> = Engine::new(net.topo);
    let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
    spec.seed = seed;
    let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
    (eng, sys, names)
}

/// Replay a fault plan against a live system, then run out the horizon.
/// Crash victims are killed at the NWS layer (sensor pid of the named
/// host); `Restart` events are skipped when `supervised` — detection and
/// repair is the supervisor's job — and applied as a no-op otherwise
/// (this harness exercises *loss*, not unsupervised restarts).
fn replay(
    eng: &mut Engine<NwsMsg>,
    sys: &mut NwsSystem,
    plan: &FaultPlan,
    horizon: f64,
    supervised: bool,
) {
    let step = TimeDelta::from_secs(2.0);
    for ev in &plan.events {
        let t = SimTime::from_secs(ev.t);
        if supervised {
            while eng.now() < t {
                let next = (eng.now() + step).min(t);
                eng.run_until(next);
                sys.heal(eng).unwrap();
            }
        } else {
            eng.run_until(t);
        }
        match &ev.event {
            FaultEvent::Crash { host } => {
                if let Some(&pid) = sys.sensors.get(host) {
                    eng.kill_process(pid);
                }
            }
            FaultEvent::Restart { .. } => {}
            FaultEvent::LinkDown { host } => {
                apply_link_fault(eng, host, false);
            }
            FaultEvent::LinkUp { host } => {
                apply_link_fault(eng, host, true);
            }
            FaultEvent::LossStart { model } => eng.set_default_loss(Some(*model)),
            FaultEvent::LossEnd => eng.set_default_loss(None),
        }
    }
    let deadline = SimTime::from_secs(horizon);
    if supervised {
        while eng.now() < deadline {
            let next = (eng.now() + step).min(deadline);
            eng.run_until(next);
            sys.heal(eng).unwrap();
        }
    } else {
        eng.run_until(deadline);
    }
}

/// Everything a run observes, for bit-for-bit comparison.
type Observation = (u64, u64, u64, Vec<(SeriesKey, Vec<(f64, f64)>)>);

fn observe(eng: &Engine<NwsMsg>, sys: &NwsSystem) -> Observation {
    let stats = eng.stats();
    let series: Vec<(SeriesKey, Vec<(f64, f64)>)> = sys
        .series_keys()
        .into_iter()
        .map(|k| {
            let pts = sys.series(&k).unwrap_or_default();
            (k, pts)
        })
        .collect();
    (sys.total_stores(), stats.messages_dropped, stats.messages_duplicated, series)
}

proptest! {
    // Each case is two full 240 s storm runs; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The whole faulted stack is a deterministic function of the seed:
    /// same seed → same drops, same dups, same stored series, bit for bit.
    #[test]
    fn fault_storms_are_deterministic_per_seed(seed in 0u64..10_000) {
        let run = |seed: u64| {
            let (mut eng, mut sys, names) = deploy(4, 7);
            eng.set_fault_seed(seed);
            let hosts: Vec<String> = names[1..].to_vec();
            let cfg = StormConfig::new(240.0, LossModel::lossy(0.05), 1);
            let plan = FaultPlan::storm(seed, &hosts, &cfg);
            sys.attach_supervisor(
                &mut eng,
                SupervisorConfig { period: TimeDelta::from_secs(2.0), miss_threshold: 3 },
            );
            replay(&mut eng, &mut sys, &plan, 240.0, true);
            observe(&eng, &sys)
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b);
    }
}

/// Duplicated delivery is invisible: a run where *every* message is
/// duplicated (no drops, no jitter) produces the exact same stored record
/// as a clean run — every NWS handler is idempotent.
#[test]
fn duplicated_delivery_is_invisible_to_the_stored_record() {
    let run = |dup: bool| {
        let (mut eng, sys, _) = deploy(4, 7);
        if dup {
            eng.set_fault_seed(99);
            eng.set_default_loss(Some(LossModel::degraded(0.0, 1.0, TimeDelta::ZERO)));
        }
        eng.run_until(SimTime::from_secs(180.0));
        (observe(&eng, &sys), eng.stats().messages_duplicated)
    };
    let (clean, clean_dups) = run(false);
    let (doubled, dup_dups) = run(true);
    assert_eq!(clean_dups, 0);
    assert!(dup_dups > 0, "dup_p = 1.0 must actually duplicate");
    // Same stores, same series contents; only the transport-level dup
    // counter differs (position 2 in the observation tuple).
    assert_eq!(clean.0, doubled.0, "duplicate deliveries double-counted stores");
    assert_eq!(clean.3, doubled.3, "duplicate deliveries altered the stored series");
}

/// A crashed sensor is detected by missed heartbeats and restarted via
/// the reconfigure machinery; its measurement record resumes on the same
/// series, prefix intact.
#[test]
fn supervisor_restarts_a_dead_sensor() {
    let (mut eng, mut sys, names) = deploy(4, 7);
    sys.attach_supervisor(
        &mut eng,
        SupervisorConfig { period: TimeDelta::from_secs(2.0), miss_threshold: 3 },
    );
    sys.run_supervised(&mut eng, TimeDelta::from_secs(90.0), TimeDelta::from_secs(2.0)).unwrap();

    let victim = names[2].clone();
    let key = SeriesKey::link(Resource::Bandwidth, &victim, &names[1]);
    let before = sys.series(&key).expect("victim measured before the crash");
    assert!(!before.is_empty());
    let old_pid = sys.sensors[&victim];
    eng.kill_process(old_pid);

    let healed = sys
        .run_supervised(&mut eng, TimeDelta::from_secs(120.0), TimeDelta::from_secs(2.0))
        .unwrap();
    assert!(healed.contains(&victim), "victim host restarted: {healed:?}");
    assert_ne!(sys.sensors[&victim], old_pid, "replacement got a fresh pid");

    let after = sys.series(&key).expect("series survives the restart");
    assert!(after.len() > before.len(), "measurements resumed after restart");
    assert_eq!(&after[..before.len()], &before[..], "restart must not rewrite history");
}

/// A crashed memory server is rebuilt around its surviving store; sensors
/// buffer unacked stores during the outage and drain them (original
/// timestamps) to the replacement — no gap, no double counting.
#[test]
fn supervisor_restarts_a_memory_and_buffers_drain() {
    let (mut eng, mut sys, names) = deploy(4, 7);
    sys.attach_supervisor(
        &mut eng,
        SupervisorConfig { period: TimeDelta::from_secs(2.0), miss_threshold: 3 },
    );
    sys.run_supervised(&mut eng, TimeDelta::from_secs(90.0), TimeDelta::from_secs(2.0)).unwrap();

    let mem_host = names[0].clone();
    let (old_pid, _) = sys.memories[&mem_host].clone();
    let snapshot: Vec<(SeriesKey, Vec<(f64, f64)>)> =
        sys.series_keys().into_iter().map(|k| (k.clone(), sys.series(&k).unwrap())).collect();
    let stores_before = sys.total_stores();
    eng.kill_process(old_pid);

    let healed = sys
        .run_supervised(&mut eng, TimeDelta::from_secs(120.0), TimeDelta::from_secs(2.0))
        .unwrap();
    assert!(healed.contains(&mem_host), "memory host restarted: {healed:?}");
    assert_ne!(sys.memories[&mem_host].0, old_pid);

    assert!(sys.total_stores() > stores_before, "stores resumed after memory restart");
    for (key, before) in &snapshot {
        let after = sys.series(key).expect("series survives the memory restart");
        assert!(after.len() >= before.len());
        assert_eq!(&after[..before.len()], &before[..], "{key:?}: history rewritten");
        // Retried stores carry their original timestamps, so the record
        // stays strictly ordered — a drained buffer leaves no trace.
        for w in after.windows(2) {
            assert!(w[1].0 > w[0].0, "{key:?}: non-monotone timestamps after drain");
        }
    }
    // No measurement counted twice: every accepted store is either in a
    // series or in the rejected tally.
    let (_, handle) = &sys.memories[&mem_host];
    let st = handle.borrow();
    let in_series: u64 = st.series.values().map(|s| s.len() as u64).sum();
    assert_eq!(st.stores, in_series + st.rejected, "stores double-counted");
}

/// Kill a memory at the host/power level mid-epoch, under 5% message
/// loss: the replacement is rebuilt from its host's simulated disk alone
/// (snapshot + WAL replay — no in-RAM handoff exists any more), the
/// witness series' pre-crash prefixes come back byte-identical, nothing
/// is double counted, and the whole crash-recovery run is a
/// deterministic function of its seeds.
#[test]
fn memory_host_crash_recovers_from_disk_alone() {
    let run = || {
        let (mut eng, mut sys, names) = deploy(4, 7);
        eng.set_fault_seed(41);
        eng.set_default_loss(Some(LossModel::lossy(0.05)));
        sys.attach_supervisor(
            &mut eng,
            SupervisorConfig { period: TimeDelta::from_secs(2.0), miss_threshold: 3 },
        );
        sys.run_supervised(&mut eng, TimeDelta::from_secs(90.0), TimeDelta::from_secs(2.0))
            .unwrap();

        let mem_host = names[0].clone();
        let old_pid = sys.memories[&mem_host].0;
        let witness: Vec<(SeriesKey, Vec<(f64, f64)>)> =
            sys.series_keys().into_iter().map(|k| (k.clone(), sys.series(&k).unwrap())).collect();
        assert!(witness.iter().any(|(_, pts)| !pts.is_empty()), "witness must have data");

        // Host crash: process dies AND the disk tears its unsynced tail.
        sys.crash_memory(&mut eng, &mem_host);

        let healed = sys
            .run_supervised(&mut eng, TimeDelta::from_secs(120.0), TimeDelta::from_secs(2.0))
            .unwrap();
        assert!(healed.contains(&mem_host), "memory host restarted: {healed:?}");
        assert_ne!(sys.memories[&mem_host].0, old_pid);

        // Recovery really read the disk: the crash was recorded and the
        // replay consumed bytes.
        let dstats = sys.disks.disk(&mem_host).borrow().stats();
        assert_eq!(dstats.crashes, 1);
        assert!(dstats.bytes_read > 0, "recovery must replay from disk");

        // Every acked store was fsynced before its ack, so the witness
        // prefix survives the torn page cache byte for byte.
        for (key, before) in &witness {
            let after = sys.series(key).expect("series survives the host crash");
            assert!(after.len() >= before.len(), "{key:?}: durable points lost");
            assert_eq!(&after[..before.len()], &before[..], "{key:?}: prefix rewritten");
        }
        assert!(sys.total_stores() > witness.iter().map(|(_, p)| p.len() as u64).sum::<u64>());

        // No measurement counted twice across crash + retry + replay.
        let (_, handle) = &sys.memories[&mem_host];
        let st = handle.borrow();
        let in_series: u64 = st.series.values().map(|s| s.len() as u64).sum();
        assert_eq!(st.stores, in_series + st.rejected, "stores double-counted");
        drop(st);

        observe(&eng, &sys)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "crash + disk recovery must be deterministic per seed");
}

/// Regression test for the forecaster watermark-desync bug: a memory
/// restored to an *older* state than the forecaster has already observed
/// (staged here by swapping a rolled-back store into the live server's
/// shared [`nws::memory::MemoryHandle`] — see the
/// `MemoryServer::with_store` test seam) must trigger a watermark rewind
/// — battery reset + full re-fetch — instead of silently forecasting
/// across the gap from a stale watermark.
#[test]
fn forecaster_rewinds_after_memory_restores_older_state() {
    use nws::memory::MemoryStore;

    let (mut eng, sys, names) = deploy(4, 7);
    eng.run_until(SimTime::from_secs(90.0));

    let key = SeriesKey::link(Resource::Bandwidth, &names[1], &names[2]);
    let primed = sys
        .query(&mut eng, key.clone(), TimeDelta::from_secs(10.0))
        .expect("healthy system answers");
    assert!(!primed.stale);
    assert!(primed.samples > 3, "priming must observe a real history");

    // Freeze the measurement record, then roll the memory's store back to
    // a three-point prehistory — every timestamp older than anything the
    // forecaster has observed.
    for &pid in sys.sensors.values() {
        eng.kill_process(pid);
    }
    let old_values = [12.0, 14.0, 13.0];
    let mut rolled_back = MemoryStore::default();
    let sensor = sys.sensors[&names[1]];
    for (i, v) in old_values.iter().enumerate() {
        rolled_back.apply_store(sensor, i as u64 + 1, &key, 10.0 * (i as f64 + 1.0), *v, 64);
    }
    *sys.memories[&names[0]].1.borrow_mut() = rolled_back;

    // The next query's delta fetch returns `latest` = 30 s, far behind the
    // forecaster's watermark: it must rewind and re-fetch from scratch.
    let rewound = sys
        .query(&mut eng, key.clone(), TimeDelta::from_secs(10.0))
        .expect("rewind must still answer the client");
    assert!(!rewound.stale, "rewind is a detour, not an outage");
    assert_eq!(
        rewound.samples,
        old_values.len() as u64,
        "battery must be rebuilt from exactly the restored store"
    );

    // Bit-identical oracle: a fresh battery fed the same three points.
    let mut oracle = nws::ForecasterBattery::classic();
    for v in old_values {
        oracle.observe(v);
    }
    let expected = oracle.forecast().expect("three points forecast");
    assert_eq!(rewound.value.to_bits(), expected.value.to_bits());
    assert_eq!(rewound.method, expected.method);
}

/// With its memory dead and no supervisor attached, the forecaster's
/// query path times out and serves the last-known prediction, tagged
/// stale — degraded answers beat no answers.
#[test]
fn dead_memory_serves_stale_forecasts() {
    let (mut eng, sys, names) = deploy(4, 7);
    eng.run_until(SimTime::from_secs(90.0));

    let key = SeriesKey::link(Resource::Bandwidth, &names[1], &names[2]);
    let fresh = sys
        .query(&mut eng, key.clone(), TimeDelta::from_secs(10.0))
        .expect("healthy system answers");
    assert!(!fresh.stale);

    let (mem_pid, _) = sys.memories[&names[0]];
    eng.kill_process(mem_pid);

    let stale = sys
        .query(&mut eng, key, TimeDelta::from_secs(12.0))
        .expect("outage must degrade the answer, not erase it");
    assert!(stale.stale, "forecast served during an outage must be tagged stale");
}
