//! Failure injection across the stack: dead sensors (token loss and
//! regeneration, §2.3's "mechanisms to handle network errors and leader
//! elections"), dead gateways, and link failures with rerouting.

use envdeploy::{apply_plan_with, plan_deployment, PlannerConfig};
use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
use gridml::merge::GatewayAlias;
use netsim::prelude::*;
use netsim::scenarios::{dumbbell, ens_lyon, star_switch, Calibration};
use netsim::Engine;
use nws::{NwsMsg, NwsSystem, NwsSystemSpec, Resource, SeriesKey};

#[test]
fn clique_survives_multiple_sensor_deaths() {
    let net = star_switch(5, Bandwidth::mbps(100.0));
    let names: Vec<String> =
        net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut eng: Engine<NwsMsg> = Engine::new(net.topo);
    let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
    spec.watchdog = TimeDelta::from_secs(15.0);
    let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
    sys.run_for(&mut eng, TimeDelta::from_secs(60.0));

    // Kill two of five sensors, one after the other.
    eng.kill_process(sys.sensors[&names[1]]);
    sys.run_for(&mut eng, TimeDelta::from_secs(120.0));
    let mid = sys.total_stores();
    eng.kill_process(sys.sensors[&names[3]]);
    sys.run_for(&mut eng, TimeDelta::from_secs(180.0));
    let end = sys.total_stores();
    assert!(end > mid + 10, "survivors must keep measuring after two deaths: {mid} → {end}");
    // Surviving pairs still get fresh measurements.
    let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[2]);
    let series = sys.series(&key).unwrap();
    let last_t = series.last().unwrap().0;
    assert!(last_t > eng.now().as_secs() - 120.0, "stale series after failures");
}

#[test]
fn host_locking_tolerates_dead_targets() {
    // With the §6 locks on, probing a dead peer's sensor must not wedge
    // the ring: the lock request times out and the peer is skipped.
    let net = star_switch(4, Bandwidth::mbps(100.0));
    let names: Vec<String> =
        net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut eng: Engine<NwsMsg> = Engine::new(net.topo);
    let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
    spec.host_locking = true;
    spec.watchdog = TimeDelta::from_secs(15.0);
    let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
    sys.run_for(&mut eng, TimeDelta::from_secs(60.0));
    eng.kill_process(sys.sensors[&names[2]]);
    let before = sys.total_stores();
    sys.run_for(&mut eng, TimeDelta::from_secs(240.0));
    assert!(sys.total_stores() > before + 10, "ring must keep moving past the dead locked peer");
}

#[test]
fn link_failure_reroutes_after_recompute() {
    // A dumbbell with a second, slower path: drop the main bottleneck and
    // verify new probes take the backup (and see its lower rate).
    let mut b = TopologyBuilder::new();
    let a = b.host("a.x", "10.0.0.1");
    let c = b.host("c.x", "10.0.0.2");
    let r1 = b.router("r1.x", "10.0.1.1");
    let r2 = b.router("r2.x", "10.0.1.2");
    b.link(a, r1, Bandwidth::mbps(100.0), Latency::micros(50.0));
    b.link(r2, c, Bandwidth::mbps(100.0), Latency::micros(50.0));
    let main = b.link(r1, r2, Bandwidth::mbps(100.0), Latency::micros(50.0));
    let backup = b.link(r1, r2, Bandwidth::mbps(10.0), Latency::millis(1.0));
    b.set_weights(backup, 5.0, 5.0); // backup only used when main is down
    let mut eng: Engine<NwsMsg> = Engine::new(b.build().unwrap());

    let before = eng.measure_bandwidth(a, c, Bytes::mib(1)).unwrap();
    assert!(before.as_mbps() > 90.0);

    eng.topo_mut().set_link_up(main, false);
    eng.recompute_routes();
    let after = eng.measure_bandwidth(a, c, Bytes::mib(1)).unwrap();
    assert!((after.as_mbps() - 10.0).abs() < 0.5, "got {after}");

    // And back up again.
    eng.topo_mut().set_link_up(main, true);
    eng.recompute_routes();
    let restored = eng.measure_bandwidth(a, c, Bytes::mib(1)).unwrap();
    assert!(restored.as_mbps() > 90.0);
}

#[test]
fn partitioned_cluster_mapping_degrades_gracefully() {
    // Cut the dumbbell's waist before mapping: the far side is
    // unreachable, ENV still maps the near side and reports the far hosts
    // as unreachable singletons instead of failing.
    let net = dumbbell(3, 3, Bandwidth::mbps(10.0));
    let mut topo = net.topo.clone();
    let waist = topo
        .links()
        .find(|l| {
            let a = topo.node(l.a).label.clone();
            let b = topo.node(l.b).label.clone();
            a.starts_with("gw") && b.starts_with("gw")
        })
        .map(|l| l.id)
        .expect("waist link");
    topo.set_link_up(waist, false);
    let mut eng = netsim::Sim::new(topo);

    let inputs: Vec<HostInput> = net
        .hosts
        .iter()
        .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
        .collect();
    let master = inputs[0].0.clone();
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, None)
        .expect("mapping still succeeds");
    // Near-side hosts form a network; far-side hosts appear with zero
    // bandwidth (unreachable singletons).
    let near = run.view.find_containing("l1.dumb.net").expect("near cluster");
    assert!(near.hosts.len() >= 2);
    let far = run.view.find_containing("r0.dumb.net").expect("far host present");
    assert_eq!(far.base_bw_mbps, 0.0, "unreachable host has no bandwidth");
}

#[test]
fn deployed_system_survives_gateway_sensor_death() {
    // Kill the sci0 gateway's sensor on the deployed ENS-Lyon system: its
    // cliques (sci + hub2-adjacent) recover; other cliques unaffected.
    let platform = ens_lyon(Calibration::Paper);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside_hosts: Vec<HostInput> = [
        "the-doors.ens-lyon.fr",
        "canaria.ens-lyon.fr",
        "moby.cri2000.ens-lyon.fr",
        "myri.ens-lyon.fr",
        "popc.ens-lyon.fr",
        "sci.ens-lyon.fr",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let inside_hosts: Vec<HostInput> = [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let outside = mapper
        .map(&mut eng, &outside_hosts, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .unwrap();
    let inside = mapper.map(&mut eng, &inside_hosts, "sci0.popc.private", None).unwrap();
    let merged = merge_runs(
        &outside,
        &inside,
        &[
            GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
            GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
            GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
        ],
    );
    let plan = plan_deployment(&merged, &PlannerConfig::default());
    let sys = apply_plan_with(&mut eng, &plan, false).unwrap();
    sys.run_for(&mut eng, TimeDelta::from_secs(120.0));

    eng.kill_process(sys.sensors["sci0.popc.private"]);
    let before = sys.total_stores();
    sys.run_for(&mut eng, TimeDelta::from_secs(240.0));
    let after = sys.total_stores();
    assert!(after > before + 20, "system stalls after gateway death: {before} → {after}");

    // The hub1 clique (far from sci0) keeps its cadence.
    let key =
        SeriesKey::link(Resource::Bandwidth, "canaria.ens-lyon.fr", "moby.cri2000.ens-lyon.fr");
    let series = sys.series(&key).unwrap();
    assert!(series.last().unwrap().0 > eng.now().as_secs() - 60.0);
}
