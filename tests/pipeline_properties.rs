//! Property test over the full pipeline: for random campus platforms, the
//! map → plan → validate chain must always deliver the §2.3 guarantees.

use envdeploy::{plan_deployment, validate_plan, PlannerConfig};
use envmap::{EnvConfig, EnvMapper, HostInput, NetKind};
use netsim::scenarios::{random_campus, CampusParams};
use proptest::prelude::*;

proptest! {
    // Each case runs a full mapping; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn random_campuses_map_plan_and_validate(
        seed in 0u64..10_000,
        lans in 2usize..6,
        hub_fraction in 0.0f64..1.0,
    ) {
        let params = CampusParams {
            lans,
            hosts_per_lan: (2, 5),
            hub_fraction,
            lan_rates_mbps: vec![100.0],
            backbone_mbps: 1000.0,
        };
        let (gen, truth) = random_campus(seed, &params);
        let inputs: Vec<HostInput> = gen
            .hosts
            .iter()
            .map(|h| HostInput::new(gen.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
            .collect();
        let master = inputs[0].0.clone();
        let mut eng = netsim::Sim::new(gen.topo.clone());
        let run = EnvMapper::new(EnvConfig::fast())
            .map(&mut eng, &inputs, &master, Some("well-known.example.org"))
            .expect("mapping always succeeds");

        // Ground-truth recovery: every multi-host LAN is one cluster with
        // the correct kind (for ≥3 non-master members).
        for (members, is_hub, _) in &truth.lans {
            let names: Vec<String> = members
                .iter()
                .filter(|n| **n != gen.master)
                .map(|n| gen.topo.node(*n).ifaces[0].name.clone().unwrap())
                .collect();
            if names.len() < 2 {
                continue;
            }
            let net = run
                .view
                .find_containing(&names[0])
                .expect("LAN members are clustered");
            for n in &names {
                prop_assert!(net.hosts.contains(n), "{n} severed from its LAN");
            }
            if names.len() >= 3 {
                let expect = if *is_hub { NetKind::Shared } else { NetKind::Switched };
                prop_assert_eq!(net.kind, expect, "LAN misclassified");
            }
        }

        // Plan guarantees.
        let plan = plan_deployment(&run.view, &PlannerConfig::default());
        let report = validate_plan(&plan, &run.view, &gen.topo);
        prop_assert!(report.unresolved_hosts.is_empty());
        prop_assert!(report.complete, "incomplete: {}", report.render());
        prop_assert!(
            report.measured_pairs <= report.full_mesh_pairs,
            "never more intrusive than the full mesh"
        );
        // Every non-master host is a sensor in the plan.
        for h in &inputs[1..] {
            prop_assert!(plan.hosts.contains(&h.0), "{} dropped from plan", h.0);
        }
    }
}
