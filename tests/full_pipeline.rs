//! End-to-end integration: the paper's complete workflow on ENS-Lyon —
//! ENV mapping (both sides of the firewall), merge, deployment planning,
//! validation, application, operation and querying — asserting every
//! checkpoint the paper's figures pin down.

use envdeploy::{
    apply_plan_with, plan_deployment, validate_plan, CliqueRole, Estimator, Freshness,
    PlannerConfig,
};
use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput, NetKind};
use gridml::merge::GatewayAlias;
use netsim::prelude::*;
use netsim::scenarios::{ens_lyon, Calibration};
use netsim::Engine;
use nws::{NwsMsg, Resource, SeriesKey};

fn outside_inputs() -> Vec<HostInput> {
    [
        "the-doors.ens-lyon.fr",
        "canaria.ens-lyon.fr",
        "moby.cri2000.ens-lyon.fr",
        "myri.ens-lyon.fr",
        "popc.ens-lyon.fr",
        "sci.ens-lyon.fr",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect()
}

fn inside_inputs() -> Vec<HostInput> {
    [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "myri1.popc.private",
        "myri2.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
        "sci4.popc.private",
        "sci5.popc.private",
        "sci6.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect()
}

fn aliases() -> Vec<GatewayAlias> {
    vec![
        GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
        GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
        GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
    ]
}

#[test]
fn paper_pipeline_end_to_end() {
    // ---- platform (Figure 1a) -------------------------------------------
    let platform = ens_lyon(Calibration::Paper);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());

    // ---- ENV, both sides (§4.2, §4.3) --------------------------------------
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .expect("outside run");
    let inside =
        mapper.map(&mut eng, &inside_inputs(), "sci0.popc.private", None).expect("inside run");

    // Figure 2 checkpoints.
    assert_eq!(outside.structural.key, "192.168.254.1");
    assert_eq!(outside.structural.host_count(), 6);

    // ---- merge (Figure 1b) ----------------------------------------------
    let merged = merge_runs(&outside, &inside, &aliases());
    assert_eq!(merged.network_count(), 4);
    assert_eq!(merged.find_containing("sci4.popc.private").unwrap().kind, NetKind::Switched);
    assert_eq!(merged.find_containing("canaria.ens-lyon.fr").unwrap().kind, NetKind::Shared);

    // ---- plan (Figure 3) ----------------------------------------------------
    let plan = plan_deployment(&merged, &PlannerConfig::default());
    assert_eq!(plan.cliques.len(), 5);
    assert_eq!(plan.hosts.len(), 13);
    let report = validate_plan(&plan, &merged, &platform.topo);
    assert!(report.complete, "{}", report.render());
    assert!(report.intrusiveness() < 0.5);
    // The §6 caveat is visible on this platform.
    assert!(!report.strictly_collision_free());

    // ---- apply (§5.2) + operate ------------------------------------------
    let sys = apply_plan_with(&mut eng, &plan, true).expect("deploys");
    sys.run_for(&mut eng, TimeDelta::from_secs(600.0));

    // Every planned pair produced series.
    for c in &plan.cliques {
        for (a, b) in c.measured_pairs() {
            let key = SeriesKey::link(Resource::Bandwidth, &a, &b);
            assert!(
                sys.series(&key).map(|s| !s.is_empty()).unwrap_or(false),
                "missing series {key}"
            );
        }
    }

    // Representative-pair values on the 10 Mbps hub are accurate (host
    // locking avoids the §6 collisions).
    let hub2 = sys
        .series(&SeriesKey::link(Resource::Bandwidth, "myri0.popc.private", "popc0.popc.private"))
        .unwrap();
    let mean = hub2.iter().map(|(_, v)| v).sum::<f64>() / hub2.len() as f64;
    assert!((mean - 9.9).abs() < 0.8, "hub2 mean {mean}");

    // ---- the full query path (§2.1 steps 1–4) ------------------------------
    let fc = sys
        .query(
            &mut eng,
            SeriesKey::link(Resource::Bandwidth, "sci1.popc.private", "sci2.popc.private"),
            TimeDelta::from_secs(10.0),
        )
        .expect("forecast served");
    assert!((fc.value - 32.0).abs() < 3.0, "sci forecast {}", fc.value);

    // ---- aggregation for unmeasured pairs (§2.3 completeness) ---------------
    let est = Estimator::new(&merged, &plan)
        .estimate("moby.cri2000.ens-lyon.fr", "sci3.popc.private", &sys)
        .expect("estimable");
    assert_eq!(est.freshness, Freshness::Measured);
    assert!((est.bandwidth_mbps - 9.8).abs() < 1.0, "estimate {}", est.bandwidth_mbps);
    assert!(est.latency_ms.is_some());

    // The inter clique exists and the sci clique covers all seven machines.
    assert!(plan.cliques.iter().any(|c| c.role == CliqueRole::Inter));
    assert!(plan.cliques.iter().any(|c| c.members.len() == 7));
}

#[test]
fn nominal_calibration_changes_rates_not_structure() {
    // With nameplate rates the sci ports run at 100 Mbps: same tree shape,
    // different numbers (sci no longer splits from the gateways by the 3×
    // rule from the inside master — the h2h ratio is 100/10 = 10 > 3 from
    // sci0's vantage... the split remains; only base_bw changes).
    let platform = ens_lyon(Calibration::Nominal);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .expect("outside");
    let inside = mapper.map(&mut eng, &inside_inputs(), "sci0.popc.private", None).expect("inside");
    let merged = merge_runs(&outside, &inside, &aliases());
    assert_eq!(merged.network_count(), 4);
    let sci = merged.find_containing("sci1.popc.private").unwrap();
    assert_eq!(sci.kind, NetKind::Switched);
    assert!(sci.base_bw_mbps > 90.0, "nominal sci rate {}", sci.base_bw_mbps);
}

#[test]
fn plan_survives_config_round_trip_and_redeploys() {
    let platform = ens_lyon(Calibration::Paper);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_inputs(), "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .expect("outside");
    let inside = mapper.map(&mut eng, &inside_inputs(), "sci0.popc.private", None).expect("inside");
    let merged = merge_runs(&outside, &inside, &aliases());
    let plan = plan_deployment(&merged, &PlannerConfig::default());

    // The shared §5.2 configuration file round-trips…
    let text = envdeploy::render_config(&plan);
    let parsed = envdeploy::parse_config(&text).expect("config parses");
    assert_eq!(plan, parsed);

    // …and the parsed plan deploys on a fresh platform.
    let mut eng2: Engine<NwsMsg> = Engine::new(ens_lyon(Calibration::Paper).topo);
    let sys = envdeploy::apply_plan(&mut eng2, &parsed).expect("redeploys");
    sys.run_for(&mut eng2, TimeDelta::from_secs(120.0));
    assert!(sys.total_stores() > 50);
}
