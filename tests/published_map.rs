//! The §4.3 sharing workflow end to end: an administrator maps the
//! platform once and publishes the GridML; a second user imports the
//! published map, plans and deploys NWS *without redoing the mapping* —
//! "administrators could publish the mapping of their network as reported
//! by ENV, so that any user can use it without redoing the mapping."
//!
//! Plus the operational follow-on: when a remapping produces a new plan,
//! `diff_plans` yields the incremental actions instead of a full restart.

use envdeploy::{apply_plan_with, diff_plans, plan_deployment, PlannerConfig};
use envmap::{view_from_gridml, EnvConfig, EnvMapper, HostInput};
use gridml::GridDoc;
use netsim::prelude::*;
use netsim::scenarios::{star_hub, star_switch};
use netsim::Engine;
use nws::NwsMsg;

fn map_switch_lan() -> (netsim::scenarios::GeneratedNet, envmap::EnvRun) {
    let net = star_switch(5, Bandwidth::mbps(100.0));
    let inputs: Vec<HostInput> = net
        .hosts
        .iter()
        .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
        .collect();
    let master = inputs[0].0.clone();
    let mut eng = netsim::Sim::new(net.topo.clone());
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, None)
        .expect("mapping succeeds");
    (net, run)
}

#[test]
fn published_gridml_deploys_without_remapping() {
    // Administrator: map once, publish the XML.
    let (net, run) = map_switch_lan();
    let published_xml = run.to_gridml().to_xml();
    let probes_spent = run.stats.total_experiments();
    assert!(probes_spent > 0);

    // User: parse the publication, import the view, plan, deploy. No
    // probes of their own.
    let doc = GridDoc::parse(&published_xml).expect("published XML parses");
    let imported = view_from_gridml(&doc).expect("view imports");
    let plan_from_import = plan_deployment(&imported, &PlannerConfig::default());

    // The imported plan equals the plan from the live view.
    let plan_from_live = plan_deployment(&run.view, &PlannerConfig::default());
    assert_eq!(plan_from_import, plan_from_live);

    // And it actually deploys and measures.
    let mut eng: Engine<NwsMsg> = Engine::new(net.topo);
    let sys = apply_plan_with(&mut eng, &plan_from_import, true).expect("deploys");
    sys.run_for(&mut eng, TimeDelta::from_secs(120.0));
    assert!(sys.total_stores() > 20);
}

#[test]
fn remapping_yields_incremental_delta() {
    // Original platform: a 4-host hub. Remapped platform: same hub with a
    // fifth host. The delta must be a clique restart plus one sensor —
    // not a teardown.
    let plan_for = |n: usize| {
        let net = star_hub(n, Bandwidth::mbps(100.0));
        let inputs: Vec<HostInput> = net
            .hosts
            .iter()
            .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
            .collect();
        let master = inputs[0].0.clone();
        let mut eng = netsim::Sim::new(net.topo);
        let run = EnvMapper::new(EnvConfig::fast()).map(&mut eng, &inputs, &master, None).unwrap();
        plan_deployment(&run.view, &PlannerConfig::default())
    };
    let old = plan_for(4);
    let new = plan_for(5);

    let delta = diff_plans(&old, &new);
    assert!(!delta.is_empty());
    // Shared hub: representatives stay the first two hosts, so the local
    // clique is unchanged; the new host only joins as a sensor.
    assert!(delta.cliques_to_stop.is_empty(), "{delta:?}");
    assert_eq!(delta.sensors_to_add.len(), 1, "{delta:?}");
    assert!(delta.sensors_to_remove.is_empty());

    // Self-diff is empty.
    assert!(diff_plans(&new, &new).is_empty());
}
