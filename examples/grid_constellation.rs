//! A Grid-scale scenario: "Most common Grid testbeds are constituted of
//! several organizations inter-connected by a wide area network ... The
//! resulting platform is a WAN constellation of LAN resources" (paper §5).
//!
//! Maps a three-site constellation, plans a hierarchical deployment (one
//! memory per top-level network), deploys it and reports the monitoring
//! coverage.
//!
//! Run: `cargo run --example grid_constellation`

use envdeploy::{apply_plan_with, plan_deployment, validate_plan, PlannerConfig};
use envmap::{EnvConfig, EnvMapper, HostInput};
use netsim::prelude::*;
use netsim::scenarios::{grid_constellation, CampusParams};
use netsim::Engine;
use nws::NwsMsg;

fn main() {
    let params = CampusParams {
        lans: 2,
        hosts_per_lan: (3, 4),
        hub_fraction: 0.5,
        lan_rates_mbps: vec![100.0],
        backbone_mbps: 1000.0,
    };
    let net = grid_constellation(17, 3, &params);
    println!(
        "constellation: {} hosts, {} nodes, {} links",
        net.hosts.len(),
        net.topo.node_count(),
        net.topo.link_count()
    );

    let mut eng: Engine<NwsMsg> = Engine::new(net.topo.clone());
    let inputs: Vec<HostInput> = net
        .hosts
        .iter()
        .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
        .collect();
    let master = inputs[0].0.clone();

    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, Some("well-known.example.org"))
        .expect("mapping succeeds");
    println!(
        "\nENV from {master}: {} networks discovered with {} experiments in {:.0} simulated s",
        run.view.network_count(),
        run.stats.total_experiments(),
        run.stats.mapping_seconds
    );
    println!("{}", run.view.render());

    // Hierarchical deployment: one memory server per top-level network.
    let cfg = PlannerConfig { memory_per_top_network: true, ..Default::default() };
    let plan = plan_deployment(&run.view, &cfg);
    println!("{}", plan.render());

    let report = validate_plan(&plan, &run.view, &net.topo);
    println!("{}", report.render());

    let sys = apply_plan_with(&mut eng, &plan, true).expect("deployment succeeds");
    sys.run_for(&mut eng, TimeDelta::from_secs(300.0));
    println!(
        "after 300 simulated seconds: {} measurements across {} series on {} memory servers",
        sys.total_stores(),
        sys.series_keys().len(),
        sys.memories.len()
    );
}
