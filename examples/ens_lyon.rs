//! The paper's own experiment, end to end: map the ENS-Lyon LAN with ENV
//! (outside + inside runs, firewall merge), compute the Figure 3 plan,
//! deploy NWS, and serve forecasts — §4 and §5 of the paper as a program.
//!
//! Run: `cargo run --example ens_lyon`

use envdeploy::{
    apply_plan_with, plan_deployment, render_config, validate_plan, Estimator, PlannerConfig,
};
use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
use gridml::merge::GatewayAlias;
use netsim::prelude::*;
use netsim::scenarios::{ens_lyon, Calibration};
use netsim::Engine;
use nws::{NwsMsg, Resource, SeriesKey};

fn main() {
    // The physical platform of Figure 1(a).
    let platform = ens_lyon(Calibration::Paper);
    let mut eng: Engine<NwsMsg> = Engine::new(platform.topo.clone());

    // --- outside ENV run (master: the-doors) --------------------------------
    let outside_hosts: Vec<HostInput> = [
        "the-doors.ens-lyon.fr",
        "canaria.ens-lyon.fr",
        "moby.cri2000.ens-lyon.fr",
        "myri.ens-lyon.fr",
        "popc.ens-lyon.fr",
        "sci.ens-lyon.fr",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let mapper = EnvMapper::new(EnvConfig::fast());
    let outside = mapper
        .map(&mut eng, &outside_hosts, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
        .expect("outside run");
    println!(
        "— outside run: {} experiments, {:.1} simulated seconds",
        outside.stats.total_experiments(),
        outside.stats.mapping_seconds
    );
    println!("{}", outside.structural.render());

    // --- inside ENV run (master: sci0, behind the firewall) ------------------
    let inside_hosts: Vec<HostInput> = [
        "popc0.popc.private",
        "myri0.popc.private",
        "sci0.popc.private",
        "myri1.popc.private",
        "myri2.popc.private",
        "sci1.popc.private",
        "sci2.popc.private",
        "sci3.popc.private",
        "sci4.popc.private",
        "sci5.popc.private",
        "sci6.popc.private",
    ]
    .iter()
    .map(|s| HostInput::new(s))
    .collect();
    let inside =
        mapper.map(&mut eng, &inside_hosts, "sci0.popc.private", None).expect("inside run");
    println!("— inside run: {} experiments", inside.stats.total_experiments());

    // --- merge with the user-provided gateway aliases (§4.3) -----------------
    let merged = merge_runs(
        &outside,
        &inside,
        &[
            GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
            GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
            GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
        ],
    );
    println!("{}", merged.render());

    // --- plan (Figure 3) + §5.2 manager configuration -------------------------
    let plan = plan_deployment(&merged, &PlannerConfig::default());
    println!("{}", plan.render());
    let report = validate_plan(&plan, &merged, &platform.topo);
    println!("{}", report.render());
    println!("--- manager config (first lines) ---");
    for line in render_config(&plan).lines().take(8) {
        println!("{line}");
    }
    println!();

    // --- deploy and operate ----------------------------------------------------
    let sys = apply_plan_with(&mut eng, &plan, true).expect("deployment succeeds");
    sys.run_for(&mut eng, TimeDelta::from_secs(600.0));
    println!(
        "NWS stored {} measurements across {} series",
        sys.total_stores(),
        sys.series_keys().len()
    );

    // A forecast for a measured pair (the Hub 2 representative pair).
    let key = SeriesKey::link(Resource::Bandwidth, "myri0.popc.private", "popc0.popc.private");
    if let Some(fc) = sys.query(&mut eng, key, TimeDelta::from_secs(10.0)) {
        println!(
            "forecast myri0 ↔ popc0: {:.2} Mbps ({}, rmse {:.3})",
            fc.value, fc.method, fc.rmse
        );
    }

    // An aggregated estimate for a pair nobody measures (across the tree).
    let est = Estimator::new(&merged, &plan)
        .estimate("moby.cri2000.ens-lyon.fr", "sci3.popc.private", &sys)
        .expect("estimable");
    println!(
        "estimate moby → sci3: {:.2} Mbps, {} segments:",
        est.bandwidth_mbps,
        est.segments.len()
    );
    for s in &est.segments {
        println!("  - {s}");
    }
}
