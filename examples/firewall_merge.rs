//! The firewall workflow of paper §4.3 in isolation: run ENV on each side
//! of a firewall, emit per-side GridML, merge the documents with the
//! gateway aliases, and show that the alias resolver unifies the gateway
//! identities.
//!
//! Run: `cargo run --example firewall_merge`

use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
use gridml::merge::{merge_sites, AliasResolver, GatewayAlias};
use netsim::scenarios::{ens_lyon, Calibration};
use netsim::Sim;

fn main() {
    let platform = ens_lyon(Calibration::Paper);
    let mut eng = Sim::new(platform.topo.clone());
    let mapper = EnvMapper::new(EnvConfig::fast());

    // Side 1: the public ens-lyon.fr world.
    let outside = mapper
        .map(
            &mut eng,
            &[
                HostInput::new("the-doors.ens-lyon.fr"),
                HostInput::new("canaria.ens-lyon.fr"),
                HostInput::new("moby.cri2000.ens-lyon.fr"),
                HostInput::new("myri.ens-lyon.fr"),
                HostInput::new("popc.ens-lyon.fr"),
                HostInput::new("sci.ens-lyon.fr"),
            ],
            "the-doors.ens-lyon.fr",
            Some("well-known.example.org"),
        )
        .expect("outside run");

    // Side 2: the firewalled popc.private world. The external destination
    // is unreachable from here — the mapper falls back to the master.
    let inside = mapper
        .map(
            &mut eng,
            &[
                HostInput::new("popc0.popc.private"),
                HostInput::new("myri0.popc.private"),
                HostInput::new("sci0.popc.private"),
                HostInput::new("myri1.popc.private"),
                HostInput::new("myri2.popc.private"),
                HostInput::new("sci1.popc.private"),
                HostInput::new("sci2.popc.private"),
            ],
            "sci0.popc.private",
            None,
        )
        .expect("inside run");

    // "The only information the user has to provide is the several aliases
    // of the gateways machines depending on the considered site."
    let aliases = vec![
        GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
        GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
        GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
    ];

    // Document-level merge ("often as simple as a file concatenation").
    let merged_doc = merge_sites(&[outside.to_gridml(), inside.to_gridml()], &aliases, "Grid1");
    println!("--- merged GridML (abridged) ---");
    for line in merged_doc.to_xml().lines().take(30) {
        println!("{line}");
    }
    println!("...\n");

    // The alias resolver proves both names denote one machine.
    let resolver = AliasResolver::from_doc(&merged_doc);
    for gw in &aliases {
        println!(
            "{} and {} are the same machine: {}",
            gw.outside,
            gw.inside,
            resolver.same_machine(&gw.outside, &gw.inside)
        );
    }

    // View-level merge: the complete effective topology.
    let merged = merge_runs(&outside, &inside, &aliases);
    println!("\n{}", merged.render());
    println!(
        "merged view: {} networks, {} hosts",
        merged.network_count(),
        merged.all_hosts().len()
    );
}
