//! Quickstart: the full pipeline on a small platform in ~60 lines.
//!
//! 1. Build a platform (two LANs behind routers).
//! 2. Map it with ENV from a chosen master.
//! 3. Derive the NWS deployment plan.
//! 4. Apply the plan (launch sensors, memories, forecaster, name server).
//! 5. Let it measure, then query a forecast and an aggregated estimate.
//!
//! Run: `cargo run --example quickstart`

use envdeploy::{apply_plan_with, plan_deployment, Estimator, PlannerConfig};
use envmap::{EnvConfig, EnvMapper, HostInput};
use netsim::prelude::*;
use netsim::Engine;
use nws::{NwsMsg, Resource, SeriesKey};

fn main() {
    // --- 1. a platform: a 100 Mbps hub and a 100 Mbps switch ----------------
    let mut b = TopologyBuilder::new();
    let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
    let sw = b.switch("sw", Bandwidth::mbps(100.0), Latency::micros(50.0));
    let r = b.router("gw.campus.net", "10.0.0.1");
    b.attach(r, hub);
    b.attach(r, sw);
    let hub_hosts: Vec<_> = (0..3)
        .map(|i| {
            let h = b.host(&format!("hub{i}.campus.net"), &format!("10.0.1.{}", i + 1));
            b.attach(h, hub);
            h
        })
        .collect();
    for i in 0..3 {
        let h = b.host(&format!("sw{i}.campus.net"), &format!("10.0.2.{}", i + 1));
        b.attach(h, sw);
    }
    let topo = b.build().expect("valid topology");
    let _ = hub_hosts;

    // --- 2. map it with ENV --------------------------------------------------
    let mut eng: Engine<NwsMsg> = Engine::new(topo);
    let hosts: Vec<HostInput> = (0..3)
        .map(|i| HostInput::new(&format!("hub{i}.campus.net")))
        .chain((0..3).map(|i| HostInput::new(&format!("sw{i}.campus.net"))))
        .collect();
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &hosts, "hub0.campus.net", None)
        .expect("mapping succeeds");
    println!("{}", run.view.render());

    // --- 3. derive the deployment plan ---------------------------------------
    let plan = plan_deployment(&run.view, &PlannerConfig::default());
    println!("{}", plan.render());

    // --- 4. apply it (with the §6 host-locking extension) ---------------------
    let sys = apply_plan_with(&mut eng, &plan, true).expect("deployment succeeds");

    // --- 5. run, query, estimate ----------------------------------------------
    sys.run_for(&mut eng, TimeDelta::from_secs(300.0));

    let key = SeriesKey::link(Resource::Bandwidth, "sw0.campus.net", "sw1.campus.net");
    if let Some(fc) = sys.query(&mut eng, key.clone(), TimeDelta::from_secs(10.0)) {
        println!(
            "forecast for {key}: {:.1} Mbps (method {}, rmse {:.2}, {} samples)",
            fc.value, fc.method, fc.rmse, fc.samples
        );
    }

    // A pair no clique measures directly — aggregated instead.
    let est = Estimator::new(&run.view, &plan)
        .estimate("hub1.campus.net", "sw2.campus.net", &sys)
        .expect("estimable");
    println!(
        "estimate hub1 → sw2: {:.1} Mbps via {} segment(s) [{}]",
        est.bandwidth_mbps,
        est.segments.len(),
        est.segments.join("; ")
    );
}
