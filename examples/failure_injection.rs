//! Failure injection: degrade a link's capacity mid-simulation and watch
//! measured bandwidth track it.
//!
//! Demonstrates the mutation surface: `Engine::topo_mut` +
//! `Topology::link_mut` / `set_link_up`, followed by
//! `Engine::recompute_routes` so routing *and* the allocator's interned
//! capacity tables pick up the change.
//!
//! Run: `cargo run --release --example failure_injection`

use netsim::prelude::*;
use netsim::topology::LinkMode;
use netsim::Sim;

fn main() {
    let mut b = TopologyBuilder::new();
    let a = b.host("a.example.net", "10.0.0.1");
    let c = b.host("c.example.net", "10.0.0.2");
    let r1 = b.router("r1.example.net", "10.0.1.1");
    let r2 = b.router("r2.example.net", "10.0.1.2");
    let main_link = b.link(a, r1, Bandwidth::mbps(100.0), Latency::micros(100.0));
    b.link(r1, c, Bandwidth::mbps(100.0), Latency::micros(100.0));
    // Backup path, normally unattractive.
    let backup_in = b.link(a, r2, Bandwidth::mbps(10.0), Latency::micros(500.0));
    b.link(r2, c, Bandwidth::mbps(10.0), Latency::micros(500.0));
    b.set_weights(backup_in, 10.0, 10.0);
    let mut sim: Sim = Sim::new(b.build().unwrap());

    let healthy = sim.measure_bandwidth(a, c, Bytes::mib(4)).unwrap();
    println!("healthy:          {:6.1} Mbps via the 100 Mbps path", healthy.as_mbps());

    // Degrade the primary link to 25 Mbps (e.g. duplex mismatch).
    if let LinkMode::FullDuplex { capacity_ab, capacity_ba } =
        &mut sim.topo_mut().link_mut(main_link).mode
    {
        *capacity_ab = Bandwidth::mbps(25.0);
        *capacity_ba = Bandwidth::mbps(25.0);
    }
    sim.recompute_routes();
    let degraded = sim.measure_bandwidth(a, c, Bytes::mib(4)).unwrap();
    println!("degraded to 25M:  {:6.1} Mbps on the same route", degraded.as_mbps());

    // Cut it entirely: traffic fails over to the 10 Mbps backup route.
    sim.topo_mut().set_link_up(main_link, false);
    sim.recompute_routes();
    let failed_over = sim.measure_bandwidth(a, c, Bytes::mib(4)).unwrap();
    println!("link down:        {:6.1} Mbps via the backup route", failed_over.as_mbps());

    assert!(healthy.as_mbps() > 95.0);
    assert!((degraded.as_mbps() - 25.0).abs() < 1.0);
    assert!(failed_over.as_mbps() < 11.0);
    println!("\ncapacity mutations propagate to routing and the allocator: OK");
}
