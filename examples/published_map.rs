//! The §4.3 map-sharing workflow: an administrator maps the platform once
//! and publishes the GridML; a user deploys NWS from the publication
//! without sending a single probe — then, after the platform grows, a
//! remapping is folded in incrementally with `diff_plans`.
//!
//! Run: `cargo run --example published_map`

use envdeploy::{diff_plans, plan_deployment, render_config, PlannerConfig};
use envmap::{view_from_gridml, EnvConfig, EnvMapper, HostInput};
use gridml::GridDoc;
use netsim::prelude::*;
use netsim::scenarios::star_switch;

fn map_lan(n: usize) -> (netsim::scenarios::GeneratedNet, envmap::EnvRun) {
    let net = star_switch(n, Bandwidth::mbps(100.0));
    let inputs: Vec<HostInput> = net
        .hosts
        .iter()
        .map(|h| HostInput::new(net.topo.node(*h).ifaces[0].name.as_deref().unwrap()))
        .collect();
    let master = inputs[0].0.clone();
    let mut eng = netsim::Sim::new(net.topo.clone());
    let run = EnvMapper::new(EnvConfig::fast())
        .map(&mut eng, &inputs, &master, None)
        .expect("mapping succeeds");
    (net, run)
}

fn main() {
    // --- administrator: map once, publish ---------------------------------
    let (_net, run) = map_lan(5);
    let xml = run.to_gridml().to_xml();
    println!(
        "administrator mapped the LAN with {} experiments and published {} bytes of GridML\n",
        run.stats.total_experiments(),
        xml.len()
    );

    // --- user: import, plan, no probes -------------------------------------
    let doc = GridDoc::parse(&xml).expect("publication parses");
    let view = view_from_gridml(&doc).expect("view imports");
    println!("user imported the view without probing:\n{}", view.render());
    let plan = plan_deployment(&view, &PlannerConfig::default());
    println!("{}", plan.render());
    println!("--- §5.2 manager config (excerpt) ---");
    for line in render_config(&plan).lines().take(10) {
        println!("{line}");
    }

    // --- later: the platform grew; fold the remap in incrementally ----------
    let (_bigger, rerun) = map_lan(7);
    let new_plan = plan_deployment(&rerun.view, &PlannerConfig::default());
    let delta = diff_plans(&plan, &new_plan);
    println!("\nafter the LAN grew from 5 to 7 hosts, the incremental delta is:");
    println!("  cliques to stop:    {:?}", delta.cliques_to_stop);
    println!(
        "  cliques to restart: {:?}",
        delta.cliques_to_restart.iter().map(|c| &c.name).collect::<Vec<_>>()
    );
    println!(
        "  cliques to start:   {:?}",
        delta.cliques_to_start.iter().map(|c| &c.name).collect::<Vec<_>>()
    );
    println!("  sensors to add:     {:?}", delta.sensors_to_add);
    println!("  sensors to remove:  {:?}", delta.sensors_to_remove);
    println!("  {} action(s) instead of a full redeployment", delta.action_count());
}
