//! The NWS sensor process: conducts the measurements (paper §2.1–§2.3).
//!
//! A sensor
//!
//! * runs the three network experiments of §2.2 against its clique peers
//!   whenever it holds a clique token — 4-byte RTT (latency), 64 KiB timed
//!   transfer (bandwidth), and connect time (derived as 1.5 RTT from the
//!   latency experiment rather than a third probe; documented delta);
//! * participates in any number of measurement cliques ([`CliqueMembership`]),
//!   holding at most one token's experiments at a time — NWS's guarantee
//!   that a host is involved in at most one measurement at once;
//! * optionally implements **host-level measurement locks** — the paper's
//!   §6 proposal ("a possibility to lock hosts (and not networks) is still
//!   needed"): before probing a peer, the holder asks the peer's sensor
//!   for permission, so two cliques sharing a member can no longer probe
//!   into it simultaneously;
//! * optionally free-runs on a fixed period *without* clique coordination,
//!   which reproduces the measurement collisions of §2.3 (experiment E1);
//! * optionally samples the synthetic host-load model (CPU / free memory).
//!
//! All results are `Store`d to the sensor's memory server.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use netsim::engine::{Ctx, Process, ProcessId, TimerId};
use netsim::error::NetError;
use netsim::flow::FlowOutcome;
use netsim::time::TimeDelta;
use netsim::topology::NodeId;
use netsim::units::Bytes;

use crate::clique::{CliqueMembership, CliqueRetarget};
use crate::hostload::HostLoadModel;
use crate::msg::{NwsMsg, Resource, SeriesKey, ServerKind};

const TAG_HOST_SENSE: u64 = 0;
const TAG_FREE_RUN: u64 = 1;
const TAG_LOCK_TIMEOUT: u64 = 2;
const TAG_GRANT_EXPIRY: u64 = 3;
const TAG_RETRY: u64 = 4;
const TAG_WATCHDOG: u64 = 100;
const TAG_PASS: u64 = 200;
const TAG_INITIAL: u64 = 300;

/// Free-running (uncoordinated) measurement configuration.
#[derive(Debug, Clone)]
pub struct FreeRun {
    pub targets: Vec<(String, NodeId)>,
    pub period: TimeDelta,
}

/// Host-resource sensing configuration.
#[derive(Debug, Clone)]
pub struct HostSense {
    pub period: TimeDelta,
    pub seed: u64,
}

/// Static sensor configuration.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// The host name this sensor reports under (series key component).
    pub host_name: String,
    pub ns: ProcessId,
    pub memory: ProcessId,
    /// Bandwidth experiment payload (NWS: 64 KiB).
    pub probe_bytes: Bytes,
    pub free_run: Option<FreeRun>,
    pub host_sense: Option<HostSense>,
    /// Delay before ring member 0 injects the initial token.
    pub initial_token_delay: TimeDelta,
    /// Seed for the token-gap jitter.
    pub seed: u64,
    /// Enable the §6 host-locking extension.
    pub host_locking: bool,
    /// How long a holder waits for a peer's lock grant before skipping it.
    pub lock_timeout: TimeDelta,
    /// Safety expiry on a grant (in case the holder dies mid-probe).
    pub grant_timeout: TimeDelta,
    /// First store-retry backoff; doubles per attempt up to `retry_max`.
    pub retry_initial: TimeDelta,
    pub retry_max: TimeDelta,
    /// Unacked stores buffered while the memory is unreachable; beyond
    /// this the oldest measurement is shed (newest data wins — NWS series
    /// are rings for the same reason).
    pub unacked_cap: usize,
}

impl SensorConfig {
    pub fn new(host_name: &str, ns: ProcessId, memory: ProcessId) -> Self {
        SensorConfig {
            host_name: host_name.to_string(),
            ns,
            memory,
            probe_bytes: netsim::probes::BANDWIDTH_PROBE_BYTES,
            free_run: None,
            host_sense: None,
            initial_token_delay: TimeDelta::from_millis(200.0),
            seed: 0,
            host_locking: false,
            lock_timeout: TimeDelta::from_secs(2.0),
            grant_timeout: TimeDelta::from_secs(10.0),
            retry_initial: TimeDelta::from_secs(1.0),
            retry_max: TimeDelta::from_secs(30.0),
            unacked_cap: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    Latency,
    Bandwidth,
}

#[derive(Debug, Clone)]
struct ActiveProbe {
    peer: String,
    node: NodeId,
    kind: ProbeKind,
    /// The peer's sensor, when we hold a lock on it to release afterwards.
    locked: Option<ProcessId>,
}

/// A pending probe target: the peer's sensor pid (None for free-run
/// targets without one), name and host node.
type Target = (Option<ProcessId>, String, NodeId);

/// Token work: membership index, accepted sequence, round counter.
type TokenWork = (usize, u64, u64);

/// The sensor process.
pub struct Sensor {
    cfg: SensorConfig,
    memberships: Vec<CliqueMembership>,
    /// Slots retired by a `Retarget`: membership indexes are baked into
    /// timer tags, so slots are never removed — a retired slot ignores
    /// tokens and watchdogs and may be recycled by a later retarget.
    retired: Vec<bool>,
    watchdogs: Vec<Option<TimerId>>,
    /// Pending initial-token timers per slot, cancelled on retirement so a
    /// recycled slot cannot receive a stale injection.
    initial_timers: Vec<Option<TimerId>>,
    /// Peers still to probe in the current activation.
    queue: VecDeque<Target>,
    active: Option<ActiveProbe>,
    /// The token currently held (work in progress or awaiting the pass).
    current: Option<TokenWork>,
    pending: VecDeque<TokenWork>,
    load: Option<HostLoadModel>,
    /// Jitter source for token gaps. Without jitter, two cliques whose
    /// measurements collide finish their probes at the same instant and
    /// re-align their schedules forever (the classic self-synchronization
    /// of periodic messages); NWS randomizes periods for the same reason.
    rng: SmallRng,
    // --- host-locking state (§6 extension) ---
    /// Who currently holds a grant to probe this host.
    granted_to: Option<ProcessId>,
    grant_expiry: Option<TimerId>,
    /// Requests queued while engaged.
    grant_queue: VecDeque<ProcessId>,
    /// The peer we are waiting on for a grant.
    waiting_grant: Option<Target>,
    lock_wait_timer: Option<TimerId>,
    /// Number of token holds completed (for tests).
    pub holds: u64,
    /// Probes skipped because a lock was not granted in time.
    pub lock_skips: u64,
    // --- store reliability (seq + ack + retry) ---
    /// Last allocated store sequence number (first store carries seq 1).
    next_store_seq: u64,
    /// Sent-but-unacked stores, by seq: the outage buffer, drained in seq
    /// order on every retry or memory retarget.
    unacked: BTreeMap<u64, (SeriesKey, f64, f64)>,
    retry_timer: Option<TimerId>,
    retry_backoff: TimeDelta,
    /// Stores resent by the retry machinery (for tests/benches).
    pub store_retries: u64,
    /// Oldest unacked stores shed by the buffer cap during a long outage.
    pub stores_shed: u64,
}

impl Sensor {
    pub fn new(cfg: SensorConfig, memberships: Vec<CliqueMembership>) -> Self {
        let load = cfg.host_sense.as_ref().map(|h| HostLoadModel::new(h.seed));
        let n = memberships.len();
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5e4_50e5);
        let retry_backoff = cfg.retry_initial;
        Sensor {
            cfg,
            memberships,
            retired: vec![false; n],
            watchdogs: vec![None; n],
            initial_timers: vec![None; n],
            queue: VecDeque::new(),
            active: None,
            current: None,
            pending: VecDeque::new(),
            load,
            rng,
            granted_to: None,
            grant_expiry: None,
            grant_queue: VecDeque::new(),
            waiting_grant: None,
            lock_wait_timer: None,
            holds: 0,
            lock_skips: 0,
            next_store_seq: 0,
            unacked: BTreeMap::new(),
            retry_timer: None,
            retry_backoff,
            store_retries: 0,
            stores_shed: 0,
        }
    }

    fn busy(&self) -> bool {
        self.active.is_some() || self.current.is_some() || self.waiting_grant.is_some()
    }

    /// Whether this host is involved in a measurement right now (as prober,
    /// grant holder's target, or waiting to probe).
    fn engaged(&self) -> bool {
        self.active.is_some() || self.waiting_grant.is_some() || self.granted_to.is_some()
    }

    /// Send one measurement to the memory, reliably: the point is buffered
    /// under a fresh sequence number until the memory's `StoreAck` releases
    /// it, with [`Sensor::resend_unacked`] retrying on a backoff timer. A
    /// send that fails outright (memory dead or unreachable) leaves the
    /// point in the buffer to drain on recovery.
    fn store(&mut self, ctx: &mut Ctx<'_, NwsMsg>, key: SeriesKey, value: f64) {
        self.next_store_seq += 1;
        let seq = self.next_store_seq;
        let t = ctx.now().as_secs();
        if self.unacked.len() >= self.cfg.unacked_cap {
            self.unacked.pop_first();
            self.stores_shed += 1;
        }
        self.unacked.insert(seq, (key.clone(), t, value));
        let msg = NwsMsg::Store { key, seq, t, value };
        let size = msg.wire_size();
        let _ = ctx.send(self.cfg.memory, size, msg);
        self.arm_retry(ctx);
    }

    fn arm_retry(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        if self.retry_timer.is_none() {
            self.retry_timer = Some(ctx.set_timer(self.retry_backoff, TAG_RETRY));
        }
    }

    /// Resend every unacked store in seq order, double the backoff (capped)
    /// and schedule the next attempt. No-op when the buffer is empty.
    fn resend_unacked(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        if self.unacked.is_empty() {
            self.retry_backoff = self.cfg.retry_initial;
            return;
        }
        let resend: Vec<(u64, SeriesKey, f64, f64)> =
            self.unacked.iter().map(|(s, (k, t, v))| (*s, k.clone(), *t, *v)).collect();
        self.store_retries += resend.len() as u64;
        for (seq, key, t, value) in resend {
            let msg = NwsMsg::Store { key, seq, t, value };
            let size = msg.wire_size();
            let _ = ctx.send(self.cfg.memory, size, msg);
        }
        self.retry_backoff = self.retry_backoff * 2.0;
        if self.retry_backoff > self.cfg.retry_max {
            self.retry_backoff = self.cfg.retry_max;
        }
        self.retry_timer = Some(ctx.set_timer(self.retry_backoff, TAG_RETRY));
    }

    fn send_small(&self, ctx: &mut Ctx<'_, NwsMsg>, to: ProcessId, msg: NwsMsg) {
        let size = msg.wire_size();
        let _ = ctx.send(to, size, msg);
    }

    /// Record a token acceptance and either start its experiments or queue
    /// the work.
    fn accept_token(&mut self, ctx: &mut Ctx<'_, NwsMsg>, m: usize, seq: u64, round: u64) {
        if !self.memberships[m].accepts(seq) {
            return; // stale or duplicate token
        }
        if let Some(t) = self.watchdogs[m].take() {
            ctx.cancel_timer(t);
        }
        self.memberships[m].last_seq = seq;
        self.memberships[m].rounds_seen = round;
        if self.busy() {
            self.pending.push_back((m, seq, round));
        } else {
            self.start_work(ctx, (m, seq, round));
        }
    }

    fn start_work(&mut self, ctx: &mut Ctx<'_, NwsMsg>, work: TokenWork) {
        let (m, seq, _) = work;
        // Drop work made stale by a newer token for the same clique, or by
        // the clique's retirement while the work was queued.
        if self.retired[m] || self.memberships[m].last_seq != seq {
            self.next_pending(ctx);
            return;
        }
        self.current = Some(work);
        self.queue = self.memberships[m]
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.memberships[m].me_idx)
            .map(|(_, (pid, name, node))| (Some(*pid), name.clone(), *node))
            .collect();
        self.holds += 1;
        self.start_next_probe(ctx);
    }

    fn next_pending(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        if let Some(work) = self.pending.pop_front() {
            self.start_work(ctx, work);
        } else {
            self.service_grants(ctx);
        }
    }

    /// Launch the next experiment (acquiring the peer lock first when the
    /// §6 extension is on), or wind down the activation.
    fn start_next_probe(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        while let Some((pid, peer, node)) = self.queue.pop_front() {
            if self.cfg.host_locking {
                if let Some(peer_pid) = pid {
                    self.waiting_grant = Some((Some(peer_pid), peer, node));
                    self.send_small(ctx, peer_pid, NwsMsg::LockRequest);
                    self.lock_wait_timer =
                        Some(ctx.set_timer(self.cfg.lock_timeout, TAG_LOCK_TIMEOUT));
                    return;
                }
            }
            match ctx.start_flow(node, netsim::probes::LATENCY_PROBE_BYTES, 0) {
                Ok(_) => {
                    self.active =
                        Some(ActiveProbe { peer, node, kind: ProbeKind::Latency, locked: None });
                    return;
                }
                Err(_) => continue, // unreachable peer: skip
            }
        }
        // Queue drained.
        self.active = None;
        match self.current {
            Some((m, _, _)) => {
                // Hold the token through the configured gap (jittered to
                // break inter-clique phase locking), then pass it.
                let gap = self.memberships[m].gap * (1.0 + self.rng.gen_range(0.0..0.5));
                ctx.set_timer(gap, TAG_PASS + m as u64);
                self.service_grants(ctx);
            }
            None => self.next_pending(ctx),
        }
    }

    /// A grant arrived: run the locked probe.
    fn begin_locked_probe(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId) {
        let Some((pid, peer, node)) = self.waiting_grant.take() else { return };
        if pid != Some(from) {
            // Grant from someone we are no longer waiting on.
            self.waiting_grant = Some((pid, peer, node));
            return;
        }
        if let Some(t) = self.lock_wait_timer.take() {
            ctx.cancel_timer(t);
        }
        match ctx.start_flow(node, netsim::probes::LATENCY_PROBE_BYTES, 0) {
            Ok(_) => {
                self.active =
                    Some(ActiveProbe { peer, node, kind: ProbeKind::Latency, locked: pid });
            }
            Err(_) => {
                if let Some(p) = pid {
                    self.send_small(ctx, p, NwsMsg::LockRelease);
                }
                self.start_next_probe(ctx);
            }
        }
    }

    /// Grant queued lock requests when this host becomes free.
    fn service_grants(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        if self.engaged() {
            return;
        }
        if let Some(h) = self.grant_queue.pop_front() {
            self.granted_to = Some(h);
            self.grant_expiry = Some(ctx.set_timer(self.cfg.grant_timeout, TAG_GRANT_EXPIRY));
            self.send_small(ctx, h, NwsMsg::LockGrant);
        }
    }

    fn pass_token(&mut self, ctx: &mut Ctx<'_, NwsMsg>, m: usize) {
        let Some((cm, seq, round)) = self.current.take() else { return };
        debug_assert_eq!(cm, m);
        // If the clique was retargeted while we held its token, migrate the
        // token into the replacement membership of the same name — a
        // restart must not cost a full watchdog period of silence (the
        // holder is where the token almost always lives). Only a clique
        // that was *stopped* outright drops its token here.
        let m = if self.retired[m] {
            let name = self.memberships[m].clique.clone();
            let replacement = (0..self.memberships.len())
                .find(|&i| !self.retired[i] && self.memberships[i].clique == name);
            match replacement {
                Some(i) => i,
                None => {
                    self.next_pending(ctx);
                    return;
                }
            }
        } else {
            m
        };
        let membership = &mut self.memberships[m];
        // Keep acceptance monotonic in the replacement ring even if it has
        // seen its own (regenerated) tokens meanwhile.
        let seq = seq.max(membership.last_seq);
        membership.last_seq = membership.last_seq.max(seq);
        let membership = &self.memberships[m];
        let next = membership.next_member();
        let round = round + u64::from(membership.pass_completes_round());
        let msg = NwsMsg::Token { clique: membership.clique.clone(), seq: seq + 1, round };
        let size = msg.wire_size();
        let _ = ctx.send(next, size, msg);
        // Re-arm the watchdog for the token's return.
        let delay = membership.watchdog_delay();
        if let Some(t) = self.watchdogs[m].take() {
            ctx.cancel_timer(t);
        }
        self.watchdogs[m] = Some(ctx.set_timer(delay, TAG_WATCHDOG + m as u64));
        self.next_pending(ctx);
    }

    /// Retire a clique membership by name (idempotent).
    fn retire_clique(&mut self, ctx: &mut Ctx<'_, NwsMsg>, name: &str) {
        for m in 0..self.memberships.len() {
            if self.retired[m] || self.memberships[m].clique != name {
                continue;
            }
            self.retired[m] = true;
            if let Some(t) = self.watchdogs[m].take() {
                ctx.cancel_timer(t);
            }
            if let Some(t) = self.initial_timers[m].take() {
                ctx.cancel_timer(t);
            }
            self.pending.retain(|(pm, _, _)| *pm != m);
            // Work in flight for the retired clique is allowed to finish;
            // pass_token migrates its token into a same-name replacement
            // (or drops it when the clique was stopped outright).
        }
    }

    /// Apply a `Retarget`: retire removed cliques, install added ones —
    /// the in-place reconfiguration path of incremental plan repair.
    fn retarget(&mut self, ctx: &mut Ctx<'_, NwsMsg>, add: Vec<CliqueRetarget>, remove: &[String]) {
        for name in remove {
            self.retire_clique(ctx, name);
        }
        for r in add {
            if !r.ring.iter().any(|(p, _, _)| *p == ctx.me()) {
                continue; // defensive: not addressed to this sensor
            }
            // A restart of an existing clique retires the old membership.
            let name = r.clique.clone();
            self.retire_clique(ctx, &name);
            let membership = CliqueMembership::new(&r.clique, r.ring, ctx.me(), r.gap, r.watchdog);
            // Recycle a retired slot that carries no in-flight work, so
            // membership indexes (baked into timer tags) stay bounded by
            // the concurrent-clique count, not the retarget history.
            let reusable = (0..self.memberships.len()).find(|&m| {
                self.retired[m]
                    && self.current.map(|(cm, _, _)| cm != m).unwrap_or(true)
                    && !self.pending.iter().any(|(pm, _, _)| *pm == m)
            });
            let m = match reusable {
                Some(m) => {
                    self.memberships[m] = membership;
                    self.retired[m] = false;
                    m
                }
                None => {
                    self.memberships.push(membership);
                    self.retired.push(false);
                    self.watchdogs.push(None);
                    self.initial_timers.push(None);
                    self.memberships.len() - 1
                }
            };
            debug_assert!(m < (TAG_PASS - TAG_WATCHDOG) as usize, "timer tag space exhausted");
            let delay = self.memberships[m].watchdog_delay();
            self.watchdogs[m] = Some(ctx.set_timer(delay, TAG_WATCHDOG + m as u64));
            if r.start_token && self.memberships[m].me_idx == 0 {
                self.initial_timers[m] =
                    Some(ctx.set_timer(self.cfg.initial_token_delay, TAG_INITIAL + m as u64));
            }
        }
    }

    fn enqueue_free_run(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let Some(fr) = &self.cfg.free_run else { return };
        if self.busy() {
            return; // skip this period rather than stack up probes
        }
        self.queue = fr.targets.iter().map(|(n, node)| (None, n.clone(), *node)).collect();
        self.start_next_probe(ctx);
    }

    fn sense_host(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let Some(load) = &mut self.load else { return };
        let cpu = load.sample();
        let mem = load.sample_memory();
        let host = self.cfg.host_name.clone();
        self.store(ctx, SeriesKey::host(Resource::CpuLoad, &host), cpu);
        self.store(ctx, SeriesKey::host(Resource::FreeMemory, &host), mem);
    }
}

impl Process<NwsMsg> for Sensor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let reg = NwsMsg::Register { name: self.cfg.host_name.clone(), kind: ServerKind::Sensor };
        let size = reg.wire_size();
        let _ = ctx.send(self.cfg.ns, size, reg);

        if let Some(hs) = &self.cfg.host_sense {
            ctx.set_timer(hs.period, TAG_HOST_SENSE);
        }
        if let Some(fr) = &self.cfg.free_run {
            ctx.set_timer(fr.period, TAG_FREE_RUN);
        }
        for m in 0..self.memberships.len() {
            let delay = self.memberships[m].watchdog_delay();
            self.watchdogs[m] = Some(ctx.set_timer(delay, TAG_WATCHDOG + m as u64));
            if self.memberships[m].me_idx == 0 {
                self.initial_timers[m] =
                    Some(ctx.set_timer(self.cfg.initial_token_delay, TAG_INITIAL + m as u64));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
        match msg {
            NwsMsg::Token { clique, seq, round } => {
                let slot = self
                    .memberships
                    .iter()
                    .enumerate()
                    .position(|(m, c)| !self.retired[m] && c.clique == clique);
                if let Some(m) = slot {
                    self.accept_token(ctx, m, seq, round);
                }
            }
            NwsMsg::Retarget { add, remove } => {
                self.retarget(ctx, add, &remove);
            }
            NwsMsg::StoreAck { seq } => {
                self.unacked.remove(&seq);
                if self.unacked.is_empty() {
                    self.retry_backoff = self.cfg.retry_initial;
                    if let Some(t) = self.retry_timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
            }
            NwsMsg::RetargetMemory { memory } => {
                // The supervisor restarted our memory under a new pid:
                // drain the outage buffer to it right away.
                self.cfg.memory = memory;
                self.retry_backoff = self.cfg.retry_initial;
                if let Some(t) = self.retry_timer.take() {
                    ctx.cancel_timer(t);
                }
                self.resend_unacked(ctx);
            }
            NwsMsg::Ping => {
                self.send_small(ctx, from, NwsMsg::Pong);
            }
            NwsMsg::LockRequest => {
                if self.engaged() {
                    self.grant_queue.push_back(from);
                } else {
                    self.granted_to = Some(from);
                    self.grant_expiry =
                        Some(ctx.set_timer(self.cfg.grant_timeout, TAG_GRANT_EXPIRY));
                    self.send_small(ctx, from, NwsMsg::LockGrant);
                }
            }
            NwsMsg::LockGrant => {
                self.begin_locked_probe(ctx, from);
            }
            NwsMsg::LockRelease if self.granted_to == Some(from) => {
                self.granted_to = None;
                if let Some(t) = self.grant_expiry.take() {
                    ctx.cancel_timer(t);
                }
                self.service_grants(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
        match tag {
            TAG_HOST_SENSE => {
                self.sense_host(ctx);
                if let Some(hs) = &self.cfg.host_sense {
                    ctx.set_timer(hs.period, TAG_HOST_SENSE);
                }
            }
            TAG_FREE_RUN => {
                self.enqueue_free_run(ctx);
                if let Some(fr) = &self.cfg.free_run {
                    ctx.set_timer(fr.period, TAG_FREE_RUN);
                }
            }
            TAG_LOCK_TIMEOUT
                // The peer never granted (it is engaged or dead): skip it.
                if self.waiting_grant.take().is_some() => {
                    self.lock_skips += 1;
                    self.lock_wait_timer = None;
                    self.start_next_probe(ctx);
                }
            TAG_GRANT_EXPIRY => {
                // Holder died mid-probe; free the host.
                self.granted_to = None;
                self.grant_expiry = None;
                self.service_grants(ctx);
            }
            TAG_RETRY => {
                self.retry_timer = None;
                self.resend_unacked(ctx);
            }
            t if (TAG_WATCHDOG..TAG_PASS).contains(&t) => {
                let m = (t - TAG_WATCHDOG) as usize;
                if self.retired[m] {
                    return; // stale watchdog of a retargeted clique
                }
                self.watchdogs[m] = None;
                // Ignore if we are the holder (or have the work queued).
                let holding = self.current.map(|(cm, _, _)| cm == m).unwrap_or(false)
                    || self.pending.iter().any(|(pm, _, _)| *pm == m);
                if holding {
                    return;
                }
                // Token lost: regenerate (paper §2.3's error handling).
                let seq = self.memberships[m].regen_seq();
                let round = self.memberships[m].rounds_seen;
                self.memberships[m].last_seq = seq;
                if self.busy() {
                    self.pending.push_back((m, seq, round));
                } else {
                    self.start_work(ctx, (m, seq, round));
                }
            }
            t if (TAG_PASS..TAG_INITIAL).contains(&t) => {
                self.pass_token(ctx, (t - TAG_PASS) as usize);
            }
            t if t >= TAG_INITIAL => {
                let m = (t - TAG_INITIAL) as usize;
                self.initial_timers[m] = None;
                if !self.retired[m] && self.memberships[m].last_seq == 0 {
                    self.accept_token(ctx, m, 1, 0);
                }
            }
            _ => {}
        }
    }

    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_, NwsMsg>, outcome: &FlowOutcome) {
        let Some(probe) = self.active.take() else { return };
        let host = self.cfg.host_name.clone();
        match probe.kind {
            ProbeKind::Latency => {
                let rtt_ms = outcome.duration().as_millis();
                self.store(ctx, SeriesKey::link(Resource::Latency, &host, &probe.peer), rtt_ms);
                // Connect time derived as 1.5 RTT (three-way handshake)
                // instead of a third probe.
                self.store(
                    ctx,
                    SeriesKey::link(Resource::ConnectTime, &host, &probe.peer),
                    1.5 * rtt_ms,
                );
                // Follow with the bandwidth experiment to the same peer.
                match ctx.start_flow(probe.node, self.cfg.probe_bytes, 0) {
                    Ok(_) => {
                        self.active = Some(ActiveProbe { kind: ProbeKind::Bandwidth, ..probe });
                    }
                    Err(_) => {
                        if let Some(p) = probe.locked {
                            self.send_small(ctx, p, NwsMsg::LockRelease);
                        }
                        self.start_next_probe(ctx);
                    }
                }
            }
            ProbeKind::Bandwidth => {
                self.store(
                    ctx,
                    SeriesKey::link(Resource::Bandwidth, &host, &probe.peer),
                    outcome.throughput().as_mbps(),
                );
                if let Some(p) = probe.locked {
                    self.send_small(ctx, p, NwsMsg::LockRelease);
                }
                self.start_next_probe(ctx);
            }
        }
    }

    fn on_send_failed(&mut self, ctx: &mut Ctx<'_, NwsMsg>, to: ProcessId, _err: &NetError) {
        // A store bounced off a dead memory (the TCP-RST analog). The
        // measurement is still in the unacked buffer; keep the retry timer
        // running so the buffer drains once the memory — or, after a
        // `RetargetMemory`, its successor — is back. Failed token or lock
        // sends need no action here: the clique watchdog regenerates lost
        // tokens and lock waits time out on their own.
        if to == self.cfg.memory && !self.unacked.is_empty() {
            self.arm_retry(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::topology::TopologyBuilder;
    use netsim::units::{Bandwidth, Latency};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn hub3() -> (Engine<NwsMsg>, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        (Engine::new(b.build().unwrap()), hosts)
    }

    /// A probe process that drives the lock protocol against a sensor.
    struct LockProber {
        target: ProcessId,
        log: Rc<RefCell<Vec<&'static str>>>,
        hold: TimeDelta,
    }

    impl Process<NwsMsg> for LockProber {
        fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
            self.log.borrow_mut().push("request");
            let m = NwsMsg::LockRequest;
            let s = m.wire_size();
            ctx.send(self.target, s, m).unwrap();
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
            if let NwsMsg::LockGrant = msg {
                self.log.borrow_mut().push("granted");
                ctx.set_timer(self.hold, 99);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
            if tag == 99 {
                self.log.borrow_mut().push("released");
                let m = NwsMsg::LockRelease;
                let s = m.wire_size();
                ctx.send(self.target, s, m).unwrap();
            }
        }
    }

    /// An idle sensor grants a lock immediately; a second requester queues
    /// until the first releases.
    #[test]
    fn lock_grants_are_serialized() {
        let (mut eng, hosts) = hub3();
        // A bare sensor with locking on, no cliques, no probes of its own.
        let mut cfg = SensorConfig::new("h0.x", ProcessId::from_raw(999), ProcessId::from_raw(999));
        cfg.host_locking = true;
        let sensor = eng.add_process(hosts[0], Box::new(Sensor::new(cfg, vec![])));

        let log_a = Rc::new(RefCell::new(Vec::new()));
        let log_b = Rc::new(RefCell::new(Vec::new()));
        eng.add_process(
            hosts[1],
            Box::new(LockProber {
                target: sensor,
                log: log_a.clone(),
                hold: TimeDelta::from_secs(2.0),
            }),
        );
        eng.add_process(
            hosts[2],
            Box::new(LockProber {
                target: sensor,
                log: log_b.clone(),
                hold: TimeDelta::from_secs(2.0),
            }),
        );
        let deadline = eng.now() + TimeDelta::from_secs(30.0);
        eng.run_until(deadline);

        // Both probers eventually got the lock and released it.
        assert_eq!(*log_a.borrow(), vec!["request", "granted", "released"]);
        assert_eq!(*log_b.borrow(), vec!["request", "granted", "released"]);
    }

    /// A grant expires if the holder never releases (crash tolerance).
    #[test]
    fn unreleased_grant_expires() {
        struct Hog {
            target: ProcessId,
            got: Rc<RefCell<bool>>,
        }
        impl Process<NwsMsg> for Hog {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
                let m = NwsMsg::LockRequest;
                let s = m.wire_size();
                ctx.send(self.target, s, m).unwrap();
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
                if let NwsMsg::LockGrant = msg {
                    *self.got.borrow_mut() = true; // never releases
                }
            }
        }

        let (mut eng, hosts) = hub3();
        let mut cfg = SensorConfig::new("h0.x", ProcessId::from_raw(999), ProcessId::from_raw(999));
        cfg.host_locking = true;
        cfg.grant_timeout = TimeDelta::from_secs(5.0);
        let sensor = eng.add_process(hosts[0], Box::new(Sensor::new(cfg, vec![])));

        let got_hog = Rc::new(RefCell::new(false));
        eng.add_process(hosts[1], Box::new(Hog { target: sensor, got: got_hog.clone() }));
        // Second requester arrives later; must be served after the expiry.
        let log = Rc::new(RefCell::new(Vec::new()));
        eng.add_process(
            hosts[2],
            Box::new(LockProber {
                target: sensor,
                log: log.clone(),
                hold: TimeDelta::from_millis(100.0),
            }),
        );
        let deadline = eng.now() + TimeDelta::from_secs(30.0);
        eng.run_until(deadline);

        assert!(*got_hog.borrow(), "hog received its grant");
        assert!(
            log.borrow().contains(&"granted"),
            "queued requester must be served after the grant expires: {:?}",
            log.borrow()
        );
    }
}
