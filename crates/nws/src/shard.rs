//! Shard routing for the query-serving plane: series → shard assignment
//! that is deterministic, clique-aligned and shard-count invariant in the
//! answers it produces.
//!
//! A series is routed by its *source host* (the measuring end): every
//! series a host originates lands on one shard, and hosts that share a
//! clique share that shard, so a clique's series co-locate — a batched
//! query for one clique's links fans out to a single shard. Hosts outside
//! any clique (and host-level series of unknown hosts) fall back to an
//! FNV-1a hash of the key, which is stable across runs and platforms.
//!
//! Routing only decides *where* a series' battery lives; the battery
//! observes the same point sequence wherever it lives, which is why the
//! serving plane's answers are bit-identical across 1/2/4/8 shards (the
//! hard gate in `exp_serving`).

use std::collections::BTreeMap;

use crate::msg::SeriesKey;
use crate::system::CliqueSpec;

/// FNV-1a 64 — the workspace's standard deterministic string hash.
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic series → shard routing table.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// host name → shard, from the clique-aligned assignment.
    host_shard: BTreeMap<String, u32>,
}

impl ShardMap {
    /// Pure-hash routing: no clique alignment, every host falls back to
    /// the FNV route. Useful for tests and clique-less workloads.
    pub fn hashed(shards: usize) -> ShardMap {
        ShardMap { shards: shards.max(1), host_shard: BTreeMap::new() }
    }

    /// Clique-aligned routing: each clique is assigned a shard (round
    /// robin in clique order — deterministic and balanced), and every
    /// member host routes to its first clique's shard, so one clique's
    /// series co-locate. A host in several cliques follows the earliest
    /// clique that lists it.
    pub fn clique_aligned(shards: usize, cliques: &[CliqueSpec]) -> ShardMap {
        let shards = shards.max(1);
        let mut host_shard = BTreeMap::new();
        for (i, c) in cliques.iter().enumerate() {
            let shard = (i % shards) as u32;
            for m in &c.members {
                host_shard.entry(m.clone()).or_insert(shard);
            }
        }
        ShardMap { shards, host_shard }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard holding `key`'s battery.
    pub fn shard_of(&self, key: &SeriesKey) -> usize {
        match self.host_shard.get(&key.src) {
            Some(&s) => s as usize,
            None => (fnv1a64(&key.src) % self.shards as u64) as usize,
        }
    }

    /// Hosts pinned per shard (diagnostics / balance checks).
    pub fn hosts_per_shard(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.shards];
        for &s in self.host_shard.values() {
            out[s as usize] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Resource;
    use netsim::time::TimeDelta;

    fn clique(name: &str, members: &[&str]) -> CliqueSpec {
        CliqueSpec {
            name: name.to_string(),
            members: members.iter().map(|m| m.to_string()).collect(),
            gap: TimeDelta::from_millis(500.0),
        }
    }

    #[test]
    fn clique_series_co_locate() {
        let map =
            ShardMap::clique_aligned(4, &[clique("a", &["h0", "h1", "h2"]), clique("b", &["h3"])]);
        let s0 = map.shard_of(&SeriesKey::link(Resource::Bandwidth, "h0", "h1"));
        let s1 = map.shard_of(&SeriesKey::link(Resource::Bandwidth, "h1", "h2"));
        let s2 = map.shard_of(&SeriesKey::link(Resource::Latency, "h2", "h0"));
        assert_eq!(s0, s1);
        assert_eq!(s1, s2);
        // Second clique lands on the next shard.
        assert_ne!(map.shard_of(&SeriesKey::host(Resource::CpuLoad, "h3")), s0);
    }

    #[test]
    fn host_in_two_cliques_follows_the_first() {
        let map = ShardMap::clique_aligned(2, &[clique("a", &["h0"]), clique("b", &["h0", "h1"])]);
        assert_eq!(map.shard_of(&SeriesKey::host(Resource::CpuLoad, "h0")), 0);
        assert_eq!(map.shard_of(&SeriesKey::host(Resource::CpuLoad, "h1")), 1);
    }

    #[test]
    fn unknown_hosts_route_stably_within_bounds() {
        let map = ShardMap::clique_aligned(8, &[clique("a", &["h0"])]);
        for i in 0..50 {
            let key = SeriesKey::host(Resource::CpuLoad, &format!("ghost{i}"));
            let s = map.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, map.shard_of(&key), "routing must be stable");
        }
    }

    #[test]
    fn zero_shards_is_one() {
        let map = ShardMap::hashed(0);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.shard_of(&SeriesKey::host(Resource::CpuLoad, "x")), 0);
    }
}
