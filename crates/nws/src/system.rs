//! Deployment and wiring of a whole NWS system, plus the forecaster and
//! client processes completing the query path of paper §2.1.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use netsim::disk::{DiskHandle, DiskRegistry};
use netsim::engine::{Ctx, Engine, Process, ProcessId, TimerId};
use netsim::prelude::*;

use crate::clique::{CliqueMembership, CliqueRetarget};
use crate::forecast::{Forecast, ForecasterBattery};
use crate::memory::{MemoryHandle, MemoryServer};
use crate::msg::{NwsMsg, SeriesKey, ServerKind};
use crate::persist::ForecastLog;
use crate::registry::{NameServer, RegistryHandle};
use crate::sensor::{FreeRun, HostSense, Sensor, SensorConfig};
use crate::series::Series;
use crate::supervisor::{SupervisorConfig, SupervisorHandle, SupervisorProc, SupervisorState};

/// Persistent forecasting state for one series: the battery that has
/// observed every point fetched so far, the newest observed timestamp
/// (the delta-fetch watermark) and the memory server that stores the
/// series (cached from the first directory lookup). The memory pid is
/// `None` right after a recovery from disk — pids do not survive
/// restarts, so a recovered series re-resolves its home through the
/// name server on the next query.
struct SeriesState {
    battery: ForecasterBattery,
    last_t: f64,
    memory: Option<ProcessId>,
}

/// One party waiting for a key to resolve: a single-query client (owed a
/// `QueryReply`) or one slot of a pending [`NwsMsg::QueryBatch`].
enum Waiter {
    Client(ProcessId),
    BatchSlot { batch: u64, slot: usize },
}

/// The single-flight table entry for one key: every pending query —
/// single or batched — parks here while at most **one** lookup/fetch
/// round trip is in flight for the key. `asked` is the waiter prefix
/// covered by that round trip; only that prefix may be answered from a
/// negative directory reply — a waiter that queued *after* the `WhereIs`
/// left may be asking about a series registered in the meantime, so its
/// lookup is re-issued instead of reusing the stale negative.
#[derive(Default)]
struct Waiting {
    waiters: VecDeque<Waiter>,
    asked: usize,
}

/// A client's in-progress `QueryBatch`: answer slots fill in as each key
/// resolves (shared with any concurrent single queries through the
/// single-flight table); when `remaining` hits zero, one
/// `QueryBatchReply` carries every slot back.
struct PendingBatch {
    client: ProcessId,
    id: u64,
    answers: Vec<(SeriesKey, Option<Forecast>)>,
    remaining: usize,
}

/// The forecaster process: answers `Query` by locating the series' memory
/// through the name server (step 2), fetching the history (step 3),
/// running the battery and replying (step 4).
///
/// The query path is incremental end to end: each series keeps a
/// persistent [`SeriesState`], so a query fetches (`FetchSince`) and
/// observes only the points newer than the watermark — O(Δ) work and
/// wire bytes — instead of shipping the whole ring and replaying it
/// through a fresh 20-predictor battery. Replaying the stored ring into a
/// fresh battery produces the bit-identical forecast (the oracle the
/// scaling bench asserts against) as long as the ring has not evicted
/// points the persistent battery already saw.
pub struct ForecasterServer {
    name: String,
    ns: ProcessId,
    state: BTreeMap<SeriesKey, SeriesState>,
    waiting: BTreeMap<SeriesKey, Waiting>,
    /// How long an in-flight lookup/fetch may go unanswered before the
    /// waiting clients are served from the persistent battery, flagged
    /// stale, instead of hanging (outage tolerance).
    pub query_timeout: TimeDelta,
    next_timeout_tag: u64,
    /// In-flight request timeouts, both directions: key → armed timer and
    /// timer tag → key (timer tags are plain u64s, so the reverse map
    /// routes `on_timer` back to the series).
    timeout_by_key: BTreeMap<SeriesKey, (TimerId, u64)>,
    key_by_tag: BTreeMap<u64, SeriesKey>,
    /// Stale forecasts served during outages (for tests/benches).
    pub stale_served: u64,
    /// Queries that joined an already in-flight lookup/fetch instead of
    /// issuing their own (the single-flight coalescing win, for
    /// tests/benches).
    pub coalesced: u64,
    /// Completed `QueryBatch` replies.
    pub batches_served: u64,
    /// In-progress batches by internal handle (client pids may collide on
    /// their `id`s; the handle is ours).
    batches: BTreeMap<u64, PendingBatch>,
    next_batch: u64,
    /// Watermark rewinds: times a fetch reply revealed a memory restored
    /// to an *older* state than this forecaster had already observed, and
    /// the battery was reset + the series re-fetched from scratch instead
    /// of silently forecasting across the gap.
    pub rewinds: u64,
    /// Durable observation log, when the forecaster owns a disk.
    log: Option<ForecastLog>,
}

impl ForecasterServer {
    pub fn new(name: &str, ns: ProcessId) -> Self {
        ForecasterServer {
            name: name.to_string(),
            ns,
            state: BTreeMap::new(),
            waiting: BTreeMap::new(),
            query_timeout: TimeDelta::from_secs(5.0),
            next_timeout_tag: 0,
            timeout_by_key: BTreeMap::new(),
            key_by_tag: BTreeMap::new(),
            stale_served: 0,
            coalesced: 0,
            batches_served: 0,
            batches: BTreeMap::new(),
            next_batch: 0,
            rewinds: 0,
            log: None,
        }
    }

    /// A durable forecaster: battery state and delta-fetch watermarks are
    /// recovered from `disk` (snapshot + WAL replay, empty disk ⇒ cold
    /// start) and every observation is logged back to it. Memory pids are
    /// not part of the durable state — recovered series re-resolve their
    /// memory through the name server on the next query.
    pub fn durable(name: &str, ns: ProcessId, disk: DiskHandle) -> Self {
        let (recovered, log) = ForecastLog::recover(disk, "forecaster");
        let mut fc = ForecasterServer::new(name, ns);
        fc.state = recovered
            .into_iter()
            .map(|(k, r)| (k, SeriesState { battery: r.battery, last_t: r.last_t, memory: None }))
            .collect();
        fc.log = Some(log);
        fc
    }

    /// Tune the durable WAL's compaction threshold (bytes). No-op on a
    /// volatile forecaster.
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        if let Some(log) = &mut self.log {
            log.set_compact_threshold(bytes);
        }
    }

    fn arm_timeout(&mut self, ctx: &mut Ctx<'_, NwsMsg>, key: &SeriesKey) {
        if self.timeout_by_key.contains_key(key) {
            return; // one timeout covers the whole lookup+fetch round trip
        }
        let tag = self.next_timeout_tag;
        self.next_timeout_tag += 1;
        let id = ctx.set_timer(self.query_timeout, tag);
        self.timeout_by_key.insert(key.clone(), (id, tag));
        self.key_by_tag.insert(tag, key.clone());
    }

    fn clear_timeout(&mut self, ctx: &mut Ctx<'_, NwsMsg>, key: &SeriesKey) {
        if let Some((id, tag)) = self.timeout_by_key.remove(key) {
            ctx.cancel_timer(id);
            self.key_by_tag.remove(&tag);
        }
    }

    fn send_fetch_since(&self, ctx: &mut Ctx<'_, NwsMsg>, key: &SeriesKey) {
        let st = &self.state[key];
        let Some(memory) = st.memory else { return };
        let f = NwsMsg::FetchSince { key: key.clone(), after: st.last_t };
        let size = f.wire_size();
        let _ = ctx.send(memory, size, f);
    }

    fn send_where_is(&self, ctx: &mut Ctx<'_, NwsMsg>, key: &SeriesKey) {
        let q = NwsMsg::WhereIs { key: key.clone() };
        let size = q.wire_size();
        let _ = ctx.send(self.ns, size, q);
    }

    /// Park a waiter on `key`, starting a lookup/fetch round trip only if
    /// none is in flight (the single-flight discipline). A known series
    /// goes straight to its memory for the delta; a never-seen key — or
    /// one recovered from disk with no cached memory pid — pays the
    /// directory round trip.
    fn enqueue(&mut self, ctx: &mut Ctx<'_, NwsMsg>, key: SeriesKey, waiter: Waiter) {
        let w = self.waiting.entry(key.clone()).or_default();
        w.waiters.push_back(waiter);
        if w.asked == 0 {
            w.asked = w.waiters.len();
            if self.state.get(&key).is_some_and(|st| st.memory.is_some()) {
                self.send_fetch_since(ctx, &key);
            } else {
                self.send_where_is(ctx, &key);
            }
            self.arm_timeout(ctx, &key);
        } else {
            self.coalesced += 1;
        }
    }

    /// Deliver one key's answer to one waiter: a client gets its
    /// `QueryReply` immediately; a batch slot fills in, and the batch
    /// replies once its last slot resolves.
    fn answer(
        &mut self,
        ctx: &mut Ctx<'_, NwsMsg>,
        key: &SeriesKey,
        w: Waiter,
        f: &Option<Forecast>,
    ) {
        match w {
            Waiter::Client(c) => {
                let r = NwsMsg::QueryReply { key: key.clone(), forecast: f.clone() };
                let size = r.wire_size();
                let _ = ctx.send(c, size, r);
            }
            Waiter::BatchSlot { batch, slot } => {
                let Some(b) = self.batches.get_mut(&batch) else { return };
                b.answers[slot].1 = f.clone();
                b.remaining -= 1;
                if b.remaining == 0 {
                    let b = self.batches.remove(&batch).expect("pending batch");
                    let r = NwsMsg::QueryBatchReply { id: b.id, forecasts: b.answers };
                    let size = r.wire_size();
                    let _ = ctx.send(b.client, size, r);
                    self.batches_served += 1;
                }
            }
        }
    }
}

impl Process<NwsMsg> for ForecasterServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let reg = NwsMsg::Register { name: self.name.clone(), kind: ServerKind::Forecaster };
        let size = reg.wire_size();
        let _ = ctx.send(self.ns, size, reg);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
        match msg {
            NwsMsg::Query { key } => {
                self.enqueue(ctx, key, Waiter::Client(from));
            }
            NwsMsg::QueryBatch { id, keys } => {
                if keys.is_empty() {
                    let r = NwsMsg::QueryBatchReply { id, forecasts: Vec::new() };
                    let size = r.wire_size();
                    let _ = ctx.send(from, size, r);
                    self.batches_served += 1;
                    return;
                }
                let batch = self.next_batch;
                self.next_batch += 1;
                let remaining = keys.len();
                let answers: Vec<(SeriesKey, Option<Forecast>)> =
                    keys.iter().map(|k| (k.clone(), None)).collect();
                self.batches.insert(batch, PendingBatch { client: from, id, answers, remaining });
                // Duplicate keys in one batch share a single-flight entry
                // (and any in-flight fetch from other queries) like every
                // other waiter.
                for (slot, key) in keys.into_iter().enumerate() {
                    self.enqueue(ctx, key, Waiter::BatchSlot { batch, slot });
                }
            }
            NwsMsg::WhereIsReply { key, memory } => match memory {
                Some(mem) => {
                    // No prefix accounting here: the eventual FetchReply
                    // forecast is fresh enough for every waiting client,
                    // including post-lookup joiners, and answers them all.
                    self.state
                        .entry(key.clone())
                        .and_modify(|st| st.memory = Some(mem))
                        .or_insert_with(|| SeriesState {
                            battery: ForecasterBattery::classic(),
                            last_t: f64::NEG_INFINITY,
                            memory: Some(mem),
                        });
                    self.send_fetch_since(ctx, &key);
                }
                None => {
                    // Unknown series: the negative only answers the waiters
                    // whose query preceded the lookup. Anyone who queued
                    // afterwards re-asks — the series may have been
                    // registered while the reply was in flight.
                    let mut covered = Vec::new();
                    if let Some(w) = self.waiting.get_mut(&key) {
                        for _ in 0..w.asked {
                            let Some(c) = w.waiters.pop_front() else { break };
                            covered.push(c);
                        }
                        if w.waiters.is_empty() {
                            self.waiting.remove(&key);
                            self.clear_timeout(ctx, &key);
                        } else {
                            w.asked = w.waiters.len();
                            self.send_where_is(ctx, &key);
                        }
                    }
                    for c in covered {
                        self.answer(ctx, &key, c, &None);
                    }
                }
            },
            NwsMsg::FetchReply { key, points, latest } => {
                let rewound = {
                    let st = self.state.entry(key.clone()).or_insert_with(|| SeriesState {
                        battery: ForecasterBattery::classic(),
                        last_t: f64::NEG_INFINITY,
                        memory: Some(from),
                    });
                    st.memory = Some(from);
                    if st.last_t > latest {
                        // The memory holds *less* than we have already
                        // observed: it was restored to an older state (a
                        // crash lost the unsynced tail). Our battery has
                        // consumed points the store no longer remembers, so
                        // the delta-fetch watermark is a lie — rewind the
                        // series (reset battery + watermark) and re-fetch
                        // from scratch rather than silently serving
                        // forecasts across the gap. Terminates: after the
                        // reset, `last_t` can never again exceed `latest`.
                        st.battery = ForecasterBattery::classic();
                        st.last_t = f64::NEG_INFINITY;
                        true
                    } else {
                        for (t, v) in points {
                            // Guard the watermark even against a duplicate
                            // or reordered reply: each point is observed
                            // exactly once, and only watermark-advancing
                            // points are logged (replay fidelity).
                            if t > st.last_t {
                                st.last_t = t;
                                st.battery.observe(v);
                                if let Some(log) = self.log.as_mut() {
                                    log.log_observe(&key, t, v);
                                }
                            }
                        }
                        false
                    }
                };
                if rewound {
                    self.rewinds += 1;
                    if let Some(log) = self.log.as_mut() {
                        log.log_rewind(&key);
                        log.sync();
                    }
                    // Timeout stays armed; the full re-fetch's reply will
                    // answer the waiting clients.
                    self.send_fetch_since(ctx, &key);
                    return;
                }
                if let Some(log) = self.log.as_mut() {
                    log.sync();
                    if log.needs_compact() {
                        log.compact(self.state.iter().map(|(k, s)| (k, &s.battery, s.last_t)));
                    }
                }
                let forecast = self.state[&key].battery.forecast();
                self.clear_timeout(ctx, &key);
                if let Some(w) = self.waiting.remove(&key) {
                    for c in w.waiters {
                        self.answer(ctx, &key, c, &forecast);
                    }
                }
            }
            NwsMsg::Ping => {
                let pong = NwsMsg::Pong;
                let size = pong.wire_size();
                let _ = ctx.send(from, size, pong);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
        let Some(key) = self.key_by_tag.remove(&tag) else { return };
        self.timeout_by_key.remove(&key);
        // The series' memory (or the name server) went quiet mid-request.
        // Answer the waiting clients from the persistent battery — a stale
        // prediction beats an error during an outage — then re-resolve the
        // series' home through the directory: a memory restarted by the
        // supervisor re-registers under its new pid, so the lookup heals
        // the cached `SeriesState::memory` for the next query.
        let stale = self.state.get(&key).and_then(|st| st.battery.forecast()).map(|mut f| {
            f.stale = true;
            f
        });
        if let Some(w) = self.waiting.remove(&key) {
            for c in w.waiters {
                if stale.is_some() {
                    self.stale_served += 1;
                }
                self.answer(ctx, &key, c, &stale);
            }
        }
        if self.state.contains_key(&key) {
            self.send_where_is(ctx, &key);
        }
    }
}

/// A one-shot client: queries one series and stashes the reply.
pub struct Client {
    forecaster: ProcessId,
    key: SeriesKey,
    result: Rc<RefCell<Option<Option<Forecast>>>>,
}

impl Process<NwsMsg> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let q = NwsMsg::Query { key: self.key.clone() };
        let size = q.wire_size();
        let _ = ctx.send(self.forecaster, size, q);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
        if let NwsMsg::QueryReply { forecast, .. } = msg {
            *self.result.borrow_mut() = Some(forecast);
        }
    }
}

/// The answer list carried by a `QueryBatchReply`, slot-aligned with the
/// request's keys.
pub type BatchAnswers = Vec<(SeriesKey, Option<Forecast>)>;

/// A one-shot batch client: sends one `QueryBatch` and stashes the reply.
pub struct BatchClient {
    forecaster: ProcessId,
    keys: Vec<SeriesKey>,
    result: Rc<RefCell<Option<BatchAnswers>>>,
}

impl Process<NwsMsg> for BatchClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let q = NwsMsg::QueryBatch { id: 0, keys: self.keys.clone() };
        let size = q.wire_size();
        let _ = ctx.send(self.forecaster, size, q);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
        if let NwsMsg::QueryBatchReply { forecasts, .. } = msg {
            *self.result.borrow_mut() = Some(forecasts);
        }
    }
}

/// How a sensor coordinates its measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorMode {
    /// Clique-coordinated (normal NWS operation).
    Clique,
    /// Uncoordinated periodic probes of the given host names — the
    /// collision-prone configuration of experiment E1.
    FreeRunning { targets: Vec<String>, period: TimeDelta },
}

/// One sensor to deploy.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Host (DNS name) the sensor runs on; also its series identity.
    pub host: String,
    pub mode: SensorMode,
    /// Sample CPU/memory too.
    pub host_sensing: bool,
    /// Which memory host this sensor stores to (`None` = the first memory
    /// in the system spec). Hierarchical plans point firewalled hosts at
    /// the memory on their gateway.
    pub memory: Option<String>,
}

impl SensorSpec {
    pub fn clique_member(host: &str) -> Self {
        SensorSpec {
            host: host.to_string(),
            mode: SensorMode::Clique,
            host_sensing: false,
            memory: None,
        }
    }
}

/// One measurement clique (paper §2.3).
#[derive(Debug, Clone)]
pub struct CliqueSpec {
    pub name: String,
    /// Member host names; ring order is the list order.
    pub members: Vec<String>,
    /// Pause between a member's experiments and the token pass.
    pub gap: TimeDelta,
}

/// A full NWS deployment description (what the paper's §5 planner emits).
#[derive(Debug, Clone)]
pub struct NwsSystemSpec {
    pub nameserver_host: String,
    pub memory_hosts: Vec<String>,
    pub forecaster_host: String,
    pub sensors: Vec<SensorSpec>,
    pub cliques: Vec<CliqueSpec>,
    /// Bandwidth probe payload (NWS default 64 KiB).
    pub probe_bytes: Bytes,
    pub series_capacity: usize,
    /// Watchdog base: how long a member waits for the token before
    /// regenerating it.
    pub watchdog: TimeDelta,
    pub host_sense_period: TimeDelta,
    pub seed: u64,
    /// Enable the §6 host-locking extension on every sensor.
    pub host_locking: bool,
    /// WAL compaction threshold (KiB) for the durable state plane: a
    /// memory server or forecaster whose write-ahead log outgrows this
    /// snapshots its state and truncates the log. Small values bound
    /// replay work at recovery; large values amortize snapshot writes.
    pub wal_compact_kib: u64,
    /// Shard count for the out-of-sim query-serving plane
    /// ([`crate::serve::ServingPlane`]): series are routed clique-aligned
    /// across this many forecaster shards. Answers are shard-count
    /// invariant; the knob trades publication parallelism against
    /// fan-out. 0 is treated as 1.
    pub serve_shards: usize,
}

impl NwsSystemSpec {
    pub fn minimal(nameserver: &str, hosts: &[&str]) -> Self {
        NwsSystemSpec {
            nameserver_host: nameserver.to_string(),
            memory_hosts: vec![nameserver.to_string()],
            forecaster_host: nameserver.to_string(),
            sensors: hosts.iter().map(|h| SensorSpec::clique_member(h)).collect(),
            cliques: vec![CliqueSpec {
                name: "clique0".to_string(),
                members: hosts.iter().map(|h| h.to_string()).collect(),
                gap: TimeDelta::from_millis(500.0),
            }],
            probe_bytes: netsim::probes::BANDWIDTH_PROBE_BYTES,
            series_capacity: Series::DEFAULT_CAPACITY,
            watchdog: TimeDelta::from_secs(30.0),
            host_sense_period: TimeDelta::from_secs(10.0),
            seed: 42,
            host_locking: false,
            wal_compact_kib: 64,
            serve_shards: 1,
        }
    }
}

/// The incremental counterpart of [`NwsSystemSpec`]: what
/// [`NwsSystem::reconfigure`] applies to a *running* system instead of
/// tearing it down and redeploying. Derived from a plan delta by
/// `envdeploy::manager::plan_delta_to_reconfig`.
#[derive(Debug, Clone, Default)]
pub struct ReconfigSpec {
    /// Cliques to retire everywhere.
    pub cliques_to_stop: Vec<String>,
    /// Cliques to (re)start; an existing clique of the same name is
    /// retargeted in place at every member.
    pub cliques_to_upsert: Vec<CliqueSpec>,
    pub sensors_to_add: Vec<SensorSpec>,
    pub sensors_to_remove: Vec<String>,
    pub memories_to_add: Vec<String>,
    pub memories_to_remove: Vec<String>,
}

/// One-shot controller process: delivers the retarget messages of a
/// reconfiguration, then goes quiet (the manager "running on each
/// machine", §5.2, compressed into a message burst).
struct Reconfigurer {
    sends: Vec<(ProcessId, NwsMsg)>,
}

impl Process<NwsMsg> for Reconfigurer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        for (to, msg) in self.sends.drain(..) {
            let size = msg.wire_size();
            let _ = ctx.send(to, size, msg);
        }
    }
}

/// A deployed NWS system: process ids plus shared-state handles for
/// inspection by tests, benches and the deployment validator.
pub struct NwsSystem {
    pub nameserver: ProcessId,
    pub registry: RegistryHandle,
    /// memory host name → (pid, store handle)
    pub memories: BTreeMap<String, (ProcessId, MemoryHandle)>,
    pub forecaster: ProcessId,
    /// sensor host name → pid
    pub sensors: BTreeMap<String, ProcessId>,
    /// Node used to run ad-hoc query clients.
    client_node: NodeId,
    /// The spec currently in force (updated by reconfigurations).
    spec: NwsSystemSpec,
    /// Monotonic counter seeding newly added sensors.
    sensors_spawned: usize,
    /// The heartbeat supervisor, when attached: its pid and the shared
    /// liveness ledger [`NwsSystem::heal`] drains.
    supervisor: Option<(ProcessId, SupervisorHandle)>,
    /// Minimum spacing between restarts of the same host. A host that is
    /// unreachable (link down) rather than dead keeps missing heartbeats
    /// after a restart; throttling re-heals keeps the supervisor from
    /// burning its outage buffer over and over in a restart storm.
    pub reheal_backoff: TimeDelta,
    /// host → instant of its last restart, for the re-heal throttle.
    healed_at: BTreeMap<String, SimTime>,
    /// Per-host simulated disks: the durable state plane. Every memory
    /// server and the forecaster log to their host's disk; recovery after
    /// a crash reads **only** from here — there is no in-RAM handoff.
    pub disks: DiskRegistry,
}

impl NwsSystem {
    /// Deploy the system described by `spec` onto the engine's platform.
    /// Host names are resolved against the platform DNS.
    pub fn deploy(eng: &mut Engine<NwsMsg>, spec: &NwsSystemSpec) -> NetResult<NwsSystem> {
        let resolve = |eng: &Engine<NwsMsg>, name: &str| -> NetResult<NodeId> {
            eng.topo()
                .node_by_name(name)
                .or_else(|| name.parse::<Ipv4>().ok().and_then(|ip| eng.topo().node_by_ip(ip)))
                .ok_or_else(|| NetError::NameNotFound(name.to_string()))
        };

        // Per-host disks: crash-fault draws share the spec seed so two
        // identically seeded deployments tear identical file tails.
        let mut disks = DiskRegistry::new();
        disks.set_fault_seed(spec.seed);

        // Name server.
        let ns_node = resolve(eng, &spec.nameserver_host)?;
        let (ns, registry) = NameServer::new();
        let ns_pid = eng.add_process(ns_node, Box::new(ns));

        // Memory servers — durable from the start: an empty disk recovers
        // to an empty store, so cold start and crash recovery are the same
        // code path.
        let mut memories = BTreeMap::new();
        for (i, host) in spec.memory_hosts.iter().enumerate() {
            let node = resolve(eng, host)?;
            let (mut mem, handle) = MemoryServer::recover(
                &format!("memory{i}@{host}"),
                ns_pid,
                spec.series_capacity,
                disks.disk(host),
            );
            mem.set_compact_threshold(spec.wal_compact_kib * 1024);
            let pid = eng.add_process(node, Box::new(mem));
            memories.insert(host.clone(), (pid, handle));
        }
        let default_memory = memories
            .get(&spec.memory_hosts[0])
            .map(|(p, _)| *p)
            .ok_or_else(|| NetError::NameNotFound("no memory hosts".to_string()))?;

        // Forecaster (durable, same disk plane).
        let fc_node = resolve(eng, &spec.forecaster_host)?;
        let mut fc = ForecasterServer::durable(
            &format!("forecaster@{}", spec.forecaster_host),
            ns_pid,
            disks.disk(&spec.forecaster_host),
        );
        fc.set_compact_threshold(spec.wal_compact_kib * 1024);
        let fc_pid = eng.add_process(fc_node, Box::new(fc));

        // Sensors: first allocate pids in spec order (two passes so cliques
        // can reference every member's pid).
        let mut sensor_nodes = BTreeMap::new();
        for s in &spec.sensors {
            sensor_nodes.insert(s.host.clone(), resolve(eng, &s.host)?);
        }
        // Predict pids: engine assigns sequentially; rather than predicting
        // we add placeholder-free in dependency order — memberships need
        // pids, so compute them after adding. To keep it simple we add
        // sensors one by one and collect pids, then construct memberships
        // and hand them over via a second registration pass... Instead:
        // precompute the pid each sensor WILL get (engine pids are dense
        // and sequential), which the Engine API guarantees.
        let first_sensor_pid = ns_pid.index() as u32 + 1 + memories.len() as u32 + 1;
        let sensor_pid_of = |idx: usize| ProcessId::from_raw(first_sensor_pid + idx as u32);

        let mut sensors = BTreeMap::new();
        for (idx, s) in spec.sensors.iter().enumerate() {
            let node = sensor_nodes[&s.host];
            let my_pid = sensor_pid_of(idx);
            // Memberships for every clique this host belongs to.
            let mut memberships = Vec::new();
            for c in &spec.cliques {
                if !c.members.contains(&s.host) {
                    continue;
                }
                let ring: Vec<(ProcessId, String, NodeId)> = c
                    .members
                    .iter()
                    .map(|m| {
                        let midx = spec
                            .sensors
                            .iter()
                            .position(|ss| &ss.host == m)
                            .unwrap_or_else(|| panic!("clique member {m} has no sensor"));
                        (sensor_pid_of(midx), m.clone(), sensor_nodes[m])
                    })
                    .collect();
                memberships.push(CliqueMembership::new(
                    &c.name,
                    ring,
                    my_pid,
                    c.gap,
                    spec.watchdog,
                ));
            }

            let sensor_memory = match &s.memory {
                Some(mh) => memories
                    .get(mh)
                    .map(|(p, _)| *p)
                    .ok_or_else(|| NetError::NameNotFound(format!("memory host {mh}")))?,
                None => default_memory,
            };
            let mut cfg = SensorConfig::new(&s.host, ns_pid, sensor_memory);
            cfg.probe_bytes = spec.probe_bytes;
            cfg.seed = spec.seed.wrapping_mul(0x9e3779b9).wrapping_add(idx as u64);
            cfg.host_locking = spec.host_locking;
            if let SensorMode::FreeRunning { targets, period } = &s.mode {
                let targets: Vec<(String, NodeId)> = targets
                    .iter()
                    .map(|t| Ok((t.clone(), resolve(eng, t)?)))
                    .collect::<NetResult<_>>()?;
                cfg.free_run = Some(FreeRun { targets, period: *period });
            }
            if s.host_sensing {
                cfg.host_sense = Some(HostSense {
                    period: spec.host_sense_period,
                    seed: spec.seed.wrapping_add(idx as u64),
                });
            }

            let pid = eng.add_process(node, Box::new(Sensor::new(cfg, memberships)));
            debug_assert_eq!(pid, my_pid, "sensor pid prediction broke");
            sensors.insert(s.host.clone(), pid);
        }

        let sensors_spawned = spec.sensors.len();
        Ok(NwsSystem {
            nameserver: ns_pid,
            registry,
            memories,
            forecaster: fc_pid,
            sensors,
            client_node: fc_node,
            spec: spec.clone(),
            sensors_spawned,
            supervisor: None,
            reheal_backoff: TimeDelta::from_secs(15.0),
            healed_at: BTreeMap::new(),
            disks,
        })
    }

    /// The spec currently in force (reflects past reconfigurations).
    pub fn spec(&self) -> &NwsSystemSpec {
        &self.spec
    }

    /// Apply an incremental reconfiguration to the *running* system:
    /// sensors, cliques and series are retargeted in place instead of
    /// being torn down and redeployed. Memory servers and the forecaster
    /// are never restarted, so every stored series — and the forecaster's
    /// per-series battery state and delta-fetch watermarks — survive the
    /// transition; only hosts that left the platform lose their processes.
    ///
    /// Clique changes travel as [`NwsMsg::Retarget`] control messages
    /// delivered through the simulated network; measurements continue
    /// meanwhile (a clique's old token keeps circulating until the new
    /// membership absorbs or regenerates it).
    pub fn reconfigure(&mut self, eng: &mut Engine<NwsMsg>, re: &ReconfigSpec) -> NetResult<()> {
        let resolve = |eng: &Engine<NwsMsg>, name: &str| -> NetResult<NodeId> {
            eng.topo()
                .node_by_name(name)
                .or_else(|| name.parse::<Ipv4>().ok().and_then(|ip| eng.topo().node_by_ip(ip)))
                .ok_or_else(|| NetError::NameNotFound(name.to_string()))
        };

        // --- per-sensor retarget accumulation ------------------------------
        let mut removes: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut adds: BTreeMap<String, Vec<CliqueRetarget>> = BTreeMap::new();
        let old_members = |spec: &NwsSystemSpec, name: &str| -> Vec<String> {
            spec.cliques
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.members.clone())
                .unwrap_or_default()
        };
        for name in &re.cliques_to_stop {
            for m in old_members(&self.spec, name) {
                removes.entry(m).or_default().push(name.clone());
            }
        }
        for c in &re.cliques_to_upsert {
            // Members dropped by a restart must retire the old membership;
            // staying members are retargeted by the add alone.
            for m in old_members(&self.spec, &c.name) {
                if !c.members.contains(&m) {
                    removes.entry(m).or_default().push(c.name.clone());
                }
            }
        }

        // --- process churn -------------------------------------------------
        for host in &re.sensors_to_remove {
            if let Some(pid) = self.sensors.remove(host) {
                eng.kill_process(pid);
            }
            self.spec.sensors.retain(|s| &s.host != host);
            removes.remove(host); // no point messaging a dead process
        }
        for host in &re.memories_to_add {
            if self.memories.contains_key(host) {
                continue;
            }
            let node = resolve(eng, host)?;
            // Durable like deploy-time memories; re-adding a host that
            // held a memory before recovers its surviving series.
            let (mut mem, handle) = MemoryServer::recover(
                &format!("memory{}@{host}", self.memories.len()),
                self.nameserver,
                self.spec.series_capacity,
                self.disks.disk(host),
            );
            mem.set_compact_threshold(self.spec.wal_compact_kib * 1024);
            let pid = eng.add_process(node, Box::new(mem));
            self.memories.insert(host.clone(), (pid, handle));
            self.spec.memory_hosts.push(host.clone());
        }
        for host in &re.memories_to_remove {
            if let Some((pid, _)) = self.memories.remove(host) {
                eng.kill_process(pid);
            }
            self.spec.memory_hosts.retain(|h| h != host);
        }
        for s in &re.sensors_to_add {
            if self.sensors.contains_key(&s.host) {
                continue;
            }
            let node = resolve(eng, &s.host)?;
            let memory = match &s.memory {
                Some(mh) => self
                    .memories
                    .get(mh)
                    .map(|(p, _)| *p)
                    .ok_or_else(|| NetError::NameNotFound(format!("memory host {mh}")))?,
                None => {
                    let first = self.spec.memory_hosts.first().cloned().unwrap_or_default();
                    self.memories
                        .get(&first)
                        .map(|(p, _)| *p)
                        .ok_or_else(|| NetError::NameNotFound("no memory hosts".to_string()))?
                }
            };
            let mut cfg = SensorConfig::new(&s.host, self.nameserver, memory);
            cfg.probe_bytes = self.spec.probe_bytes;
            cfg.seed =
                self.spec.seed.wrapping_mul(0x9e37_79b9).wrapping_add(self.sensors_spawned as u64);
            self.sensors_spawned += 1;
            cfg.host_locking = self.spec.host_locking;
            if s.host_sensing {
                cfg.host_sense = Some(HostSense {
                    period: self.spec.host_sense_period,
                    seed: self.spec.seed.wrapping_add(self.sensors_spawned as u64),
                });
            }
            // Memberships arrive via Retarget once every member's pid is
            // known; the sensor starts bare.
            let pid = eng.add_process(node, Box::new(Sensor::new(cfg, Vec::new())));
            self.sensors.insert(s.host.clone(), pid);
            self.spec.sensors.push(s.clone());
        }

        // --- clique retargets ----------------------------------------------
        for c in &re.cliques_to_upsert {
            let started = self.spec.cliques.iter().any(|old| old.name == c.name);
            let ring: Vec<(ProcessId, String, NodeId)> =
                c.members
                    .iter()
                    .map(|m| {
                        let pid =
                            self.sensors.get(m).copied().ok_or_else(|| {
                                NetError::NameNotFound(format!("clique member {m}"))
                            })?;
                        Ok((pid, m.clone(), eng.process_node(pid)))
                    })
                    .collect::<NetResult<_>>()?;
            for m in &c.members {
                adds.entry(m.clone()).or_default().push(CliqueRetarget {
                    clique: c.name.clone(),
                    ring: ring.clone(),
                    gap: c.gap,
                    watchdog: self.spec.watchdog,
                    start_token: !started,
                });
            }
        }

        // --- spec bookkeeping ----------------------------------------------
        self.spec.cliques.retain(|c| {
            !re.cliques_to_stop.contains(&c.name)
                && !re.cliques_to_upsert.iter().any(|u| u.name == c.name)
        });
        self.spec.cliques.extend(re.cliques_to_upsert.iter().cloned());

        // --- deliver -------------------------------------------------------
        let mut sends: Vec<(ProcessId, NwsMsg)> = Vec::new();
        let mut hosts: Vec<&String> = removes.keys().chain(adds.keys()).collect();
        hosts.sort();
        hosts.dedup();
        for host in hosts {
            let Some(&pid) = self.sensors.get(host) else { continue };
            let msg = NwsMsg::Retarget {
                add: adds.get(host).cloned().unwrap_or_default(),
                remove: removes.get(host).cloned().unwrap_or_default(),
            };
            sends.push((pid, msg));
        }
        if !sends.is_empty() {
            eng.add_process(self.client_node, Box::new(Reconfigurer { sends }));
        }
        Ok(())
    }

    /// Run the deployed system for a simulated duration.
    pub fn run_for(&self, eng: &mut Engine<NwsMsg>, d: TimeDelta) {
        let until = eng.now() + d;
        eng.run_until(until);
    }

    /// Spawn a heartbeat supervisor (on the name server's host) monitoring
    /// every sensor and memory server. Returns the shared liveness ledger;
    /// drain it with [`NwsSystem::heal`] (or let
    /// [`NwsSystem::run_supervised`] do both). The forecaster is not
    /// monitored: restarting it would discard battery state for no gain —
    /// its failure mode is covered by the query-path staleness machinery.
    pub fn attach_supervisor(
        &mut self,
        eng: &mut Engine<NwsMsg>,
        cfg: SupervisorConfig,
    ) -> SupervisorHandle {
        let state: SupervisorHandle = Rc::new(RefCell::new(SupervisorState::default()));
        {
            let mut st = state.borrow_mut();
            for pid in self.sensors.values() {
                st.targets.insert(*pid);
            }
            for (pid, _) in self.memories.values() {
                st.targets.insert(*pid);
            }
        }
        let node = eng.process_node(self.nameserver);
        let pid = eng.add_process(node, Box::new(SupervisorProc::new(cfg, state.clone())));
        self.supervisor = Some((pid, state.clone()));
        state
    }

    /// Restart every component the supervisor currently suspects dead.
    /// Sensors are restarted through the reconfigure/Retarget machinery (a
    /// bare replacement process joins its cliques in place, token
    /// migration included); a memory server is **recovered from its
    /// host's disk** ([`MemoryServer::recover`] — snapshot + WAL replay,
    /// no in-RAM handoff) and its sensors get a `RetargetMemory` burst so
    /// their outage buffers drain to the new pid. Returns the healed host
    /// names (one entry per restart).
    pub fn heal(&mut self, eng: &mut Engine<NwsMsg>) -> NetResult<Vec<String>> {
        let Some((_, handle)) = &self.supervisor else {
            return Ok(Vec::new());
        };
        let handle = handle.clone();
        let suspects: Vec<ProcessId> = handle.borrow().suspected.iter().copied().collect();
        let mut healed = Vec::new();
        let now = eng.now();
        for pid in suspects {
            let sensor_host = self.sensors.iter().find(|(_, p)| **p == pid).map(|(h, _)| h.clone());
            if let Some(host) = sensor_host {
                if let Some(&at) = self.healed_at.get(&host) {
                    if now.since(at) < self.reheal_backoff {
                        continue;
                    }
                }
                let Some(spec) = self.spec.sensors.iter().find(|s| s.host == host).cloned() else {
                    continue;
                };
                let cliques: Vec<CliqueSpec> = self
                    .spec
                    .cliques
                    .iter()
                    .filter(|c| c.members.contains(&host))
                    .cloned()
                    .collect();
                let re = ReconfigSpec {
                    sensors_to_remove: vec![host.clone()],
                    sensors_to_add: vec![spec],
                    cliques_to_upsert: cliques,
                    ..ReconfigSpec::default()
                };
                self.reconfigure(eng, &re)?;
                let new_pid = self.sensors[&host];
                handle.borrow_mut().replace_target(pid, new_pid);
                self.healed_at.insert(host.clone(), now);
                healed.push(host);
                continue;
            }
            let memory_host =
                self.memories.iter().find(|(_, (p, _))| *p == pid).map(|(h, _)| h.clone());
            if let Some(host) = memory_host {
                if let Some(&at) = self.healed_at.get(&host) {
                    if now.since(at) < self.reheal_backoff {
                        continue;
                    }
                }
                let new_pid = self.restart_memory(eng, &host)?;
                handle.borrow_mut().replace_target(pid, new_pid);
                self.healed_at.insert(host.clone(), now);
                healed.push(host);
            } else {
                // Stale suspicion of a pid already swapped out: drop it.
                handle.borrow_mut().suspected.remove(&pid);
            }
        }
        Ok(healed)
    }

    /// Run for `d`, sweeping the supervisor's suspect list every
    /// `check_every` and restarting whatever it flagged. Returns every
    /// healed host name in restart order. Worst-case recovery is therefore
    /// `miss_threshold × period + check_every` plus the Retarget /
    /// `RetargetMemory` delivery.
    pub fn run_supervised(
        &mut self,
        eng: &mut Engine<NwsMsg>,
        d: TimeDelta,
        check_every: TimeDelta,
    ) -> NetResult<Vec<String>> {
        let deadline = eng.now() + d;
        let mut healed = Vec::new();
        while eng.now() < deadline {
            let next = (eng.now() + check_every).min(deadline);
            eng.run_until(next);
            healed.extend(self.heal(eng)?);
        }
        Ok(healed)
    }

    /// Restart the memory server on `host` by recovering its state from
    /// the host's simulated disk — the dead process's RAM (and its old
    /// [`MemoryHandle`]) is gone; what the replacement knows is exactly
    /// what the snapshot + WAL replay reconstructs — and re-point its
    /// sensors; returns the replacement pid.
    fn restart_memory(&mut self, eng: &mut Engine<NwsMsg>, host: &str) -> NetResult<ProcessId> {
        let (old_pid, _) = self
            .memories
            .get(host)
            .cloned()
            .ok_or_else(|| NetError::NameNotFound(format!("memory host {host}")))?;
        eng.kill_process(old_pid); // no-op when it already crashed
        let node = eng
            .topo()
            .node_by_name(host)
            .or_else(|| host.parse::<Ipv4>().ok().and_then(|ip| eng.topo().node_by_ip(ip)))
            .ok_or_else(|| NetError::NameNotFound(host.to_string()))?;
        let idx = self.spec.memory_hosts.iter().position(|h| h == host).unwrap_or(0);
        let (mut mem, store) = MemoryServer::recover(
            &format!("memory{idx}@{host}"),
            self.nameserver,
            self.spec.series_capacity,
            self.disks.disk(host),
        );
        mem.set_compact_threshold(self.spec.wal_compact_kib * 1024);
        let new_pid = eng.add_process(node, Box::new(mem));
        self.memories.insert(host.to_string(), (new_pid, store));
        // Every sensor that stores to this memory drains its buffer to the
        // replacement.
        let default_host = self.spec.memory_hosts.first().cloned().unwrap_or_default();
        let mut sends: Vec<(ProcessId, NwsMsg)> = Vec::new();
        for s in &self.spec.sensors {
            let mh = s.memory.as_ref().unwrap_or(&default_host);
            if mh == host {
                if let Some(&spid) = self.sensors.get(&s.host) {
                    sends.push((spid, NwsMsg::RetargetMemory { memory: new_pid }));
                }
            }
        }
        if !sends.is_empty() {
            eng.add_process(self.client_node, Box::new(Reconfigurer { sends }));
        }
        Ok(new_pid)
    }

    /// Crash the memory on `host` at the host/power level: the process
    /// dies **and** its disk loses a seeded-random suffix of each file's
    /// unsynced page cache ([`netsim::disk::SimDisk::crash`]). By
    /// contrast, `eng.kill_process(pid)` alone models a process crash —
    /// the page cache survives and recovery loses nothing. Pair with
    /// [`NwsSystem::heal`] / a supervisor sweep to bring the host back.
    pub fn crash_memory(&mut self, eng: &mut Engine<NwsMsg>, host: &str) {
        if let Some((pid, _)) = self.memories.get(host) {
            eng.kill_process(*pid);
        }
        self.disks.crash_host(host);
    }

    /// Issue a client query through the full §2.1 path and wait (up to
    /// `patience` simulated seconds) for the reply.
    pub fn query(
        &self,
        eng: &mut Engine<NwsMsg>,
        key: SeriesKey,
        patience: TimeDelta,
    ) -> Option<Forecast> {
        let result = Rc::new(RefCell::new(None));
        eng.add_process(
            self.client_node,
            Box::new(Client { forecaster: self.forecaster, key, result: result.clone() }),
        );
        let deadline = eng.now() + patience;
        eng.run_until(deadline);
        let out = result.borrow().clone();
        out.flatten()
    }

    /// Issue one batched multi-series query through the full §2.1 path —
    /// one `QueryBatch` message, one reply — and wait (up to `patience`
    /// simulated seconds) for it. Answers come back in request order.
    pub fn query_batch(
        &self,
        eng: &mut Engine<NwsMsg>,
        keys: Vec<SeriesKey>,
        patience: TimeDelta,
    ) -> Vec<(SeriesKey, Option<Forecast>)> {
        let result = Rc::new(RefCell::new(None));
        eng.add_process(
            self.client_node,
            Box::new(BatchClient { forecaster: self.forecaster, keys, result: result.clone() }),
        );
        let deadline = eng.now() + patience;
        eng.run_until(deadline);
        let out = result.borrow_mut().take();
        out.unwrap_or_default()
    }

    /// A fresh out-of-sim serving plane for this system: `serve_shards`
    /// forecaster shards, clique-aligned so a clique's series co-locate.
    /// Feed it epochs with [`NwsSystem::publish_epoch`].
    pub fn serving_plane(&self) -> crate::serve::ServingPlane {
        let map = crate::shard::ShardMap::clique_aligned(
            self.spec.serve_shards.max(1),
            &self.spec.cliques,
        );
        crate::serve::ServingPlane::new(map)
    }

    /// Publish one serving epoch: pull every memory's new points into the
    /// plane (single-threaded — memory stores are actor-local), then
    /// observe + snapshot the shards in parallel on `workers` scoped
    /// threads. Returns the published epoch number.
    pub fn publish_epoch(&self, plane: &mut crate::serve::ServingPlane, workers: usize) -> u64 {
        for (_, handle) in self.memories.values() {
            plane.ingest_store(&handle.borrow());
        }
        plane.publish(workers)
    }

    /// Direct (out-of-band) view of a stored series, across all memories.
    pub fn series(&self, key: &SeriesKey) -> Option<Vec<(f64, f64)>> {
        for (_, handle) in self.memories.values() {
            let store = handle.borrow();
            if let Some(s) = store.series.get(key) {
                return Some(s.to_pairs());
            }
        }
        None
    }

    /// Mean interval between measurements of a series, if known.
    pub fn measurement_interval(&self, key: &SeriesKey) -> Option<f64> {
        for (_, handle) in self.memories.values() {
            let store = handle.borrow();
            if let Some(s) = store.series.get(key) {
                return s.mean_interval();
            }
        }
        None
    }

    /// Total measurements stored so far.
    pub fn total_stores(&self) -> u64 {
        self.memories.values().map(|(_, h)| h.borrow().stores).sum()
    }

    /// All stored series keys.
    pub fn series_keys(&self) -> Vec<SeriesKey> {
        let mut keys = Vec::new();
        for (_, handle) in self.memories.values() {
            keys.extend(handle.borrow().series.keys().cloned());
        }
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Resource;
    use netsim::scenarios::star_hub;

    fn hub_engine(n: usize) -> (Engine<NwsMsg>, Vec<String>) {
        let net = star_hub(n, Bandwidth::mbps(100.0));
        let names: Vec<String> =
            net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
        (Engine::new(net.topo), names)
    }

    #[test]
    fn clique_measures_all_directed_pairs_without_collisions() {
        let (mut eng, names) = hub_engine(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let spec = NwsSystemSpec::minimal(&names[0], &refs);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));

        // Every directed pair measured.
        for a in &names {
            for b in &names {
                if a == b {
                    continue;
                }
                let key = SeriesKey::link(Resource::Bandwidth, a, b);
                let series = sys.series(&key).unwrap_or_else(|| panic!("no series {key}"));
                assert!(!series.is_empty(), "empty series {key}");
                // Exclusive measurements on a hub see the full rate; the
                // 64 KiB probe loses a few percent to latency.
                for (_, v) in &series {
                    assert!(*v > 85.0, "collided measurement: {v} Mbps on {key}");
                }
                // Latency and connect-time series exist too.
                assert!(sys.series(&SeriesKey::link(Resource::Latency, a, b)).is_some());
                assert!(sys.series(&SeriesKey::link(Resource::ConnectTime, a, b)).is_some());
            }
        }
    }

    #[test]
    fn free_running_sensors_collide_on_hub() {
        // The paper's §2.3 motivation: simultaneous experiments "may
        // report an availability of about the half of the real value".
        let (mut eng, names) = hub_engine(4);
        let mut spec = NwsSystemSpec::minimal(&names[0], &[]);
        spec.cliques.clear();
        spec.sensors = vec![
            SensorSpec {
                host: names[0].clone(),
                mode: SensorMode::FreeRunning {
                    targets: vec![names[1].clone()],
                    period: TimeDelta::from_secs(5.0),
                },
                host_sensing: false,
                memory: None,
            },
            SensorSpec {
                host: names[2].clone(),
                mode: SensorMode::FreeRunning {
                    targets: vec![names[3].clone()],
                    period: TimeDelta::from_secs(5.0),
                },
                host_sensing: false,
                memory: None,
            },
        ];
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(60.0));

        let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let series = sys.series(&key).expect("series exists");
        let mean = series.iter().map(|(_, v)| v).sum::<f64>() / series.len() as f64;
        assert!(
            (mean - 50.0).abs() < 10.0,
            "synchronized free-running probes must halve: mean {mean} Mbps"
        );
    }

    #[test]
    fn query_path_returns_forecast() {
        let (mut eng, names) = hub_engine(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let spec = NwsSystemSpec::minimal(&names[0], &refs);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(90.0));

        let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let f = sys.query(&mut eng, key, TimeDelta::from_secs(10.0)).expect("forecast produced");
        assert!(f.value > 85.0 && f.value < 101.0, "forecast {f:?}");
        assert!(f.samples > 0);

        // Unknown series → None.
        let ghost = SeriesKey::link(Resource::Bandwidth, "ghost.a", "ghost.b");
        assert!(sys.query(&mut eng, ghost, TimeDelta::from_secs(10.0)).is_none());
    }

    #[test]
    fn token_loss_recovers_via_watchdog() {
        let (mut eng, names) = hub_engine(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
        spec.watchdog = TimeDelta::from_secs(20.0);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(60.0));
        let before = sys.total_stores();
        assert!(before > 0);

        // Kill one sensor: the token will eventually be lost at it.
        let victim = sys.sensors[&names[1]];
        eng.kill_process(victim);
        sys.run_for(&mut eng, TimeDelta::from_secs(180.0));
        let after = sys.total_stores();
        assert!(
            after > before + 4,
            "measurements must continue after token regeneration: {before} → {after}"
        );
    }

    #[test]
    fn host_sensing_produces_cpu_series() {
        let (mut eng, names) = hub_engine(2);
        let mut spec = NwsSystemSpec::minimal(&names[0], &[]);
        spec.cliques.clear();
        spec.sensors = vec![SensorSpec {
            host: names[0].clone(),
            mode: SensorMode::Clique,
            host_sensing: true,
            memory: None,
        }];
        spec.host_sense_period = TimeDelta::from_secs(2.0);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(61.0));

        let cpu = sys.series(&SeriesKey::host(Resource::CpuLoad, &names[0])).expect("cpu series");
        assert!(cpu.len() >= 29, "got {} samples", cpu.len());
        assert!(cpu.iter().all(|(_, v)| (0.0..=1.0).contains(v)));
        let mem =
            sys.series(&SeriesKey::host(Resource::FreeMemory, &names[0])).expect("memory series");
        assert!(!mem.is_empty());
    }

    #[test]
    fn measurement_frequency_decreases_with_clique_size() {
        // Paper §2.3: "the frequency of the measurements obviously
        // decreases when the number of hosts in a given clique increases".
        let interval_for = |k: usize| -> f64 {
            let (mut eng, names) = hub_engine(k);
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let spec = NwsSystemSpec::minimal(&names[0], &refs);
            let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
            sys.run_for(&mut eng, TimeDelta::from_secs(600.0));
            let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
            sys.measurement_interval(&key).expect("measured repeatedly")
        };
        let i3 = interval_for(3);
        let i6 = interval_for(6);
        assert!(
            i6 > i3 * 1.5,
            "interval must grow with clique size: k=3 → {i3:.2}s, k=6 → {i6:.2}s"
        );
    }

    /// The derived connect-time series is exactly 1.5× the latency series
    /// (the documented §2.2 delta: derived from the RTT probe instead of a
    /// third experiment).
    #[test]
    fn connect_time_is_consistently_derived() {
        let (mut eng, names) = hub_engine(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let spec = NwsSystemSpec::minimal(&names[0], &refs);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));
        let lat = sys.series(&SeriesKey::link(Resource::Latency, &names[0], &names[1])).unwrap();
        let ct = sys.series(&SeriesKey::link(Resource::ConnectTime, &names[0], &names[1])).unwrap();
        assert_eq!(lat.len(), ct.len());
        for ((t1, l), (t2, c)) in lat.iter().zip(&ct) {
            assert_eq!(t1, t2, "stored at the same instant");
            assert!((c - 1.5 * l).abs() < 1e-9, "connect = 1.5 x rtt");
        }
    }

    #[test]
    fn registry_sees_all_servers() {
        let (mut eng, names) = hub_engine(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let spec = NwsSystemSpec::minimal(&names[0], &refs);
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(30.0));
        let reg = sys.registry.borrow();
        // 1 memory + 1 forecaster + 3 sensors registered.
        assert!(reg.servers.len() >= 5, "registered: {:?}", reg.servers.keys());
        // Series registrations flowed through the name server.
        assert!(!reg.series.is_empty());
    }

    #[test]
    fn per_sensor_memory_assignment_and_cross_memory_query() {
        // Two memory servers; sensors split between them. The forecaster
        // must locate the right memory through the name server (§2.1 step
        // 2) for both.
        let (mut eng, names) = hub_engine(4);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
        spec.memory_hosts = vec![names[0].clone(), names[1].clone()];
        for (i, s) in spec.sensors.iter_mut().enumerate() {
            s.memory = Some(if i % 2 == 0 { names[0].clone() } else { names[1].clone() });
        }
        let sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));

        // Both memories hold series.
        for host in [&names[0], &names[1]] {
            let (_, handle) = &sys.memories[host];
            assert!(handle.borrow().stores > 0, "memory on {host} unused");
        }
        // Queries resolve series on either memory.
        let k0 = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let k1 = SeriesKey::link(Resource::Bandwidth, &names[1], &names[2]);
        assert!(sys.query(&mut eng, k0, TimeDelta::from_secs(10.0)).is_some());
        assert!(sys.query(&mut eng, k1, TimeDelta::from_secs(10.0)).is_some());
    }

    /// In-place reconfiguration: growing a clique keeps every stored
    /// series (prefix intact — the memory server is never restarted) while
    /// the new member starts being measured; the forecaster's watermark
    /// state survives, so queries keep answering across the transition.
    #[test]
    fn reconfigure_grows_clique_preserving_series_and_queries() {
        let (mut eng, names) = hub_engine(4);
        let refs: Vec<&str> = names.iter().take(3).map(|s| s.as_str()).collect();
        let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
        spec.watchdog = TimeDelta::from_secs(15.0);
        let mut sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(90.0));

        let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let before = sys.series(&key).expect("series exists before reconfigure");
        assert!(!before.is_empty());
        assert!(sys.query(&mut eng, key.clone(), TimeDelta::from_secs(10.0)).is_some());

        // Grow clique0 with names[3]: one new sensor, one clique restart.
        let re = ReconfigSpec {
            cliques_to_upsert: vec![CliqueSpec {
                name: "clique0".to_string(),
                members: names.clone(),
                gap: TimeDelta::from_millis(500.0),
            }],
            sensors_to_add: vec![SensorSpec::clique_member(&names[3])],
            ..ReconfigSpec::default()
        };
        sys.reconfigure(&mut eng, &re).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(180.0));

        // Old series continued: the prefix survived and it kept growing.
        let after = sys.series(&key).expect("series survives");
        assert!(after.len() > before.len(), "{} -> {}", before.len(), after.len());
        assert_eq!(after[..before.len()], before[..], "stored prefix must be untouched");

        // The new member is measured in both directions.
        let new_out = SeriesKey::link(Resource::Bandwidth, &names[3], &names[0]);
        let new_in = SeriesKey::link(Resource::Bandwidth, &names[0], &names[3]);
        assert!(sys.series(&new_out).map(|s| !s.is_empty()).unwrap_or(false));
        assert!(sys.series(&new_in).map(|s| !s.is_empty()).unwrap_or(false));

        // Queries still work, with more samples than before.
        let f = sys.query(&mut eng, key, TimeDelta::from_secs(10.0)).expect("query survives");
        assert!(f.samples as usize >= after.len().min(before.len()));
        // The spec in force reflects the new membership.
        assert_eq!(sys.spec().cliques[0].members.len(), 4);
    }

    /// Stopping a clique and removing its spare sensor quiesces those
    /// measurements while the remaining clique keeps running.
    #[test]
    fn reconfigure_stops_clique_and_removes_sensor() {
        let (mut eng, names) = hub_engine(5);
        let mut spec = NwsSystemSpec::minimal(&names[0], &[]);
        spec.sensors = names.iter().map(|h| SensorSpec::clique_member(h)).collect();
        spec.cliques = vec![
            CliqueSpec {
                name: "keep".to_string(),
                members: names[..3].to_vec(),
                gap: TimeDelta::from_millis(500.0),
            },
            CliqueSpec {
                name: "drop".to_string(),
                members: names[3..].to_vec(),
                gap: TimeDelta::from_millis(500.0),
            },
        ];
        let mut sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(60.0));
        let dropped_key = SeriesKey::link(Resource::Bandwidth, &names[3], &names[4]);
        let kept_key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let dropped_before = sys.series(&dropped_key).expect("dropped clique measured").len();
        let kept_before = sys.series(&kept_key).expect("kept clique measured").len();

        let re = ReconfigSpec {
            cliques_to_stop: vec!["drop".to_string()],
            sensors_to_remove: vec![names[3].clone(), names[4].clone()],
            ..ReconfigSpec::default()
        };
        sys.reconfigure(&mut eng, &re).unwrap();
        // Let any in-flight work drain, then measure the steady state.
        sys.run_for(&mut eng, TimeDelta::from_secs(30.0));
        let dropped_mid = sys.series(&dropped_key).unwrap().len();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));

        let dropped_after = sys.series(&dropped_key).unwrap().len();
        let kept_after = sys.series(&kept_key).unwrap().len();
        assert_eq!(dropped_mid, dropped_after, "stopped clique must stop measuring");
        assert!(kept_after > kept_before, "kept clique must keep measuring");
        assert!(dropped_after >= dropped_before);
        assert!(!sys.sensors.contains_key(&names[3]));
        assert_eq!(sys.spec().cliques.len(), 1);
    }

    /// A clique restart migrates the live token into the new membership
    /// at whichever member holds it — it must NOT wait out a watchdog.
    /// Pinned with an enormous watchdog: if the token were dropped on
    /// retirement, measurements would never resume within the horizon.
    #[test]
    fn reconfigure_restart_migrates_the_live_token() {
        let (mut eng, names) = hub_engine(4);
        let refs: Vec<&str> = names.iter().take(3).map(|s| s.as_str()).collect();
        let mut spec = NwsSystemSpec::minimal(&names[0], &refs);
        spec.watchdog = TimeDelta::from_secs(100_000.0);
        let mut sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(60.0));
        let key = SeriesKey::link(Resource::Bandwidth, &names[0], &names[1]);
        let before = sys.series(&key).expect("measured before restart").len();

        // Restart clique0 with a grown membership. The token is being held
        // by some member right now (gap holds dominate the round).
        let re = ReconfigSpec {
            cliques_to_upsert: vec![CliqueSpec {
                name: "clique0".to_string(),
                members: names.clone(),
                gap: TimeDelta::from_millis(500.0),
            }],
            sensors_to_add: vec![SensorSpec::clique_member(&names[3])],
            ..ReconfigSpec::default()
        };
        sys.reconfigure(&mut eng, &re).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));
        let after = sys.series(&key).unwrap().len();
        assert!(
            after > before + 3,
            "token must migrate across the restart, not wait for the watchdog: \
             {before} -> {after} points"
        );
        // And the joiner is measured too.
        let joined = SeriesKey::link(Resource::Bandwidth, &names[3], &names[0]);
        assert!(sys.series(&joined).map(|s| !s.is_empty()).unwrap_or(false));
    }

    /// A reconfiguration can add a memory server and point a new sensor's
    /// stores at it.
    #[test]
    fn reconfigure_adds_memory_for_new_sensor() {
        let (mut eng, names) = hub_engine(4);
        let refs: Vec<&str> = names.iter().take(2).map(|s| s.as_str()).collect();
        let spec = NwsSystemSpec::minimal(&names[0], &refs);
        let mut sys = NwsSystem::deploy(&mut eng, &spec).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(30.0));

        let re = ReconfigSpec {
            cliques_to_upsert: vec![CliqueSpec {
                name: "side".to_string(),
                members: vec![names[2].clone(), names[3].clone()],
                gap: TimeDelta::from_millis(500.0),
            }],
            sensors_to_add: vec![
                SensorSpec {
                    host: names[2].clone(),
                    mode: SensorMode::Clique,
                    host_sensing: false,
                    memory: Some(names[2].clone()),
                },
                SensorSpec {
                    host: names[3].clone(),
                    mode: SensorMode::Clique,
                    host_sensing: false,
                    memory: Some(names[2].clone()),
                },
            ],
            memories_to_add: vec![names[2].clone()],
            ..ReconfigSpec::default()
        };
        sys.reconfigure(&mut eng, &re).unwrap();
        sys.run_for(&mut eng, TimeDelta::from_secs(120.0));

        let (_, handle) = &sys.memories[&names[2]];
        assert!(handle.borrow().stores > 0, "new memory must receive stores");
        let key = SeriesKey::link(Resource::Bandwidth, &names[2], &names[3]);
        assert!(sys.query(&mut eng, key, TimeDelta::from_secs(10.0)).is_some());
    }

    #[test]
    fn unknown_hosts_fail_deployment() {
        let (mut eng, names) = hub_engine(2);
        let spec = NwsSystemSpec::minimal("ghost.example", &[&names[0]]);
        assert!(NwsSystem::deploy(&mut eng, &spec).is_err());
    }
}
