//! Snapshot + write-ahead-log persistence for NWS state: the durable
//! plane behind [`crate::memory::MemoryServer::recover`] and the durable
//! forecaster.
//!
//! Both state machines persist the same way (framing in [`crate::wal`]):
//!
//! * every state-changing event is appended to a per-server WAL on the
//!   host's [`SimDisk`], sequenced by one monotone counter;
//! * periodically the full state is written to `<name>.snap.new`, fsynced,
//!   **atomically renamed** over `<name>.snap`, and only then is the WAL
//!   truncated (compaction). The snapshot records the last WAL seq it
//!   folds in, so replay skips stale records if the crash lands between
//!   publish and truncate;
//! * recovery = decode snapshot (or start empty) + replay the WAL suffix
//!   through the **same apply functions the live server uses**
//!   ([`crate::memory::MemoryStore::apply_store`] & co.), then compact, so
//!   crash-torn garbage never sits in front of fresh appends.
//!
//! ## Replay soundness
//!
//! Replayed state is bit-identical to live state because (a) the live
//! handler and the replay call one shared mutation path, (b) every f64
//! rides through the codec as its IEEE-754 bit pattern, and (c) the WAL
//! scan truncates at the first torn/corrupt record, and torn tails are
//! suffixes — so what replays is exactly a prefix of what the live server
//! executed. For the memory server, store records are fsynced *before*
//! the ack, so the replayed prefix always covers every acked store: a
//! sensor retry after recovery hits the replayed dedup ledger and lands
//! in `dup_stores`, never double-counted.
//!
//! [`SimDisk`]: netsim::disk::SimDisk

use std::collections::BTreeMap;

use netsim::disk::DiskHandle;
use netsim::engine::ProcessId;

use crate::forecast::ForecasterBattery;
use crate::memory::{MemoryStore, SeenSeqs};
use crate::msg::{Resource, SeriesKey};
use crate::series::Series;
use crate::wal::{
    append_record, decode_snapshot, encode_snapshot, put_f64, put_str, put_u32, put_u64, put_u8,
    scan_wal, ByteReader,
};

/// Compact once the WAL grows past this many bytes.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 64 * 1024;

// ---------------------------------------------------------------------------
// Shared file plumbing
// ---------------------------------------------------------------------------

/// The on-disk file set of one persistent server, with the WAL append
/// cursor and compaction bookkeeping both log types share.
#[derive(Debug)]
struct LogFiles {
    disk: DiskHandle,
    wal: String,
    snap: String,
    snap_new: String,
    /// Seq for the next WAL record (monotone across compactions).
    next_seq: u64,
    /// Bytes appended to the WAL since the last truncation.
    wal_bytes: u64,
    compact_threshold: u64,
}

impl LogFiles {
    /// Read the file set for `name`: the decoded snapshot (if one is
    /// present and verifies) and the valid WAL record prefix.
    #[allow(clippy::type_complexity)]
    fn open(disk: DiskHandle, name: &str) -> (Self, Option<(u64, Vec<u8>)>, Vec<(u64, Vec<u8>)>) {
        let wal = format!("{name}.wal");
        let snap = format!("{name}.snap");
        let snap_new = format!("{name}.snap.new");
        let snapshot = disk.borrow_mut().read(&snap).and_then(|img| decode_snapshot(&img));
        let records = match disk.borrow_mut().read(&wal) {
            Some(bytes) => scan_wal(&bytes).records,
            None => Vec::new(),
        };
        let snap_seq = snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        let last_seq = records.iter().map(|(seq, _)| *seq).fold(snap_seq, u64::max);
        (
            LogFiles {
                disk,
                wal,
                snap,
                snap_new,
                next_seq: last_seq + 1,
                wal_bytes: 0,
                compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            },
            snapshot,
            records,
        )
    }

    /// Frame and append one record; fsync when asked.
    fn append(&mut self, payload: &[u8], fsync: bool) {
        let mut framed = Vec::with_capacity(20 + payload.len());
        let n = append_record(&mut framed, self.next_seq, payload);
        self.next_seq += 1;
        self.wal_bytes += n as u64;
        let mut d = self.disk.borrow_mut();
        d.append(&self.wal, &framed);
        if fsync {
            d.fsync(&self.wal);
        }
    }

    fn sync(&mut self) {
        self.disk.borrow_mut().fsync(&self.wal);
    }

    fn needs_compact(&self) -> bool {
        self.wal_bytes > self.compact_threshold
    }

    /// Compaction step 1: write the snapshot image to the side file and
    /// fsync it. Crash here: the half-written `.snap.new` is never read
    /// by recovery (only the published name is), so it is harmless.
    fn write_snapshot(&mut self, body: &[u8]) {
        let img = encode_snapshot(self.next_seq - 1, body);
        let mut d = self.disk.borrow_mut();
        d.truncate(&self.snap_new);
        d.append(&self.snap_new, &img);
        d.fsync(&self.snap_new);
    }

    /// Compaction step 2: atomically publish the side file. Crash before:
    /// old snapshot + full WAL still recover. Crash after (step 3 not yet
    /// run): new snapshot + stale WAL records, skipped by seq.
    fn publish_snapshot(&mut self) {
        self.disk.borrow_mut().rename(&self.snap_new, &self.snap);
    }

    /// Compaction step 3: empty the WAL. Record seqs keep counting up —
    /// the snapshot's `log_seq` is the fence, not the file boundary.
    fn truncate_wal(&mut self) {
        self.disk.borrow_mut().truncate(&self.wal);
        self.wal_bytes = 0;
    }
}

// ---------------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------------

fn put_key(b: &mut Vec<u8>, key: &SeriesKey) {
    put_u8(b, key.resource.index() as u8);
    put_str(b, &key.src);
    put_str(b, &key.dst);
}

fn read_key(r: &mut ByteReader<'_>) -> Option<SeriesKey> {
    let resource = Resource::from_index(r.u8()? as usize)?;
    let src = r.str()?;
    let dst = r.str()?;
    Some(SeriesKey { resource, src, dst })
}

// ---------------------------------------------------------------------------
// Memory-server persistence
// ---------------------------------------------------------------------------

/// WAL record tags (memory server).
const REC_STORE: u8 = 1;
const REC_FETCH: u8 = 2;
const REC_REPLY_FAILURE: u8 = 3;

fn encode_memory_store(store: &MemoryStore, capacity: usize) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, capacity as u32);
    put_u64(&mut b, store.stores);
    put_u64(&mut b, store.fetches);
    put_u64(&mut b, store.dup_stores);
    put_u64(&mut b, store.reply_failures);
    put_u64(&mut b, store.rejected);
    put_u64(&mut b, store.points_served);
    put_u32(&mut b, store.series.len() as u32);
    for (key, s) in &store.series {
        put_key(&mut b, key);
        put_u32(&mut b, s.capacity() as u32);
        put_u32(&mut b, s.len() as u32);
        for p in s.iter() {
            put_f64(&mut b, p.t);
            put_f64(&mut b, p.value);
        }
    }
    put_u32(&mut b, store.seen.len() as u32);
    for (pid, seen) in &store.seen {
        put_u32(&mut b, pid.index() as u32);
        put_u64(&mut b, seen.watermark());
        let above: Vec<u64> = seen.above().collect();
        put_u32(&mut b, above.len() as u32);
        for s in above {
            put_u64(&mut b, s);
        }
    }
    b
}

fn decode_memory_store(body: &[u8]) -> Option<(MemoryStore, usize)> {
    let mut r = ByteReader::new(body);
    let capacity = r.u32()? as usize;
    let mut store = MemoryStore {
        stores: r.u64()?,
        fetches: r.u64()?,
        dup_stores: r.u64()?,
        reply_failures: r.u64()?,
        rejected: r.u64()?,
        points_served: r.u64()?,
        ..MemoryStore::default()
    };
    let n_series = r.u32()?;
    for _ in 0..n_series {
        let key = read_key(&mut r)?;
        let cap = r.u32()? as usize;
        let n = r.u32()?;
        let mut s = Series::new(cap.max(1));
        for _ in 0..n {
            let t = r.f64()?;
            let v = r.f64()?;
            // Persisted points are strictly increasing and finite
            // (Series::push enforced it before they were saved), so
            // re-pushing reproduces the ring bit-for-bit.
            s.push(t, v);
        }
        store.series.insert(key, s);
    }
    let n_seen = r.u32()?;
    for _ in 0..n_seen {
        let pid = ProcessId::from_raw(r.u32()?);
        let watermark = r.u64()?;
        let n_above = r.u32()?;
        let mut above = Vec::with_capacity(n_above as usize);
        for _ in 0..n_above {
            above.push(r.u64()?);
        }
        store.seen.insert(pid, SeenSeqs::from_parts(watermark, above));
    }
    r.done().then_some((store, capacity))
}

fn apply_memory_record(store: &mut MemoryStore, payload: &[u8], capacity: usize) {
    let mut r = ByteReader::new(payload);
    let Some(tag) = r.u8() else { return };
    match tag {
        REC_STORE => {
            let (Some(sender), Some(seq), Some(key), Some(t), Some(v)) =
                (r.u32(), r.u64(), read_key(&mut r), r.f64(), r.f64())
            else {
                return;
            };
            store.apply_store(ProcessId::from_raw(sender), seq, &key, t, v, capacity);
        }
        REC_FETCH => {
            if let Some(served) = r.u64() {
                store.apply_fetch(served);
            }
        }
        REC_REPLY_FAILURE => store.apply_reply_failure(),
        _ => {} // unknown record kind: skip (forward compatibility)
    }
}

/// Durable state of one memory server.
#[derive(Debug)]
pub struct MemoryLog {
    files: LogFiles,
    capacity: usize,
}

impl MemoryLog {
    /// Rebuild a [`MemoryStore`] from `disk` (empty disk ⇒ empty store)
    /// and return it with the log handle for continued operation. Ends
    /// with a compaction: the recovered state becomes the new snapshot
    /// and the WAL restarts empty, so any crash-torn bytes at its old
    /// tail can never precede fresh appends.
    pub fn recover(disk: DiskHandle, name: &str, capacity: usize) -> (MemoryStore, MemoryLog) {
        let (files, snapshot, records) = LogFiles::open(disk, name);
        let (mut store, cap, snap_seq) = match snapshot {
            Some((seq, body)) => match decode_memory_store(&body) {
                Some((st, cap)) => (st, cap, seq),
                None => (MemoryStore::default(), capacity, 0),
            },
            None => (MemoryStore::default(), capacity, 0),
        };
        for (seq, payload) in &records {
            if *seq > snap_seq {
                apply_memory_record(&mut store, payload, cap);
            }
        }
        let mut log = MemoryLog { files, capacity: cap };
        log.compact(&store);
        (store, log)
    }

    /// Log one store record — duplicate copies included, so replay
    /// reproduces the dedup split — and fsync: the caller acks only
    /// after this returns, making "acked" imply "durable".
    pub fn log_store(&mut self, sender: ProcessId, seq: u64, key: &SeriesKey, t: f64, value: f64) {
        let mut p = Vec::with_capacity(64);
        put_u8(&mut p, REC_STORE);
        put_u32(&mut p, sender.index() as u32);
        put_u64(&mut p, seq);
        put_key(&mut p, key);
        put_f64(&mut p, t);
        put_f64(&mut p, value);
        self.files.append(&p, true);
    }

    /// Log one served fetch (counter replay). Lazily written: fetch
    /// counters may legitimately roll back to the last fsync on a host
    /// crash — unlike stores, nothing was promised to anyone.
    pub fn log_fetch(&mut self, served: u64) {
        let mut p = Vec::with_capacity(12);
        put_u8(&mut p, REC_FETCH);
        put_u64(&mut p, served);
        self.files.append(&p, false);
    }

    /// Log one bounced reply (lazy, like fetches).
    pub fn log_reply_failure(&mut self) {
        self.files.append(&[REC_REPLY_FAILURE], false);
    }

    /// Compaction, as three separately-callable steps so crash tests can
    /// land between them (see [`LogFiles`] docs on each step's crash
    /// safety).
    pub fn write_snapshot(&mut self, store: &MemoryStore) {
        let body = encode_memory_store(store, self.capacity);
        self.files.write_snapshot(&body);
    }

    pub fn publish_snapshot(&mut self) {
        self.files.publish_snapshot();
    }

    pub fn truncate_wal(&mut self) {
        self.files.truncate_wal();
    }

    /// All three compaction steps in order.
    pub fn compact(&mut self, store: &MemoryStore) {
        self.write_snapshot(store);
        self.publish_snapshot();
        self.truncate_wal();
    }

    /// Compact if the WAL has outgrown the threshold.
    pub fn maybe_compact(&mut self, store: &MemoryStore) {
        if self.files.needs_compact() {
            self.compact(store);
        }
    }

    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.files.compact_threshold = bytes;
    }

    /// Bytes currently pending in the WAL since the last compaction.
    pub fn wal_bytes(&self) -> u64 {
        self.files.wal_bytes
    }
}

// ---------------------------------------------------------------------------
// Forecaster persistence
// ---------------------------------------------------------------------------

/// WAL record tags (forecaster).
const REC_OBSERVE: u8 = 0x11;
const REC_REWIND: u8 = 0x12;

fn encode_battery(b: &mut Vec<u8>, bat: &ForecasterBattery) {
    let (sq, ab, ns, samples) = bat.scores();
    let states = bat.save_states();
    put_u64(b, samples);
    put_u32(b, states.len() as u32);
    for (i, state) in states.iter().enumerate() {
        put_f64(b, sq[i]);
        put_f64(b, ab[i]);
        put_u64(b, ns[i]);
        put_u32(b, state.len() as u32);
        for &v in state {
            put_f64(b, v);
        }
    }
}

fn decode_battery(r: &mut ByteReader<'_>) -> Option<ForecasterBattery> {
    let samples = r.u64()?;
    let n = r.u32()? as usize;
    let mut sq = Vec::with_capacity(n);
    let mut ab = Vec::with_capacity(n);
    let mut ns = Vec::with_capacity(n);
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        sq.push(r.f64()?);
        ab.push(r.f64()?);
        ns.push(r.u64()?);
        let len = r.u32()? as usize;
        let mut state = Vec::with_capacity(len);
        for _ in 0..len {
            state.push(r.f64()?);
        }
        states.push(state);
    }
    let mut bat = ForecasterBattery::classic();
    bat.restore_states(&states);
    bat.restore_scores(&sq, &ab, &ns, samples);
    Some(bat)
}

/// One recovered forecaster series: the battery and the delta-fetch
/// watermark. The memory pid is deliberately *not* part of durable state
/// — pids do not survive restarts; the recovered forecaster re-resolves
/// its memory through the name server (`WhereIs`) on the next query.
pub struct RecoveredSeries {
    pub battery: ForecasterBattery,
    pub last_t: f64,
}

/// Durable state of one forecaster.
#[derive(Debug)]
pub struct ForecastLog {
    files: LogFiles,
}

impl ForecastLog {
    /// Rebuild every series' battery + watermark from `disk`. Same shape
    /// as [`MemoryLog::recover`], including the trailing compaction.
    pub fn recover(disk: DiskHandle, name: &str) -> (BTreeMap<SeriesKey, RecoveredSeries>, Self) {
        let (files, snapshot, records) = LogFiles::open(disk, name);
        let mut state: BTreeMap<SeriesKey, RecoveredSeries> = BTreeMap::new();
        let snap_seq = snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        if let Some((_, body)) = snapshot {
            let mut r = ByteReader::new(&body);
            if let Some(n) = r.u32() {
                for _ in 0..n {
                    let (Some(key), Some(last_t), Some(battery)) =
                        (read_key(&mut r), r.f64(), decode_battery(&mut r))
                    else {
                        break;
                    };
                    state.insert(key, RecoveredSeries { battery, last_t });
                }
            }
        }
        for (seq, payload) in &records {
            if *seq > snap_seq {
                apply_forecast_record(&mut state, payload);
            }
        }
        let mut log = ForecastLog { files };
        log.compact(state.iter().map(|(k, s)| (k, &s.battery, s.last_t)));
        (state, log)
    }

    /// Log one observed point (battery fed a value, watermark advanced).
    /// Lazy append; call [`ForecastLog::sync`] once per fetch-reply batch.
    pub fn log_observe(&mut self, key: &SeriesKey, t: f64, v: f64) {
        let mut p = Vec::with_capacity(48);
        put_u8(&mut p, REC_OBSERVE);
        put_key(&mut p, key);
        put_f64(&mut p, t);
        put_f64(&mut p, v);
        self.files.append(&p, false);
    }

    /// Log a watermark rewind (battery reset because the memory came back
    /// with an older store than we had observed).
    pub fn log_rewind(&mut self, key: &SeriesKey) {
        let mut p = Vec::with_capacity(32);
        put_u8(&mut p, REC_REWIND);
        put_key(&mut p, key);
        self.files.append(&p, false);
    }

    pub fn sync(&mut self) {
        self.files.sync();
    }

    pub fn needs_compact(&self) -> bool {
        self.files.needs_compact()
    }

    /// Snapshot the full per-series state and truncate the WAL.
    pub fn compact<'a, I>(&mut self, series: I)
    where
        I: Iterator<Item = (&'a SeriesKey, &'a ForecasterBattery, f64)>,
    {
        let mut body = Vec::new();
        let items: Vec<_> = series.collect();
        put_u32(&mut body, items.len() as u32);
        for (key, battery, last_t) in items {
            put_key(&mut body, key);
            put_f64(&mut body, last_t);
            encode_battery(&mut body, battery);
        }
        self.files.write_snapshot(&body);
        self.files.publish_snapshot();
        self.files.truncate_wal();
    }

    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.files.compact_threshold = bytes;
    }
}

fn apply_forecast_record(state: &mut BTreeMap<SeriesKey, RecoveredSeries>, payload: &[u8]) {
    let mut r = ByteReader::new(payload);
    let Some(tag) = r.u8() else { return };
    match tag {
        REC_OBSERVE => {
            let (Some(key), Some(t), Some(v)) = (read_key(&mut r), r.f64(), r.f64()) else {
                return;
            };
            let s = state.entry(key).or_insert_with(|| RecoveredSeries {
                battery: ForecasterBattery::classic(),
                last_t: f64::NEG_INFINITY,
            });
            // Observe records are only written for watermark-advancing
            // points, so replaying them verbatim reproduces the live
            // battery and watermark exactly.
            s.battery.observe(v);
            s.last_t = t;
        }
        REC_REWIND => {
            let Some(key) = read_key(&mut r) else { return };
            let s = state.entry(key).or_insert_with(|| RecoveredSeries {
                battery: ForecasterBattery::classic(),
                last_t: f64::NEG_INFINITY,
            });
            s.battery = ForecasterBattery::classic();
            s.last_t = f64::NEG_INFINITY;
        }
        _ => {}
    }
}

impl std::fmt::Debug for RecoveredSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveredSeries").field("last_t", &self.last_t).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::disk::SimDisk;

    fn key(i: u8) -> SeriesKey {
        SeriesKey::link(Resource::Bandwidth, &format!("s{i}.x"), "d.x")
    }

    fn snapshot_bits(store: &MemoryStore, cap: usize) -> Vec<u8> {
        encode_memory_store(store, cap)
    }

    #[test]
    fn memory_store_codec_round_trips_bit_for_bit() {
        let mut store = MemoryStore::default();
        let a = ProcessId::from_raw(7);
        let b = ProcessId::from_raw(9);
        for seq in 1..=40u64 {
            store.apply_store(a, seq, &key(0), seq as f64, 90.0 + seq as f64, 16);
        }
        // Out-of-order seqs leave a sparse `above` set; a duplicate and a
        // rejected (stale-t) store exercise the counters.
        store.apply_store(b, 5, &key(1), 1.0, 1.0, 16);
        store.apply_store(b, 2, &key(1), 2.0, 2.0, 16);
        store.apply_store(b, 2, &key(1), 2.0, 2.0, 16); // dup
        store.apply_store(b, 7, &key(1), 0.5, 3.0, 16); // rejected: t regressed
        store.apply_fetch(12);
        store.apply_reply_failure();

        let body = snapshot_bits(&store, 16);
        let (decoded, cap) = decode_memory_store(&body).expect("decodes");
        assert_eq!(cap, 16);
        assert_eq!(snapshot_bits(&decoded, cap), body, "re-encode must be bit-identical");
        assert_eq!(decoded.stores, store.stores);
        assert_eq!(decoded.dup_stores, store.dup_stores);
        assert_eq!(decoded.rejected, store.rejected);
        assert_eq!(decoded.fetches, store.fetches);
        assert_eq!(decoded.points_served, store.points_served);
        assert_eq!(decoded.reply_failures, store.reply_failures);
        // The dedup ledger survives: a replayed duplicate is still a dup.
        let mut replayed = decoded;
        let out = replayed.apply_store(b, 5, &key(1), 9.0, 9.0, 16);
        assert!(!out.first_time, "seq 5 must still be remembered after decode");
    }

    #[test]
    fn recover_from_empty_disk_is_an_empty_store() {
        let disk = SimDisk::new("h");
        let (store, _log) = MemoryLog::recover(disk.clone(), "mem0", 32);
        assert_eq!(store.stores, 0);
        assert!(store.series.is_empty());
        // Recovery's trailing compaction published an (empty) snapshot.
        assert!(disk.borrow().exists("mem0.snap"));
    }

    #[test]
    fn wal_replay_equals_live_after_host_crash() {
        let disk = SimDisk::new("h");
        let (mut live, mut log) = MemoryLog::recover(disk.clone(), "mem0", 32);
        let sender = ProcessId::from_raw(3);
        for seq in 1..=25u64 {
            live.apply_store(sender, seq, &key(0), seq as f64, 50.0, 32);
            log.log_store(sender, seq, &key(0), seq as f64, 50.0);
        }
        // Host crash: every store was fsynced pre-ack, so recovery must
        // reproduce the live store exactly.
        disk.borrow_mut().crash();
        let (recovered, _log2) = MemoryLog::recover(disk, "mem0", 32);
        assert_eq!(snapshot_bits(&recovered, 32), snapshot_bits(&live, 32));
    }

    #[test]
    fn crash_between_compaction_steps_never_loses_or_doubles_state() {
        // Crash after publish but before truncate: the WAL still holds
        // every record, the snapshot already folds them in — replay must
        // skip them by seq, not re-apply.
        let disk = SimDisk::new("h");
        let (mut live, mut log) = MemoryLog::recover(disk.clone(), "mem0", 32);
        let sender = ProcessId::from_raw(3);
        for seq in 1..=10u64 {
            live.apply_store(sender, seq, &key(0), seq as f64, 50.0, 32);
            log.log_store(sender, seq, &key(0), seq as f64, 50.0);
        }
        log.write_snapshot(&live);
        log.publish_snapshot();
        // (no truncate) — crash here
        disk.borrow_mut().crash();
        let (recovered, _) = MemoryLog::recover(disk.clone(), "mem0", 32);
        assert_eq!(snapshot_bits(&recovered, 32), snapshot_bits(&live, 32));

        // Crash after write_snapshot but before publish: the stale-named
        // side file is ignored; old snapshot + WAL replay still match.
        let disk2 = SimDisk::new("h2");
        let (mut live2, mut log2) = MemoryLog::recover(disk2.clone(), "mem0", 32);
        for seq in 1..=10u64 {
            live2.apply_store(sender, seq, &key(0), seq as f64, 50.0, 32);
            log2.log_store(sender, seq, &key(0), seq as f64, 50.0);
        }
        log2.write_snapshot(&live2);
        disk2.borrow_mut().crash();
        let (recovered2, _) = MemoryLog::recover(disk2, "mem0", 32);
        assert_eq!(snapshot_bits(&recovered2, 32), snapshot_bits(&live2, 32));
    }

    #[test]
    fn lazy_fetch_records_may_roll_back_but_stores_never_do() {
        let disk = SimDisk::new("h");
        let (mut live, mut log) = MemoryLog::recover(disk.clone(), "mem0", 32);
        let sender = ProcessId::from_raw(3);
        live.apply_store(sender, 1, &key(0), 1.0, 50.0, 32);
        log.log_store(sender, 1, &key(0), 1.0, 50.0);
        live.apply_fetch(1);
        log.log_fetch(1); // lazy: not fsynced
        disk.borrow_mut().crash(); // no fault stream: cache lost entirely
        let (recovered, _) = MemoryLog::recover(disk, "mem0", 32);
        assert_eq!(recovered.stores, 1, "acked store survives");
        assert_eq!(recovered.fetches, 0, "unsynced fetch counter rolls back");
    }

    #[test]
    fn forecast_log_round_trips_battery_and_watermark() {
        let disk = SimDisk::new("h");
        let (state, mut log) = ForecastLog::recover(disk.clone(), "fc");
        assert!(state.is_empty());
        let mut live: BTreeMap<SeriesKey, RecoveredSeries> = BTreeMap::new();
        let k = key(0);
        for i in 1..=60 {
            let (t, v) = (i as f64, 40.0 + (i % 7) as f64);
            let s = live.entry(k.clone()).or_insert_with(|| RecoveredSeries {
                battery: ForecasterBattery::classic(),
                last_t: f64::NEG_INFINITY,
            });
            s.battery.observe(v);
            s.last_t = t;
            log.log_observe(&k, t, v);
            if i == 30 {
                // Mid-stream compaction: snapshot + truncate.
                log.compact(live.iter().map(|(k, s)| (k, &s.battery, s.last_t)));
            }
        }
        log.sync();
        disk.borrow_mut().crash();
        let (recovered, _) = ForecastLog::recover(disk, "fc");
        let (a, b) = (&recovered[&k], &live[&k]);
        assert_eq!(a.last_t, b.last_t);
        assert_eq!(a.battery.save_states(), b.battery.save_states());
        assert_eq!(
            a.battery.forecast().map(|f| f.value.to_bits()),
            b.battery.forecast().map(|f| f.value.to_bits()),
            "recovered forecast must be bit-identical"
        );
    }

    #[test]
    fn forecast_rewind_record_resets_on_replay() {
        let disk = SimDisk::new("h");
        let (_, mut log) = ForecastLog::recover(disk.clone(), "fc");
        let k = key(0);
        for i in 1..=5 {
            log.log_observe(&k, i as f64, 10.0);
        }
        log.log_rewind(&k);
        log.log_observe(&k, 1.0, 11.0); // post-rewind re-fetch of older data
        log.sync();
        let (state, _) = ForecastLog::recover(disk, "fc");
        let s = &state[&k];
        assert_eq!(s.last_t, 1.0);
        assert_eq!(s.battery.scores().3, 1, "battery restarted after rewind");
    }
}
