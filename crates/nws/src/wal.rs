//! Record framing for the durable state plane: checksummed append-only-log
//! records and snapshot containers, plus the little-endian primitive codec
//! both share.
//!
//! ## Log record layout
//!
//! ```text
//! | len: u32 LE | seq: u64 LE | crc: u64 LE | payload (len bytes) |
//! ```
//!
//! `len` counts payload bytes only; `crc` is FNV-1a 64 over `seq` (LE
//! bytes) followed by the payload, so a record torn anywhere — length
//! header, seq, checksum or body — fails verification. [`scan_wal`] walks
//! records front to back and stops at the first short or corrupt one:
//! a crash-torn tail is *detected and cleanly truncated on replay*, never
//! half-applied. Everything before the tear is intact by induction (each
//! record's frame is self-delimiting and self-checking).
//!
//! ## Snapshot container layout
//!
//! ```text
//! | magic: "NWSSNAP1" | log_seq: u64 LE | len: u32 LE | crc: u64 LE | body |
//! ```
//!
//! `log_seq` is the sequence number of the last log record folded into the
//! snapshot: replay applies only records with `seq > log_seq`, which makes
//! the pair (snapshot, log suffix) insensitive to a crash *after* snapshot
//! publication but *before* log truncation — the stale prefix is skipped
//! by seq, not by luck. A snapshot that fails magic/len/crc verification
//! (torn by a crash mid-write, before the atomic rename published it) is
//! treated as absent.

use netsim::disk::fnv1a64;

// ---------------------------------------------------------------------------
// Primitive little-endian codec
// ---------------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// f64 via its IEEE-754 bit pattern: round-trips NaN payloads and signed
/// zeros exactly, which the replay-equals-live bit-identity suites require.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Length-prefixed UTF-8.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over an encoded buffer. Every accessor returns `None` on
/// underrun instead of panicking: a decoder fed a torn or hostile buffer
/// reports failure and the caller falls back (skip the record, ignore the
/// snapshot).
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).ok()
    }

    /// All input consumed, nothing left over?
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Log records
// ---------------------------------------------------------------------------

fn record_crc(seq: u64, payload: &[u8]) -> u64 {
    let mut pre = Vec::with_capacity(8 + payload.len());
    pre.extend_from_slice(&seq.to_le_bytes());
    pre.extend_from_slice(payload);
    fnv1a64(&pre)
}

/// Frame one record onto the end of `buf`. Returns the framed length in
/// bytes (header + payload), for the caller's log-size accounting.
pub fn append_record(buf: &mut Vec<u8>, seq: u64, payload: &[u8]) -> usize {
    put_u32(buf, payload.len() as u32);
    put_u64(buf, seq);
    put_u64(buf, record_crc(seq, payload));
    buf.extend_from_slice(payload);
    20 + payload.len()
}

/// Result of walking a log image front to back.
pub struct WalScan {
    /// The verified records, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte length of the verified prefix (the tear point, if any).
    pub valid_len: usize,
    /// Were trailing bytes discarded (torn tail / corrupt record)?
    pub torn: bool,
}

/// Walk `bytes` as a sequence of framed records, stopping cleanly at the
/// first short or checksum-failing one (see module doc).
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return WalScan { records, valid_len: pos, torn: false };
        }
        if rest.len() < 20 {
            return WalScan { records, valid_len: pos, torn: true };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let seq = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let crc = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        if rest.len() < 20 + len {
            return WalScan { records, valid_len: pos, torn: true };
        }
        let payload = &rest[20..20 + len];
        if record_crc(seq, payload) != crc {
            return WalScan { records, valid_len: pos, torn: true };
        }
        records.push((seq, payload.to_vec()));
        pos += 20 + len;
    }
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

const SNAP_MAGIC: &[u8; 8] = b"NWSSNAP1";

fn snapshot_crc(log_seq: u64, body: &[u8]) -> u64 {
    let mut pre = Vec::with_capacity(8 + body.len());
    pre.extend_from_slice(&log_seq.to_le_bytes());
    pre.extend_from_slice(body);
    fnv1a64(&pre)
}

/// Wrap a snapshot body in the verified container.
pub fn encode_snapshot(log_seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + body.len());
    out.extend_from_slice(SNAP_MAGIC);
    put_u64(&mut out, log_seq);
    put_u32(&mut out, body.len() as u32);
    put_u64(&mut out, snapshot_crc(log_seq, body));
    out.extend_from_slice(body);
    out
}

/// Verify and unwrap a snapshot image. `None` means "no usable snapshot"
/// — missing, truncated, or corrupt — and the caller starts empty.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    if bytes.len() < 28 || &bytes[0..8] != SNAP_MAGIC {
        return None;
    }
    let log_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if bytes.len() != 28 + len {
        return None;
    }
    let body = &bytes[28..];
    if snapshot_crc(log_seq, body) != crc {
        return None;
    }
    Some((log_seq, body.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NEG_INFINITY);
        put_str(&mut buf, "bandwidthTcp:a.x/b.x");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.f64(), Some(f64::NEG_INFINITY));
        assert_eq!(r.str().as_deref(), Some("bandwidthTcp:a.x/b.x"));
        assert!(r.done());
        assert_eq!(r.u8(), None, "underrun reports None");
    }

    #[test]
    fn wal_round_trips_and_reports_clean_end() {
        let mut log = Vec::new();
        append_record(&mut log, 1, b"alpha");
        append_record(&mut log, 2, b"");
        append_record(&mut log, 3, b"gamma");
        let scan = scan_wal(&log);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(
            scan.records,
            vec![(1, b"alpha".to_vec()), (2, Vec::new()), (3, b"gamma".to_vec())]
        );
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let mut log = Vec::new();
        append_record(&mut log, 1, b"first");
        let keep = log.len();
        append_record(&mut log, 2, b"second record payload");
        // A cut exactly on the record boundary is a clean end, not a tear.
        let at_boundary = scan_wal(&log[..keep]);
        assert!(!at_boundary.torn);
        assert_eq!(at_boundary.records.len(), 1);
        // Cut the log at every byte position strictly inside the second
        // record: the first must always survive, the second never
        // half-apply.
        for cut in keep + 1..log.len() {
            let scan = scan_wal(&log[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, keep, "cut at {cut}");
            assert!(scan.torn, "cut at {cut}");
        }
        assert!(!scan_wal(&log).torn);
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let mut log = Vec::new();
        append_record(&mut log, 1, b"first");
        let keep = log.len();
        append_record(&mut log, 2, b"second");
        let flip = keep + 22; // inside the second record's payload
        log[flip] ^= 0x40;
        let scan = scan_wal(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_damage() {
        let body = b"snapshot body bytes".to_vec();
        let img = encode_snapshot(41, &body);
        assert_eq!(decode_snapshot(&img), Some((41, body.clone())));
        // Truncated image: rejected.
        assert_eq!(decode_snapshot(&img[..img.len() - 1]), None);
        // Flipped body byte: rejected.
        let mut bad = img.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(decode_snapshot(&bad), None);
        // Wrong magic: rejected.
        let mut wrong = img;
        wrong[0] = b'X';
        assert_eq!(decode_snapshot(&wrong), None);
        // Empty: rejected.
        assert_eq!(decode_snapshot(b""), None);
    }
}
