//! Heartbeat-driven supervision of a deployed NWS system.
//!
//! Deployment is not done when the plan is applied: a long-running NWS
//! must detect and repair its own component failures (the autonomic-
//! management argument of Dearle/Kirby/McCarthy). The supervisor is a
//! plain actor on the simulated network — it learns about deaths the same
//! way a real one would, by missed heartbeats, not by peeking at engine
//! state:
//!
//! * every [`SupervisorConfig::period`] it sends [`crate::NwsMsg::Ping`]
//!   to every monitored pid (sensors and memory servers);
//! * a pid that misses [`SupervisorConfig::miss_threshold`] consecutive
//!   replies is moved to [`SupervisorState::suspected`];
//! * a late Pong clears the suspicion — a lossy episode that delays
//!   heartbeats must not get a live process restarted;
//! * the harness ([`crate::NwsSystem::heal`]) drains `suspected` and
//!   restarts the components via the existing reconfigure/Retarget
//!   machinery, swapping the monitored pid for the replacement's.
//!
//! Detection latency is therefore bounded by `miss_threshold × period`
//! plus one heal sweep; the recovery bound on top is the Retarget
//! delivery (sensors) or the `RetargetMemory` burst + buffer drain
//! (memories).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use netsim::engine::{Ctx, Process, ProcessId};
use netsim::time::TimeDelta;

use crate::msg::NwsMsg;

/// Heartbeat tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Heartbeat period.
    pub period: TimeDelta,
    /// Consecutive missed heartbeats before a pid is suspected dead.
    pub miss_threshold: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { period: TimeDelta::from_secs(5.0), miss_threshold: 3 }
    }
}

/// The liveness ledger, shared between the supervisor process and the
/// harness that performs the restarts.
#[derive(Debug, Default)]
pub struct SupervisorState {
    /// The monitored pids. The harness edits this as restarts swap pids.
    pub targets: BTreeSet<ProcessId>,
    /// Pids declared dead, awaiting [`crate::NwsSystem::heal`].
    pub suspected: BTreeSet<ProcessId>,
    /// pid → consecutive missed heartbeats.
    misses: BTreeMap<ProcessId, u32>,
    /// Pids pinged this period that have not answered yet.
    awaiting: BTreeSet<ProcessId>,
    pub pings_sent: u64,
    pub pongs_seen: u64,
}

impl SupervisorState {
    /// Swap a restarted component's pid: the dead pid stops being
    /// monitored (and suspected), the replacement starts fresh.
    pub fn replace_target(&mut self, dead: ProcessId, replacement: ProcessId) {
        self.targets.remove(&dead);
        self.suspected.remove(&dead);
        self.misses.remove(&dead);
        self.awaiting.remove(&dead);
        self.targets.insert(replacement);
    }
}

/// Shared handle onto the supervisor's ledger.
pub type SupervisorHandle = Rc<RefCell<SupervisorState>>;

const TAG_BEAT: u64 = 0;

/// The supervisor actor. Spawned by [`crate::NwsSystem::attach_supervisor`].
pub struct SupervisorProc {
    cfg: SupervisorConfig,
    state: SupervisorHandle,
}

impl SupervisorProc {
    pub fn new(cfg: SupervisorConfig, state: SupervisorHandle) -> Self {
        SupervisorProc { cfg, state }
    }

    fn beat(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let targets: Vec<ProcessId> = {
            let mut st = self.state.borrow_mut();
            let targets: Vec<ProcessId> = st.targets.iter().copied().collect();
            // Score the previous period: anyone still awaited missed it.
            for pid in &targets {
                if st.awaiting.contains(pid) {
                    let m = st.misses.entry(*pid).or_insert(0);
                    *m += 1;
                    if *m >= self.cfg.miss_threshold {
                        st.suspected.insert(*pid);
                    }
                } else {
                    st.misses.insert(*pid, 0);
                }
            }
            st.awaiting = targets.iter().copied().collect();
            st.pings_sent += targets.len() as u64;
            targets
        };
        for pid in targets {
            let ping = NwsMsg::Ping;
            let size = ping.wire_size();
            // A synchronous failure (already-dead pid) is fine: the pong
            // simply never comes and the miss counter does its job.
            let _ = ctx.send(pid, size, ping);
        }
        ctx.set_timer(self.cfg.period, TAG_BEAT);
    }
}

impl Process<NwsMsg> for SupervisorProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        self.beat(ctx);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
        if let NwsMsg::Pong = msg {
            let mut st = self.state.borrow_mut();
            st.pongs_seen += 1;
            st.awaiting.remove(&from);
            if st.targets.contains(&from) {
                st.misses.insert(from, 0);
                // A late pong exonerates: better to tolerate a slow pid
                // than to restart a live one over a lossy episode.
                st.suspected.remove(&from);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
        if tag == TAG_BEAT {
            self.beat(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::topology::{NodeId, TopologyBuilder};
    use netsim::units::{Bandwidth, Latency};

    fn hub3() -> (Engine<NwsMsg>, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        (Engine::new(b.build().unwrap()), hosts)
    }

    /// A process that answers pings until `deaf` flips.
    struct Echo {
        deaf: Rc<RefCell<bool>>,
    }
    impl Process<NwsMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
            if let NwsMsg::Ping = msg {
                if !*self.deaf.borrow() {
                    let pong = NwsMsg::Pong;
                    let size = pong.wire_size();
                    let _ = ctx.send(from, size, pong);
                }
            }
        }
    }

    #[test]
    fn responsive_targets_are_never_suspected() {
        let (mut eng, hosts) = hub3();
        let deaf = Rc::new(RefCell::new(false));
        let echo = eng.add_process(hosts[1], Box::new(Echo { deaf }));
        let state: SupervisorHandle = Rc::new(RefCell::new(SupervisorState::default()));
        state.borrow_mut().targets.insert(echo);
        let cfg = SupervisorConfig { period: TimeDelta::from_secs(1.0), miss_threshold: 3 };
        eng.add_process(hosts[0], Box::new(SupervisorProc::new(cfg, state.clone())));
        let deadline = eng.now() + TimeDelta::from_secs(30.0);
        eng.run_until(deadline);
        let st = state.borrow();
        assert!(st.suspected.is_empty());
        assert!(st.pongs_seen >= 25, "pongs: {}", st.pongs_seen);
    }

    #[test]
    fn dead_target_is_suspected_within_threshold_periods() {
        let (mut eng, hosts) = hub3();
        let deaf = Rc::new(RefCell::new(false));
        let echo = eng.add_process(hosts[1], Box::new(Echo { deaf }));
        let state: SupervisorHandle = Rc::new(RefCell::new(SupervisorState::default()));
        state.borrow_mut().targets.insert(echo);
        let cfg = SupervisorConfig { period: TimeDelta::from_secs(1.0), miss_threshold: 3 };
        eng.add_process(hosts[0], Box::new(SupervisorProc::new(cfg, state.clone())));
        let warm = eng.now() + TimeDelta::from_secs(5.0);
        eng.run_until(warm);
        assert!(state.borrow().suspected.is_empty());

        eng.kill_process(echo);
        // Detection bound: miss_threshold (3) + 1 scoring period + slack.
        let deadline = eng.now() + TimeDelta::from_secs(5.5);
        eng.run_until(deadline);
        assert!(state.borrow().suspected.contains(&echo), "dead pid must be suspected");
    }

    #[test]
    fn late_pong_exonerates_a_suspect() {
        let (mut eng, hosts) = hub3();
        let deaf = Rc::new(RefCell::new(false));
        let echo = eng.add_process(hosts[1], Box::new(Echo { deaf: deaf.clone() }));
        let state: SupervisorHandle = Rc::new(RefCell::new(SupervisorState::default()));
        state.borrow_mut().targets.insert(echo);
        let cfg = SupervisorConfig { period: TimeDelta::from_secs(1.0), miss_threshold: 2 };
        eng.add_process(hosts[0], Box::new(SupervisorProc::new(cfg, state.clone())));

        // Go deaf long enough to be suspected, then recover.
        *deaf.borrow_mut() = true;
        let deadline = eng.now() + TimeDelta::from_secs(6.0);
        eng.run_until(deadline);
        assert!(state.borrow().suspected.contains(&echo));
        *deaf.borrow_mut() = false;
        let deadline = eng.now() + TimeDelta::from_secs(3.0);
        eng.run_until(deadline);
        assert!(state.borrow().suspected.is_empty(), "a pid that answers again must be exonerated");
    }
}
