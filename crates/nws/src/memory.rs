//! The NWS memory server: "store the results on disk for further use"
//! (paper §2.1).
//!
//! Sensors `Store` measurements here; forecasters `Fetch` histories. On
//! the first store of a series the memory registers itself as that
//! series' home with the name server, which is how the forecaster's
//! directory lookup (step 2 of §2.1) finds the right memory.
//!
//! Stores are acknowledged and deduplicated: every `Store` carries a
//! per-sender sequence number, the memory acks it (even when the point is
//! rejected — an ack means *received*), and a seq seen before is counted
//! in [`MemoryStore::dup_stores`] without touching `stores` or the series.
//!
//! A memory built via [`MemoryServer::recover`] is **durable**: every
//! store is written to a checksummed WAL on the host's [`SimDisk`] and
//! fsynced *before* the ack goes out, so an acked store is on stable
//! storage by the time the sensor releases its buffer slot — a crash plus
//! a sensor retry still cannot double-count, because the dedup ledger is
//! replayed along with the points (see [`crate::persist`]).
//!
//! [`SimDisk`]: netsim::disk::SimDisk

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use netsim::disk::DiskHandle;
use netsim::engine::{Ctx, Process, ProcessId};
use netsim::error::NetError;

use crate::msg::{NwsMsg, SeriesKey, ServerKind};
use crate::persist::MemoryLog;
use crate::series::Series;

/// Per-sender record of which store sequence numbers have been received:
/// a contiguous watermark plus the sparse set above it (duplicated copies
/// bypass the engine's FIFO clamp, so seqs can arrive out of order).
#[derive(Debug, Default, Clone)]
pub struct SeenSeqs {
    watermark: u64,
    above: BTreeSet<u64>,
}

impl SeenSeqs {
    /// Record `seq`; returns `true` the first time it is seen.
    fn note(&mut self, seq: u64) -> bool {
        if seq <= self.watermark || !self.above.insert(seq) {
            return false;
        }
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }

    /// The contiguous watermark: every seq `<= watermark` has been seen.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The sparse seqs above the watermark, ascending.
    pub fn above(&self) -> impl Iterator<Item = u64> + '_ {
        self.above.iter().copied()
    }

    /// Reassemble a ledger from its persisted parts (snapshot decode).
    pub fn from_parts(watermark: u64, above: impl IntoIterator<Item = u64>) -> Self {
        SeenSeqs { watermark, above: above.into_iter().collect() }
    }
}

/// What [`MemoryStore::apply_store`] did with one store record.
pub struct StoreOutcome {
    /// First time this (sender, seq) was seen — the point was counted.
    pub first_time: bool,
    /// The store created the series (its key should be registered).
    pub new_key: bool,
}

/// The stored series, shared with the harness for direct inspection.
#[derive(Debug, Default)]
pub struct MemoryStore {
    pub series: BTreeMap<SeriesKey, Series>,
    pub stores: u64,
    pub fetches: u64,
    /// Stores recognized as retries or network duplicates by the
    /// per-sender seq ledger: acked but never counted in `stores`, never
    /// pushed into a series.
    pub dup_stores: u64,
    /// Replies (acks, fetch replies) that bounced off a dead requester.
    pub reply_failures: u64,
    /// sender pid → received store seqs (the dedup ledger; on "disk" so it
    /// survives a supervised restart of the server process).
    pub seen: BTreeMap<ProcessId, SeenSeqs>,
    /// Stores dropped by `Series::push`: non-finite points (a sensor NaN
    /// that must never reach a forecaster's ring) and points whose
    /// timestamp is not strictly newer than the last stored one (clock
    /// skew/stalls would silently desync the delta-fetch watermark).
    pub rejected: u64,
    /// Total points shipped across all fetch replies — the observable
    /// behind the delta-fetch O(Δ) contract: in a steady-state query storm
    /// this counter stays put while `fetches` climbs.
    pub points_served: u64,
}

impl MemoryStore {
    pub fn series_len(&self, key: &SeriesKey) -> usize {
        self.series.get(key).map(Series::len).unwrap_or(0)
    }

    /// Apply one store: dedup via the per-sender seq ledger, then count
    /// and push. This is the **single** mutation path for stores — the
    /// live message handler and the WAL replay both call it, which is
    /// what makes replayed state bit-identical to live state by
    /// construction.
    pub fn apply_store(
        &mut self,
        sender: ProcessId,
        seq: u64,
        key: &SeriesKey,
        t: f64,
        value: f64,
        capacity: usize,
    ) -> StoreOutcome {
        let first_time = self.seen.entry(sender).or_default().note(seq);
        let mut new_key = false;
        if first_time {
            self.stores += 1;
            new_key = !self.series.contains_key(key);
            let stored = self
                .series
                .entry(key.clone())
                .or_insert_with(|| Series::new(capacity))
                .push(t, value);
            if !stored {
                self.rejected += 1;
            }
        } else {
            self.dup_stores += 1;
        }
        StoreOutcome { first_time, new_key }
    }

    /// Account one fetch that served `served` points (live and replay).
    pub fn apply_fetch(&mut self, served: u64) {
        self.fetches += 1;
        self.points_served += served;
    }

    /// Account one bounced reply (live and replay).
    pub fn apply_reply_failure(&mut self) {
        self.reply_failures += 1;
    }
}

/// Shared handle onto a memory server's store.
pub type MemoryHandle = Rc<RefCell<MemoryStore>>;

/// The memory server process.
pub struct MemoryServer {
    name: String,
    ns: ProcessId,
    capacity: usize,
    store: MemoryHandle,
    /// Durable WAL + snapshot state, when the server owns a disk. `None`
    /// for volatile servers ([`MemoryServer::new`] / test seams).
    log: Option<MemoryLog>,
}

impl MemoryServer {
    /// A volatile memory server: state lives in RAM only and dies with
    /// the process. Unit tests and single-epoch experiments use this;
    /// supervised deployments use [`MemoryServer::recover`].
    pub fn new(name: &str, ns: ProcessId, capacity: usize) -> (Self, MemoryHandle) {
        let store = Rc::new(RefCell::new(MemoryStore::default()));
        (
            MemoryServer { name: name.to_string(), ns, capacity, store: store.clone(), log: None },
            store,
        )
    }

    /// **Test seam only.** Rebuild a volatile server around a store the
    /// caller already holds — useful for staging a specific pre-state
    /// (e.g. a deliberately rolled-back store for the forecaster-rewind
    /// regression test). Production recovery must go through
    /// [`MemoryServer::recover`]: a real restart has no surviving RAM to
    /// smuggle a [`MemoryHandle`] out of.
    pub fn with_store(name: &str, ns: ProcessId, capacity: usize, store: MemoryHandle) -> Self {
        MemoryServer { name: name.to_string(), ns, capacity, store, log: None }
    }

    /// A durable memory server: rebuild the store from `disk` (snapshot +
    /// WAL replay, empty disk ⇒ empty store) and keep logging to it. This
    /// is both the cold-start and the crash-recovery constructor — the
    /// two are the same code path on purpose.
    ///
    /// The on-disk file names are fixed (`memory.wal` / `memory.snap`),
    /// not derived from `name`: display names embed a deployment index
    /// that can shift across reconfigurations, and a renamed server must
    /// still find its own files.
    pub fn recover(
        name: &str,
        ns: ProcessId,
        capacity: usize,
        disk: DiskHandle,
    ) -> (Self, MemoryHandle) {
        let (store, log) = MemoryLog::recover(disk, "memory", capacity);
        let store = Rc::new(RefCell::new(store));
        (
            MemoryServer {
                name: name.to_string(),
                ns,
                capacity,
                store: store.clone(),
                log: Some(log),
            },
            store,
        )
    }

    /// Tune the durable WAL's compaction threshold (bytes). No-op on a
    /// volatile server.
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        if let Some(log) = &mut self.log {
            log.set_compact_threshold(bytes);
        }
    }
}

impl Process<NwsMsg> for MemoryServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        let reg = NwsMsg::Register { name: self.name.clone(), kind: ServerKind::Memory };
        let size = reg.wire_size();
        let _ = ctx.send(self.ns, size, reg);
        // Restarted under a fresh pid: re-claim every series read off disk
        // so directory lookups stop pointing at the dead predecessor.
        let keys: Vec<SeriesKey> = self.store.borrow().series.keys().cloned().collect();
        for key in keys {
            let reg = NwsMsg::RegisterSeries { key, memory: ctx.me() };
            let size = reg.wire_size();
            let _ = ctx.send(self.ns, size, reg);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
        match msg {
            NwsMsg::Store { key, seq, t, value } => {
                let out =
                    self.store.borrow_mut().apply_store(from, seq, &key, t, value, self.capacity);
                if let Some(log) = &mut self.log {
                    // Log every copy — duplicates included, so replay
                    // reproduces `dup_stores` — and fsync before the ack:
                    // an acked store is on stable storage, which is what
                    // keeps a crash + sensor retry from double-counting.
                    log.log_store(from, seq, &key, t, value);
                    log.maybe_compact(&self.store.borrow());
                }
                // Ack in every case — including duplicates and rejected
                // points — so the sender releases its buffer slot; without
                // the dup-ack a sensor whose first ack was lost would
                // retry forever.
                let ack = NwsMsg::StoreAck { seq };
                let size = ack.wire_size();
                let _ = ctx.send(from, size, ack);
                if out.first_time && out.new_key {
                    let reg = NwsMsg::RegisterSeries { key, memory: ctx.me() };
                    let size = reg.wire_size();
                    let _ = ctx.send(self.ns, size, reg);
                }
            }
            NwsMsg::Ping => {
                let pong = NwsMsg::Pong;
                let size = pong.wire_size();
                let _ = ctx.send(from, size, pong);
            }
            NwsMsg::Fetch { key } => {
                let (points, latest) = {
                    let mut st = self.store.borrow_mut();
                    let points = st.series.get(&key).map(Series::to_pairs).unwrap_or_default();
                    let latest = st
                        .series
                        .get(&key)
                        .and_then(Series::last)
                        .map_or(f64::NEG_INFINITY, |p| p.t);
                    st.apply_fetch(points.len() as u64);
                    (points, latest)
                };
                if let Some(log) = &mut self.log {
                    log.log_fetch(points.len() as u64);
                }
                let reply = NwsMsg::FetchReply { key, points, latest };
                let size = reply.wire_size();
                let _ = ctx.send(from, size, reply);
            }
            NwsMsg::FetchSince { key, after } => {
                let (points, latest) = {
                    let mut st = self.store.borrow_mut();
                    let points =
                        st.series.get(&key).map(|s| s.pairs_since(after)).unwrap_or_default();
                    let latest = st
                        .series
                        .get(&key)
                        .and_then(Series::last)
                        .map_or(f64::NEG_INFINITY, |p| p.t);
                    st.apply_fetch(points.len() as u64);
                    (points, latest)
                };
                if let Some(log) = &mut self.log {
                    log.log_fetch(points.len() as u64);
                }
                let reply = NwsMsg::FetchReply { key, points, latest };
                let size = reply.wire_size();
                let _ = ctx.send(from, size, reply);
            }
            _ => {}
        }
    }

    fn on_send_failed(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _to: ProcessId, _err: &NetError) {
        // An ack or fetch reply bounced off a requester that died while it
        // was in flight. There is nothing to resend — the requester is
        // gone — but the loss is accounted rather than silent; a retried
        // Store from a restarted sensor arrives under a fresh pid and seq
        // space, so dropping this reply cannot wedge anyone.
        self.store.borrow_mut().apply_reply_failure();
        if let Some(log) = &mut self.log {
            log.log_reply_failure();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Resource;
    use crate::registry::NameServer;
    use netsim::prelude::*;
    use netsim::Engine;

    type GotPoints = Rc<RefCell<Option<Vec<(f64, f64)>>>>;

    fn net3() -> (Engine<NwsMsg>, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        (Engine::new(b.build().unwrap()), hosts)
    }

    /// Stores three values, then fetches them back.
    struct StoreFetch {
        memory: ProcessId,
        got: GotPoints,
    }

    impl Process<NwsMsg> for StoreFetch {
        fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
            let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
            for (seq, (t, v)) in [(1.0, 90.0), (2.0, 95.0), (3.0, 92.0)].iter().enumerate() {
                let m = NwsMsg::Store { key: key.clone(), seq: seq as u64 + 1, t: *t, value: *v };
                let size = m.wire_size();
                ctx.send(self.memory, size, m).unwrap();
            }
            let f = NwsMsg::Fetch { key };
            let size = f.wire_size();
            ctx.send(self.memory, size, f).unwrap();
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
            if let NwsMsg::FetchReply { points, .. } = msg {
                *self.got.borrow_mut() = Some(points);
            }
        }
    }

    #[test]
    fn store_then_fetch() {
        let (mut eng, hosts) = net3();
        let (ns, ns_state) = NameServer::new();
        let ns_pid = eng.add_process(hosts[0], Box::new(ns));
        let (mem, store) = MemoryServer::new("mem0", ns_pid, 128);
        let mem_pid = eng.add_process(hosts[1], Box::new(mem));
        let got = Rc::new(RefCell::new(None));
        eng.add_process(hosts[2], Box::new(StoreFetch { memory: mem_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();

        let points = got.borrow().clone().expect("fetch replied");
        assert_eq!(points, vec![(1.0, 90.0), (2.0, 95.0), (3.0, 92.0)]);
        assert_eq!(store.borrow().stores, 3);
        assert_eq!(store.borrow().fetches, 1);
        // The series was registered with the name server exactly once.
        let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
        assert_eq!(ns_state.borrow().series.get(&key), Some(&mem_pid));
        // The memory registered itself as a server too.
        assert!(ns_state.borrow().servers.contains_key("mem0"));
    }

    #[test]
    fn fetch_of_unknown_series_is_empty() {
        let (mut eng, hosts) = net3();
        let (ns, _) = NameServer::new();
        let ns_pid = eng.add_process(hosts[0], Box::new(ns));
        let (mem, _store) = MemoryServer::new("mem0", ns_pid, 128);
        let mem_pid = eng.add_process(hosts[1], Box::new(mem));

        struct FetchOnly {
            memory: ProcessId,
            got: GotPoints,
        }
        impl Process<NwsMsg> for FetchOnly {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
                let f = NwsMsg::Fetch { key: SeriesKey::host(Resource::CpuLoad, "nope") };
                let size = f.wire_size();
                ctx.send(self.memory, size, f).unwrap();
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
                if let NwsMsg::FetchReply { points, .. } = msg {
                    *self.got.borrow_mut() = Some(points);
                }
            }
        }
        let got = Rc::new(RefCell::new(None));
        eng.add_process(hosts[2], Box::new(FetchOnly { memory: mem_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(got.borrow().clone().unwrap(), vec![]);
    }

    #[test]
    fn fetch_since_serves_only_the_delta() {
        let (mut eng, hosts) = net3();
        let (ns, _) = NameServer::new();
        let ns_pid = eng.add_process(hosts[0], Box::new(ns));
        let (mem, store) = MemoryServer::new("mem0", ns_pid, 128);
        let mem_pid = eng.add_process(hosts[1], Box::new(mem));

        struct DeltaFetch {
            memory: ProcessId,
            got: GotPoints,
        }
        impl Process<NwsMsg> for DeltaFetch {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
                let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
                let points = [(1.0, 90.0), (2.0, 95.0), (3.0, 92.0), (f64::NAN, 88.0)];
                for (seq, (t, v)) in points.iter().enumerate() {
                    let m =
                        NwsMsg::Store { key: key.clone(), seq: seq as u64 + 1, t: *t, value: *v };
                    let size = m.wire_size();
                    ctx.send(self.memory, size, m).unwrap();
                }
                let f = NwsMsg::FetchSince { key, after: 1.0 };
                let size = f.wire_size();
                ctx.send(self.memory, size, f).unwrap();
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
                if let NwsMsg::FetchReply { points, .. } = msg {
                    *self.got.borrow_mut() = Some(points);
                }
            }
        }
        let got = Rc::new(RefCell::new(None));
        eng.add_process(hosts[2], Box::new(DeltaFetch { memory: mem_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();

        // Strict suffix only; the NaN-timestamped store was rejected.
        assert_eq!(got.borrow().clone().unwrap(), vec![(2.0, 95.0), (3.0, 92.0)]);
        let st = store.borrow();
        assert_eq!(st.stores, 4);
        assert_eq!(st.rejected, 1);
        assert_eq!(st.points_served, 2);
    }

    /// Retried and duplicated stores are idempotent: the seq ledger routes
    /// them to `dup_stores`, so `stores`, the series contents and the
    /// rejection counter all match what the deduplicated subsequence alone
    /// would have produced — and every copy is still acked.
    #[test]
    fn duplicate_and_retried_stores_are_idempotent() {
        struct Retrier {
            memory: ProcessId,
            acks: Rc<RefCell<Vec<u64>>>,
        }
        impl Process<NwsMsg> for Retrier {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
                let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
                // seqs 1,2,3 delivered; 2 and 3 retried out of order; a
                // late duplicate of 1; then fresh 4.
                let sends = [(1, 1.0), (2, 2.0), (3, 3.0), (3, 3.0), (2, 2.0), (1, 1.0), (4, 4.0)];
                for (seq, t) in sends {
                    let m = NwsMsg::Store { key: key.clone(), seq, t, value: 90.0 + t };
                    let size = m.wire_size();
                    ctx.send(self.memory, size, m).unwrap();
                }
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
                if let NwsMsg::StoreAck { seq } = msg {
                    self.acks.borrow_mut().push(seq);
                }
            }
        }

        let (mut eng, hosts) = net3();
        let (ns, _) = NameServer::new();
        let ns_pid = eng.add_process(hosts[0], Box::new(ns));
        let (mem, store) = MemoryServer::new("mem0", ns_pid, 128);
        let mem_pid = eng.add_process(hosts[1], Box::new(mem));
        let acks = Rc::new(RefCell::new(Vec::new()));
        eng.add_process(hosts[2], Box::new(Retrier { memory: mem_pid, acks: acks.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();

        let st = store.borrow();
        assert_eq!(st.stores, 4, "each unique seq counted exactly once");
        assert_eq!(st.dup_stores, 3);
        assert_eq!(st.rejected, 0);
        let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
        let pairs = st.series[&key].to_pairs();
        assert_eq!(pairs, vec![(1.0, 91.0), (2.0, 92.0), (3.0, 93.0), (4.0, 94.0)]);
        // Every copy — duplicate or not — was acked.
        assert_eq!(*acks.borrow(), vec![1, 2, 3, 3, 2, 1, 4]);
    }

    #[test]
    fn capacity_bounds_series() {
        let (mut eng, hosts) = net3();
        let (ns, _) = NameServer::new();
        let ns_pid = eng.add_process(hosts[0], Box::new(ns));
        let (mem, store) = MemoryServer::new("mem0", ns_pid, 2);
        let mem_pid = eng.add_process(hosts[1], Box::new(mem));
        let got = Rc::new(RefCell::new(None));
        eng.add_process(hosts[2], Box::new(StoreFetch { memory: mem_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        // Capacity 2: only the last two of three stores survive.
        assert_eq!(got.borrow().clone().unwrap(), vec![(2.0, 95.0), (3.0, 92.0)]);
        let key = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
        assert_eq!(store.borrow().series_len(&key), 2);
    }
}
