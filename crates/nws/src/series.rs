//! Measurement time series: what memory servers store on disk in real NWS.
//!
//! A bounded ring of `(timestamp, value)` points, newest last. The bound
//! mirrors NWS's fixed-size circular files.

use std::collections::VecDeque;

/// One measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    pub t: f64,
    pub value: f64,
}

/// A bounded measurement history.
#[derive(Debug, Clone)]
pub struct Series {
    points: VecDeque<SeriesPoint>,
    capacity: usize,
}

impl Series {
    /// NWS's default circular-file size is a few hundred entries.
    pub const DEFAULT_CAPACITY: usize = 512;

    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        Series { points: VecDeque::with_capacity(capacity.min(1024)), capacity }
    }

    /// Store one measurement. Two classes of point are **rejected**
    /// (returns `false`) in every build profile:
    ///
    /// * non-finite `t`/`value` — a sensor dividing by a zero elapsed time
    ///   produces a NaN/∞ that would otherwise sit in the ring until a
    ///   forecaster consumed it (the old `debug_assert!` let exactly that
    ///   happen in release builds — the same bug class `refine::median`
    ///   fixed for probe samples);
    /// * `t` not strictly newer than the last stored point — the
    ///   delta-fetch suffix walk ([`Series::pairs_since`]) and the
    ///   forecaster's timestamp watermark both rely on strictly increasing
    ///   times, so a stale or duplicate-time point would be silently and
    ///   permanently invisible to forecasts while still sitting in the
    ///   ring, breaking the replay-oracle bit-identity.
    pub fn push(&mut self, t: f64, value: f64) -> bool {
        if !t.is_finite() || !value.is_finite() {
            return false;
        }
        if self.points.back().is_some_and(|p| t <= p.t) {
            return false;
        }
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(SeriesPoint { t, value });
        true
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The ring bound this series was created with (persisted by the
    /// durability plane so a recovered ring evicts identically).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last(&self) -> Option<SeriesPoint> {
        self.points.back().copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = SeriesPoint> + '_ {
        self.points.iter().copied()
    }

    /// Points as `(t, value)` pairs (the FetchReply payload).
    pub fn to_pairs(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.t, p.value)).collect()
    }

    /// Points strictly newer than `after`, oldest first — the delta-fetch
    /// payload. Timestamps within a series are strictly increasing
    /// (enforced by [`Series::push`]), so this walks back over the
    /// suffix: O(Δ) for the steady-state query path, not O(ring).
    pub fn pairs_since(&self, after: f64) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> =
            self.points.iter().rev().take_while(|p| p.t > after).map(|p| (p.t, p.value)).collect();
        out.reverse();
        out
    }

    /// Mean measurement interval, if at least two points exist — the
    /// observable behind the clique-frequency experiment (E2).
    pub fn mean_interval(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let first = self.points.front().expect("non-empty").t;
        let last = self.points.back().expect("non-empty").t;
        Some((last - first) / (self.points.len() - 1) as f64)
    }

    /// Mean of the values.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
    }
}

impl Default for Series {
    fn default() -> Self {
        Series::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = Series::new(8);
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last().unwrap().value, 20.0);
        assert_eq!(s.to_pairs(), vec![(1.0, 10.0), (2.0, 20.0)]);
        assert!(!s.is_empty());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut s = Series::new(3);
        for i in 0..5 {
            s.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_pairs(), vec![(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]);
    }

    #[test]
    fn mean_interval() {
        let mut s = Series::new(16);
        assert_eq!(s.mean_interval(), None);
        for i in 0..5 {
            s.push(i as f64 * 2.0, 1.0);
        }
        assert!((s.mean_interval().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_value() {
        let mut s = Series::new(16);
        assert_eq!(s.mean(), None);
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert!((s.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Series::new(0);
    }

    #[test]
    fn non_finite_points_rejected() {
        let mut s = Series::new(8);
        assert!(!s.push(f64::NAN, 1.0));
        assert!(!s.push(1.0, f64::NAN));
        assert!(!s.push(1.0, f64::INFINITY));
        assert!(!s.push(f64::NEG_INFINITY, 1.0));
        assert!(s.is_empty());
        assert!(s.push(1.0, 2.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_order_timestamps_rejected() {
        let mut s = Series::new(8);
        assert!(s.push(1.0, 10.0));
        assert!(!s.push(1.0, 11.0), "duplicate timestamp");
        assert!(!s.push(0.5, 12.0), "stale timestamp");
        assert!(s.push(2.0, 13.0));
        assert_eq!(s.to_pairs(), vec![(1.0, 10.0), (2.0, 13.0)]);
    }

    #[test]
    fn pairs_since_returns_strict_suffix() {
        let mut s = Series::new(8);
        for i in 0..5 {
            s.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(s.pairs_since(f64::NEG_INFINITY), s.to_pairs());
        assert_eq!(s.pairs_since(2.0), vec![(3.0, 30.0), (4.0, 40.0)]);
        assert_eq!(s.pairs_since(4.0), vec![]);
        assert_eq!(s.pairs_since(100.0), vec![]);
    }
}
