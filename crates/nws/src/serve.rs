//! The sharded, concurrent query-serving plane: the subsystem that takes
//! the forecaster from "fast" (PR 3's 0.2 µs single queries) to "serves a
//! crowd".
//!
//! Layout:
//!
//! * **Shards** ([`crate::shard::ShardMap`]) partition series across N
//!   independent forecaster shards, clique-aligned so one clique's series
//!   co-locate. Each shard owns the mutable per-series battery state
//!   (20-predictor [`ForecasterBattery`] + delta watermark) for its keys.
//! * **Epoch publication**: [`ServingPlane::ingest_store`] pulls only the
//!   points newer than each series' ingest watermark (O(Δ), the PR-3
//!   delta-fetch discipline applied out-of-sim), buffering them on the
//!   owning shard. [`ServingPlane::publish`] then observes the buffered
//!   deltas shard-parallel on `std::thread::scope` workers and publishes
//!   one immutable [`Arc<ShardSnapshot>`] per dirty shard — the PR-7
//!   `Engine::from_snapshot` precedent applied to forecaster state.
//!   Readers holding the previous `Arc` keep a consistent view; nothing
//!   is locked, ever (lint rule D8 bans `Mutex`/`RwLock` here).
//! * **Concurrent serving**: [`ServingPlane::serve_batches`] fans a slice
//!   of batched multi-series queries across a scoped worker pool. Workers
//!   share the snapshots read-only and keep *local* counters that are
//!   merged in worker order after the join — answers and metrics are
//!   bit-identical for any worker count and any shard count, because a
//!   battery observes the same point sequence wherever it lives.
//!
//! Soundness of publication: a snapshot is reachable by readers only
//! through the `Arc` published *after* its shard's batteries observed the
//! epoch's whole delta; the worker that built it had exclusive `&mut`
//! access to the shard (disjoint `chunks_mut` borrows), so no reader can
//! observe a half-applied epoch, and an un-dirty shard keeps its previous
//! snapshot, whose content is definitionally unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::forecast::{Forecast, ForecasterBattery};
use crate::memory::MemoryStore;
use crate::msg::SeriesKey;
use crate::shard::ShardMap;

/// What a snapshot serves for one series: the forecast precomputed at
/// publish time and the watermark it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesView {
    pub forecast: Option<Forecast>,
    pub last_t: f64,
}

/// An immutable, shareable view of one shard at one epoch. Entries are
/// key-sorted; lookups are binary searches (deterministic, no hash maps
/// on the serving path).
#[derive(Debug)]
pub struct ShardSnapshot {
    pub epoch: u64,
    entries: Vec<(SeriesKey, SeriesView)>,
}

impl ShardSnapshot {
    fn empty() -> ShardSnapshot {
        ShardSnapshot { epoch: 0, entries: Vec::new() }
    }

    pub fn get(&self, key: &SeriesKey) -> Option<&SeriesView> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key)).ok().map(|i| &self.entries[i].1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-series mutable state owned by exactly one shard.
struct SeriesSlot {
    battery: ForecasterBattery,
    last_t: f64,
}

/// One shard's mutable half: batteries plus the epoch's pending deltas.
struct ShardState {
    slots: BTreeMap<SeriesKey, SeriesSlot>,
    /// Points ingested since the last publish, in ingest order (memory
    /// stores iterate key-sorted, so this order is deterministic).
    pending: Vec<(SeriesKey, Vec<(f64, f64)>)>,
    pending_points: usize,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState { slots: BTreeMap::new(), pending: Vec::new(), pending_points: 0 }
    }

    /// Observe the pending deltas and emit the new snapshot's entries.
    fn apply_and_snapshot(&mut self) -> Vec<(SeriesKey, SeriesView)> {
        for (key, points) in self.pending.drain(..) {
            let slot = self.slots.entry(key).or_insert_with(|| SeriesSlot {
                battery: ForecasterBattery::classic(),
                last_t: f64::NEG_INFINITY,
            });
            for (t, v) in points {
                if t > slot.last_t {
                    slot.last_t = t;
                    slot.battery.observe(v);
                }
            }
        }
        self.pending_points = 0;
        self.slots
            .iter()
            .map(|(k, s)| {
                (k.clone(), SeriesView { forecast: s.battery.forecast(), last_t: s.last_t })
            })
            .collect()
    }
}

/// Serving-plane counters, exported as one structured snapshot alongside
/// the bench JSON (ROADMAP item 4's metrics-export remainder).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Current publication epoch.
    pub epoch: u64,
    /// Publishes that actually rebuilt at least one shard.
    pub epochs_published: u64,
    pub shards: usize,
    /// Series resident across all shards.
    pub series: usize,
    pub per_shard_series: Vec<usize>,
    /// Queries routed to each shard (lifetime).
    pub per_shard_queries: Vec<u64>,
    /// Ingested-but-unpublished points per shard (the publish queue).
    pub queue_depths: Vec<usize>,
    /// Max over non-empty shards of `epoch - snapshot.epoch`: how far the
    /// oldest still-current snapshot trails the publication clock.
    pub snapshot_epoch_lag: u64,
    /// Batches served (lifetime).
    pub batches: u64,
    /// Individual key lookups served (lifetime).
    pub queries: u64,
    /// Largest batch seen.
    pub max_batch: usize,
    /// Answers served for keys that had unpublished points pending at
    /// serve time — correct per the published epoch, stale per the wire.
    pub stale_served: u64,
    /// Keys absent from the snapshot entirely.
    pub misses: u64,
}

impl MetricsSnapshot {
    /// Hand-rolled JSON object (the bench-harness idiom; no serde in the
    /// registry-free workspace).
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| -> String {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        };
        let list_u64 = |v: &[u64]| -> String {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        };
        format!(
            "{{\"epoch\": {}, \"epochs_published\": {}, \"shards\": {}, \"series\": {}, \
             \"per_shard_series\": {}, \"per_shard_queries\": {}, \"queue_depths\": {}, \
             \"snapshot_epoch_lag\": {}, \"batches\": {}, \"queries\": {}, \"max_batch\": {}, \
             \"stale_served\": {}, \"misses\": {}}}",
            self.epoch,
            self.epochs_published,
            self.shards,
            self.series,
            list(&self.per_shard_series),
            list_u64(&self.per_shard_queries),
            list(&self.queue_depths),
            self.snapshot_epoch_lag,
            self.batches,
            self.queries,
            self.max_batch,
            self.stale_served,
            self.misses,
        )
    }
}

/// The sharded query-serving plane. See the module docs for the
/// publication protocol and its soundness argument.
pub struct ServingPlane {
    map: ShardMap,
    shards: Vec<ShardState>,
    snapshots: Vec<Arc<ShardSnapshot>>,
    /// Per-series ingest watermark: newest timestamp pulled from a store,
    /// including points still pending publication.
    ingest_mark: BTreeMap<SeriesKey, f64>,
    /// Keys with pending (unpublished) points — consulted by serving
    /// workers to count stale serves.
    pending_keys: BTreeSet<SeriesKey>,
    epoch: u64,
    epochs_published: u64,
    per_shard_queries: Vec<u64>,
    batches: u64,
    queries: u64,
    max_batch: usize,
    stale_served: u64,
    misses: u64,
}

impl ServingPlane {
    pub fn new(map: ShardMap) -> ServingPlane {
        let n = map.shards();
        ServingPlane {
            map,
            shards: (0..n).map(|_| ShardState::new()).collect(),
            snapshots: (0..n).map(|_| Arc::new(ShardSnapshot::empty())).collect(),
            ingest_mark: BTreeMap::new(),
            pending_keys: BTreeSet::new(),
            epoch: 0,
            epochs_published: 0,
            per_shard_queries: vec![0; n],
            batches: 0,
            queries: 0,
            max_batch: 0,
            stale_served: 0,
            misses: 0,
        }
    }

    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ingest one measurement directly (bench/test feed). Points at or
    /// below the series' ingest watermark are dropped, mirroring the
    /// store-pull path.
    pub fn ingest_point(&mut self, key: &SeriesKey, t: f64, value: f64) {
        let mark = self.ingest_mark.get(key).copied().unwrap_or(f64::NEG_INFINITY);
        if t <= mark {
            return;
        }
        self.ingest_mark.insert(key.clone(), t);
        let shard = self.map.shard_of(key);
        let st = &mut self.shards[shard];
        match st.pending.last_mut() {
            Some((k, pts)) if k == key => pts.push((t, value)),
            _ => st.pending.push((key.clone(), vec![(t, value)])),
        }
        st.pending_points += 1;
        self.pending_keys.insert(key.clone());
    }

    /// Pull every series' new points (O(Δ) per series) out of one memory
    /// store. Single-threaded by design: stores are actor-local
    /// (`Rc<RefCell<..>>`); only battery observation parallelizes.
    pub fn ingest_store(&mut self, store: &MemoryStore) {
        for (key, series) in &store.series {
            let mark = self.ingest_mark.get(key).copied().unwrap_or(f64::NEG_INFINITY);
            let delta = series.pairs_since(mark);
            let Some(&(newest, _)) = delta.last() else { continue };
            self.ingest_mark.insert(key.clone(), newest);
            let shard = self.map.shard_of(key);
            let st = &mut self.shards[shard];
            st.pending_points += delta.len();
            st.pending.push((key.clone(), delta));
            self.pending_keys.insert(key.clone());
        }
    }

    /// Observe all pending deltas and publish fresh immutable snapshots
    /// for the dirty shards, in parallel on up to `workers` scoped
    /// threads. Untouched shards keep their current snapshot (same
    /// content, older epoch stamp — visible as `snapshot_epoch_lag`).
    /// No-op when nothing is pending. Returns the current epoch.
    pub fn publish(&mut self, workers: usize) -> u64 {
        if self.shards.iter().all(|s| s.pending.is_empty()) {
            return self.epoch;
        }
        self.epoch += 1;
        self.epochs_published += 1;
        let epoch = self.epoch;
        let n = self.shards.len();
        let per = n.div_ceil(workers.max(1)).max(1);
        let mut rebuilt: Vec<(usize, Vec<(SeriesKey, SeriesView)>)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(per)
                .enumerate()
                .map(|(ci, chunk)| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for (i, st) in chunk.iter_mut().enumerate() {
                            if st.pending.is_empty() {
                                continue;
                            }
                            out.push((ci * per + i, st.apply_and_snapshot()));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                rebuilt.extend(h.join().expect("serving shard worker panicked"));
            }
        });
        rebuilt.sort_by_key(|(i, _)| *i);
        for (i, entries) in rebuilt {
            self.snapshots[i] = Arc::new(ShardSnapshot { epoch, entries });
        }
        self.pending_keys.clear();
        epoch
    }

    /// The current immutable snapshot of one shard; clone the `Arc` to
    /// keep reading it across later publishes.
    pub fn snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.snapshots[shard].clone()
    }

    /// Answer one batch inline (the single-reader path).
    pub fn serve_batch(&mut self, keys: &[SeriesKey]) -> Vec<(SeriesKey, Option<Forecast>)> {
        let batches = [keys.to_vec()];
        self.serve_batches(&batches, 1).pop().unwrap_or_default()
    }

    /// Serve a slice of batched multi-series queries concurrently on up
    /// to `workers` scoped reader threads. Answers are returned in batch
    /// order, each aligned with its request's keys, and are bit-identical
    /// for any `workers` and any shard count.
    pub fn serve_batches(
        &mut self,
        batches: &[Vec<SeriesKey>],
        workers: usize,
    ) -> Vec<Vec<(SeriesKey, Option<Forecast>)>> {
        struct Local {
            first: usize,
            answers: Vec<Vec<(SeriesKey, Option<Forecast>)>>,
            per_shard: Vec<u64>,
            stale: u64,
            misses: u64,
            max_batch: usize,
            keys: u64,
        }
        let map = &self.map;
        let snaps = &self.snapshots;
        let pending = &self.pending_keys;
        let shards_n = snaps.len();
        let per = batches.len().div_ceil(workers.max(1)).max(1);
        let mut locals: Vec<Local> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .chunks(per)
                .enumerate()
                .map(|(ci, chunk)| {
                    s.spawn(move || {
                        let mut l = Local {
                            first: ci * per,
                            answers: Vec::with_capacity(chunk.len()),
                            per_shard: vec![0u64; shards_n],
                            stale: 0,
                            misses: 0,
                            max_batch: 0,
                            keys: 0,
                        };
                        for batch in chunk {
                            l.max_batch = l.max_batch.max(batch.len());
                            let mut out = Vec::with_capacity(batch.len());
                            for key in batch {
                                let shard = map.shard_of(key);
                                l.per_shard[shard] += 1;
                                l.keys += 1;
                                let view = snaps[shard].get(key);
                                match view {
                                    Some(v) => {
                                        if pending.contains(key) {
                                            l.stale += 1;
                                        }
                                        out.push((key.clone(), v.forecast.clone()));
                                    }
                                    None => {
                                        l.misses += 1;
                                        out.push((key.clone(), None));
                                    }
                                }
                            }
                            l.answers.push(out);
                        }
                        l
                    })
                })
                .collect();
            for h in handles {
                locals.push(h.join().expect("serving reader worker panicked"));
            }
        });
        // Merge in worker order: counters sum associatively, answers slot
        // back by chunk offset — bit-identical regardless of which worker
        // finished first.
        let mut out: Vec<Vec<(SeriesKey, Option<Forecast>)>> = vec![Vec::new(); batches.len()];
        for l in locals {
            for (i, a) in l.answers.into_iter().enumerate() {
                out[l.first + i] = a;
            }
            for (sh, c) in l.per_shard.iter().enumerate() {
                self.per_shard_queries[sh] += c;
            }
            self.stale_served += l.stale;
            self.misses += l.misses;
            self.max_batch = self.max_batch.max(l.max_batch);
            self.queries += l.keys;
        }
        self.batches += batches.len() as u64;
        out
    }

    /// The structured metrics export: one consistent counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let per_shard_series: Vec<usize> = self.shards.iter().map(|s| s.slots.len()).collect();
        let queue_depths: Vec<usize> = self.shards.iter().map(|s| s.pending_points).collect();
        let lag = self
            .snapshots
            .iter()
            .zip(&per_shard_series)
            .filter(|(_, n)| **n > 0)
            .map(|(s, _)| self.epoch - s.epoch)
            .max()
            .unwrap_or(0);
        MetricsSnapshot {
            epoch: self.epoch,
            epochs_published: self.epochs_published,
            shards: self.shards.len(),
            series: per_shard_series.iter().sum(),
            per_shard_series,
            per_shard_queries: self.per_shard_queries.clone(),
            queue_depths,
            snapshot_epoch_lag: lag,
            batches: self.batches,
            queries: self.queries,
            max_batch: self.max_batch,
            stale_served: self.stale_served,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Resource;

    fn key(i: usize) -> SeriesKey {
        SeriesKey::host(Resource::CpuLoad, &format!("h{i}.x"))
    }

    fn plane(shards: usize) -> ServingPlane {
        ServingPlane::new(ShardMap::hashed(shards))
    }

    /// Seeded deterministic values (splitmix-style), no entropy.
    fn value(series: usize, t: usize) -> f64 {
        let mut z = (series as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(t as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        0.5 + (z % 1000) as f64 / 1000.0
    }

    fn feed(p: &mut ServingPlane, series: usize, points: usize) {
        for i in 0..series {
            for t in 0..points {
                p.ingest_point(&key(i), t as f64, value(i, t));
            }
        }
    }

    #[test]
    fn answers_are_shard_count_invariant() {
        let keys: Vec<SeriesKey> = (0..40).map(key).collect();
        let mut baseline = None;
        for shards in [1usize, 2, 4, 8] {
            let mut p = plane(shards);
            feed(&mut p, 40, 30);
            p.publish(4);
            let got = p.serve_batch(&keys);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(b, &got, "{shards} shards diverged"),
            }
        }
    }

    #[test]
    fn answers_are_worker_count_invariant() {
        let batches: Vec<Vec<SeriesKey>> =
            (0..16).map(|b| (0..8).map(|i| key(b * 8 + i)).collect()).collect();
        let mut p1 = plane(4);
        feed(&mut p1, 128, 20);
        p1.publish(1);
        let a1 = p1.serve_batches(&batches, 1);
        let mut p8 = plane(4);
        feed(&mut p8, 128, 20);
        p8.publish(8);
        let a8 = p8.serve_batches(&batches, 8);
        assert_eq!(a1, a8);
        assert_eq!(p1.metrics(), p8.metrics());
    }

    #[test]
    fn snapshots_match_a_fresh_battery_replay() {
        let mut p = plane(4);
        feed(&mut p, 10, 50);
        p.publish(4);
        for i in 0..10 {
            let k = key(i);
            let got = p.serve_batch(std::slice::from_ref(&k))[0].1.clone();
            let mut oracle = ForecasterBattery::classic();
            oracle.observe_all((0..50).map(|t| value(i, t)));
            assert_eq!(got, oracle.forecast(), "series {i}");
        }
    }

    #[test]
    fn old_snapshot_survives_a_new_epoch() {
        let mut p = plane(1);
        feed(&mut p, 2, 10);
        p.publish(1);
        let old = p.snapshot(0);
        let old_view = old.get(&key(0)).expect("present").clone();
        // New points, new epoch: the held Arc still serves the old view.
        p.ingest_point(&key(0), 10.0, 9.9);
        p.publish(1);
        assert_eq!(old.get(&key(0)), Some(&old_view));
        assert!(p.snapshot(0).get(&key(0)).expect("present").last_t > old_view.last_t);
    }

    #[test]
    fn delta_ingest_is_idempotent_and_epochs_lag() {
        let mut p = plane(2);
        feed(&mut p, 4, 10);
        // Double-feed: watermarks drop the duplicates.
        feed(&mut p, 4, 10);
        p.publish(2);
        let m = p.metrics();
        assert_eq!(m.series, 4);
        assert_eq!(m.epoch, 1);
        assert_eq!(m.queue_depths, vec![0, 0]);
        // Feed only series routed to one shard: the other shard's
        // snapshot stays at epoch 1 and the lag metric says so.
        p.ingest_point(&key(0), 100.0, 1.0);
        p.publish(2);
        let m = p.metrics();
        assert_eq!(m.epoch, 2);
        assert_eq!(m.snapshot_epoch_lag, 1);
        // Publishing with nothing pending is a no-op.
        assert_eq!(p.publish(2), 2);
        assert_eq!(p.metrics().epochs_published, 2);
    }

    #[test]
    fn stale_and_miss_counters() {
        let mut p = plane(2);
        feed(&mut p, 2, 5);
        p.publish(2);
        // Unpublished tail → stale serve for that key only.
        p.ingest_point(&key(0), 50.0, 1.0);
        let ghost = SeriesKey::host(Resource::CpuLoad, "ghost.x");
        let ans = p.serve_batch(&[key(0), key(1), ghost.clone()]);
        assert!(ans[0].1.is_some());
        assert!(ans[1].1.is_some());
        assert!(ans[2].1.is_none());
        let m = p.metrics();
        assert_eq!(m.stale_served, 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.queries, 3);
        assert_eq!(m.batches, 1);
        assert_eq!(m.max_batch, 3);
        assert_eq!(m.per_shard_queries.iter().sum::<u64>(), 3);
        // JSON export mentions every field group.
        let j = m.to_json();
        for field in
            ["per_shard_queries", "queue_depths", "snapshot_epoch_lag", "stale_served", "misses"]
        {
            assert!(j.contains(field), "{j}");
        }
    }
}
