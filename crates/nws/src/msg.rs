//! The NWS wire messages exchanged between processes.
//!
//! The real NWS has a binary TCP protocol; we reproduce the *conversations*
//! (who asks whom for what, §2.1) rather than the encoding. Message sizes
//! passed to the simulator approximate the real payloads so control traffic
//! has realistic latency.

use netsim::units::Bytes;

use crate::clique::CliqueRetarget;
use crate::forecast::Forecast;

/// What a series measures — the NWS resource kinds of §2 (network link
/// characteristics plus host resources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// End-to-end throughput (Mbps), 64 KiB timed transfer.
    Bandwidth,
    /// Small-message round-trip time (ms), 4-byte transfer.
    Latency,
    /// TCP connect-disconnect time (ms).
    ConnectTime,
    /// CPU availability fraction on a host (synthetic host-load model).
    CpuLoad,
    /// Free memory fraction on a host (synthetic).
    FreeMemory,
}

impl Resource {
    /// All resource kinds, in [`Resource::index`] order — the dense axis of
    /// interned `(resource, src, dst)` series tables.
    pub const ALL: [Resource; 5] = [
        Resource::Bandwidth,
        Resource::Latency,
        Resource::ConnectTime,
        Resource::CpuLoad,
        Resource::FreeMemory,
    ];

    /// Dense index (0..[`Resource::ALL`]`.len()`): lets consumers key
    /// series by `(resource index, interned host id, interned host id)`
    /// instead of a [`SeriesKey`] holding two heap strings.
    pub fn index(self) -> usize {
        match self {
            Resource::Bandwidth => 0,
            Resource::Latency => 1,
            Resource::ConnectTime => 2,
            Resource::CpuLoad => 3,
            Resource::FreeMemory => 4,
        }
    }

    /// Inverse of [`Resource::index`].
    pub fn from_index(i: usize) -> Option<Resource> {
        Resource::ALL.get(i).copied()
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Resource::Bandwidth => "bandwidthTcp",
            Resource::Latency => "latencyTcp",
            Resource::ConnectTime => "connectTimeTcp",
            Resource::CpuLoad => "availableCpu",
            Resource::FreeMemory => "freeMemory",
        }
    }

    /// Whether this resource concerns a host pair (true) or a single host.
    pub fn is_link_resource(self) -> bool {
        matches!(self, Resource::Bandwidth | Resource::Latency | Resource::ConnectTime)
    }
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identity of one measurement series: a resource on a link (src→dst) or a
/// host (dst == src).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    pub resource: Resource,
    pub src: String,
    pub dst: String,
}

impl SeriesKey {
    pub fn link(resource: Resource, src: &str, dst: &str) -> Self {
        debug_assert!(resource.is_link_resource());
        SeriesKey { resource, src: src.to_string(), dst: dst.to_string() }
    }

    pub fn host(resource: Resource, host: &str) -> Self {
        debug_assert!(!resource.is_link_resource());
        SeriesKey { resource, src: host.to_string(), dst: host.to_string() }
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.src == self.dst {
            write!(f, "{}:{}", self.resource, self.src)
        } else {
            write!(f, "{}:{}/{}", self.resource, self.src, self.dst)
        }
    }
}

/// The kinds of NWS server processes (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    NameServer,
    Memory,
    Sensor,
    Forecaster,
}

/// Messages between NWS processes.
#[derive(Debug, Clone)]
pub enum NwsMsg {
    // ---- name server directory -----------------------------------------
    /// A server announces itself (step Δ of Figure §2.1).
    Register {
        name: String,
        kind: ServerKind,
    },
    /// A series announces which memory server stores it.
    RegisterSeries {
        key: SeriesKey,
        memory: netsim::ProcessId,
    },
    /// Where is the memory in charge of `key`? (step 2)
    WhereIs {
        key: SeriesKey,
    },
    WhereIsReply {
        key: SeriesKey,
        memory: Option<netsim::ProcessId>,
    },

    // ---- memory ----------------------------------------------------------
    /// A sensor stores one measurement. `seq` is a per-sender sequence
    /// number (starting at 1) so the memory can acknowledge receipt and
    /// deduplicate retries and network-duplicated copies; a sensor buffers
    /// the store until the matching [`NwsMsg::StoreAck`] arrives.
    Store {
        key: SeriesKey,
        seq: u64,
        t: f64,
        value: f64,
    },
    /// The memory acknowledges receipt of the sender's store `seq`. Sent
    /// even when the point itself is rejected (non-monotone timestamp) or
    /// recognized as a duplicate — an ack means "received", not "stored",
    /// so retries stop exactly when the wire delivered the message once.
    StoreAck {
        seq: u64,
    },
    /// Point a sensor's stores at a different memory server (sent by the
    /// supervisor after it restarts a memory under a fresh pid); the
    /// sensor immediately drains its unacked buffer to the new target.
    RetargetMemory {
        memory: netsim::ProcessId,
    },

    // ---- supervision heartbeats -------------------------------------------
    /// Liveness probe from the supervisor.
    Ping,
    /// Liveness reply.
    Pong,
    /// A forecaster fetches the history of a series (step 3).
    Fetch {
        key: SeriesKey,
    },
    /// Delta fetch: only the points with `t > after`. A forecaster holding
    /// persistent battery state for the series asks for the measurements
    /// it has not yet observed, so a steady-state query ships O(Δ) wire
    /// bytes instead of the whole ring.
    FetchSince {
        key: SeriesKey,
        after: f64,
    },
    /// Reply to both `Fetch` (full ring) and `FetchSince` (suffix).
    /// `latest` is the timestamp of the newest point the memory holds for
    /// this series (`NEG_INFINITY` when it holds none): a forecaster whose
    /// delta-fetch watermark is *ahead* of `latest` is talking to a store
    /// that was restored to an older state, and must rewind rather than
    /// silently serve across the gap.
    FetchReply {
        key: SeriesKey,
        points: Vec<(f64, f64)>,
        latest: f64,
    },

    // ---- clique token ring (paper §2.3, [23]) -----------------------------
    /// The measurement token: only the holder may run experiments.
    Token {
        clique: String,
        seq: u64,
        round: u64,
    },

    // ---- live reconfiguration (plan repair under topology churn) ----------
    /// Retarget a sensor's clique memberships in place: retire the cliques
    /// in `remove`, install the configurations in `add`. Sent by the
    /// deployment manager when an incremental plan repair migrates cliques
    /// instead of tearing the system down.
    Retarget {
        add: Vec<CliqueRetarget>,
        remove: Vec<String>,
    },

    // ---- host-level measurement locks (the paper's §6 proposal:
    // "a possibility to lock hosts (and not networks) is still needed") ----
    /// A token holder asks a peer for permission to probe it.
    LockRequest,
    /// The peer is free and grants the probe.
    LockGrant,
    /// The holder finished probing the peer.
    LockRelease,

    // ---- client query path (steps 1 and 4) --------------------------------
    Query {
        key: SeriesKey,
    },
    QueryReply {
        key: SeriesKey,
        forecast: Option<Forecast>,
    },
    /// Batched multi-series query: one message, one shard-fanout on the
    /// forecaster, one reply. `id` is a client-chosen correlation handle
    /// echoed in the reply; duplicate keys are allowed and each slot is
    /// answered. Keys resolving to the same unresolved series share one
    /// in-flight directory lookup/fetch (single flight) with every other
    /// pending query, batched or single.
    QueryBatch {
        id: u64,
        keys: Vec<SeriesKey>,
    },
    /// Reply to [`NwsMsg::QueryBatch`]: forecasts in slot order, aligned
    /// with the request's `keys`.
    QueryBatchReply {
        id: u64,
        forecasts: Vec<(SeriesKey, Option<Forecast>)>,
    },
}

impl NwsMsg {
    /// Approximate wire size of the message, for latency modelling.
    pub fn wire_size(&self) -> Bytes {
        let b = match self {
            NwsMsg::Register { name, .. } => 64 + name.len(),
            NwsMsg::RegisterSeries { .. } => 128,
            NwsMsg::WhereIs { .. } | NwsMsg::WhereIsReply { .. } => 96,
            NwsMsg::Store { .. } => 72,
            NwsMsg::StoreAck { .. } => 24,
            NwsMsg::RetargetMemory { .. } => 24,
            NwsMsg::Ping | NwsMsg::Pong => 16,
            NwsMsg::Fetch { .. } => 64,
            NwsMsg::FetchSince { .. } => 72,
            NwsMsg::FetchReply { points, .. } => 72 + 16 * points.len(),
            NwsMsg::Token { .. } => 32,
            NwsMsg::Retarget { add, remove } => {
                64 + add.iter().map(|a| 48 + 24 * a.ring.len()).sum::<usize>() + 24 * remove.len()
            }
            NwsMsg::LockRequest | NwsMsg::LockGrant | NwsMsg::LockRelease => 16,
            NwsMsg::Query { .. } => 64,
            NwsMsg::QueryReply { .. } => 128,
            NwsMsg::QueryBatch { keys, .. } => 24 + 64 * keys.len(),
            NwsMsg::QueryBatchReply { forecasts, .. } => 24 + 128 * forecasts.len(),
        };
        Bytes::new(b as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_key_display() {
        let k = SeriesKey::link(Resource::Bandwidth, "a.x", "b.x");
        assert_eq!(k.to_string(), "bandwidthTcp:a.x/b.x");
        let h = SeriesKey::host(Resource::CpuLoad, "a.x");
        assert_eq!(h.to_string(), "availableCpu:a.x");
    }

    #[test]
    fn resource_classification() {
        assert!(Resource::Bandwidth.is_link_resource());
        assert!(Resource::Latency.is_link_resource());
        assert!(Resource::ConnectTime.is_link_resource());
        assert!(!Resource::CpuLoad.is_link_resource());
        assert!(!Resource::FreeMemory.is_link_resource());
    }

    #[test]
    fn wire_sizes_scale_with_history() {
        let small = NwsMsg::FetchReply {
            key: SeriesKey::host(Resource::CpuLoad, "a"),
            points: vec![],
            latest: f64::NEG_INFINITY,
        };
        let big = NwsMsg::FetchReply {
            key: SeriesKey::host(Resource::CpuLoad, "a"),
            points: vec![(0.0, 0.0); 100],
            latest: 99.0,
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(
            NwsMsg::Token { clique: "c".into(), seq: 0, round: 0 }.wire_size(),
            Bytes::new(32)
        );
    }

    #[test]
    fn key_ordering_is_total() {
        let a = SeriesKey::link(Resource::Bandwidth, "a", "b");
        let b = SeriesKey::link(Resource::Latency, "a", "b");
        assert!(a < b || b < a);
    }

    #[test]
    fn resource_index_round_trips() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Resource::from_index(i), Some(*r));
        }
        assert_eq!(Resource::from_index(Resource::ALL.len()), None);
    }
}
