//! Synthetic host-load model feeding the CPU / memory sensors.
//!
//! NWS monitors "the CPU load, the available free memory or the free disk
//! space on any host" (paper §2). The simulator has no real CPUs, so the
//! substitution (per DESIGN.md) is a seeded stochastic model producing
//! series with the statistical character of real load traces: an AR(1)
//! baseline plus occasional job arrivals that step the load up for a
//! while. The forecaster pipeline consumes these exactly like network
//! series.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-host synthetic load generator. Values are "available CPU fraction"
/// in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct HostLoadModel {
    rng: SmallRng,
    /// AR(1) state around the idle baseline.
    state: f64,
    /// Remaining samples of an active job burst (0 = idle).
    burst_left: u32,
    burst_depth: f64,
    /// Probability a new job burst starts at each sample.
    burst_prob: f64,
}

impl HostLoadModel {
    pub fn new(seed: u64) -> Self {
        HostLoadModel {
            rng: SmallRng::seed_from_u64(seed),
            state: 0.9,
            burst_left: 0,
            burst_depth: 0.0,
            burst_prob: 0.02,
        }
    }

    /// With a custom burst probability (0 disables bursts).
    pub fn with_burst_prob(seed: u64, burst_prob: f64) -> Self {
        HostLoadModel { burst_prob, ..Self::new(seed) }
    }

    /// Next available-CPU sample.
    pub fn sample(&mut self) -> f64 {
        // AR(1) around 0.9 idle availability.
        let noise = self.rng.gen_range(-0.05..0.05);
        self.state = 0.9 + 0.8 * (self.state - 0.9) + noise;

        if self.burst_left == 0 && self.rng.gen_range(0.0..1.0) < self.burst_prob {
            self.burst_left = self.rng.gen_range(10..60);
            self.burst_depth = self.rng.gen_range(0.3..0.8);
        }
        let mut v = self.state;
        if self.burst_left > 0 {
            self.burst_left -= 1;
            v -= self.burst_depth;
        }
        v.clamp(0.0, 1.0)
    }

    /// Free-memory fraction: slower-moving, derived from the same state.
    pub fn sample_memory(&mut self) -> f64 {
        let noise = self.rng.gen_range(-0.01..0.01);
        (0.6 + 0.3 * (self.state - 0.9) + noise).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_unit_interval() {
        let mut m = HostLoadModel::new(1);
        for _ in 0..5_000 {
            let v = m.sample();
            assert!((0.0..=1.0).contains(&v), "sample {v} out of range");
            let mem = m.sample_memory();
            assert!((0.0..=1.0).contains(&mem));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut m = HostLoadModel::new(9);
            (0..100).map(|_| m.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut m = HostLoadModel::new(9);
            (0..100).map(|_| m.sample()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut m = HostLoadModel::new(10);
            (0..100).map(|_| m.sample()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bursts_depress_availability() {
        // With bursts disabled the mean sits near 0.9; with frequent
        // bursts it must drop noticeably.
        let mean =
            |mut m: HostLoadModel| -> f64 { (0..3000).map(|_| m.sample()).sum::<f64>() / 3000.0 };
        let idle = mean(HostLoadModel::with_burst_prob(5, 0.0));
        let busy = mean(HostLoadModel::with_burst_prob(5, 0.2));
        assert!(idle > 0.85, "idle mean {idle}");
        assert!(busy < idle - 0.1, "busy mean {busy} vs idle {idle}");
    }

    #[test]
    fn series_has_temporal_correlation() {
        // AR(1) must correlate adjacent samples more than distant ones.
        let mut m = HostLoadModel::with_burst_prob(3, 0.0);
        let xs: Vec<f64> = (0..2000).map(|_| m.sample()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let autocov = |lag: usize| -> f64 {
            xs.windows(lag + 1).map(|w| (w[0] - mean) * (w[lag] - mean)).sum::<f64>()
                / (xs.len() - lag) as f64
        };
        assert!(autocov(1) > autocov(20) * 2.0);
    }
}
