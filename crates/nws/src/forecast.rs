//! The NWS forecaster battery: "statistical forecasters allowing to ...
//! predict the future evolutions" (paper §2).
//!
//! The real NWS runs a family of cheap predictors side by side on every
//! series; at each step every predictor guesses the next value, its error
//! is accumulated, and the *battery* reports the prediction of whichever
//! predictor currently has the lowest cumulative error (dynamic predictor
//! selection, Wolski et al., the paper's reference 22). We implement the
//! classic family:
//!
//! * `LAST` — last value;
//! * `RUN_AVG` — running mean of everything seen;
//! * `SW_AVG(k)` — sliding-window mean, several window sizes;
//! * `MEDIAN(k)` — sliding-window median;
//! * `TRIM_MEAN(k, α)` — sliding trimmed mean;
//! * `EXP_SMOOTH(g)` — exponential smoothing, several gains;
//! * `ADAPT_AVG` — mean over an adaptive window that resets on jumps;
//! * `HOLT(α,β)` — Holt's linear level+trend method (extrapolates ramps).
//!
//! Selection can minimise MSE or MAE; both winners are reported.

use std::collections::VecDeque;

/// A single prediction method.
pub trait Predictor {
    /// Feed the next observed value.
    fn observe(&mut self, value: f64);
    /// Predict the next value, if enough data has been seen.
    fn predict(&self) -> Option<f64>;
    fn name(&self) -> &str;
}

/// Last observed value.
#[derive(Debug, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Predictor for LastValue {
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &str {
        "LAST"
    }
}

/// Running mean of all observations.
#[derive(Debug, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Predictor for RunningMean {
    fn observe(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
    fn name(&self) -> &str {
        "RUN_AVG"
    }
}

/// Sliding-window mean.
#[derive(Debug)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    k: usize,
    sum: f64,
    name: String,
}

impl SlidingMean {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SlidingMean {
            window: VecDeque::with_capacity(k),
            k,
            sum: 0.0,
            name: format!("SW_AVG({k})"),
        }
    }
}

impl Predictor for SlidingMean {
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.sum -= self.window.pop_front().expect("non-empty");
        }
        self.window.push_back(value);
        self.sum += value;
    }
    fn predict(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Sliding-window median.
#[derive(Debug)]
pub struct SlidingMedian {
    window: VecDeque<f64>,
    k: usize,
    name: String,
}

impl SlidingMedian {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SlidingMedian { window: VecDeque::with_capacity(k), k, name: format!("MEDIAN({k})") }
    }
}

impl Predictor for SlidingMedian {
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = v.len();
        Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Sliding trimmed mean: drop the `trim` smallest and largest fractions.
#[derive(Debug)]
pub struct TrimmedMean {
    window: VecDeque<f64>,
    k: usize,
    trim: f64,
    name: String,
}

impl TrimmedMean {
    pub fn new(k: usize, trim: f64) -> Self {
        assert!(k > 0 && (0.0..0.5).contains(&trim));
        TrimmedMean {
            window: VecDeque::with_capacity(k),
            k,
            trim,
            name: format!("TRIM_MEAN({k},{trim})"),
        }
    }
}

impl Predictor for TrimmedMean {
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let cut = ((v.len() as f64) * self.trim).floor() as usize;
        let kept = &v[cut..v.len() - cut];
        if kept.is_empty() {
            return Some(v[v.len() / 2]);
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Exponential smoothing with gain `g`.
#[derive(Debug)]
pub struct ExpSmooth {
    state: Option<f64>,
    gain: f64,
    name: String,
}

impl ExpSmooth {
    pub fn new(gain: f64) -> Self {
        assert!((0.0..=1.0).contains(&gain));
        ExpSmooth { state: None, gain, name: format!("EXP_SMOOTH({gain})") }
    }
}

impl Predictor for ExpSmooth {
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            Some(s) => s + self.gain * (value - s),
            None => value,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Holt's linear method: exponentially smoothed level plus trend — the
/// only battery member that extrapolates a slope, so it wins on steadily
/// ramping series (e.g. a link saturating as a long transfer grows).
#[derive(Debug)]
pub struct HoltLinear {
    level: Option<f64>,
    trend: f64,
    alpha: f64,
    beta: f64,
    name: String,
}

impl HoltLinear {
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        HoltLinear { level: None, trend: 0.0, alpha, beta, name: format!("HOLT({alpha},{beta})") }
    }
}

impl Predictor for HoltLinear {
    fn observe(&mut self, value: f64) {
        match self.level {
            None => self.level = Some(value),
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }
    fn predict(&self) -> Option<f64> {
        self.level.map(|l| l + self.trend)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Mean over an adaptive window that resets when a value jumps by more
/// than `jump` relative to the current mean — tracks regime changes faster
/// than a fixed window.
#[derive(Debug)]
pub struct AdaptiveMean {
    window: Vec<f64>,
    jump: f64,
}

impl AdaptiveMean {
    pub fn new(jump: f64) -> Self {
        assert!(jump > 0.0);
        AdaptiveMean { window: Vec::new(), jump }
    }
}

impl Predictor for AdaptiveMean {
    fn observe(&mut self, value: f64) {
        if let Some(mean) = self.predict() {
            let denom = mean.abs().max(1e-12);
            if ((value - mean).abs() / denom) > self.jump {
                self.window.clear();
            }
        }
        self.window.push(value);
        // Bound memory: an adaptive window longer than 256 points behaves
        // like the running mean anyway.
        if self.window.len() > 256 {
            self.window.remove(0);
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
    }
    fn name(&self) -> &str {
        "ADAPT_AVG"
    }
}

/// A produced forecast with its provenance and error estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The reported prediction (from the MSE winner).
    pub value: f64,
    /// Name of the predictor that produced it.
    pub method: String,
    /// Root of the winner's cumulative mean squared error.
    pub rmse: f64,
    /// The MAE winner's prediction (NWS reports both).
    pub mae_value: f64,
    pub mae_method: String,
    pub mae: f64,
    /// Number of observations behind this forecast.
    pub samples: u64,
}

/// The racing battery: every predictor forecasts each next value, errors
/// accumulate, the current winner answers queries.
pub struct ForecasterBattery {
    predictors: Vec<Box<dyn Predictor + Send>>,
    sq_err: Vec<f64>,
    abs_err: Vec<f64>,
    n_scored: Vec<u64>,
    samples: u64,
}

impl Default for ForecasterBattery {
    fn default() -> Self {
        Self::classic()
    }
}

impl ForecasterBattery {
    /// The classic NWS family.
    pub fn classic() -> Self {
        let predictors: Vec<Box<dyn Predictor + Send>> = vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(11)),
            Box::new(SlidingMean::new(21)),
            Box::new(SlidingMean::new(31)),
            Box::new(SlidingMedian::new(5)),
            Box::new(SlidingMedian::new(11)),
            Box::new(SlidingMedian::new(21)),
            Box::new(SlidingMedian::new(31)),
            Box::new(TrimmedMean::new(31, 0.3)),
            Box::new(ExpSmooth::new(0.05)),
            Box::new(ExpSmooth::new(0.1)),
            Box::new(ExpSmooth::new(0.25)),
            Box::new(ExpSmooth::new(0.5)),
            Box::new(ExpSmooth::new(0.75)),
            Box::new(ExpSmooth::new(0.9)),
            Box::new(AdaptiveMean::new(0.5)),
            Box::new(HoltLinear::new(0.5, 0.3)),
            Box::new(HoltLinear::new(0.8, 0.5)),
        ];
        Self::with_predictors(predictors)
    }

    pub fn with_predictors(predictors: Vec<Box<dyn Predictor + Send>>) -> Self {
        let n = predictors.len();
        assert!(n > 0, "battery needs at least one predictor");
        ForecasterBattery {
            predictors,
            sq_err: vec![0.0; n],
            abs_err: vec![0.0; n],
            n_scored: vec![0; n],
            samples: 0,
        }
    }

    /// Feed one observation: score every predictor's standing prediction
    /// against it, then update them.
    pub fn observe(&mut self, value: f64) {
        for (i, p) in self.predictors.iter_mut().enumerate() {
            if let Some(pred) = p.predict() {
                let e = pred - value;
                self.sq_err[i] += e * e;
                self.abs_err[i] += e.abs();
                self.n_scored[i] += 1;
            }
            p.observe(value);
        }
        self.samples += 1;
    }

    /// Replay a whole history (used by forecasters answering queries).
    pub fn observe_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.observe(v);
        }
    }

    fn winner_by(&self, errs: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.predictors.iter().enumerate() {
            if p.predict().is_none() {
                continue;
            }
            // Mean error; unscored predictors rank last among available.
            let mean = if self.n_scored[i] > 0 {
                errs[i] / self.n_scored[i] as f64
            } else {
                f64::INFINITY
            };
            match best {
                Some((_, b)) if b <= mean => {}
                _ => best = Some((i, mean)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// The current forecast, if any data has been seen.
    pub fn forecast(&self) -> Option<Forecast> {
        let mse_i = self.winner_by(&self.sq_err)?;
        let mae_i = self.winner_by(&self.abs_err)?;
        let mse_mean = if self.n_scored[mse_i] > 0 {
            self.sq_err[mse_i] / self.n_scored[mse_i] as f64
        } else {
            0.0
        };
        let mae_mean = if self.n_scored[mae_i] > 0 {
            self.abs_err[mae_i] / self.n_scored[mae_i] as f64
        } else {
            0.0
        };
        Some(Forecast {
            value: self.predictors[mse_i].predict().expect("winner has prediction"),
            method: self.predictors[mse_i].name().to_string(),
            rmse: mse_mean.sqrt(),
            mae_value: self.predictors[mae_i].predict().expect("winner has prediction"),
            mae_method: self.predictors[mae_i].name().to_string(),
            mae: mae_mean,
            samples: self.samples,
        })
    }

    /// Cumulative mean squared error of every predictor, by name — the
    /// data behind experiment E8.
    pub fn error_table(&self) -> Vec<(String, f64, f64)> {
        self.predictors
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let n = self.n_scored[i].max(1) as f64;
                (p.name().to_string(), self.sq_err[i] / n, self.abs_err[i] / n)
            })
            .collect()
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::default();
        assert_eq!(p.predict(), None);
        p.observe(3.0);
        p.observe(7.0);
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn running_mean() {
        let mut p = RunningMean::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            p.observe(v);
        }
        assert!((p.predict().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sliding_mean_window() {
        let mut p = SlidingMean::new(2);
        for v in [1.0, 2.0, 10.0] {
            p.observe(v);
        }
        assert!((p.predict().unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(p.name(), "SW_AVG(2)");
    }

    #[test]
    fn sliding_median_odd_even() {
        let mut p = SlidingMedian::new(3);
        p.observe(5.0);
        assert_eq!(p.predict(), Some(5.0));
        p.observe(1.0);
        assert_eq!(p.predict(), Some(3.0)); // even window: midpoint
        p.observe(9.0);
        assert_eq!(p.predict(), Some(5.0));
        p.observe(7.0); // window = [1, 9, 7]
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn trimmed_mean_ignores_outliers() {
        let mut p = TrimmedMean::new(5, 0.2);
        for v in [10.0, 10.0, 10.0, 10.0, 1000.0] {
            p.observe(v);
        }
        // One value trimmed from each end: mean of [10, 10, 10].
        assert!((p.predict().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exp_smooth_converges() {
        let mut p = ExpSmooth::new(0.5);
        p.observe(0.0);
        for _ in 0..20 {
            p.observe(10.0);
        }
        assert!((p.predict().unwrap() - 10.0).abs() < 0.01);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut p = HoltLinear::new(0.5, 0.3);
        for i in 0..100 {
            p.observe(10.0 + 2.0 * i as f64);
        }
        // Next value would be 10 + 2*100 = 210; Holt should be close.
        let pred = p.predict().unwrap();
        assert!((pred - 210.0).abs() < 2.0, "holt predicted {pred}");
    }

    #[test]
    fn battery_prefers_holt_on_ramps() {
        let mut battery = ForecasterBattery::classic();
        for i in 0..400 {
            battery.observe(5.0 + 0.5 * i as f64);
        }
        let f = battery.forecast().unwrap();
        assert!(
            f.method.starts_with("HOLT"),
            "ramping series should crown Holt, got {} ({:?})",
            f.method,
            battery.error_table().iter().take(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_mean_resets_on_jump() {
        let mut p = AdaptiveMean::new(0.5);
        for _ in 0..50 {
            p.observe(100.0);
        }
        // Regime change: 100 → 10.
        p.observe(10.0);
        p.observe(10.0);
        let pred = p.predict().unwrap();
        assert!((pred - 10.0).abs() < 1e-9, "adaptive mean should reset, got {pred}");
    }

    #[test]
    fn battery_picks_last_value_for_random_walk() {
        // On a random walk the last value is the optimal predictor; the
        // battery must figure that out.
        let mut rng = SmallRng::seed_from_u64(42);
        let mut battery = ForecasterBattery::classic();
        let mut x = 50.0;
        for _ in 0..500 {
            x += rng.gen_range(-1.0..1.0);
            battery.observe(x);
        }
        let f = battery.forecast().unwrap();
        assert_eq!(f.method, "LAST", "rmse table: {:?}", battery.error_table());
        assert!((f.value - x).abs() < 1e-9);
        assert_eq!(f.samples, 500);
    }

    #[test]
    fn battery_picks_averaging_for_noisy_constant() {
        // White noise around a constant: means beat LAST by ~√2 in RMSE.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut battery = ForecasterBattery::classic();
        for _ in 0..800 {
            battery.observe(20.0 + rng.gen_range(-5.0..5.0));
        }
        let f = battery.forecast().unwrap();
        assert_ne!(f.method, "LAST");
        assert!((f.value - 20.0).abs() < 1.0, "forecast {f:?}");
    }

    #[test]
    fn battery_adapts_to_regime_change() {
        let mut battery = ForecasterBattery::classic();
        for _ in 0..200 {
            battery.observe(100.0);
        }
        for _ in 0..50 {
            battery.observe(10.0);
        }
        let f = battery.forecast().unwrap();
        assert!(
            (f.value - 10.0).abs() < 5.0,
            "forecast should track the new regime, got {}",
            f.value
        );
    }

    #[test]
    fn empty_battery_has_no_forecast() {
        let battery = ForecasterBattery::classic();
        assert!(battery.forecast().is_none());
        assert_eq!(battery.samples(), 0);
    }

    #[test]
    fn single_observation_forecasts() {
        let mut battery = ForecasterBattery::classic();
        battery.observe(42.0);
        let f = battery.forecast().unwrap();
        assert!((f.value - 42.0).abs() < 1e-12);
    }

    #[test]
    fn error_table_covers_all_predictors() {
        let mut battery = ForecasterBattery::classic();
        battery.observe_all([1.0, 2.0, 3.0]);
        let table = battery.error_table();
        assert_eq!(table.len(), 20);
        assert!(table.iter().any(|(n, _, _)| n == "LAST"));
        assert!(table.iter().any(|(n, _, _)| n == "ADAPT_AVG"));
    }

    #[test]
    fn mse_and_mae_winners_can_differ() {
        // Occasional large spikes: MAE is robust to them, MSE punishes
        // them; with enough data the winners' reported values both stay
        // near the base level.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut battery = ForecasterBattery::classic();
        for i in 0..600 {
            let v = if i % 50 == 49 { 500.0 } else { 10.0 + rng.gen_range(-1.0..1.0) };
            battery.observe(v);
        }
        let f = battery.forecast().unwrap();
        assert!(f.rmse > 0.0 && f.mae > 0.0);
        assert!(f.value < 120.0, "MSE winner {} = {}", f.method, f.value);
        assert!(f.mae_value < 120.0, "MAE winner {} = {}", f.mae_method, f.mae_value);
    }
}
