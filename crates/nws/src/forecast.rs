//! The NWS forecaster battery: "statistical forecasters allowing to ...
//! predict the future evolutions" (paper §2).
//!
//! The real NWS runs a family of cheap predictors side by side on every
//! series; at each step every predictor guesses the next value, its error
//! is accumulated, and the *battery* reports the prediction of whichever
//! predictor currently has the lowest cumulative error (dynamic predictor
//! selection, Wolski et al., the paper's reference 22). We implement the
//! classic family:
//!
//! * `LAST` — last value;
//! * `RUN_AVG` — running mean of everything seen;
//! * `SW_AVG(k)` — sliding-window mean, several window sizes;
//! * `MEDIAN(k)` — sliding-window median;
//! * `TRIM_MEAN(k, α)` — sliding trimmed mean;
//! * `EXP_SMOOTH(g)` — exponential smoothing, several gains;
//! * `ADAPT_AVG` — mean over an adaptive window that resets on jumps;
//! * `HOLT(α,β)` — Holt's linear level+trend method (extrapolates ramps).
//!
//! Selection can minimise MSE or MAE; both winners are reported.
//!
//! ## Incremental predictors and the replay oracle
//!
//! Every predictor here is **incremental**: `observe` is O(log k) in the
//! window size (the order statistics live in a [`SortedWindow`] maintained
//! under `f64::total_cmp`) and `predict` never replays or re-sorts history.
//! The pre-incremental implementations survive in [`naive`] — they are the
//! differential-test oracle (the same role `max_min_allocate` plays for the
//! fairness engine), not production code. The sorted-window predictors are
//! *bit-identical* to their naive counterparts: total-order-equal `f64`s
//! are bit-equal, so the maintained sorted sequence is exactly the sequence
//! the oracle's per-predict sort produces, and every downstream arithmetic
//! consumes it in the same order. `RUN_AVG` (Welford) and `ADAPT_AVG`
//! (running sum) trade bit-identity for numerical stability and O(1)
//! predicts; they agree with their oracles to ~1e-9 relative.
//!
//! The battery rejects non-finite observations outright, so a NaN that
//! escapes a sensor can never reach a predictor (the panic chain this
//! guards against: `Series::push` used to `debug_assert!` finiteness while
//! the median sort `expect`ed it — one bad stored sample panicked the
//! forecaster in release builds).

use std::collections::VecDeque;

/// An order-maintained sliding window: the arrival ring pairs with a
/// mirror sorted under `f64::total_cmp`. Insert/evict cost O(log k)
/// comparisons plus a word-level `memmove` within the window — for NWS
/// window sizes (k ≤ 31) this beats a two-heap/skip-list structure by a
/// wide margin while giving O(1) order statistics at predict time.
#[derive(Debug, Clone, Default)]
pub struct SortedWindow {
    arrivals: VecDeque<f64>,
    sorted: Vec<f64>,
    k: usize,
}

impl SortedWindow {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SortedWindow { arrivals: VecDeque::with_capacity(k), sorted: Vec::with_capacity(k), k }
    }

    /// Insert `value`, evicting the oldest entry once the window is full.
    /// Total-order-equal values are bit-equal, so the eviction removes
    /// exactly the bits the arrival ring drops and the sorted mirror stays
    /// a faithful permutation of the window.
    pub fn push(&mut self, value: f64) {
        if self.arrivals.len() == self.k {
            let old = self.arrivals.pop_front().expect("non-empty");
            let i = self.sorted.partition_point(|x| x.total_cmp(&old).is_lt());
            debug_assert!(self.sorted[i].total_cmp(&old).is_eq());
            self.sorted.remove(i);
        }
        self.arrivals.push_back(value);
        let i = self.sorted.partition_point(|x| x.total_cmp(&value).is_lt());
        self.sorted.insert(i, value);
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The window in ascending `total_cmp` order.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// The window in arrival order — the persisted form. A restore
    /// re-pushes the arrivals into a fresh window: the sorted mirror is a
    /// deterministic function of the arrival sequence (bit-equal values
    /// insert at bit-equal positions under `total_cmp`), so the rebuilt
    /// window is bit-identical to the saved one.
    pub fn arrivals(&self) -> impl Iterator<Item = f64> + '_ {
        self.arrivals.iter().copied()
    }
}

/// A single prediction method.
pub trait Predictor {
    /// Feed the next observed value.
    fn observe(&mut self, value: f64);
    /// Predict the next value, if enough data has been seen.
    fn predict(&self) -> Option<f64>;
    fn name(&self) -> &str;

    /// Serialize the internal state into a flat `f64` vector, the inverse
    /// of [`Predictor::restore`]. Counters ride along as raw bit patterns
    /// (`f64::from_bits`) so the round trip is exact for any value; the
    /// persistence layer ships the vector through `to_bits`, so every
    /// word survives bit-for-bit. The default saves nothing — fine for
    /// the naive oracle family, which is never persisted; every deployed
    /// predictor overrides both methods.
    fn save(&self, _out: &mut Vec<f64>) {}

    /// Rebuild internal state from a [`Predictor::save`] vector. Must be
    /// exact: a restored predictor continues the stream bit-identically
    /// to one that never stopped. A short/garbled vector (impossible
    /// after checksum verification, but decoders stay total) leaves the
    /// predictor empty rather than panicking.
    fn restore(&mut self, _state: &[f64]) {}
}

/// `u64` ↔ `f64` bit-pattern bridge for counters inside saved state.
fn bits(v: u64) -> f64 {
    f64::from_bits(v)
}

fn unbits(v: f64) -> u64 {
    v.to_bits()
}

/// Last observed value.
#[derive(Debug, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Predictor for LastValue {
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &str {
        "LAST"
    }
    fn save(&self, out: &mut Vec<f64>) {
        match self.last {
            Some(v) => out.extend_from_slice(&[1.0, v]),
            None => out.push(0.0),
        }
    }
    fn restore(&mut self, state: &[f64]) {
        self.last = if state.first() == Some(&1.0) { state.get(1).copied() } else { None };
    }
}

/// Running mean of all observations, maintained Welford-style: the mean is
/// updated in place instead of accumulating an unbounded `sum`, so a
/// months-long measurement stream cannot lose precision to a sum that has
/// grown many orders of magnitude past the individual samples.
#[derive(Debug, Default)]
pub struct RunningMean {
    mean: f64,
    n: u64,
}

impl Predictor for RunningMean {
    fn observe(&mut self, value: f64) {
        self.n += 1;
        self.mean += (value - self.mean) / self.n as f64;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }
    fn name(&self) -> &str {
        "RUN_AVG"
    }
    fn save(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&[self.mean, bits(self.n)]);
    }
    fn restore(&mut self, state: &[f64]) {
        self.mean = state.first().copied().unwrap_or(0.0);
        self.n = state.get(1).copied().map_or(0, unbits);
    }
}

/// Sliding-window mean.
#[derive(Debug)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    k: usize,
    sum: f64,
    name: String,
}

impl SlidingMean {
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SlidingMean {
            window: VecDeque::with_capacity(k),
            k,
            sum: 0.0,
            name: format!("SW_AVG({k})"),
        }
    }
}

impl Predictor for SlidingMean {
    fn observe(&mut self, value: f64) {
        if self.window.len() == self.k {
            self.sum -= self.window.pop_front().expect("non-empty");
        }
        self.window.push_back(value);
        self.sum += value;
    }
    fn predict(&self) -> Option<f64> {
        (!self.window.is_empty()).then(|| self.sum / self.window.len() as f64)
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn save(&self, out: &mut Vec<f64>) {
        // The incrementally maintained `sum` is saved verbatim (not
        // recomputed) so the restored accumulator carries the exact same
        // add/subtract rounding history as the live one.
        out.push(self.sum);
        out.extend(self.window.iter());
    }
    fn restore(&mut self, state: &[f64]) {
        self.sum = state.first().copied().unwrap_or(0.0);
        self.window = state.get(1..).unwrap_or_default().iter().copied().collect();
    }
}

/// Sliding-window median over a [`SortedWindow`]: O(log k) observe, O(1)
/// predict — the pre-incremental version re-sorted the window on every
/// prediction, i.e. on every battery observation.
#[derive(Debug)]
pub struct SlidingMedian {
    window: SortedWindow,
    name: String,
}

impl SlidingMedian {
    pub fn new(k: usize) -> Self {
        SlidingMedian { window: SortedWindow::new(k), name: format!("MEDIAN({k})") }
    }
}

impl Predictor for SlidingMedian {
    fn observe(&mut self, value: f64) {
        self.window.push(value);
    }
    fn predict(&self) -> Option<f64> {
        let v = self.window.sorted();
        let n = v.len();
        if n == 0 {
            return None;
        }
        Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn save(&self, out: &mut Vec<f64>) {
        out.extend(self.window.arrivals());
    }
    fn restore(&mut self, state: &[f64]) {
        let mut w = SortedWindow::new(self.window.k);
        for &v in state {
            w.push(v);
        }
        self.window = w;
    }
}

/// Sliding trimmed mean: drop the `trim` smallest and largest fractions.
/// Observation maintains the [`SortedWindow`]; predict sums the kept slice
/// left-to-right (at most k ≤ 31 adds), in the exact order the naive
/// oracle's post-sort sum uses, so the result is bit-identical.
#[derive(Debug)]
pub struct TrimmedMean {
    window: SortedWindow,
    trim: f64,
    name: String,
}

impl TrimmedMean {
    pub fn new(k: usize, trim: f64) -> Self {
        assert!((0.0..0.5).contains(&trim));
        TrimmedMean { window: SortedWindow::new(k), trim, name: format!("TRIM_MEAN({k},{trim})") }
    }
}

impl Predictor for TrimmedMean {
    fn observe(&mut self, value: f64) {
        self.window.push(value);
    }
    fn predict(&self) -> Option<f64> {
        let v = self.window.sorted();
        if v.is_empty() {
            return None;
        }
        let cut = ((v.len() as f64) * self.trim).floor() as usize;
        let kept = &v[cut..v.len() - cut];
        if kept.is_empty() {
            return Some(v[v.len() / 2]);
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn save(&self, out: &mut Vec<f64>) {
        out.extend(self.window.arrivals());
    }
    fn restore(&mut self, state: &[f64]) {
        let mut w = SortedWindow::new(self.window.k);
        for &v in state {
            w.push(v);
        }
        self.window = w;
    }
}

/// Exponential smoothing with gain `g`.
#[derive(Debug)]
pub struct ExpSmooth {
    state: Option<f64>,
    gain: f64,
    name: String,
}

impl ExpSmooth {
    pub fn new(gain: f64) -> Self {
        assert!((0.0..=1.0).contains(&gain));
        ExpSmooth { state: None, gain, name: format!("EXP_SMOOTH({gain})") }
    }
}

impl Predictor for ExpSmooth {
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            Some(s) => s + self.gain * (value - s),
            None => value,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn save(&self, out: &mut Vec<f64>) {
        match self.state {
            Some(s) => out.extend_from_slice(&[1.0, s]),
            None => out.push(0.0),
        }
    }
    fn restore(&mut self, state: &[f64]) {
        self.state = if state.first() == Some(&1.0) { state.get(1).copied() } else { None };
    }
}

/// Holt's linear method: exponentially smoothed level plus trend — the
/// only battery member that extrapolates a slope, so it wins on steadily
/// ramping series (e.g. a link saturating as a long transfer grows).
#[derive(Debug)]
pub struct HoltLinear {
    level: Option<f64>,
    trend: f64,
    alpha: f64,
    beta: f64,
    name: String,
}

impl HoltLinear {
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        HoltLinear { level: None, trend: 0.0, alpha, beta, name: format!("HOLT({alpha},{beta})") }
    }
}

impl Predictor for HoltLinear {
    fn observe(&mut self, value: f64) {
        match self.level {
            None => self.level = Some(value),
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }
    fn predict(&self) -> Option<f64> {
        self.level.map(|l| l + self.trend)
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn save(&self, out: &mut Vec<f64>) {
        match self.level {
            Some(l) => out.extend_from_slice(&[1.0, l, self.trend]),
            None => out.push(0.0),
        }
    }
    fn restore(&mut self, state: &[f64]) {
        if state.first() == Some(&1.0) {
            self.level = state.get(1).copied();
            self.trend = state.get(2).copied().unwrap_or(0.0);
        } else {
            self.level = None;
            self.trend = 0.0;
        }
    }
}

/// Mean over an adaptive window that resets when a value jumps by more
/// than `jump` relative to the current mean — tracks regime changes faster
/// than a fixed window. The window is a `VecDeque` with a running sum
/// (O(1) observe/predict); the pre-incremental version `Vec::remove(0)`d
/// the front — an O(n) shift on every warm observation — and re-summed all
/// 256 points per predict. A regime reset re-zeroes the accumulator, and
/// because a jump-free stream would otherwise accumulate add/subtract
/// rounding forever, the sum is also recomputed exactly from the window
/// every [`AdaptiveMean::RESUM_INTERVAL`] observations (amortised O(1)),
/// bounding drift on arbitrarily long steady streams.
#[derive(Debug)]
pub struct AdaptiveMean {
    window: VecDeque<f64>,
    sum: f64,
    jump: f64,
    since_resum: u32,
}

impl AdaptiveMean {
    /// Window bound: an adaptive window longer than this behaves like the
    /// running mean anyway.
    pub const MAX_WINDOW: usize = 256;

    /// Observations between exact re-sums of the window.
    pub const RESUM_INTERVAL: u32 = 4096;

    pub fn new(jump: f64) -> Self {
        assert!(jump > 0.0);
        AdaptiveMean { window: VecDeque::new(), sum: 0.0, jump, since_resum: 0 }
    }
}

impl Predictor for AdaptiveMean {
    fn observe(&mut self, value: f64) {
        if let Some(mean) = self.predict() {
            let denom = mean.abs().max(1e-12);
            if ((value - mean).abs() / denom) > self.jump {
                self.window.clear();
                self.sum = 0.0;
                self.since_resum = 0;
            }
        }
        self.window.push_back(value);
        self.sum += value;
        if self.window.len() > Self::MAX_WINDOW {
            self.sum -= self.window.pop_front().expect("non-empty");
        }
        self.since_resum += 1;
        if self.since_resum >= Self::RESUM_INTERVAL {
            // Same left-to-right order as the naive oracle's per-predict
            // sum, so a re-sum pulls the accumulator back onto its value.
            self.sum = self.window.iter().sum();
            self.since_resum = 0;
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.sum / self.window.len() as f64)
    }
    fn name(&self) -> &str {
        "ADAPT_AVG"
    }
    fn save(&self, out: &mut Vec<f64>) {
        // `sum` verbatim (accumulator rounding history) and the re-sum
        // countdown, so the periodic exact re-sum fires at the same
        // observation index it would have without the restart.
        out.extend_from_slice(&[self.sum, bits(self.since_resum as u64)]);
        out.extend(self.window.iter());
    }
    fn restore(&mut self, state: &[f64]) {
        self.sum = state.first().copied().unwrap_or(0.0);
        self.since_resum = state.get(1).copied().map_or(0, |v| unbits(v) as u32);
        self.window = state.get(2..).unwrap_or_default().iter().copied().collect();
    }
}

/// The pre-incremental predictor implementations, kept verbatim as the
/// differential-test oracle (mirroring `max_min_allocate` in the fairness
/// engine): replaying a series through these must match the incremental
/// predictors — bit-identically for the sorted-window pair, to ~1e-9 for
/// the two mean accumulators. Their window sorts use `total_cmp` (never
/// the old `partial_cmp().expect("finite")`), so even a hostile NaN fed
/// directly to a naive predictor ranks instead of panicking.
pub mod naive {
    use super::Predictor;
    use std::collections::VecDeque;

    /// `RUN_AVG` as an unbounded sum — the accumulator whose precision
    /// loss on long streams motivated the Welford rewrite.
    #[derive(Debug, Default)]
    pub struct NaiveRunningMean {
        sum: f64,
        n: u64,
    }

    impl Predictor for NaiveRunningMean {
        fn observe(&mut self, value: f64) {
            self.sum += value;
            self.n += 1;
        }
        fn predict(&self) -> Option<f64> {
            (self.n > 0).then(|| self.sum / self.n as f64)
        }
        fn name(&self) -> &str {
            "RUN_AVG"
        }
    }

    /// `MEDIAN(k)` re-sorting its window on every predict.
    #[derive(Debug)]
    pub struct NaiveSlidingMedian {
        window: VecDeque<f64>,
        k: usize,
        name: String,
    }

    impl NaiveSlidingMedian {
        pub fn new(k: usize) -> Self {
            assert!(k > 0);
            NaiveSlidingMedian {
                window: VecDeque::with_capacity(k),
                k,
                name: format!("MEDIAN({k})"),
            }
        }
    }

    impl Predictor for NaiveSlidingMedian {
        fn observe(&mut self, value: f64) {
            if self.window.len() == self.k {
                self.window.pop_front();
            }
            self.window.push_back(value);
        }
        fn predict(&self) -> Option<f64> {
            if self.window.is_empty() {
                return None;
            }
            let mut v: Vec<f64> = self.window.iter().copied().collect();
            v.sort_by(f64::total_cmp);
            let n = v.len();
            Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    /// `TRIM_MEAN(k,α)` re-sorting its window on every predict.
    #[derive(Debug)]
    pub struct NaiveTrimmedMean {
        window: VecDeque<f64>,
        k: usize,
        trim: f64,
        name: String,
    }

    impl NaiveTrimmedMean {
        pub fn new(k: usize, trim: f64) -> Self {
            assert!(k > 0 && (0.0..0.5).contains(&trim));
            NaiveTrimmedMean {
                window: VecDeque::with_capacity(k),
                k,
                trim,
                name: format!("TRIM_MEAN({k},{trim})"),
            }
        }
    }

    impl Predictor for NaiveTrimmedMean {
        fn observe(&mut self, value: f64) {
            if self.window.len() == self.k {
                self.window.pop_front();
            }
            self.window.push_back(value);
        }
        fn predict(&self) -> Option<f64> {
            if self.window.is_empty() {
                return None;
            }
            let mut v: Vec<f64> = self.window.iter().copied().collect();
            v.sort_by(f64::total_cmp);
            let cut = ((v.len() as f64) * self.trim).floor() as usize;
            let kept = &v[cut..v.len() - cut];
            if kept.is_empty() {
                return Some(v[v.len() / 2]);
            }
            Some(kept.iter().sum::<f64>() / kept.len() as f64)
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    /// `ADAPT_AVG` with the O(n) `Vec::remove(0)` front-shift and a full
    /// re-sum per predict.
    #[derive(Debug)]
    pub struct NaiveAdaptiveMean {
        window: Vec<f64>,
        jump: f64,
    }

    impl NaiveAdaptiveMean {
        pub fn new(jump: f64) -> Self {
            assert!(jump > 0.0);
            NaiveAdaptiveMean { window: Vec::new(), jump }
        }
    }

    impl Predictor for NaiveAdaptiveMean {
        fn observe(&mut self, value: f64) {
            if let Some(mean) = self.predict() {
                let denom = mean.abs().max(1e-12);
                if ((value - mean).abs() / denom) > self.jump {
                    self.window.clear();
                }
            }
            self.window.push(value);
            if self.window.len() > super::AdaptiveMean::MAX_WINDOW {
                self.window.remove(0);
            }
        }
        fn predict(&self) -> Option<f64> {
            if self.window.is_empty() {
                return None;
            }
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
        fn name(&self) -> &str {
            "ADAPT_AVG"
        }
    }
}

/// A produced forecast with its provenance and error estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The reported prediction (from the MSE winner).
    pub value: f64,
    /// Name of the predictor that produced it.
    pub method: String,
    /// Root of the winner's cumulative mean squared error.
    pub rmse: f64,
    /// The MAE winner's prediction (NWS reports both).
    pub mae_value: f64,
    pub mae_method: String,
    pub mae: f64,
    /// Number of observations behind this forecast.
    pub samples: u64,
    /// True when the forecaster could not reach the series' memory and
    /// served its last-known battery state instead of a fresh delta — the
    /// caller gets a prediction (better than an error during an outage)
    /// but is told its provenance.
    pub stale: bool,
}

/// The racing battery: every predictor forecasts each next value, errors
/// accumulate, the current winner answers queries.
pub struct ForecasterBattery {
    predictors: Vec<Box<dyn Predictor + Send>>,
    sq_err: Vec<f64>,
    abs_err: Vec<f64>,
    n_scored: Vec<u64>,
    samples: u64,
}

impl Default for ForecasterBattery {
    fn default() -> Self {
        Self::classic()
    }
}

impl ForecasterBattery {
    /// The classic NWS family.
    pub fn classic() -> Self {
        let predictors: Vec<Box<dyn Predictor + Send>> = vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(11)),
            Box::new(SlidingMean::new(21)),
            Box::new(SlidingMean::new(31)),
            Box::new(SlidingMedian::new(5)),
            Box::new(SlidingMedian::new(11)),
            Box::new(SlidingMedian::new(21)),
            Box::new(SlidingMedian::new(31)),
            Box::new(TrimmedMean::new(31, 0.3)),
            Box::new(ExpSmooth::new(0.05)),
            Box::new(ExpSmooth::new(0.1)),
            Box::new(ExpSmooth::new(0.25)),
            Box::new(ExpSmooth::new(0.5)),
            Box::new(ExpSmooth::new(0.75)),
            Box::new(ExpSmooth::new(0.9)),
            Box::new(AdaptiveMean::new(0.5)),
            Box::new(HoltLinear::new(0.5, 0.3)),
            Box::new(HoltLinear::new(0.8, 0.5)),
        ];
        Self::with_predictors(predictors)
    }

    /// The classic family built from the pre-incremental [`naive`]
    /// predictors, predictor-for-predictor in the same order and with the
    /// same names — the replay oracle for the differential suite. Never
    /// deployed: every query through `ForecasterServer` uses `classic`.
    pub fn classic_naive() -> Self {
        use naive::*;
        let predictors: Vec<Box<dyn Predictor + Send>> = vec![
            Box::new(LastValue::default()),
            Box::new(NaiveRunningMean::default()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(11)),
            Box::new(SlidingMean::new(21)),
            Box::new(SlidingMean::new(31)),
            Box::new(NaiveSlidingMedian::new(5)),
            Box::new(NaiveSlidingMedian::new(11)),
            Box::new(NaiveSlidingMedian::new(21)),
            Box::new(NaiveSlidingMedian::new(31)),
            Box::new(NaiveTrimmedMean::new(31, 0.3)),
            Box::new(ExpSmooth::new(0.05)),
            Box::new(ExpSmooth::new(0.1)),
            Box::new(ExpSmooth::new(0.25)),
            Box::new(ExpSmooth::new(0.5)),
            Box::new(ExpSmooth::new(0.75)),
            Box::new(ExpSmooth::new(0.9)),
            Box::new(NaiveAdaptiveMean::new(0.5)),
            Box::new(HoltLinear::new(0.5, 0.3)),
            Box::new(HoltLinear::new(0.8, 0.5)),
        ];
        Self::with_predictors(predictors)
    }

    pub fn with_predictors(predictors: Vec<Box<dyn Predictor + Send>>) -> Self {
        let n = predictors.len();
        assert!(n > 0, "battery needs at least one predictor");
        ForecasterBattery {
            predictors,
            sq_err: vec![0.0; n],
            abs_err: vec![0.0; n],
            n_scored: vec![0; n],
            samples: 0,
        }
    }

    /// Feed one observation: score every predictor's standing prediction
    /// against it, then update them. Non-finite values are dropped here —
    /// the last line of defence behind `Series::push` — so no predictor
    /// ever holds a NaN/∞ in its window.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        for (i, p) in self.predictors.iter_mut().enumerate() {
            if let Some(pred) = p.predict() {
                let e = pred - value;
                self.sq_err[i] += e * e;
                self.abs_err[i] += e.abs();
                self.n_scored[i] += 1;
            }
            p.observe(value);
        }
        self.samples += 1;
    }

    /// Replay a whole history (used by forecasters answering queries).
    pub fn observe_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.observe(v);
        }
    }

    fn winner_by(&self, errs: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in self.predictors.iter().enumerate() {
            if p.predict().is_none() {
                continue;
            }
            // Mean error; unscored predictors rank last among available.
            let mean = if self.n_scored[i] > 0 {
                errs[i] / self.n_scored[i] as f64
            } else {
                f64::INFINITY
            };
            match best {
                Some((_, b)) if b <= mean => {}
                _ => best = Some((i, mean)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// The current forecast, if any data has been seen.
    pub fn forecast(&self) -> Option<Forecast> {
        let mse_i = self.winner_by(&self.sq_err)?;
        let mae_i = self.winner_by(&self.abs_err)?;
        let mse_mean = if self.n_scored[mse_i] > 0 {
            self.sq_err[mse_i] / self.n_scored[mse_i] as f64
        } else {
            0.0
        };
        let mae_mean = if self.n_scored[mae_i] > 0 {
            self.abs_err[mae_i] / self.n_scored[mae_i] as f64
        } else {
            0.0
        };
        Some(Forecast {
            value: self.predictors[mse_i].predict().expect("winner has prediction"),
            method: self.predictors[mse_i].name().to_string(),
            rmse: mse_mean.sqrt(),
            mae_value: self.predictors[mae_i].predict().expect("winner has prediction"),
            mae_method: self.predictors[mae_i].name().to_string(),
            mae: mae_mean,
            samples: self.samples,
            stale: false,
        })
    }

    /// Per-predictor opaque state vectors, in battery order — the
    /// persisted form of the battery (see [`crate::persist`]).
    pub fn save_states(&self) -> Vec<Vec<f64>> {
        self.predictors
            .iter()
            .map(|p| {
                let mut s = Vec::new();
                p.save(&mut s);
                s
            })
            .collect()
    }

    /// Restore predictor states saved from a battery of the same family
    /// (same predictors, same order). Extra or missing vectors are
    /// ignored — a snapshot from a different family restores as much as
    /// positions line up, which for the fixed classic family is all of it.
    pub fn restore_states(&mut self, states: &[Vec<f64>]) {
        for (p, s) in self.predictors.iter_mut().zip(states) {
            p.restore(s);
        }
    }

    /// The scoring state: `(sq_err, abs_err, n_scored, samples)`.
    pub fn scores(&self) -> (&[f64], &[f64], &[u64], u64) {
        (&self.sq_err, &self.abs_err, &self.n_scored, self.samples)
    }

    /// Restore the scoring state (counterpart of
    /// [`ForecasterBattery::scores`]); slices shorter than the battery
    /// leave the tail at its reset value.
    pub fn restore_scores(
        &mut self,
        sq_err: &[f64],
        abs_err: &[f64],
        n_scored: &[u64],
        samples: u64,
    ) {
        for (dst, src) in self.sq_err.iter_mut().zip(sq_err) {
            *dst = *src;
        }
        for (dst, src) in self.abs_err.iter_mut().zip(abs_err) {
            *dst = *src;
        }
        for (dst, src) in self.n_scored.iter_mut().zip(n_scored) {
            *dst = *src;
        }
        self.samples = samples;
    }

    /// Cumulative mean squared error of every predictor, by name — the
    /// data behind experiment E8.
    pub fn error_table(&self) -> Vec<(String, f64, f64)> {
        self.predictors
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let n = self.n_scored[i].max(1) as f64;
                (p.name().to_string(), self.sq_err[i] / n, self.abs_err[i] / n)
            })
            .collect()
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::default();
        assert_eq!(p.predict(), None);
        p.observe(3.0);
        p.observe(7.0);
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn running_mean() {
        let mut p = RunningMean::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            p.observe(v);
        }
        assert!((p.predict().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sliding_mean_window() {
        let mut p = SlidingMean::new(2);
        for v in [1.0, 2.0, 10.0] {
            p.observe(v);
        }
        assert!((p.predict().unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(p.name(), "SW_AVG(2)");
    }

    #[test]
    fn sliding_median_odd_even() {
        let mut p = SlidingMedian::new(3);
        p.observe(5.0);
        assert_eq!(p.predict(), Some(5.0));
        p.observe(1.0);
        assert_eq!(p.predict(), Some(3.0)); // even window: midpoint
        p.observe(9.0);
        assert_eq!(p.predict(), Some(5.0));
        p.observe(7.0); // window = [1, 9, 7]
        assert_eq!(p.predict(), Some(7.0));
    }

    #[test]
    fn trimmed_mean_ignores_outliers() {
        let mut p = TrimmedMean::new(5, 0.2);
        for v in [10.0, 10.0, 10.0, 10.0, 1000.0] {
            p.observe(v);
        }
        // One value trimmed from each end: mean of [10, 10, 10].
        assert!((p.predict().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exp_smooth_converges() {
        let mut p = ExpSmooth::new(0.5);
        p.observe(0.0);
        for _ in 0..20 {
            p.observe(10.0);
        }
        assert!((p.predict().unwrap() - 10.0).abs() < 0.01);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut p = HoltLinear::new(0.5, 0.3);
        for i in 0..100 {
            p.observe(10.0 + 2.0 * i as f64);
        }
        // Next value would be 10 + 2*100 = 210; Holt should be close.
        let pred = p.predict().unwrap();
        assert!((pred - 210.0).abs() < 2.0, "holt predicted {pred}");
    }

    #[test]
    fn battery_prefers_holt_on_ramps() {
        let mut battery = ForecasterBattery::classic();
        for i in 0..400 {
            battery.observe(5.0 + 0.5 * i as f64);
        }
        let f = battery.forecast().unwrap();
        assert!(
            f.method.starts_with("HOLT"),
            "ramping series should crown Holt, got {} ({:?})",
            f.method,
            battery.error_table().iter().take(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn adaptive_mean_resets_on_jump() {
        let mut p = AdaptiveMean::new(0.5);
        for _ in 0..50 {
            p.observe(100.0);
        }
        // Regime change: 100 → 10.
        p.observe(10.0);
        p.observe(10.0);
        let pred = p.predict().unwrap();
        assert!((pred - 10.0).abs() < 1e-9, "adaptive mean should reset, got {pred}");
    }

    #[test]
    fn battery_picks_last_value_for_random_walk() {
        // On a random walk the last value is the optimal predictor; the
        // battery must figure that out.
        let mut rng = SmallRng::seed_from_u64(42);
        let mut battery = ForecasterBattery::classic();
        let mut x = 50.0;
        for _ in 0..500 {
            x += rng.gen_range(-1.0..1.0);
            battery.observe(x);
        }
        let f = battery.forecast().unwrap();
        assert_eq!(f.method, "LAST", "rmse table: {:?}", battery.error_table());
        assert!((f.value - x).abs() < 1e-9);
        assert_eq!(f.samples, 500);
    }

    #[test]
    fn battery_picks_averaging_for_noisy_constant() {
        // White noise around a constant: means beat LAST by ~√2 in RMSE.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut battery = ForecasterBattery::classic();
        for _ in 0..800 {
            battery.observe(20.0 + rng.gen_range(-5.0..5.0));
        }
        let f = battery.forecast().unwrap();
        assert_ne!(f.method, "LAST");
        assert!((f.value - 20.0).abs() < 1.0, "forecast {f:?}");
    }

    #[test]
    fn battery_adapts_to_regime_change() {
        let mut battery = ForecasterBattery::classic();
        for _ in 0..200 {
            battery.observe(100.0);
        }
        for _ in 0..50 {
            battery.observe(10.0);
        }
        let f = battery.forecast().unwrap();
        assert!(
            (f.value - 10.0).abs() < 5.0,
            "forecast should track the new regime, got {}",
            f.value
        );
    }

    #[test]
    fn empty_battery_has_no_forecast() {
        let battery = ForecasterBattery::classic();
        assert!(battery.forecast().is_none());
        assert_eq!(battery.samples(), 0);
    }

    #[test]
    fn single_observation_forecasts() {
        let mut battery = ForecasterBattery::classic();
        battery.observe(42.0);
        let f = battery.forecast().unwrap();
        assert!((f.value - 42.0).abs() < 1e-12);
    }

    #[test]
    fn error_table_covers_all_predictors() {
        let mut battery = ForecasterBattery::classic();
        battery.observe_all([1.0, 2.0, 3.0]);
        let table = battery.error_table();
        assert_eq!(table.len(), 20);
        assert!(table.iter().any(|(n, _, _)| n == "LAST"));
        assert!(table.iter().any(|(n, _, _)| n == "ADAPT_AVG"));
    }

    #[test]
    fn sorted_window_is_a_sorted_permutation() {
        let mut w = SortedWindow::new(4);
        for v in [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0] {
            w.push(v);
        }
        // Last four arrivals: [5, 9, 2, 6].
        assert_eq!(w.sorted(), &[2.0, 5.0, 6.0, 9.0]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn sorted_window_distinguishes_signed_zero() {
        // total_cmp orders -0.0 < 0.0; eviction must remove the exact bits
        // that leave the arrival ring.
        let mut w = SortedWindow::new(2);
        w.push(0.0);
        w.push(-0.0);
        w.push(1.0); // evicts the +0.0
        assert!(w.sorted()[0].is_sign_negative());
        assert_eq!(w.sorted()[1], 1.0);
    }

    #[test]
    fn welford_running_mean_tracks_exact_sum_mean() {
        // Integer-valued samples keep the naive sum exact; Welford's
        // per-step division rounds, but must stay within a few ulps of
        // the true mean throughout.
        let mut p = RunningMean::default();
        let mut naive = naive::NaiveRunningMean::default();
        for i in 0..1000 {
            let v = ((i * 37) % 101) as f64;
            p.observe(v);
            naive.observe(v);
            let (w, n) = (p.predict().unwrap(), naive.predict().unwrap());
            assert!((w - n).abs() <= 1e-12 * n.abs().max(1.0), "step {i}: {w} vs {n}");
        }
    }

    #[test]
    fn welford_agrees_with_naive_over_mixed_magnitudes() {
        // The satellite contract: 1e6 mixed-magnitude samples, agreement
        // to 1e-9 relative against the unbounded-sum oracle.
        let mut rng = SmallRng::seed_from_u64(2024);
        let mut p = RunningMean::default();
        let mut naive = naive::NaiveRunningMean::default();
        for i in 0..1_000_000u64 {
            let scale = match i % 4 {
                0 => 1e9,
                1 => 1e-3,
                2 => 1.0,
                _ => 1e6,
            };
            let v = scale * rng.gen_range(0.5..1.5);
            p.observe(v);
            naive.observe(v);
        }
        let (w, n) = (p.predict().unwrap(), naive.predict().unwrap());
        assert!((w - n).abs() <= 1e-9 * n.abs().max(1.0), "welford {w} vs naive {n}");
    }

    #[test]
    fn incremental_median_matches_naive_bitwise() {
        let mut rng = SmallRng::seed_from_u64(11);
        for k in [1usize, 2, 5, 11, 31] {
            let mut inc = SlidingMedian::new(k);
            let mut naive = naive::NaiveSlidingMedian::new(k);
            for _ in 0..500 {
                // Duplicates on purpose: a small value universe forces
                // equal-key handling in the sorted mirror.
                let v = (rng.gen_range(0.0..16.0f64)).floor() / 4.0;
                inc.observe(v);
                naive.observe(v);
                assert_eq!(inc.predict(), naive.predict(), "k={k}");
            }
        }
    }

    #[test]
    fn incremental_trimmed_mean_matches_naive_bitwise() {
        let mut rng = SmallRng::seed_from_u64(12);
        for (k, trim) in [(5usize, 0.2), (31, 0.3), (7, 0.45)] {
            let mut inc = TrimmedMean::new(k, trim);
            let mut naive = naive::NaiveTrimmedMean::new(k, trim);
            for _ in 0..500 {
                let v = rng.gen_range(-1e3..1e3);
                inc.observe(v);
                naive.observe(v);
                assert_eq!(inc.predict(), naive.predict(), "k={k} trim={trim}");
            }
        }
    }

    #[test]
    fn adaptive_mean_matches_naive_on_exact_values() {
        // Integer samples keep both accumulators exact, pinning the
        // VecDeque/running-sum rewrite to the old predictions bit-for-bit
        // across fills, evictions and regime resets.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut inc = AdaptiveMean::new(0.5);
        let mut naive = naive::NaiveAdaptiveMean::new(0.5);
        for i in 0..2000 {
            let base = if (i / 300) % 2 == 0 { 100.0 } else { 10.0 };
            let v = base + rng.gen_range(0..5) as f64;
            inc.observe(v);
            naive.observe(v);
            assert_eq!(inc.predict(), naive.predict(), "step {i}");
        }
    }

    #[test]
    fn adaptive_mean_resums_on_long_jump_free_streams() {
        // A steady stream never triggers a regime reset, so only the
        // periodic exact re-sum keeps the accumulator from drifting;
        // after 3 re-sum intervals the incremental mean must still agree
        // tightly with the re-sum-per-predict oracle.
        let mut rng = SmallRng::seed_from_u64(14);
        let mut inc = AdaptiveMean::new(1e9); // threshold never crossed
        let mut naive = naive::NaiveAdaptiveMean::new(1e9);
        for _ in 0..(3 * AdaptiveMean::RESUM_INTERVAL) {
            let v = 0.1 + rng.gen_range(0.0..1e-3);
            inc.observe(v);
            naive.observe(v);
        }
        let (a, b) = (inc.predict().unwrap(), naive.predict().unwrap());
        assert!((a - b).abs() <= 1e-12 * b.abs(), "{a} vs {b}");
    }

    #[test]
    fn battery_ignores_non_finite_observations() {
        let mut battery = ForecasterBattery::classic();
        battery.observe(f64::NAN);
        battery.observe(f64::INFINITY);
        assert!(battery.forecast().is_none());
        assert_eq!(battery.samples(), 0);

        battery.observe_all([10.0, f64::NAN, 12.0, f64::NEG_INFINITY, 11.0]);
        let f = battery.forecast().expect("finite samples forecast");
        assert_eq!(f.samples, 3);
        assert!(f.value.is_finite() && f.rmse.is_finite());

        // Same stream pre-sanitized gives the identical forecast.
        let mut clean = ForecasterBattery::classic();
        clean.observe_all([10.0, 12.0, 11.0]);
        assert_eq!(clean.forecast(), Some(f));
    }

    #[test]
    fn naive_predictors_tolerate_nan_without_panicking() {
        // Fed directly (bypassing the battery guard), the oracle sorts
        // must rank NaN via total_cmp instead of panicking.
        let mut m = naive::NaiveSlidingMedian::new(3);
        let mut t = naive::NaiveTrimmedMean::new(3, 0.2);
        for v in [1.0, f64::NAN, 2.0] {
            m.observe(v);
            t.observe(v);
        }
        assert!(m.predict().is_some());
        assert!(t.predict().is_some());
    }

    #[test]
    fn mse_and_mae_winners_can_differ() {
        // Occasional large spikes: MAE is robust to them, MSE punishes
        // them; with enough data the winners' reported values both stay
        // near the base level.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut battery = ForecasterBattery::classic();
        for i in 0..600 {
            let v = if i % 50 == 49 { 500.0 } else { 10.0 + rng.gen_range(-1.0..1.0) };
            battery.observe(v);
        }
        let f = battery.forecast().unwrap();
        assert!(f.rmse > 0.0 && f.mae > 0.0);
        assert!(f.value < 120.0, "MSE winner {} = {}", f.method, f.value);
        assert!(f.mae_value < 120.0, "MAE winner {} = {}", f.mae_method, f.mae_value);
    }

    /// Save/restore is exact: a battery snapshotted mid-stream and
    /// restored into a fresh family continues bit-identically to one
    /// that never stopped — for every cut point, including the regime
    /// jumps that reset ADAPT_AVG and the window-eviction boundaries.
    #[test]
    fn battery_save_restore_is_bit_identical_at_every_cut() {
        let mut rng = SmallRng::seed_from_u64(2026);
        let stream: Vec<f64> = (0..120)
            .map(|i| {
                if i % 37 == 36 {
                    900.0 // jump: exercises the adaptive reset
                } else {
                    50.0 + rng.gen_range(-5.0..5.0)
                }
            })
            .collect();
        for cut in [0usize, 1, 4, 31, 32, 36, 37, 38, 100, 120] {
            let mut live = ForecasterBattery::classic();
            live.observe_all(stream.iter().copied());

            let mut first = ForecasterBattery::classic();
            first.observe_all(stream[..cut].iter().copied());
            let states = first.save_states();
            let (sq, ab, ns, samples) = first.scores();
            let (sq, ab, ns) = (sq.to_vec(), ab.to_vec(), ns.to_vec());

            let mut resumed = ForecasterBattery::classic();
            resumed.restore_states(&states);
            resumed.restore_scores(&sq, &ab, &ns, samples);
            resumed.observe_all(stream[cut..].iter().copied());

            let a = live.forecast().unwrap();
            let b = resumed.forecast().unwrap();
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "cut at {cut}");
            assert_eq!(a.rmse.to_bits(), b.rmse.to_bits(), "cut at {cut}");
            assert_eq!(a, b, "cut at {cut}");
            // The whole scoring state matches, not just the winner.
            assert_eq!(
                live.save_states(),
                resumed.save_states(),
                "predictor state diverged at cut {cut}"
            );
        }
    }
}
