//! The NWS name server: "keeps a directory of the system, allowing each
//! part to localize other existing servers" (paper §2.1).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use netsim::engine::{Ctx, Process, ProcessId};

use crate::msg::{NwsMsg, SeriesKey, ServerKind};

/// Directory contents, shared with the test/bench harness for
/// introspection.
#[derive(Debug, Default)]
pub struct RegistryState {
    /// Registered servers: name → (kind, pid).
    pub servers: BTreeMap<String, (ServerKind, ProcessId)>,
    /// Which memory server stores each series.
    pub series: BTreeMap<SeriesKey, ProcessId>,
    /// Directory request counters.
    pub lookups: u64,
    pub registrations: u64,
}

/// Shared handle onto a name server's directory.
pub type RegistryHandle = Rc<RefCell<RegistryState>>;

/// The name server process.
pub struct NameServer {
    state: RegistryHandle,
}

impl NameServer {
    pub fn new() -> (Self, RegistryHandle) {
        let state = Rc::new(RefCell::new(RegistryState::default()));
        (NameServer { state: state.clone() }, state)
    }
}

impl Process<NwsMsg> for NameServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, NwsMsg>, from: ProcessId, msg: NwsMsg) {
        match msg {
            NwsMsg::Register { name, kind } => {
                let mut st = self.state.borrow_mut();
                st.servers.insert(name, (kind, from));
                st.registrations += 1;
            }
            NwsMsg::RegisterSeries { key, memory } => {
                let mut st = self.state.borrow_mut();
                st.series.insert(key, memory);
                st.registrations += 1;
            }
            NwsMsg::WhereIs { key } => {
                let memory = {
                    let mut st = self.state.borrow_mut();
                    st.lookups += 1;
                    st.series.get(&key).copied()
                };
                let reply = NwsMsg::WhereIsReply { key, memory };
                let size = reply.wire_size();
                let _ = ctx.send(from, size, reply);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Resource;
    use netsim::prelude::*;
    use netsim::Engine;

    /// Sends a registration, then a lookup; records the reply.
    struct Prober {
        ns: ProcessId,
        got: Rc<RefCell<Option<Option<ProcessId>>>>,
    }

    impl Process<NwsMsg> for Prober {
        fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
            let key = SeriesKey::host(Resource::CpuLoad, "a.x");
            let reg = NwsMsg::RegisterSeries { key: key.clone(), memory: ctx.me() };
            let size = reg.wire_size();
            ctx.send(self.ns, size, reg).unwrap();
            let q = NwsMsg::WhereIs { key };
            let size = q.wire_size();
            ctx.send(self.ns, size, q).unwrap();
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
            if let NwsMsg::WhereIsReply { memory, .. } = msg {
                *self.got.borrow_mut() = Some(memory);
            }
        }
    }

    #[test]
    fn register_and_lookup_round_trip() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        let mut eng: Engine<NwsMsg> = Engine::new(b.build().unwrap());

        let (ns, state) = NameServer::new();
        let ns_pid = eng.add_process(a, Box::new(ns));
        let got = Rc::new(RefCell::new(None));
        let prober = eng.add_process(c, Box::new(Prober { ns: ns_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();

        assert_eq!(got.borrow().expect("reply arrived"), Some(prober));
        let st = state.borrow();
        assert_eq!(st.series.len(), 1);
        assert_eq!(st.lookups, 1);
        assert_eq!(st.registrations, 1);
    }

    #[test]
    fn unknown_series_replies_none() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        let mut eng: Engine<NwsMsg> = Engine::new(b.build().unwrap());

        struct AskOnly {
            ns: ProcessId,
            got: Rc<RefCell<Option<Option<ProcessId>>>>,
        }
        impl Process<NwsMsg> for AskOnly {
            fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
                let q = NwsMsg::WhereIs { key: SeriesKey::host(Resource::CpuLoad, "ghost") };
                let size = q.wire_size();
                ctx.send(self.ns, size, q).unwrap();
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _f: ProcessId, msg: NwsMsg) {
                if let NwsMsg::WhereIsReply { memory, .. } = msg {
                    *self.got.borrow_mut() = Some(memory);
                }
            }
        }

        let (ns, _state) = NameServer::new();
        let ns_pid = eng.add_process(a, Box::new(ns));
        let got = Rc::new(RefCell::new(None));
        eng.add_process(c, Box::new(AskOnly { ns: ns_pid, got: got.clone() }));
        eng.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(got.borrow().expect("replied"), None);
    }
}
