//! The NWS measurement clique: a token ring guaranteeing mutually
//! exclusive network experiments (paper §2.3, Wolski/Gaidioz/Tourancheau,
//! the paper's reference 23).
//!
//! "Only the host having the token at a given time is granted to launch
//! network measurements on the links involved in that clique. Mechanisms
//! to handle network errors and leader elections are also introduced."
//!
//! Implementation notes:
//!
//! * The token's sequence number increments at **every hop**; a member
//!   accepts a token only when its sequence exceeds everything it has
//!   seen, which kills duplicates after a regeneration race.
//! * Every member arms a watchdog sized to a full round (scaled by its
//!   ring index so the earliest member usually wins the regeneration
//!   race). When it fires, the member fabricates a fresh token with a
//!   sequence jump large enough that the stale token can never catch up.

use netsim::engine::ProcessId;
use netsim::time::TimeDelta;
use netsim::topology::NodeId;

/// One sensor's view of one clique it belongs to.
#[derive(Debug, Clone)]
pub struct CliqueMembership {
    /// Clique name (unique per deployment plan).
    pub clique: String,
    /// Ring order: (sensor pid, host name, host node) per member.
    pub members: Vec<(ProcessId, String, NodeId)>,
    /// This sensor's position in the ring.
    pub me_idx: usize,
    /// Pause between finishing experiments and passing the token on —
    /// controls measurement frequency (paper §2.3 scalability).
    pub gap: TimeDelta,
    /// Expected full-round duration; the watchdog base.
    pub watchdog_base: TimeDelta,
    /// Highest token sequence seen.
    pub last_seq: u64,
    /// Rounds completed (token passages through member 0).
    pub rounds_seen: u64,
}

impl CliqueMembership {
    pub fn new(
        clique: &str,
        members: Vec<(ProcessId, String, NodeId)>,
        me: ProcessId,
        gap: TimeDelta,
        watchdog_base: TimeDelta,
    ) -> Self {
        let me_idx = members
            .iter()
            .position(|(p, _, _)| *p == me)
            .expect("sensor must be a member of its own clique");
        CliqueMembership {
            clique: clique.to_string(),
            members,
            me_idx,
            gap,
            watchdog_base,
            last_seq: 0,
            rounds_seen: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The next member in ring order.
    pub fn next_member(&self) -> ProcessId {
        self.members[(self.me_idx + 1) % self.members.len()].0
    }

    /// Whether passing to the next member completes a round (the token
    /// re-enters member 0).
    pub fn pass_completes_round(&self) -> bool {
        (self.me_idx + 1).is_multiple_of(self.members.len())
    }

    /// The other members, in ring order starting after this sensor — the
    /// experiment targets while holding the token.
    pub fn peers(&self) -> Vec<(String, NodeId)> {
        let k = self.members.len();
        (1..k)
            .map(|off| {
                let (_, name, node) = &self.members[(self.me_idx + off) % k];
                (name.clone(), *node)
            })
            .collect()
    }

    /// Token acceptance rule: strictly newer sequences only.
    pub fn accepts(&self, seq: u64) -> bool {
        seq > self.last_seq
    }

    /// Watchdog delay for this member: a full round plus an index-scaled
    /// stagger so regeneration races have a deterministic likely winner.
    pub fn watchdog_delay(&self) -> TimeDelta {
        self.watchdog_base * (1.0 + 0.25 * self.me_idx as f64)
    }

    /// Sequence for a regenerated token: far enough ahead that the lost
    /// token (at most `len` hops stale) can never be accepted again.
    pub fn regen_seq(&self) -> u64 {
        self.last_seq + self.members.len() as u64 + self.me_idx as u64 + 1
    }
}

/// A clique (re)configuration shipped to a member sensor over the wire
/// (`NwsMsg::Retarget`): everything the sensor needs to build its
/// [`CliqueMembership`] in place, without being torn down and redeployed.
#[derive(Debug, Clone)]
pub struct CliqueRetarget {
    pub clique: String,
    /// Ring order: (sensor pid, host name, host node) per member.
    pub ring: Vec<(ProcessId, String, NodeId)>,
    pub gap: TimeDelta,
    pub watchdog: TimeDelta,
    /// Whether ring member 0 should inject an initial token (true for a
    /// brand-new clique; restarts of an existing clique rely on token
    /// continuity — a live token is accepted into the new membership by
    /// name — with the watchdog regenerating it if it died with a removed
    /// member).
    pub start_token: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership(k: usize, me: usize) -> CliqueMembership {
        let members: Vec<(ProcessId, String, NodeId)> = (0..k)
            .map(|i| (ProcessId::from_raw(i as u32), format!("h{i}.x"), NodeId::from_raw(i as u32)))
            .collect();
        CliqueMembership::new(
            "c0",
            members,
            ProcessId::from_raw(me as u32),
            TimeDelta::from_secs(1.0),
            TimeDelta::from_secs(10.0),
        )
    }

    #[test]
    fn ring_order_and_peers() {
        let m = membership(4, 1);
        assert_eq!(m.me_idx, 1);
        assert_eq!(m.next_member(), ProcessId::from_raw(2));
        let peers = m.peers();
        assert_eq!(peers.len(), 3);
        assert_eq!(peers[0].0, "h2.x");
        assert_eq!(peers[2].0, "h0.x");
        assert!(!m.pass_completes_round());
        let last = membership(4, 3);
        assert_eq!(last.next_member(), ProcessId::from_raw(0));
        assert!(last.pass_completes_round());
    }

    #[test]
    fn acceptance_is_strictly_monotonic() {
        let mut m = membership(3, 0);
        assert!(m.accepts(1));
        m.last_seq = 5;
        assert!(!m.accepts(5));
        assert!(!m.accepts(4));
        assert!(m.accepts(6));
    }

    #[test]
    fn watchdogs_stagger_by_index() {
        let m0 = membership(3, 0);
        let m1 = membership(3, 1);
        let m2 = membership(3, 2);
        assert!(m0.watchdog_delay() < m1.watchdog_delay());
        assert!(m1.watchdog_delay() < m2.watchdog_delay());
    }

    #[test]
    fn regen_outruns_stale_token() {
        let mut m = membership(5, 2);
        m.last_seq = 40;
        // A stale token is at most len-1 hops ahead of what we saw.
        assert!(m.regen_seq() > 40 + 4);
    }

    #[test]
    #[should_panic(expected = "member of its own clique")]
    fn non_member_rejected() {
        let members = vec![(ProcessId::from_raw(0), "a".to_string(), NodeId::from_raw(0))];
        let _ = CliqueMembership::new(
            "c",
            members,
            ProcessId::from_raw(9),
            TimeDelta::from_secs(1.0),
            TimeDelta::from_secs(1.0),
        );
    }
}
