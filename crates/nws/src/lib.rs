//! # nws — a Network Weather Service substrate
//!
//! A from-scratch implementation of the NWS process organization the paper
//! deploys (§2): a distributed system of **sensors** conducting periodic
//! measurements, **memory servers** storing the time series, **forecasters**
//! predicting the next values, and a **name server** keeping the directory —
//! all running as actors on the [`netsim`] simulator.
//!
//! Faithful pieces:
//!
//! * the three network experiments of §2.2 — 4-byte round-trip latency,
//!   64 KiB timed throughput, TCP connect time;
//! * the **measurement clique** protocol of §2.3 ([`clique`]): a token ring
//!   guaranteeing that at most one experiment runs in a clique at a time,
//!   with timeout-based token regeneration when a sensor dies;
//! * the forecaster battery ([`forecast`]): a family of predictors (last
//!   value, running/sliding means, medians, exponential smoothing, trimmed
//!   means) raced against each other, the winner by cumulative error
//!   producing the reported forecast — the NWS "dynamic predictor
//!   selection";
//! * the query path of §2.1: client → forecaster → name server → memory →
//!   forecaster → client, as messages over the simulated network.
//!
//! CPU load / free memory sensors are fed by a seeded synthetic host-load
//! model ([`hostload`]) since the simulator has no CPUs to measure; the
//! forecaster pipeline treats those series identically to network ones.

pub mod clique;
pub mod forecast;
pub mod hostload;
pub mod memory;
pub mod msg;
pub mod persist;
pub mod registry;
pub mod sensor;
pub mod series;
pub mod serve;
pub mod shard;
pub mod supervisor;
pub mod system;
pub mod wal;

pub use clique::CliqueRetarget;
pub use forecast::{Forecast, ForecasterBattery};
pub use msg::{NwsMsg, Resource, SeriesKey};
pub use persist::{ForecastLog, MemoryLog, RecoveredSeries};
pub use series::{Series, SeriesPoint};
pub use serve::{MetricsSnapshot, ServingPlane, ShardSnapshot};
pub use shard::ShardMap;
pub use supervisor::{SupervisorConfig, SupervisorHandle, SupervisorState};
pub use system::{CliqueSpec, NwsSystem, NwsSystemSpec, ReconfigSpec, SensorMode, SensorSpec};
