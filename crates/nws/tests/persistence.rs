//! Property tests for the durable state plane (`nws::persist`): random
//! store/fetch/crash/compact schedules × disk-fault seeds, asserting the
//! recovered state is bit-identical to the live state it replays.
//!
//! Two crash severities, with different contracts:
//!
//! * **process crash** — the server dies but the host (and its page
//!   cache, [`SimDisk`]'s unsynced bytes) survives. Recovery must
//!   reproduce the live state *exactly*, every counter included.
//! * **host crash** — `SimDisk::crash` tears a seeded-random suffix off
//!   each file's unsynced bytes. Store records are fsynced before the
//!   ack, so `stores`/`dup_stores`/`rejected`, the series contents and
//!   the SeenSeqs dedup ledger must still match the live state exactly;
//!   only the lazily-logged fetch/reply-failure counters may roll back
//!   (never forward).
//!
//! Crash-during-compaction is exercised by stopping after each of the
//! three public compaction steps (snapshot write → publish → truncate)
//! before crashing the host.
//!
//! [`SimDisk`]: netsim::disk::SimDisk

use netsim::disk::{DiskHandle, SimDisk};
use netsim::engine::ProcessId;
use nws::memory::MemoryStore;
use nws::msg::{Resource, SeriesKey};
use nws::persist::{ForecastLog, MemoryLog};
use nws::ForecasterBattery;
use proptest::prelude::*;

const CAP: usize = 16;

fn key(i: u8) -> SeriesKey {
    SeriesKey::link(Resource::Bandwidth, &format!("s{}.x", i % 3), "d.x")
}

/// One series as `(key, capacity, points-as-raw-bits)`.
type SeriesBits = (SeriesKey, usize, Vec<(u64, u64)>);

/// Everything the store-durability contract covers, with floats as raw
/// bit patterns so "equal" means bit-identical.
#[derive(Debug, PartialEq, Eq)]
struct DurableFingerprint {
    stores: u64,
    dup_stores: u64,
    rejected: u64,
    series: Vec<SeriesBits>,
    seen: Vec<(usize, u64, Vec<u64>)>,
}

fn fingerprint(store: &MemoryStore) -> DurableFingerprint {
    DurableFingerprint {
        stores: store.stores,
        dup_stores: store.dup_stores,
        rejected: store.rejected,
        series: store
            .series
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    s.capacity(),
                    s.iter().map(|p| (p.t.to_bits(), p.value.to_bits())).collect(),
                )
            })
            .collect(),
        seen: store
            .seen
            .iter()
            .map(|(pid, seqs)| (pid.index(), seqs.watermark(), seqs.above().collect()))
            .collect(),
    }
}

/// One live memory server's worth of state: the store, its log, and the
/// per-sender sequence counters a sensor fleet would hold.
struct MemHarness {
    disk: DiskHandle,
    live: MemoryStore,
    log: MemoryLog,
    next_seq: [u64; 3],
    next_t: f64,
}

impl MemHarness {
    fn new(fault_seed: u64) -> Self {
        let disk = SimDisk::new("h0");
        disk.borrow_mut().set_fault_seed(fault_seed);
        let (live, mut log) = MemoryLog::recover(disk.clone(), "memory", CAP);
        // Small threshold so ~100-op schedules cross it repeatedly and
        // compaction interleaves with stores organically.
        log.set_compact_threshold(512);
        MemHarness { disk, live, log, next_seq: [0; 3], next_t: 0.0 }
    }

    fn store(&mut self, arg: u8) {
        let sender_i = (arg % 3) as usize;
        let sender = ProcessId::from_raw(100 + sender_i as u32);
        // Mostly fresh seqs; every 7th draw retries the previous seq (a
        // duplicate), every 11th stores a stale timestamp (rejected).
        let seq = if arg.is_multiple_of(7) && self.next_seq[sender_i] > 0 {
            self.next_seq[sender_i]
        } else {
            self.next_seq[sender_i] += 1;
            self.next_seq[sender_i]
        };
        let t = if arg.is_multiple_of(11) && self.next_t > 1.0 {
            self.next_t - 1.5
        } else {
            self.next_t += 1.0;
            self.next_t
        };
        let k = key(arg);
        let v = 40.0 + f64::from(arg);
        self.live.apply_store(sender, seq, &k, t, v, CAP);
        self.log.log_store(sender, seq, &k, t, v);
        self.log.maybe_compact(&self.live);
    }

    /// Recover from disk and swap the recovered state in as the new live
    /// state, exactly as a restarted server would.
    fn recover(&mut self) -> &MemoryStore {
        let (store, log) = MemoryLog::recover(self.disk.clone(), "memory", CAP);
        let mut log = log;
        log.set_compact_threshold(512);
        self.live = store;
        self.log = log;
        &self.live
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random schedules of stores (with duplicates and rejects), fetches,
    /// reply failures, compactions, and crashes of both severities: the
    /// recovered store is always bit-identical to the live one on the
    /// durable axes, lazily-logged counters never roll *forward*, and a
    /// post-recovery retry of an already-acked seq still deduplicates.
    #[test]
    fn recovery_is_bit_identical_under_random_schedules(
        fault_seed in 0u64..1_000_000,
        ops in collection::vec((0u8..13, 0u8..=254u8), 1..120),
    ) {
        let mut h = MemHarness::new(fault_seed);
        for (op, arg) in ops {
            match op {
                // Stores dominate the mix, as they do in a real epoch.
                0..=6 => h.store(arg),
                7 => {
                    h.live.apply_fetch(u64::from(arg % 5));
                    h.log.log_fetch(u64::from(arg % 5));
                }
                8 => {
                    h.live.apply_reply_failure();
                    h.log.log_reply_failure();
                }
                9 => {
                    // Process crash: page cache survives, so recovery
                    // reproduces every counter — lazy ones included.
                    let before = fingerprint(&h.live);
                    let (fetches, served, failures) =
                        (h.live.fetches, h.live.points_served, h.live.reply_failures);
                    let rec = h.recover();
                    prop_assert_eq!(&fingerprint(rec), &before);
                    prop_assert_eq!(rec.fetches, fetches);
                    prop_assert_eq!(rec.points_served, served);
                    prop_assert_eq!(rec.reply_failures, failures);
                }
                10..=12 => {
                    // Host crash, optionally mid-compaction: stop after 0,
                    // 1 or 2 of the three compaction steps, then tear the
                    // page cache.
                    let steps = op - 10;
                    if steps >= 1 {
                        h.log.write_snapshot(&h.live);
                    }
                    if steps >= 2 {
                        h.log.publish_snapshot();
                    }
                    let before = fingerprint(&h.live);
                    let (fetches, served, failures) =
                        (h.live.fetches, h.live.points_served, h.live.reply_failures);
                    h.disk.borrow_mut().crash();
                    let rec = h.recover();
                    // Acked stores are fsynced: the durable axes are exact.
                    prop_assert_eq!(&fingerprint(rec), &before);
                    // Lazy counters may roll back, never forward.
                    prop_assert!(rec.fetches <= fetches);
                    prop_assert!(rec.points_served <= served);
                    prop_assert!(rec.reply_failures <= failures);
                }
                _ => unreachable!(),
            }
        }
        // The dedup ledger survived every crash along the way: retrying
        // each sender's newest acked seq must land in dup_stores.
        for (i, &seq) in h.next_seq.iter().enumerate() {
            if seq == 0 {
                continue;
            }
            let sender = ProcessId::from_raw(100 + i as u32);
            let out = h.live.apply_store(sender, seq, &key(i as u8), 1e9, 1.0, CAP);
            prop_assert!(!out.first_time, "acked seq {} re-counted after recovery", seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Forecaster log
// ---------------------------------------------------------------------------

fn battery_bits(b: &ForecasterBattery) -> (Vec<Vec<u64>>, u64) {
    let states: Vec<Vec<u64>> =
        b.save_states().iter().map(|s| s.iter().map(|v| v.to_bits()).collect()).collect();
    (states, b.scores().3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random observe/rewind/compact/crash schedules for the forecaster
    /// log: after every synced crash the recovered batteries and
    /// watermarks are bit-identical to a shadow fed the same points.
    #[test]
    fn forecaster_recovery_matches_shadow(
        fault_seed in 0u64..1_000_000,
        ops in collection::vec((0u8..10, 0u8..=254u8), 1..100),
    ) {
        let disk = SimDisk::new("fh");
        disk.borrow_mut().set_fault_seed(fault_seed);
        let (_, mut log) = ForecastLog::recover(disk.clone(), "forecaster");
        log.set_compact_threshold(512);
        let mut shadow: std::collections::BTreeMap<SeriesKey, (ForecasterBattery, f64)> =
            std::collections::BTreeMap::new();
        let mut next_t = 0.0f64;
        for (op, arg) in ops {
            match op {
                // Observations dominate, as fetch replies do live.
                0..=6 => {
                    let k = key(arg);
                    next_t += 1.0;
                    let v = 40.0 + f64::from(arg % 17);
                    let s = shadow
                        .entry(k.clone())
                        .or_insert_with(|| (ForecasterBattery::classic(), f64::NEG_INFINITY));
                    s.0.observe(v);
                    s.1 = next_t;
                    log.log_observe(&k, next_t, v);
                }
                7 => {
                    let k = key(arg);
                    if let Some(s) = shadow.get_mut(&k) {
                        s.0 = ForecasterBattery::classic();
                        s.1 = f64::NEG_INFINITY;
                        log.log_rewind(&k);
                    }
                }
                8 => {
                    log.compact(shadow.iter().map(|(k, s)| (k, &s.0, s.1)));
                }
                9 => {
                    // Sync, then crash the host (the forecaster syncs once
                    // per fetch-reply batch, so "synced then crashed" is
                    // the steady-state crash point), then recover.
                    log.sync();
                    disk.borrow_mut().crash();
                    let (rec, new_log) = ForecastLog::recover(disk.clone(), "forecaster");
                    log = new_log;
                    log.set_compact_threshold(512);
                    prop_assert_eq!(rec.len(), shadow.len());
                    for (k, s) in &shadow {
                        let r = rec.get(k).expect("series survives");
                        prop_assert_eq!(r.last_t.to_bits(), s.1.to_bits());
                        prop_assert_eq!(battery_bits(&r.battery), battery_bits(&s.0));
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}
