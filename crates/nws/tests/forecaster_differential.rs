//! Differential property suite: the incremental predictor battery against
//! the naive replay oracle (`ForecasterBattery::classic_naive`), over
//! random series with shuffled window sizes — the forecasting analogue of
//! the fairness engine's `max_min_allocate` differential tests.
//!
//! Equality contracts (see `nws::forecast` module docs):
//!
//! * sorted-window predictors (`MEDIAN`, `TRIM_MEAN`) — **bit-identical**;
//! * mean accumulators (`RUN_AVG` Welford, `ADAPT_AVG` running sum) —
//!   within 1e-9 relative;
//! * battery forecasts — same winner names, values/errors within 1e-9
//!   relative, same sample count, including streams with injected
//!   non-finite values (both batteries sanitize identically).

use nws::forecast::naive::{
    NaiveAdaptiveMean, NaiveRunningMean, NaiveSlidingMedian, NaiveTrimmedMean,
};
use nws::forecast::{AdaptiveMean, Predictor, RunningMean, SlidingMedian, TrimmedMean};
use nws::ForecasterBattery;
use proptest::prelude::*;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

// A measurement-flavoured random series: mixes magnitudes and duplicates
// (quantized values force equal-key handling in the sorted windows).
prop_compose! {
    fn arb_series(min_len: usize, max_len: usize)(
        len in min_len..max_len,
        scale in prop_oneof![Just(1.0f64), Just(1e3), Just(1e-3)],
        quantize in proptest::bool::ANY,
        raw in proptest::collection::vec(0.0f64..100.0, max_len),
    ) -> Vec<f64> {
        raw[..len]
            .iter()
            .map(|v| {
                let v = if quantize { (v * 4.0).floor() / 4.0 } else { *v };
                v * scale
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sliding_median_is_bit_identical_to_naive(
        k in 1usize..40,
        series in arb_series(1, 300),
    ) {
        let mut inc = SlidingMedian::new(k);
        let mut naive = NaiveSlidingMedian::new(k);
        for (i, v) in series.iter().enumerate() {
            inc.observe(*v);
            naive.observe(*v);
            prop_assert_eq!(inc.predict(), naive.predict(), "k={} step={}", k, i);
        }
    }

    #[test]
    fn trimmed_mean_is_bit_identical_to_naive(
        k in 1usize..40,
        trim in 0.0f64..0.5,
        series in arb_series(1, 300),
    ) {
        let mut inc = TrimmedMean::new(k, trim);
        let mut naive = NaiveTrimmedMean::new(k, trim);
        for (i, v) in series.iter().enumerate() {
            inc.observe(*v);
            naive.observe(*v);
            prop_assert_eq!(inc.predict(), naive.predict(), "k={} trim={} step={}", k, trim, i);
        }
    }

    #[test]
    fn running_and_adaptive_means_agree_with_naive(
        jump in 0.1f64..2.0,
        series in arb_series(1, 400),
    ) {
        let mut run = RunningMean::default();
        let mut run_naive = NaiveRunningMean::default();
        let mut ad = AdaptiveMean::new(jump);
        let mut ad_naive = NaiveAdaptiveMean::new(jump);
        for (i, v) in series.iter().enumerate() {
            run.observe(*v);
            run_naive.observe(*v);
            ad.observe(*v);
            ad_naive.observe(*v);
            let (a, b) = (run.predict().unwrap(), run_naive.predict().unwrap());
            prop_assert!(close(a, b, 1e-9), "RUN_AVG step {}: {} vs {}", i, a, b);
            let (a, b) = (ad.predict().unwrap(), ad_naive.predict().unwrap());
            prop_assert!(close(a, b, 1e-9), "ADAPT_AVG step {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn battery_matches_naive_replay(
        series in arb_series(64, 600),
        nan_every in proptest::option::of(7usize..40),
    ) {
        // Optionally pepper the stream with non-finite values: both
        // batteries must sanitize them identically, so the forecast over
        // the polluted stream equals the forecast over the clean one.
        let polluted: Vec<f64> = series
            .iter()
            .enumerate()
            .flat_map(|(i, v)| {
                let junk = match nan_every {
                    Some(n) if i % n == n - 1 => {
                        Some(if i % 2 == 0 { f64::NAN } else { f64::INFINITY })
                    }
                    _ => None,
                };
                junk.into_iter().chain(std::iter::once(*v))
            })
            .collect();

        let mut inc = ForecasterBattery::classic();
        inc.observe_all(polluted.iter().copied());
        let mut naive = ForecasterBattery::classic_naive();
        naive.observe_all(series.iter().copied());

        let fi = inc.forecast().expect("incremental forecast");
        let fr = naive.forecast().expect("naive replay forecast");
        prop_assert_eq!(&fi.method, &fr.method, "mse winner");
        prop_assert_eq!(&fi.mae_method, &fr.mae_method, "mae winner");
        prop_assert_eq!(fi.samples, fr.samples, "sanitized sample count");
        prop_assert!(close(fi.value, fr.value, 1e-9), "value {} vs {}", fi.value, fr.value);
        prop_assert!(
            close(fi.mae_value, fr.mae_value, 1e-9),
            "mae value {} vs {}",
            fi.mae_value,
            fr.mae_value
        );
        prop_assert!(close(fi.rmse, fr.rmse, 1e-9), "rmse {} vs {}", fi.rmse, fr.rmse);
        prop_assert!(close(fi.mae, fr.mae, 1e-9), "mae {} vs {}", fi.mae, fr.mae);
    }
}

#[test]
fn battery_error_tables_match_naive() {
    // Deterministic spot check over every predictor's accumulated errors:
    // the differential contract extends beyond the winner to the whole
    // error table (the data behind dynamic predictor selection).
    let mut inc = ForecasterBattery::classic();
    let mut naive = ForecasterBattery::classic_naive();
    let mut x = 50.0f64;
    let mut s = 0x2a2au64;
    let series: Vec<f64> = (0..700)
        .map(|i| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0;
            x += u;
            if i % 97 == 96 {
                x * 10.0
            } else {
                x
            }
        })
        .collect();
    inc.observe_all(series.iter().copied());
    naive.observe_all(series.iter().copied());

    let (ti, tn) = (inc.error_table(), naive.error_table());
    assert_eq!(ti.len(), tn.len());
    for ((ni, mi, ai), (nn, mn, an)) in ti.iter().zip(&tn) {
        assert_eq!(ni, nn);
        assert!((mi - mn).abs() <= 1e-9 * mi.abs().max(1.0), "{ni}: mse {mi} vs {mn}");
        assert!((ai - an).abs() <= 1e-9 * ai.abs().max(1.0), "{ni}: mae {ai} vs {an}");
    }

    let (fi, fn2) = (inc.forecast().unwrap(), naive.forecast().unwrap());
    assert_eq!(fi.method, fn2.method);
    assert_eq!(fi.mae_method, fn2.mae_method);
    assert!((fi.value - fn2.value).abs() <= 1e-9 * fi.value.abs().max(1.0));
    assert!((fi.rmse - fn2.rmse).abs() <= 1e-9 * fi.rmse.abs().max(1.0));
    assert!((fi.mae - fn2.mae).abs() <= 1e-9 * fi.mae.abs().max(1.0));
}
