//! Integration tests for the incremental query-serving path: the
//! NaN-store regression, the WhereIs race regression, and the delta-fetch
//! protocol's O(Δ) + bit-identical-to-replay contract.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::engine::{Ctx, Engine, Process, ProcessId};
use netsim::prelude::*;
use nws::memory::{MemoryHandle, MemoryServer};
use nws::msg::{NwsMsg, SeriesKey};
use nws::registry::{NameServer, RegistryHandle};
use nws::system::ForecasterServer;
use nws::{Forecast, ForecasterBattery, Resource};

/// Four hosts on a switch with 5 ms port latency: host→host one-way is
/// ~10 ms, which makes the directory/fetch round trips long enough to
/// schedule deterministic interleavings with millisecond timers.
struct Rig {
    eng: Engine<NwsMsg>,
    ns_state: RegistryHandle,
    memory: ProcessId,
    store: MemoryHandle,
    forecaster: ProcessId,
    client_node: NodeId,
}

fn rig() -> Rig {
    let mut b = TopologyBuilder::new();
    let sw = b.switch("sw", Bandwidth::mbps(100.0), Latency::millis(5.0));
    let hosts: Vec<NodeId> = (0..4)
        .map(|i| {
            let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
            b.attach(h, sw);
            h
        })
        .collect();
    let mut eng: Engine<NwsMsg> = Engine::new(b.build().unwrap());
    let (ns, ns_state) = NameServer::new();
    let ns_pid = eng.add_process(hosts[0], Box::new(ns));
    let forecaster = eng.add_process(hosts[1], Box::new(ForecasterServer::new("fc", ns_pid)));
    let (mem, store) = MemoryServer::new("mem0", ns_pid, 512);
    let memory = eng.add_process(hosts[2], Box::new(mem));
    Rig { eng, ns_state, memory, store, forecaster, client_node: hosts[3] }
}

fn send(ctx: &mut Ctx<'_, NwsMsg>, to: ProcessId, msg: NwsMsg) {
    let size = msg.wire_size();
    ctx.send(to, size, msg).unwrap();
}

type Replies = Rc<RefCell<Vec<Option<Forecast>>>>;

/// Drives a scripted sequence of stores and queries via timers; every
/// `QueryReply` forecast is recorded in arrival order.
struct Script {
    forecaster: ProcessId,
    memory: ProcessId,
    /// (delay, action) pairs; actions are dispatched by timer tag.
    steps: Vec<(TimeDelta, Action)>,
    replies: Replies,
}

enum Action {
    Store { key: SeriesKey, t: f64, value: f64 },
    Query { key: SeriesKey },
}

impl Process<NwsMsg> for Script {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        for (i, (delay, _)) in self.steps.iter().enumerate() {
            ctx.set_timer(*delay, i as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
        match &self.steps[tag as usize].1 {
            Action::Store { key, t, value } => {
                let seq = tag + 1; // unique per step, which is all dedup needs
                send(
                    ctx,
                    self.memory,
                    NwsMsg::Store { key: key.clone(), seq, t: *t, value: *value },
                );
            }
            Action::Query { key } => {
                send(ctx, self.forecaster, NwsMsg::Query { key: key.clone() });
            }
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
        if let NwsMsg::QueryReply { forecast, .. } = msg {
            self.replies.borrow_mut().push(forecast);
        }
    }
}

fn run_script(mut r: Rig, steps: Vec<(TimeDelta, Action)>) -> (Rig, Vec<Option<Forecast>>) {
    let replies: Replies = Rc::new(RefCell::new(Vec::new()));
    let script =
        Script { forecaster: r.forecaster, memory: r.memory, steps, replies: replies.clone() };
    r.eng.add_process(r.client_node, Box::new(script));
    r.eng.run_until_quiescent(TimeDelta::from_secs(60.0)).unwrap();
    let out = replies.borrow().clone();
    (r, out)
}

fn ms(v: f64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// Satellite regression: a `Query` that reaches the forecaster while a
/// soon-to-be-stale `WhereIsReply{None}` is in flight — and after the
/// series was registered — must get a forecast, not the cached negative.
///
/// Timeline (one-way host→host ≈ 10 ms): query A departs at 0 and its
/// lookup reaches the (still empty) name server at ~20 ms; the first
/// store departs at 5 ms and registers the series at ~25 ms; query B
/// departs at 8 ms and joins the waiting list at ~18 ms, before the
/// negative reply lands at ~30 ms. The fixed server answers only A from
/// the negative and re-issues the lookup for B.
#[test]
fn late_query_survives_stale_negative_lookup() {
    let key = SeriesKey::link(Resource::Bandwidth, "h0.x", "h2.x");
    let (_, replies) = run_script(
        rig(),
        vec![
            (ms(0.0), Action::Query { key: key.clone() }),
            (ms(5.0), Action::Store { key: key.clone(), t: 1.0, value: 42.0 }),
            (ms(8.0), Action::Query { key: key.clone() }),
        ],
    );
    assert_eq!(replies.len(), 2, "both clients answered");
    assert!(replies[0].is_none(), "pre-store query sees the negative");
    let f = replies[1].clone().expect("post-store query must get a forecast");
    assert_eq!(f.samples, 1);
    assert!((f.value - 42.0).abs() < 1e-12);
}

/// Satellite regression: a NaN measurement stored by a sensor (e.g. a
/// zero-elapsed probe) must neither enter the ring nor panic the battery.
/// This exercises the full §2.1 path in whatever build profile the test
/// runs under — including `--release`, where the old `debug_assert!` in
/// `Series::push` compiled away and the median sort panicked.
#[test]
fn nan_store_cannot_panic_the_query_path() {
    let nan_only = SeriesKey::host(Resource::CpuLoad, "h0.x");
    let mixed = SeriesKey::link(Resource::Bandwidth, "h0.x", "h2.x");
    let (r, replies) = run_script(
        rig(),
        vec![
            (ms(0.0), Action::Store { key: nan_only.clone(), t: 1.0, value: f64::NAN }),
            (ms(10.0), Action::Store { key: mixed.clone(), t: 1.0, value: 90.0 }),
            (ms(20.0), Action::Store { key: mixed.clone(), t: 2.0, value: f64::NAN }),
            (ms(30.0), Action::Store { key: mixed.clone(), t: 3.0, value: 96.0 }),
            (ms(200.0), Action::Query { key: nan_only.clone() }),
            (ms(400.0), Action::Query { key: mixed.clone() }),
        ],
    );
    assert_eq!(replies.len(), 2);
    // The NaN-only series exists in the directory (it was stored) but has
    // no usable points: the reply is an orderly None, not a panic.
    assert!(replies[0].is_none());
    // The mixed series forecasts over the finite points only.
    let f = replies[1].clone().expect("finite points forecast");
    assert_eq!(f.samples, 2);
    assert!(f.value.is_finite());
    assert_eq!(r.store.borrow().rejected, 2);
}

/// Tentpole contract: steady-state queries fetch only the delta (O(Δ)
/// points over the wire, zero when nothing new was measured), resolve the
/// memory through the directory exactly once per series, and produce
/// forecasts bit-identical to replaying the stored ring through a fresh
/// battery.
#[test]
fn delta_fetch_is_incremental_and_matches_replay() {
    let key = SeriesKey::link(Resource::Bandwidth, "h0.x", "h2.x");
    let mut steps = Vec::new();
    for i in 0..5 {
        steps.push((
            ms(i as f64 * 10.0),
            Action::Store { key: key.clone(), t: i as f64, value: 90.0 + i as f64 },
        ));
    }
    steps.push((ms(200.0), Action::Query { key: key.clone() }));
    steps.push((ms(400.0), Action::Store { key: key.clone(), t: 5.0, value: 80.0 }));
    steps.push((ms(410.0), Action::Store { key: key.clone(), t: 6.0, value: 81.0 }));
    steps.push((ms(600.0), Action::Query { key: key.clone() }));
    steps.push((ms(800.0), Action::Query { key: key.clone() }));

    let (r, replies) = run_script(rig(), steps);
    assert_eq!(replies.len(), 3);
    let f1 = replies[0].clone().expect("first forecast");
    let f2 = replies[1].clone().expect("second forecast");
    let f3 = replies[2].clone().expect("third forecast");
    assert_eq!(f1.samples, 5);
    assert_eq!(f2.samples, 7);
    // No new points between the second and third query: identical forecast.
    assert_eq!(f2, f3);

    // Replay oracle: the stored ring through a fresh battery must equal
    // the persistent battery's answer bit for bit.
    let store = r.store.borrow();
    let mut oracle = ForecasterBattery::classic();
    oracle.observe_all(store.series[&key].iter().map(|p| p.value));
    assert_eq!(oracle.forecast(), Some(f3));

    // O(Δ) wire contract: 5 points on the cold fetch, 2 on the delta,
    // none for the steady-state query.
    assert_eq!(store.fetches, 3);
    assert_eq!(store.points_served, 7);
    // The directory was consulted exactly once; later queries used the
    // cached memory location.
    assert_eq!(r.ns_state.borrow().lookups, 1);
}
