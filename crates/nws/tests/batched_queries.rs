//! Batched multi-series queries: the differential contract (`QueryBatch`
//! ≡ N sequential single queries, bit for bit), the single-flight lookup
//! discipline under batching, stale/timeout answers to batch slots, and
//! shard-count invariance of the out-of-sim serving plane against the
//! in-sim forecaster.

use std::cell::RefCell;
use std::rc::Rc;

use netsim::engine::{Ctx, Engine, Process, ProcessId};
use netsim::prelude::*;
use nws::memory::{MemoryHandle, MemoryServer};
use nws::msg::{NwsMsg, SeriesKey};
use nws::registry::{NameServer, RegistryHandle};
use nws::serve::ServingPlane;
use nws::shard::ShardMap;
use nws::system::ForecasterServer;
use nws::{Forecast, Resource};
use proptest::prelude::*;

/// Four hosts on a switch with 5 ms port latency (the `query_serving`
/// rig): long enough round trips to schedule deterministic interleavings.
struct Rig {
    eng: Engine<NwsMsg>,
    ns_state: RegistryHandle,
    memory: ProcessId,
    store: MemoryHandle,
    forecaster: ProcessId,
    client_node: NodeId,
}

fn rig() -> Rig {
    let mut b = TopologyBuilder::new();
    let sw = b.switch("sw", Bandwidth::mbps(100.0), Latency::millis(5.0));
    let hosts: Vec<NodeId> = (0..4)
        .map(|i| {
            let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
            b.attach(h, sw);
            h
        })
        .collect();
    let mut eng: Engine<NwsMsg> = Engine::new(b.build().unwrap());
    let (ns, ns_state) = NameServer::new();
    let ns_pid = eng.add_process(hosts[0], Box::new(ns));
    let forecaster = eng.add_process(hosts[1], Box::new(ForecasterServer::new("fc", ns_pid)));
    let (mem, store) = MemoryServer::new("mem0", ns_pid, 512);
    let memory = eng.add_process(hosts[2], Box::new(mem));
    Rig { eng, ns_state, memory, store, forecaster, client_node: hosts[3] }
}

fn send(ctx: &mut Ctx<'_, NwsMsg>, to: ProcessId, msg: NwsMsg) {
    let size = msg.wire_size();
    ctx.send(to, size, msg).unwrap();
}

type Singles = Rc<RefCell<Vec<(SeriesKey, Option<Forecast>)>>>;
type Batches = Rc<RefCell<Vec<Vec<(SeriesKey, Option<Forecast>)>>>>;

enum Action {
    Store { key: SeriesKey, t: f64, value: f64 },
    Query { key: SeriesKey },
    Batch { keys: Vec<SeriesKey> },
}

/// Drives scripted stores/queries/batches by timer; single replies and
/// batch replies are recorded in arrival order.
struct Script {
    forecaster: ProcessId,
    memory: ProcessId,
    steps: Vec<(TimeDelta, Action)>,
    singles: Singles,
    batches: Batches,
}

impl Process<NwsMsg> for Script {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        for (i, (delay, _)) in self.steps.iter().enumerate() {
            ctx.set_timer(*delay, i as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, NwsMsg>, tag: u64) {
        match &self.steps[tag as usize].1 {
            Action::Store { key, t, value } => {
                let seq = tag + 1; // unique per step, which is all dedup needs
                send(
                    ctx,
                    self.memory,
                    NwsMsg::Store { key: key.clone(), seq, t: *t, value: *value },
                );
            }
            Action::Query { key } => {
                send(ctx, self.forecaster, NwsMsg::Query { key: key.clone() });
            }
            Action::Batch { keys } => {
                send(ctx, self.forecaster, NwsMsg::QueryBatch { id: tag, keys: keys.clone() });
            }
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
        match msg {
            NwsMsg::QueryReply { key, forecast } => {
                self.singles.borrow_mut().push((key, forecast));
            }
            NwsMsg::QueryBatchReply { forecasts, .. } => {
                self.batches.borrow_mut().push(forecasts);
            }
            _ => {}
        }
    }
}

struct Run {
    rig: Rig,
    singles: Vec<(SeriesKey, Option<Forecast>)>,
    batches: Vec<Vec<(SeriesKey, Option<Forecast>)>>,
}

fn run_script(mut r: Rig, steps: Vec<(TimeDelta, Action)>) -> Run {
    let singles: Singles = Rc::new(RefCell::new(Vec::new()));
    let batches: Batches = Rc::new(RefCell::new(Vec::new()));
    let script = Script {
        forecaster: r.forecaster,
        memory: r.memory,
        steps,
        singles: singles.clone(),
        batches: batches.clone(),
    };
    r.eng.add_process(r.client_node, Box::new(script));
    r.eng.run_until_quiescent(TimeDelta::from_secs(60.0)).unwrap();
    let singles = singles.borrow().clone();
    let batches = batches.borrow().clone();
    Run { rig: r, singles, batches }
}

fn ms(v: f64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn link(src: &str, dst: &str) -> SeriesKey {
    SeriesKey::link(Resource::Bandwidth, src, dst)
}

/// Store steps for `values[s][..]` under `keys[s]`, 10 ms apart.
fn store_steps(keys: &[SeriesKey], values: &[Vec<f64>]) -> Vec<(TimeDelta, Action)> {
    let mut steps = Vec::new();
    let mut at = 0.0;
    for (s, vs) in values.iter().enumerate() {
        for (t, v) in vs.iter().enumerate() {
            steps.push((ms(at), Action::Store { key: keys[s].clone(), t: t as f64, value: *v }));
            at += 10.0;
        }
    }
    steps
}

/// The differential contract on a fixed script: one batch over
/// {known, duplicate, unknown} keys answers bit-identically to the same
/// keys queried one at a time on an identically prepared system.
#[test]
fn batch_reply_is_bit_identical_to_sequential_singles() {
    let k0 = link("h0.x", "h1.x");
    let k1 = link("h0.x", "h2.x");
    let ghost = link("h1.x", "h2.x");
    let keys = [k0.clone(), k1.clone()];
    let values = [vec![90.0, 92.0, 88.0, 95.0], vec![10.0, 11.0, 12.0]];
    let batch = vec![k0.clone(), k1.clone(), k0.clone(), ghost.clone()];

    let mut a_steps = store_steps(&keys, &values);
    a_steps.push((ms(2000.0), Action::Batch { keys: batch.clone() }));
    let a = run_script(rig(), a_steps);

    let mut b_steps = store_steps(&keys, &values);
    for (j, key) in batch.iter().enumerate() {
        b_steps.push((ms(2000.0 + 200.0 * j as f64), Action::Query { key: key.clone() }));
    }
    let b = run_script(rig(), b_steps);

    assert_eq!(a.batches.len(), 1, "one batch reply");
    assert_eq!(a.batches[0].len(), batch.len(), "slot per key, duplicates included");
    assert_eq!(a.batches[0], b.singles, "batch ≡ sequential singles, bit for bit");
    assert!(a.batches[0][3].1.is_none(), "unknown key answers None");
}

/// Single-flight discipline: five batch slots for one unresolved series,
/// plus a concurrent single query, cost exactly one directory lookup and
/// one memory fetch between them — and all six answers agree.
#[test]
fn duplicate_unresolved_keys_share_one_lookup_and_fetch() {
    let k = link("h0.x", "h1.x");
    let mut steps = store_steps(std::slice::from_ref(&k), &[vec![90.0, 91.0, 92.0]]);
    steps.push((ms(1000.0), Action::Batch { keys: vec![k.clone(); 5] }));
    steps.push((ms(1000.0), Action::Query { key: k.clone() }));
    let r = run_script(rig(), steps);

    assert_eq!(r.batches.len(), 1);
    assert_eq!(r.singles.len(), 1);
    let f = r.singles[0].1.clone().expect("forecast");
    assert_eq!(f.samples, 3);
    for slot in &r.batches[0] {
        assert_eq!(slot.1.as_ref(), Some(&f), "every coalesced waiter gets the same answer");
    }
    assert_eq!(r.rig.ns_state.borrow().lookups, 1, "one WhereIs for six waiters");
    assert_eq!(r.rig.store.borrow().fetches, 1, "one fetch for six waiters");
}

/// An empty batch is a complete conversation: immediate empty reply.
#[test]
fn empty_batch_replies_immediately() {
    let r = run_script(rig(), vec![(ms(0.0), Action::Batch { keys: vec![] })]);
    assert_eq!(r.batches, vec![Vec::new()]);
    assert_eq!(r.rig.ns_state.borrow().lookups, 0);
}

/// A one-shot batch sender used after the scripted phase (so the test can
/// kill processes between phases).
struct BatchOnce {
    forecaster: ProcessId,
    keys: Vec<SeriesKey>,
    result: Batches,
}

impl Process<NwsMsg> for BatchOnce {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NwsMsg>) {
        send(ctx, self.forecaster, NwsMsg::QueryBatch { id: 7, keys: self.keys.clone() });
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, NwsMsg>, _from: ProcessId, msg: NwsMsg) {
        if let NwsMsg::QueryBatchReply { forecasts, .. } = msg {
            self.result.borrow_mut().push(forecasts);
        }
    }
}

/// Timeout path under batching: with the series' memory dead, the slot
/// for a warmed series is answered from the persistent battery with the
/// stale flag up, and an unknown key still resolves to a clean None from
/// the (alive) directory — the batch completes despite the outage.
#[test]
fn timeout_under_batching_serves_stale_with_flag() {
    let k = link("h0.x", "h1.x");
    let ghost = link("h1.x", "h2.x");
    // Phase 1: store + warm the forecaster's battery through one query.
    let mut steps = store_steps(std::slice::from_ref(&k), &[vec![90.0, 91.0, 92.0]]);
    steps.push((ms(1000.0), Action::Query { key: k.clone() }));
    let mut r = run_script(rig(), steps);
    assert_eq!(r.singles.len(), 1);
    let warm = r.singles[0].1.clone().expect("warm forecast");
    assert!(!warm.stale);

    // Phase 2: kill the memory, then batch {warmed, unknown}.
    r.rig.eng.kill_process(r.rig.memory);
    let result: Batches = Rc::new(RefCell::new(Vec::new()));
    r.rig.eng.add_process(
        r.rig.client_node,
        Box::new(BatchOnce {
            forecaster: r.rig.forecaster,
            keys: vec![k.clone(), ghost.clone()],
            result: result.clone(),
        }),
    );
    let deadline = r.rig.eng.now() + TimeDelta::from_secs(10.0);
    r.rig.eng.run_until(deadline);

    let batches = result.borrow().clone();
    assert_eq!(batches.len(), 1, "batch completes despite the dead memory");
    let slots = &batches[0];
    let stale = slots[0].1.clone().expect("stale forecast beats an error");
    assert!(stale.stale, "timeout answers carry the stale flag");
    assert_eq!(stale.samples, warm.samples, "served from the warmed battery");
    assert!(slots[1].1.is_none(), "unknown key resolves through the live directory");
}

/// Shard-count invariance, end to end: planes over {1, 2, 4, 8} shards
/// fed from the sim's memory store answer bit-identically to each other
/// *and* to the in-sim forecaster serving the same series.
#[test]
fn plane_answers_are_shard_invariant_and_match_the_sim() {
    let keys =
        [link("h0.x", "h1.x"), link("h0.x", "h2.x"), link("h1.x", "h2.x"), link("h2.x", "h0.x")];
    let values: Vec<Vec<f64>> =
        (0..4).map(|s| (0..20).map(|t| 50.0 + (s * 7 + t * 3) as f64 % 13.0).collect()).collect();
    let mut steps = store_steps(&keys, &values);
    for (j, key) in keys.iter().enumerate() {
        steps.push((ms(3000.0 + 200.0 * j as f64), Action::Query { key: key.clone() }));
    }
    let r = run_script(rig(), steps);
    assert_eq!(r.singles.len(), keys.len());

    let mut baseline: Option<Vec<(SeriesKey, Option<Forecast>)>> = None;
    for shards in [1usize, 2, 4, 8] {
        let mut plane = ServingPlane::new(ShardMap::hashed(shards));
        plane.ingest_store(&r.rig.store.borrow());
        plane.publish(shards);
        let got = plane.serve_batch(&keys);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(b, &got, "{shards} shards diverged"),
        }
    }
    let plane_answers = baseline.unwrap();
    for (sim, plane) in r.singles.iter().zip(&plane_answers) {
        assert_eq!(sim, plane, "in-sim forecaster and serving plane agree bit for bit");
    }
}

prop_compose! {
    /// Random per-series value histories: 2 series, 1..12 points each.
    fn arb_histories()(
        a in proptest::collection::vec(1.0f64..100.0, 1..12),
        b in proptest::collection::vec(1.0f64..100.0, 1..12),
    ) -> Vec<Vec<f64>> {
        vec![a, b]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential contract, randomized: any batch composition over
    /// {series 0, series 1, an unknown key} — duplicates included —
    /// answers bit-identically to the same keys queried sequentially on
    /// an identically prepared system.
    #[test]
    fn query_batch_equals_sequential_singles(
        histories in arb_histories(),
        picks in proptest::collection::vec(0usize..3, 1..8),
    ) {
        let k0 = link("h0.x", "h1.x");
        let k1 = link("h0.x", "h2.x");
        let ghost = link("h1.x", "h2.x");
        let keys = [k0, k1];
        let batch: Vec<SeriesKey> =
            picks.iter().map(|&p| keys.get(p).unwrap_or(&ghost).clone()).collect();

        let mut a_steps = store_steps(&keys, &histories);
        a_steps.push((ms(3000.0), Action::Batch { keys: batch.clone() }));
        let a = run_script(rig(), a_steps);

        let mut b_steps = store_steps(&keys, &histories);
        for (j, key) in batch.iter().enumerate() {
            b_steps.push((ms(3000.0 + 200.0 * j as f64), Action::Query { key: key.clone() }));
        }
        let b = run_script(rig(), b_steps);

        prop_assert_eq!(a.batches.len(), 1);
        prop_assert_eq!(&a.batches[0], &b.singles, "batch ≡ singles for picks {:?}", picks);
    }
}
