//! Verifies the incremental fairness engine's zero-allocation guarantee:
//! once its scratch buffers have grown to the workload's high-water mark,
//! steady-state reallocation must not touch the heap at all, and the full
//! simulator must stay within a small constant allocation budget per event
//! (map bookkeeping), never the old O(flows) clones.
//!
//! Everything runs inside a single #[test] so no concurrent test pollutes
//! the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use netsim::fairness::{FairEngine, FairnessModel, ResourceTable};
use netsim::prelude::*;
use netsim::routing::RouteTable;
use netsim::Sim;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Only the measuring (test) thread opts in, so allocations from
    // libtest's auxiliary threads never pollute the counter.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() -> bool {
    COUNTING.try_with(|c| c.get()).unwrap_or(false)
}

// SAFETY: pure pass-through to the `System` allocator — every contract
// (layout validity, pointer provenance) is delegated unchanged; the only
// addition is a side-effect-free atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if count_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching System allocation.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if count_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` come from a matching System allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A star switch with `n` hosts.
fn star(n: usize) -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let sw = b.switch("sw", Bandwidth::mbps(100.0), Latency::micros(20.0));
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = b.host(&format!("h{i}.x"), &format!("10.0.{}.{}", i / 250, i % 250 + 1));
            b.attach(h, sw);
            h
        })
        .collect();
    (b.build().unwrap(), hosts)
}

#[test]
fn steady_state_reallocate_does_not_allocate() {
    COUNTING.with(|c| c.set(true));

    // --- FairEngine in isolation: strictly zero allocations ------------
    let (topo, hosts) = star(32);
    let routes = RouteTable::compute(&topo);
    let table = ResourceTable::new(&topo);
    let mut fe = FairEngine::new(&topo, FairnessModel::MaxMin);

    let mut ids = Vec::new();
    let mut keys = Vec::new();
    for i in 0..128usize {
        let p = routes.path(&topo, hosts[i % 32], hosts[(i + 7) % 32]).unwrap();
        table.intern_path(&topo, &p, &mut ids);
        let cap = (i % 5 == 0).then_some(2_000_000.0);
        keys.push(fe.add_flow(&ids, cap));
    }
    // Warm-up: grows scratch to the high-water mark.
    fe.reallocate();

    let before = allocations();
    for _ in 0..100 {
        fe.reallocate();
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state FairEngine::reallocate must not allocate, saw {delta} \
         allocations over 100 calls"
    );

    // Churn (remove + re-add) must also be allocation-free: freed slots
    // keep their resource vectors and the live list shrinks in place.
    let p = routes.path(&topo, hosts[3], hosts[19]).unwrap();
    table.intern_path(&topo, &p, &mut ids);
    let n_keys = keys.len();
    // One warm-up round so the freelist vector exists (its first push is a
    // one-time allocation, not steady state).
    fe.remove_flow(keys[n_keys - 1]);
    fe.reallocate();
    keys[n_keys - 1] = fe.add_flow(&ids, None);
    fe.reallocate();
    let before = allocations();
    for round in 0..100 {
        let victim = keys[round % n_keys];
        fe.remove_flow(victim);
        fe.reallocate();
        let k = fe.add_flow(&ids, None);
        fe.reallocate();
        keys[round % n_keys] = k;
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state flow churn must not allocate, saw {delta} allocations \
         over 100 remove/add rounds"
    );

    // --- Full simulator: small constant budget per event ---------------
    // The engine proper still does id-map and outcome bookkeeping per
    // completion (BTreeMap/HashMap nodes), but must stay within a small
    // constant — the old from-scratch path cloned every flow's resource
    // vector and rebuilt two hash tables per event (~3 allocations per
    // active flow per event; >700/event at this scale).
    let (topo, hosts) = star(32);
    let run = |events: u64| -> u64 {
        let mut sim = Sim::new(topo.clone());
        let flows: Vec<FlowId> = (0..256usize)
            .map(|i| {
                sim.start_probe_flow(hosts[i % 32], hosts[(i + 9) % 32], Bytes::mib(4)).unwrap()
            })
            .collect();
        let before = allocations();
        sim.run_until_flows_done(&flows, TimeDelta::from_secs(36_000.0)).unwrap();
        let _ = events;
        allocations() - before
    };
    // 256 flows → 256 completions + 256 acks ≈ 512 events.
    let total = run(512);
    let per_event = total as f64 / 512.0;
    assert!(
        per_event < 32.0,
        "expected small constant allocation budget per event, got {per_event:.1} \
         ({total} allocations over ~512 events)"
    );
}
