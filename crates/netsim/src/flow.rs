//! Flow identifiers and completed-flow records.

use crate::time::{SimTime, TimeDelta};
use crate::topology::NodeId;
use crate::units::{Bandwidth, Bytes};

/// Identifier of a data transfer. Monotonically increasing, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The record of a finished transfer, as observed by its initiator: the
/// transfer is "done" when the final acknowledgment returns, which is how
/// NWS times its 64 KiB throughput experiments (paper §2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    pub bytes: Bytes,
    /// Caller-chosen marker, echoed back on completion.
    pub tag: u64,
    /// When the transfer was initiated.
    pub started: SimTime,
    /// When the last byte left the bottleneck (data fully drained).
    pub drained: SimTime,
    /// When the acknowledgment reached the initiator.
    pub acked: SimTime,
}

impl FlowOutcome {
    /// Wall-clock duration as the initiator measures it.
    pub fn duration(&self) -> TimeDelta {
        self.acked.since(self.started)
    }

    /// Application-level throughput: payload divided by measured duration.
    pub fn throughput(&self) -> Bandwidth {
        let d = self.duration().as_secs();
        if d <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::bytes_per_sec(self.bytes.as_f64() / d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_from_duration() {
        let o = FlowOutcome {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            bytes: Bytes::new(1_000_000),
            tag: 0,
            started: SimTime::ZERO,
            drained: SimTime::from_secs(1.0),
            acked: SimTime::from_secs(1.0),
        };
        assert!((o.throughput().as_bytes_per_sec() - 1_000_000.0).abs() < 1e-6);
        assert!((o.duration().as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_yields_zero_throughput() {
        let o = FlowOutcome {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            bytes: Bytes::new(100),
            tag: 0,
            started: SimTime::from_secs(2.0),
            drained: SimTime::from_secs(2.0),
            acked: SimTime::from_secs(2.0),
        };
        assert_eq!(o.throughput(), Bandwidth::ZERO);
    }
}
