//! Lossy-network fault injection: per-link loss models on the control
//! message path, plus replayable fault schedules.
//!
//! The paper's §2.3 claims the NWS ships "mechanisms to handle network
//! errors"; exercising those mechanisms needs a network that actually
//! errs. This module supplies the two halves:
//!
//! * [`LossModel`] — a per-link (or engine-wide) probability model for
//!   control-message faults: independent drop, duplication, and a uniform
//!   extra-latency jitter. The engine applies it on [`crate::Ctx::send`]
//!   once a fault seed is armed ([`crate::Engine::set_fault_seed`]); bulk
//!   flows are unaffected (TCP retransmits below our abstraction — a
//!   lossy path shows up as reduced measured bandwidth, which the fluid
//!   model already captures via capacity edits).
//! * [`FaultPlan`] — a seeded, replayable schedule of process crashes and
//!   restarts, link flaps, and lossy-episode windows, in the style of
//!   [`crate::churn::ChurnEvent`]: events are name-based and
//!   self-contained, so the same plan drives the engine fault plane and
//!   the NWS-layer crash/restart harness, and the same seed reproduces a
//!   bit-identical trace.
//!
//! ## Determinism
//!
//! The fault plane draws a *fixed* number of uniforms per cross-node send
//! (drop, duplicate, jitter, duplicate-delay — whether or not each fires),
//! so the random stream consumed is a function of the message sequence
//! alone. Two runs with the same engine seed, fault seed and plan are
//! bit-identical in every observable, including the drop/duplicate
//! counters in [`crate::EngineStats`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::Engine;
use crate::time::TimeDelta;
use crate::topology::NodeId;

/// Probabilistic fault model for one link (or, as the engine default, for
/// every cross-node message). All faults are independent per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Probability the message silently vanishes.
    pub drop_p: f64,
    /// Probability a second copy is delivered (possibly reordered — the
    /// duplicate bypasses the per-pair FIFO clamp).
    pub dup_p: f64,
    /// Extra one-way delay, uniform in `[0, jitter]`.
    pub jitter: TimeDelta,
}

impl LossModel {
    /// The identity model: nothing dropped, duplicated or delayed.
    pub const NONE: LossModel = LossModel { drop_p: 0.0, dup_p: 0.0, jitter: TimeDelta::ZERO };

    /// A plain lossy link: drop probability only.
    pub fn lossy(drop_p: f64) -> Self {
        LossModel { drop_p, dup_p: 0.0, jitter: TimeDelta::ZERO }
    }

    /// A degraded link: loss plus duplication plus jitter.
    pub fn degraded(drop_p: f64, dup_p: f64, jitter: TimeDelta) -> Self {
        LossModel { drop_p, dup_p, jitter }
    }

    /// Whether this model can ever perturb a message.
    pub fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.jitter <= TimeDelta::ZERO
    }

    /// Compose two models applied in series (a path crossing both): drops
    /// and duplications are independent per hop, jitters add.
    pub fn and(&self, other: &LossModel) -> LossModel {
        LossModel {
            drop_p: 1.0 - (1.0 - self.drop_p) * (1.0 - other.drop_p),
            dup_p: 1.0 - (1.0 - self.dup_p) * (1.0 - other.dup_p),
            jitter: TimeDelta::from_secs(self.jitter.as_secs() + other.jitter.as_secs()),
        }
    }
}

/// One scheduled fault. Name-based and self-contained, like
/// [`crate::churn::ChurnEvent`], so a plan can be replayed against any
/// engine simulating the same platform. Crash/restart events target
/// *processes by host name* — the engine does not know which pids live
/// where, so the NWS-layer harness maps names to pids and applies them;
/// link and loss events apply directly via [`apply_link_fault`] and the
/// engine's loss-model setters.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The named host's resident process crashes (kill at the NWS layer).
    Crash { host: String },
    /// The crashed process is restarted (supervised recovery exercises
    /// detection instead; unsupervised harnesses apply this directly).
    Restart { host: String },
    /// The named host's access links go down (transport-level outage: the
    /// process is alive but unreachable).
    LinkDown { host: String },
    /// The access links come back.
    LinkUp { host: String },
    /// A lossy episode begins: the engine-wide default loss model becomes
    /// `model` until the matching [`FaultEvent::LossEnd`].
    LossStart { model: LossModel },
    /// The lossy episode ends (default loss model cleared).
    LossEnd,
}

/// A fault with its scheduled instant (seconds of simulated time).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    pub t: f64,
    pub event: FaultEvent,
}

/// A replayable fault schedule: events sorted by time (ties broken by
/// generation order). Same seed and config → identical plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    pub events: Vec<ScheduledFault>,
}

/// Knobs for [`FaultPlan::storm`].
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Length of the window faults are scheduled into, in seconds.
    pub duration: f64,
    /// Loss model active during lossy episodes.
    pub loss: LossModel,
    /// Number of lossy episodes.
    pub episodes: usize,
    /// Number of crash → restart pairs (victims drawn from the host list).
    pub crashes: usize,
    /// Number of link-down → link-up flaps.
    pub flaps: usize,
    /// Crash/flap outage length, uniform in this range (seconds).
    pub outage: (f64, f64),
}

impl StormConfig {
    /// A storm sized for a `duration`-second run: two lossy episodes,
    /// `crashes` crash/restart pairs, one link flap.
    pub fn new(duration: f64, loss: LossModel, crashes: usize) -> Self {
        StormConfig {
            duration,
            loss,
            episodes: if loss.is_none() { 0 } else { 2 },
            crashes,
            flaps: 1,
            outage: (duration * 0.05, duration * 0.15),
        }
    }
}

impl FaultPlan {
    /// Generate a fault storm over `hosts`. Deterministic per seed; the
    /// event list is sorted by time with generation order breaking ties.
    pub fn storm(seed: u64, hosts: &[String], cfg: &StormConfig) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_57a6);
        let mut events: Vec<ScheduledFault> = Vec::new();
        for _ in 0..cfg.episodes {
            let start = rng.gen_range(0.0..cfg.duration * 0.7);
            let len = rng.gen_range(cfg.duration * 0.05..cfg.duration * 0.25);
            events.push(ScheduledFault {
                t: start,
                event: FaultEvent::LossStart { model: cfg.loss },
            });
            events.push(ScheduledFault {
                t: (start + len).min(cfg.duration),
                event: FaultEvent::LossEnd,
            });
        }
        let victims = |rng: &mut SmallRng| hosts[rng.gen_range(0..hosts.len())].clone();
        for _ in 0..cfg.crashes {
            if hosts.is_empty() {
                break;
            }
            let host = victims(&mut rng);
            let start = rng.gen_range(cfg.duration * 0.1..cfg.duration * 0.7);
            let outage = rng.gen_range(cfg.outage.0..cfg.outage.1.max(cfg.outage.0 + 1e-9));
            events
                .push(ScheduledFault { t: start, event: FaultEvent::Crash { host: host.clone() } });
            events.push(ScheduledFault {
                t: (start + outage).min(cfg.duration),
                event: FaultEvent::Restart { host },
            });
        }
        for _ in 0..cfg.flaps {
            if hosts.is_empty() {
                break;
            }
            let host = victims(&mut rng);
            let start = rng.gen_range(cfg.duration * 0.1..cfg.duration * 0.7);
            let outage = rng.gen_range(cfg.outage.0..cfg.outage.1.max(cfg.outage.0 + 1e-9));
            events.push(ScheduledFault {
                t: start,
                event: FaultEvent::LinkDown { host: host.clone() },
            });
            events.push(ScheduledFault {
                t: (start + outage).min(cfg.duration),
                event: FaultEvent::LinkUp { host },
            });
        }
        // Stable sort: equal times keep generation order, so the plan is a
        // pure function of (seed, hosts, cfg).
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        FaultPlan { events }
    }
}

/// Apply a link-level fault event to an engine: down (or restore) every
/// access link of the named host and recompute routes. Returns the host's
/// node, or `None` if the name does not resolve (e.g. a plan replayed on a
/// scenario without that host — the event is skipped, matching churn's
/// tolerant replay semantics).
pub fn apply_link_fault<M>(eng: &mut Engine<M>, host: &str, up: bool) -> Option<NodeId> {
    let node = eng.topo().node_by_name(host)?;
    let links: Vec<_> = eng.topo().neighbours(node).iter().map(|(l, _)| *l).collect();
    for l in links {
        eng.topo_mut().set_link_up(l, up);
    }
    eng.recompute_routes();
    Some(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("h{i}.x")).collect()
    }

    #[test]
    fn storm_plans_are_deterministic_per_seed() {
        let cfg = StormConfig::new(600.0, LossModel::lossy(0.05), 3);
        let a = FaultPlan::storm(9, &hosts(8), &cfg);
        let b = FaultPlan::storm(9, &hosts(8), &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::storm(10, &hosts(8), &cfg);
        assert_ne!(a, c, "plan must vary with the seed");
    }

    #[test]
    fn storm_events_are_sorted_and_paired() {
        let cfg = StormConfig::new(600.0, LossModel::lossy(0.05), 4);
        let plan = FaultPlan::storm(3, &hosts(6), &cfg);
        assert!(plan.events.windows(2).all(|w| w[0].t <= w[1].t));
        let crashes =
            plan.events.iter().filter(|e| matches!(e.event, FaultEvent::Crash { .. })).count();
        let restarts =
            plan.events.iter().filter(|e| matches!(e.event, FaultEvent::Restart { .. })).count();
        assert_eq!(crashes, 4);
        assert_eq!(crashes, restarts);
        // Every crash precedes its restart for the same host.
        for (i, e) in plan.events.iter().enumerate() {
            if let FaultEvent::Crash { host } = &e.event {
                assert!(
                    plan.events[i..]
                        .iter()
                        .any(|f| matches!(&f.event, FaultEvent::Restart { host: h } if h == host)),
                    "crash of {host} has no later restart"
                );
            }
        }
        assert!(plan.events.iter().all(|e| e.t <= cfg.duration));
    }

    #[test]
    fn loss_model_composition() {
        let a = LossModel::lossy(0.5);
        let b = LossModel::degraded(0.5, 0.2, TimeDelta::from_millis(10.0));
        let c = a.and(&b);
        assert!((c.drop_p - 0.75).abs() < 1e-12);
        assert!((c.dup_p - 0.2).abs() < 1e-12);
        assert!((c.jitter.as_secs() - 0.01).abs() < 1e-12);
        assert!(LossModel::NONE.is_none());
        assert!(!a.is_none());
    }

    #[test]
    fn zero_loss_storm_has_no_episodes() {
        let cfg = StormConfig::new(600.0, LossModel::NONE, 2);
        let plan = FaultPlan::storm(1, &hosts(4), &cfg);
        assert!(!plan.events.iter().any(|e| matches!(e.event, FaultEvent::LossStart { .. })));
    }
}
