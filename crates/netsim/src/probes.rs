//! User-level network experiments: exactly the observations ENV and NWS are
//! allowed to make (no SNMP, no raw sockets, no super-user privileges —
//! paper §3).
//!
//! * [`Engine::measure_rtt`] — NWS's latency probe: a 4-byte transfer timed
//!   there-and-back on an established connection (§2.2).
//! * [`Engine::measure_bandwidth`] — NWS's throughput probe: a 64 KiB
//!   message timed until acknowledgment (§2.2); ENV uses larger transfers.
//! * [`Engine::measure_bandwidth_concurrent`] — several transfers launched
//!   at the same instant; the primitive behind ENV's pairwise and jammed
//!   experiments (§4.2.2).
//! * [`Engine::measure_connect_time`] — TCP connect-disconnect time.
//! * [`Engine::traceroute`] — hop discovery via TTL expiry; silent routers
//!   yield anonymous hops, unnamed routers yield bare IPs.
//!
//! All probes advance the simulated clock, so background traffic keeps
//! flowing while experiments run — platform evolution during a mapping is
//! part of what the reproduction can study (§4.3 "Reliability").

use crate::engine::Engine;
use crate::error::{NetError, NetResult};
use crate::ip::Ipv4;
use crate::time::TimeDelta;
use crate::topology::NodeId;
use crate::units::{Bandwidth, Bytes};

/// Payload of the NWS latency experiment.
pub const LATENCY_PROBE_BYTES: Bytes = Bytes::new(4);

/// Payload of the NWS bandwidth experiment (64 KiB).
pub const BANDWIDTH_PROBE_BYTES: Bytes = Bytes::kib(64);

/// Guard horizon for a single probe.
fn probe_horizon() -> TimeDelta {
    TimeDelta::from_secs(3600.0)
}

/// One line of traceroute output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteHop {
    /// Address of the responding interface; `None` when the router drops
    /// probes (a `* * *` line).
    pub ip: Option<Ipv4>,
    /// Reverse-resolved name, when the address has one.
    pub name: Option<String>,
}

impl<M> Engine<M> {
    /// Round-trip time of a 4-byte transfer (NWS latency experiment).
    pub fn measure_rtt(&mut self, src: NodeId, dst: NodeId) -> NetResult<TimeDelta> {
        let f = self.start_probe_flow(src, dst, LATENCY_PROBE_BYTES)?;
        self.run_until_flows_done(&[f], probe_horizon())?;
        Ok(self.outcome(f).expect("flow completed").duration())
    }

    /// Throughput of a single timed transfer of `bytes`.
    pub fn measure_bandwidth(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: Bytes,
    ) -> NetResult<Bandwidth> {
        let f = self.start_probe_flow(src, dst, bytes)?;
        self.run_until_flows_done(&[f], probe_horizon())?;
        Ok(self.outcome(f).expect("flow completed").throughput())
    }

    /// Launch one transfer per `(src, dst)` pair at the same instant and
    /// report each pair's observed throughput. Pairs that cannot start
    /// (firewalled, unreachable) report their error without blocking the
    /// others.
    pub fn measure_bandwidth_concurrent(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        bytes: Bytes,
    ) -> Vec<NetResult<Bandwidth>> {
        let started: Vec<NetResult<crate::flow::FlowId>> =
            pairs.iter().map(|(s, d)| self.start_probe_flow(*s, *d, bytes)).collect();
        let ids: Vec<_> = started.iter().filter_map(|r| r.as_ref().ok().copied()).collect();
        if let Err(e) = self.run_until_flows_done(&ids, probe_horizon()) {
            // Horizon blown: report the error for every pending pair.
            return started
                .into_iter()
                .map(|r| match r {
                    Ok(id) => self.outcome(id).map(|o| o.throughput()).ok_or_else(|| e.clone()),
                    Err(e) => Err(e),
                })
                .collect();
        }
        started
            .into_iter()
            .map(|r| r.map(|id| self.outcome(id).expect("awaited above").throughput()))
            .collect()
    }

    /// TCP connect-disconnect time, modelled as 1.5 RTT (SYN, SYN-ACK,
    /// ACK) — the third NWS network experiment (§2.2).
    pub fn measure_connect_time(&mut self, src: NodeId, dst: NodeId) -> NetResult<TimeDelta> {
        let rtt = self.measure_rtt(src, dst)?;
        Ok(rtt * 1.5)
    }

    /// Hop discovery by TTL expiry. Reports the layer-3 hops between `src`
    /// and `dst` in path order; layer-2 switches and hubs are invisible.
    ///
    /// Firewalls block probe packets like any other traffic.
    pub fn traceroute(&mut self, src: NodeId, dst: NodeId) -> NetResult<Vec<TracerouteHop>> {
        let topo = self.topo();
        topo.try_node(src)?;
        topo.try_node(dst)?;
        if !topo.allows(src, dst) {
            return Err(NetError::Firewalled { src, dst });
        }
        let path = self.routes().path(self.topo(), src, dst)?;
        let mut hops = Vec::new();
        for (i, node_id) in path.nodes.iter().enumerate() {
            if i == 0 || i + 1 == path.nodes.len() {
                continue;
            }
            let node = topo.node(*node_id);
            if !node.is_l3_hop() {
                continue;
            }
            if !node.responds_to_traceroute {
                hops.push(TracerouteHop { ip: None, name: None });
                continue;
            }
            // Report the interface facing the previous hop (the incoming
            // link), as real routers do.
            let incoming = path.links[i - 1];
            let iface = topo.iface_on_link(*node_id, incoming).or_else(|| node.ifaces.first());
            match iface {
                Some(ifc) => hops.push(TracerouteHop {
                    ip: Some(ifc.ip),
                    name: topo.dns().reverse(ifc.ip).map(str::to_string),
                }),
                None => hops.push(TracerouteHop { ip: None, name: None }),
            }
        }
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::topology::TopologyBuilder;
    use crate::units::Latency;

    /// a — hub1 — r — hub2 — c with a named and an anonymous router.
    fn routed_net() -> (Sim, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let hub1 = b.hub("hub1", Bandwidth::mbps(100.0), Latency::micros(100.0));
        let hub2 = b.hub("hub2", Bandwidth::mbps(10.0), Latency::micros(100.0));
        let a = b.host("a.site.net", "10.1.0.1");
        let c = b.host("c.site.net", "10.2.0.1");
        let r = b.router("gw.site.net", "10.0.0.1");
        b.attach(a, hub1);
        b.attach(r, hub1);
        b.attach(r, hub2);
        b.attach(c, hub2);
        (Sim::new(b.build().unwrap()), a, c)
    }

    #[test]
    fn rtt_is_round_trip_latency() {
        let (mut sim, a, c) = routed_net();
        let rtt = sim.measure_rtt(a, c).unwrap();
        // 4 port traversals each way at 100 us = 800 us, plus negligible
        // serialization of 4 bytes.
        assert!((rtt.as_secs() - 800e-6).abs() < 20e-6, "rtt = {rtt}");
    }

    #[test]
    fn bandwidth_sees_bottleneck() {
        let (mut sim, a, c) = routed_net();
        let bw = sim.measure_bandwidth(a, c, Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 10.0).abs() < 0.2, "bw = {bw}");
    }

    #[test]
    fn connect_time_is_1_5_rtt() {
        let (mut sim, a, c) = routed_net();
        let rtt = sim.measure_rtt(a, c).unwrap();
        let ct = sim.measure_connect_time(a, c).unwrap();
        assert!((ct.as_secs() - 1.5 * rtt.as_secs()).abs() < 1e-5);
    }

    #[test]
    fn concurrent_probes_interfere_on_hub() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        let mut sim = Sim::new(b.build().unwrap());
        let res = sim.measure_bandwidth_concurrent(
            &[(hosts[0], hosts[1]), (hosts[2], hosts[3])],
            Bytes::mib(1),
        );
        let bw0 = res[0].as_ref().unwrap().as_mbps();
        let bw1 = res[1].as_ref().unwrap().as_mbps();
        assert!((bw0 - 50.0).abs() < 1.0, "bw0 = {bw0}");
        assert!((bw1 - 50.0).abs() < 1.0, "bw1 = {bw1}");
    }

    #[test]
    fn concurrent_probe_with_bad_pair_reports_error() {
        let (mut sim, a, c) = routed_net();
        let res = sim.measure_bandwidth_concurrent(&[(a, c), (a, a)], Bytes::kib(64));
        assert!(res[0].is_ok());
        assert!(matches!(res[1], Err(NetError::SelfProbe(_))));
    }

    #[test]
    fn traceroute_reports_named_router() {
        let (mut sim, a, c) = routed_net();
        let hops = sim.traceroute(a, c).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].name.as_deref(), Some("gw.site.net"));
        assert_eq!(hops[0].ip, Some("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn traceroute_anonymous_and_silent_routers() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.1.0.1");
        let c = b.host("c.x", "10.2.0.1");
        let r1 = b.router_unnamed("192.168.254.1");
        let r2 = b.router("silent.x", "10.9.0.1");
        b.set_traceroute_silent(r2);
        b.link(a, r1, Bandwidth::mbps(100.0), Latency::micros(50.0));
        b.link(r1, r2, Bandwidth::mbps(100.0), Latency::micros(50.0));
        b.link(r2, c, Bandwidth::mbps(100.0), Latency::micros(50.0));
        let mut sim = Sim::new(b.build().unwrap());
        let hops = sim.traceroute(a, c).unwrap();
        assert_eq!(hops.len(), 2);
        // Anonymous: IP but no name.
        assert_eq!(hops[0].ip, Some("192.168.254.1".parse().unwrap()));
        assert_eq!(hops[0].name, None);
        // Silent: nothing at all.
        assert_eq!(hops[1].ip, None);
    }

    #[test]
    fn traceroute_respects_firewall() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(10.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        b.firewall_deny_between(&[a], &[c]);
        let mut sim = Sim::new(b.build().unwrap());
        assert!(matches!(sim.traceroute(a, c), Err(NetError::Firewalled { .. })));
    }

    #[test]
    fn gateway_host_appears_as_hop() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.1.0.1");
        let gw = b.host_multi("gw", &[("gw.x", "10.1.0.2"), ("gw.private", "192.168.1.1")]);
        b.set_forwards(gw, true);
        let c = b.host("c.private", "192.168.1.2");
        b.link_ifaces(a, 0, gw, 0, Bandwidth::mbps(100.0), Latency::micros(50.0));
        b.link_ifaces(gw, 1, c, 0, Bandwidth::mbps(100.0), Latency::micros(50.0));
        let mut sim = Sim::new(b.build().unwrap());
        let hops = sim.traceroute(a, c).unwrap();
        assert_eq!(hops.len(), 1);
        // Reports the interface facing the probe (public side).
        assert_eq!(hops[0].ip, Some("10.1.0.2".parse().unwrap()));
        assert_eq!(hops[0].name.as_deref(), Some("gw.x"));
    }

    #[test]
    fn probe_constants_match_paper() {
        assert_eq!(LATENCY_PROBE_BYTES.as_u64(), 4);
        assert_eq!(BANDWIDTH_PROBE_BYTES.as_u64(), 65_536);
    }
}
