//! Graphviz (DOT) export of topologies — render Figure 1(a)-style pictures
//! from any platform with `dot -Tsvg`.

use std::fmt::Write as _;

use crate::topology::{LinkMode, NodeKind, Topology};

/// Render the topology as an undirected Graphviz graph. Hosts are boxes,
/// routers diamonds, hubs/switches ellipses; link labels carry capacity.
pub fn topology_to_dot(topo: &Topology) -> String {
    let mut out = String::from("graph topology {\n  overlap=false;\n  splines=true;\n");
    for n in topo.nodes() {
        let (shape, style) = match n.kind {
            NodeKind::Host => ("box", if n.forwards { ",style=bold" } else { "" }),
            NodeKind::Router => ("diamond", ""),
            NodeKind::Switch => ("ellipse", ",style=filled,fillcolor=lightblue"),
            NodeKind::Hub => ("ellipse", ",style=filled,fillcolor=lightyellow"),
            NodeKind::External => ("doublecircle", ""),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\",shape={shape}{style}];",
            n.id.index(),
            escape(&n.label)
        );
    }
    for l in topo.links() {
        let label = match l.mode {
            LinkMode::FullDuplex { capacity_ab, .. } => format!("{capacity_ab}"),
            LinkMode::Shared { medium } => {
                format!("{} (shared)", topo.medium(medium).capacity)
            }
        };
        let style = if l.up { "" } else { ",style=dashed,color=red" };
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}\"{style}];",
            l.a.index(),
            l.b.index(),
            escape(&label)
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{ens_lyon, Calibration};
    use crate::topology::TopologyBuilder;
    use crate::units::{Bandwidth, Latency};

    #[test]
    fn renders_all_nodes_and_links() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub0", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let a = b.host("a.x", "10.0.0.1");
        b.attach(a, hub);
        let t = b.build().unwrap();
        let dot = topology_to_dot(&t);
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.contains("label=\"hub0\""));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("(shared)"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches(" -- ").count(), t.link_count());
    }

    #[test]
    fn gateway_hosts_are_bold_and_downed_links_dashed() {
        let mut b = TopologyBuilder::new();
        let gw = b.host_multi("gw", &[("gw.a", "10.0.0.1"), ("gw.b", "192.168.0.1")]);
        b.set_forwards(gw, true);
        let h = b.host("h.x", "10.0.0.2");
        let l = b.link(gw, h, Bandwidth::mbps(10.0), Latency::ZERO);
        let mut t = b.build().unwrap();
        t.set_link_up(l, false);
        let dot = topology_to_dot(&t);
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("style=dashed,color=red"));
    }

    #[test]
    fn ens_lyon_exports() {
        let net = ens_lyon(Calibration::Paper);
        let dot = topology_to_dot(&net.topo);
        assert!(dot.contains("the-doors"));
        assert!(dot.contains("SciSwitch"));
        assert!(dot.contains("Hub2"));
        // One node line per node.
        assert_eq!(dot.lines().filter(|l| l.contains("shape=")).count(), net.topo.node_count());
    }
}
