//! The discrete-event engine: simulated clock, event queue, fluid flows and
//! actor processes.
//!
//! Flows do not schedule their own completion events — their rates change
//! whenever the active flow set changes. Instead the main loop interleaves
//! queued events with the earliest flow completion under the *current*
//! max-min allocation, draining transferred bytes as time advances. This is
//! the standard fluid-simulation approach and keeps every observable
//! deterministic: BTreeMap iteration orders flows by id, the queue breaks
//! time ties by insertion sequence.
//!
//! Processes ([`Process`]) are single-threaded actors pinned to a host.
//! They react to messages, timers and the completion of flows they own,
//! through a [`Ctx`] handle that exposes the engine's services. The NWS
//! crate builds its four server kinds (sensor, memory, forecaster, name
//! server) on this interface.

use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::error::{NetError, NetResult};
use crate::fairness::{FairEngine, FairnessModel, ResourceId};
use crate::faults::LossModel;
use crate::flow::{FlowId, FlowOutcome};
use crate::routing::RouteTable;
use crate::time::{SimTime, TimeDelta};
use crate::topology::{LinkId, NodeId, Topology};
use crate::units::{Bandwidth, Bytes};

/// Identifier of a process (actor) registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) u32);

impl ProcessId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index — only meaningful for ids handed out by
    /// an [`Engine`]; exposed for downstream test fixtures.
    pub fn from_raw(raw: u32) -> Self {
        ProcessId(raw)
    }
}

/// Identifier of a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Message type for simulations that never exchange messages (probe-only
/// use). Uninhabited, so dead branches compile away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoMsg {}

/// An actor running on a simulated host.
///
/// All callbacks receive a [`Ctx`] for interacting with the engine. Default
/// implementations ignore the event, so implementors override only what
/// they need.
#[allow(unused_variables)]
pub trait Process<M> {
    /// Called once when the simulation starts (or when the process is added
    /// to a running simulation).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {}

    /// A message from another process has been delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId, msg: M) {}

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {}

    /// A flow started by this process completed (ack received).
    fn on_flow_complete(&mut self, ctx: &mut Ctx<'_, M>, outcome: &FlowOutcome) {}

    /// A message this process sent could not be delivered (firewall or
    /// disconnection).
    fn on_send_failed(&mut self, ctx: &mut Ctx<'_, M>, to: ProcessId, err: &NetError) {}
}

/// Statistics counters, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    pub events_processed: u64,
    pub flows_started: u64,
    pub messages_sent: u64,
    pub bytes_transferred: f64,
    /// Control messages silently lost by the fault plane (see
    /// [`crate::faults`]). Zero unless a fault seed is armed.
    pub messages_dropped: u64,
    /// Extra copies injected by the fault plane.
    pub messages_duplicated: u64,
}

#[derive(Debug)]
struct ActiveFlow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    bytes: Bytes,
    /// Bytes left to drain as of `updated_at`. Flows drain *lazily*: the
    /// count is only materialised when the flow's rate changes, so steady
    /// clock advances touch no per-flow state.
    remaining: f64,
    updated_at: SimTime,
    /// Current allocated rate in bytes/sec (mirror of the fairness
    /// engine's committed rate; kept here for drain materialisation).
    rate: f64,
    started: SimTime,
    /// One-way forward + return latency, added after drain for the ack.
    ack_latency: TimeDelta,
    owner: Option<ProcessId>,
    tag: u64,
    /// Bumped on every rate change. Completion-heap entries carry the value
    /// they were pushed with, so stale projections are recognised and
    /// discarded lazily instead of being searched for and removed.
    push_seq: u32,
}

/// A projected flow completion. Entries are never removed eagerly: a rate
/// change bumps the flow's `push_seq`, invalidating every older entry.
#[derive(Debug, Clone, Copy)]
struct CompEntry {
    at: SimTime,
    id: FlowId,
    /// Fairness-engine key (= flow slot index) for O(1) validation.
    key: u32,
    seq: u32,
}

impl PartialEq for CompEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl Eq for CompEntry {}

impl Ord for CompEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for the max-heap: earliest completion first, ties broken
        // by flow id ascending (the order the old linear scan returned).
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for CompEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

enum EventKind<M> {
    Start { pid: ProcessId },
    Deliver { from: ProcessId, to: ProcessId, msg: M },
    Timer { to: ProcessId, timer: TimerId, tag: u64 },
    FlowAck { flow: FlowId },
}

struct QEntry<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for QEntry<M> {}

impl<M> Ord for QEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for QEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything in the engine except the boxed processes; split out so a
/// process callback can borrow the core mutably through [`Ctx`] while its
/// own box is temporarily detached.
pub struct Core<M> {
    /// Shared snapshot of the platform. Workers mapping in parallel hold
    /// clones of the same `Arc`s; mutation goes through copy-on-write
    /// ([`Engine::topo_mut`]), so a worker's snapshot is never changed
    /// under it.
    topo: Arc<Topology>,
    routes: Arc<RouteTable>,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QEntry<M>>,
    /// Flow id → fairness-engine key (also the `flow_slots` index).
    flows: BTreeMap<FlowId, u32>,
    /// Active flow state, indexed by fairness-engine key. Slots are
    /// recycled by the fairness engine's freelist.
    flow_slots: Vec<Option<ActiveFlow>>,
    /// The incremental allocator: interned resources, per-resource user
    /// counts, reusable scratch (see `fairness::FairEngine`).
    fair: FairEngine,
    /// Projected completions (lazy deletion; see [`CompEntry`]).
    completions: BinaryHeap<CompEntry>,
    /// Sum of all active flow rates, maintained incrementally so clock
    /// advances update transfer stats in O(1) instead of O(flows).
    total_rate: f64,
    /// Reusable buffer for interned path extraction at flow start.
    res_scratch: Vec<ResourceId>,
    next_flow: u64,
    next_timer: u64,
    finished: HashMap<FlowId, FlowOutcome>,
    cancelled_timers: HashSet<TimerId>,
    proc_nodes: Vec<NodeId>,
    /// TCP window used to cap flow rates at `window / RTT`; `None` models
    /// well-tuned transfers that are never window-limited.
    tcp_window: Option<Bytes>,
    stats: EngineStats,
    /// Owners of drained-but-not-yet-acked flows, so the ack event can
    /// notify them. `None` entries are probe flows.
    owner_of_finished: HashMap<FlowId, Option<ProcessId>>,
    /// Last scheduled delivery per (sender, receiver): control messages
    /// between two processes are FIFO, like the TCP connections real NWS
    /// servers keep open (a short message must not overtake a longer one
    /// sent earlier). Entries of killed processes are pruned in
    /// [`Engine::kill_process`] so crash/restart churn cannot grow the map
    /// unboundedly.
    last_delivery: HashMap<(ProcessId, ProcessId), SimTime>,
    /// Fault plane (see [`crate::faults`]): armed by
    /// [`Engine::set_fault_seed`]. While armed, every cross-node send
    /// draws a fixed number of uniforms so the stream stays a function of
    /// the message sequence alone.
    fault_rng: Option<SmallRng>,
    /// Engine-wide loss model applied to every cross-node message.
    default_loss: Option<LossModel>,
    /// Additional per-link loss models, composed along the message's path.
    link_loss: HashMap<LinkId, LossModel>,
}

impl<M> Core<M> {
    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QEntry { time, seq, kind });
    }

    /// Advance the clock to instant `t`. Flows drain lazily (their
    /// `remaining` is only materialised on rate changes), so this is O(1):
    /// the transfer statistic advances by the maintained aggregate rate.
    fn advance_to(&mut self, t: SimTime) {
        let dt = t.since(self.now).as_secs();
        if dt > 0.0 && self.total_rate > 0.0 {
            self.stats.bytes_transferred += self.total_rate * dt;
        }
        self.now = t;
    }

    /// Recompute the fair allocation for the current flow set. Must be
    /// called after every change to the set. Only flows whose rate actually
    /// changed are touched: their drain is materialised under the old
    /// rate, the aggregate rate is adjusted, and a fresh completion
    /// projection is pushed (invalidating older heap entries via
    /// `push_seq`). Steady-state cost: O(changed), zero heap allocation.
    fn reallocate(&mut self) {
        let now = self.now;
        self.fair.reallocate();
        for i in 0..self.fair.changed().len() {
            let key = self.fair.changed()[i];
            let new_rate = self.fair.rate(key);
            let f =
                self.flow_slots[key as usize].as_mut().expect("changed key refers to a live flow");
            // Materialise the drain accrued under the old rate.
            let dt = now.since(f.updated_at).as_secs();
            if dt > 0.0 {
                f.remaining -= f.rate * dt;
            }
            f.updated_at = now;
            self.total_rate += new_rate - f.rate;
            f.rate = new_rate;
            f.push_seq = f.push_seq.wrapping_add(1);
            if new_rate > 0.0 {
                let at = now + TimeDelta::from_secs((f.remaining / new_rate).max(0.0));
                self.completions.push(CompEntry { at, id: f.id, key, seq: f.push_seq });
            }
        }
        if self.flows.is_empty() {
            // Clear any accumulated floating-point drift while idle, and
            // drop every (necessarily stale) completion projection: a
            // long-lived engine driving scenario after scenario must not
            // carry dead-heap baggage between them.
            self.total_rate = 0.0;
            self.completions.clear();
        }
        // Bound the lazy-deletion heap absolutely: entries superseded deep
        // in the heap (projected far in the future while a flow was
        // near-stalled) are otherwise only discarded on reaching the top.
        // Each live flow has at most one current entry, so more than
        // 2× live entries means at least half the heap is stale — rebuild
        // in place (amortised O(1) per push). The small floor only stops
        // tiny heaps from rebuilding on every call; unlike the previous
        // 64-entry floor it keeps the bound tight even when the live-flow
        // count stays small across long engine reuse.
        if self.completions.len() > 8 && self.completions.len() > 2 * self.flows.len() {
            let mut entries = std::mem::take(&mut self.completions).into_vec();
            entries.retain(|e| Self::completion_valid(&self.flow_slots, e));
            // From<Vec> heapifies in place — no allocation.
            self.completions = BinaryHeap::from(entries);
        }
    }

    /// The lazy-deletion invariant: a heap entry is current iff its slot
    /// still holds the same flow (recycled slots change `id`) at the same
    /// `push_seq` (rate changes bump it).
    fn completion_valid(flow_slots: &[Option<ActiveFlow>], e: &CompEntry) -> bool {
        flow_slots
            .get(e.key as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|f| f.id == e.id && f.push_seq == e.seq)
    }

    /// Earliest instant at which some active flow finishes draining, under
    /// current rates. Pops stale heap entries (superseded projections and
    /// completed flows) and peeks the first valid one — amortised
    /// O(log flows) against the old O(flows) scan per event.
    fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        while let Some(top) = self.completions.peek() {
            if Self::completion_valid(&self.flow_slots, top) {
                return Some((top.at, top.id));
            }
            self.completions.pop();
        }
        None
    }

    fn start_flow_inner(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: Bytes,
        owner: Option<ProcessId>,
        tag: u64,
    ) -> NetResult<FlowId> {
        if bytes == Bytes::ZERO {
            return Err(NetError::EmptyTransfer);
        }
        if src == dst {
            return Err(NetError::SelfProbe(src));
        }
        self.topo.try_node(src)?;
        self.topo.try_node(dst)?;
        if !self.topo.allows(src, dst) {
            return Err(NetError::Firewalled { src, dst });
        }
        // Interned path extraction: walk both directions without building a
        // `Path`, accumulating latency and (forward only) resource ids into
        // the reusable scratch buffer.
        let mut res = std::mem::take(&mut self.res_scratch);
        res.clear();
        let mut fwd_secs = 0.0;
        let mut back_secs = 0.0;
        let walk = (|| -> NetResult<()> {
            for (from, l) in self.routes.hops_rev(&self.topo, src, dst)? {
                let link = self.topo.link(l);
                fwd_secs += link.latency.as_secs();
                res.push(self.fair.table().link_dir(l, link.a == from));
            }
            for (_, l) in self.routes.hops_rev(&self.topo, dst, src)? {
                back_secs += self.topo.link(l).latency.as_secs();
            }
            Ok(())
        })();
        if let Err(e) = walk {
            self.res_scratch = res;
            return Err(e);
        }
        res.sort_unstable();
        res.dedup();
        let ack_latency = TimeDelta::from_secs(fwd_secs + back_secs);
        let rate_cap = self.tcp_window.map(|w| {
            let rtt = (fwd_secs + back_secs).max(1e-9);
            w.as_f64() / rtt
        });

        let key = self.fair.add_flow(&res, rate_cap);
        self.res_scratch = res;
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        if self.flow_slots.len() <= key as usize {
            self.flow_slots.resize_with(key as usize + 1, || None);
        }
        self.flow_slots[key as usize] = Some(ActiveFlow {
            id,
            src,
            dst,
            bytes,
            remaining: bytes.as_f64(),
            updated_at: self.now,
            rate: 0.0,
            started: self.now,
            ack_latency,
            owner,
            tag,
            push_seq: 0,
        });
        self.flows.insert(id, key);
        self.stats.flows_started += 1;
        self.reallocate();
        Ok(id)
    }

    /// Complete a drained flow: record its outcome skeleton and schedule
    /// the ack event.
    fn complete_flow(&mut self, id: FlowId) {
        let key = self.flows.remove(&id).expect("completing unknown flow");
        let f = self.flow_slots[key as usize].take().expect("completing empty slot");
        self.fair.remove_flow(key);
        self.total_rate -= f.rate;
        let outcome = FlowOutcome {
            id,
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            tag: f.tag,
            started: f.started,
            drained: self.now,
            acked: self.now + f.ack_latency, // finalized on ack delivery
        };
        self.finished.insert(id, outcome);
        let ack_at = self.now + f.ack_latency;
        // Stash the owner in the event via the finished map; FlowAck will
        // look it up.
        self.owner_of_finished.insert(id, f.owner);
        self.push_event(ack_at, EventKind::FlowAck { flow: id });
        self.reallocate();
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn process_node(&self, pid: ProcessId) -> NodeId {
        self.proc_nodes[pid.index()]
    }

    /// The recorded outcome of a completed flow, if it has been acked.
    pub fn outcome(&self, id: FlowId) -> Option<&FlowOutcome> {
        self.finished.get(&id)
    }
}

/// The simulation engine. Generic over the message type `M` exchanged by
/// processes; use [`NoMsg`] (alias [`Sim`]) when only probes are needed.
pub struct Engine<M> {
    core: Core<M>,
    procs: Vec<Option<Box<dyn Process<M>>>>,
}

/// Probe-only simulator alias.
pub type Sim = Engine<NoMsg>;

/// Handle given to process callbacks for interacting with the engine.
pub struct Ctx<'a, M> {
    core: &'a mut Core<M>,
    me: ProcessId,
}

impl<'a, M> Ctx<'a, M> {
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The host this process runs on.
    pub fn my_node(&self) -> NodeId {
        self.core.proc_nodes[self.me.index()]
    }

    pub fn topo(&self) -> &Topology {
        &self.core.topo
    }

    pub fn node_of(&self, pid: ProcessId) -> NodeId {
        self.core.proc_nodes[pid.index()]
    }

    /// Send a control message to another process. Delivery takes the
    /// one-way path latency plus serialization at the path bottleneck;
    /// control messages are small and do not compete with bulk flows.
    ///
    /// When a fault plane is armed ([`Engine::set_fault_seed`]) cross-node
    /// messages are subject to the active [`LossModel`]s: a dropped
    /// message vanishes silently (`Ok` is still returned — the sender
    /// learns nothing, like a UDP datagram lost in flight), a duplicated
    /// message delivers an extra copy that bypasses the per-pair FIFO
    /// clamp (so it may arrive reordered), and jitter delays delivery
    /// before the FIFO clamp (so the pair stream stays ordered).
    pub fn send(&mut self, to: ProcessId, bytes: Bytes, msg: M) -> NetResult<()>
    where
        M: Clone,
    {
        let src = self.my_node();
        let dst = *self.core.proc_nodes.get(to.index()).ok_or(NetError::UnknownProcess(to.0))?;
        self.core.stats.messages_sent += 1;
        if src == dst {
            // Local delivery never traverses a link: the fault plane does
            // not apply (and draws nothing, keeping the random stream a
            // function of cross-node traffic only).
            let mut at = self.core.now;
            if let Some(prev) = self.core.last_delivery.get(&(self.me, to)) {
                if *prev > at {
                    at = *prev;
                }
            }
            self.core.last_delivery.insert((self.me, to), at);
            self.core.push_event(at, EventKind::Deliver { from: self.me, to, msg });
            return Ok(());
        }
        if !self.core.topo.allows(src, dst) {
            return Err(NetError::Firewalled { src, dst });
        }
        let (lat, bw) = self.core.routes.latency_and_bottleneck(&self.core.topo, src, dst)?;
        let bw = bw.as_bytes_per_sec().max(1.0);
        let mut at = self.core.now + TimeDelta::from_secs(lat.as_secs() + bytes.as_f64() / bw);
        // Fault plane: fixed draw count per send (drop, dup, jitter,
        // dup-delay) so the consumed stream is deterministic regardless of
        // which faults fire.
        let mut duplicate_at = None;
        if let Some(rng) = self.core.fault_rng.as_mut() {
            let r_drop = rng.next_f64();
            let r_dup = rng.next_f64();
            let r_jit = rng.next_f64();
            let r_dup_delay = rng.next_f64();
            let mut eff = self.core.default_loss.unwrap_or(LossModel::NONE);
            if !self.core.link_loss.is_empty() {
                if let Ok(hops) = self.core.routes.hops_rev(&self.core.topo, src, dst) {
                    for (_, l) in hops {
                        if let Some(lm) = self.core.link_loss.get(&l) {
                            eff = eff.and(lm);
                        }
                    }
                }
            }
            if !eff.is_none() {
                if r_drop < eff.drop_p {
                    // Silent loss: no delivery, no FIFO update, the sender
                    // is not told (recovery is the protocol layer's job).
                    self.core.stats.messages_dropped += 1;
                    return Ok(());
                }
                let jitter = eff.jitter.as_secs();
                if jitter > 0.0 {
                    at += TimeDelta::from_secs(jitter * r_jit);
                }
                if r_dup < eff.dup_p {
                    // The copy takes an independently jittered path and
                    // does not advance the FIFO clamp: it may overtake or
                    // trail later messages, exercising receiver dedup.
                    duplicate_at = Some(at + TimeDelta::from_secs(jitter * r_dup_delay));
                }
            }
        }
        // FIFO per process pair: model the ordered TCP connection.
        if let Some(prev) = self.core.last_delivery.get(&(self.me, to)) {
            if *prev > at {
                at = *prev;
            }
        }
        self.core.last_delivery.insert((self.me, to), at);
        if let Some(dup_at) = duplicate_at {
            self.core.stats.messages_duplicated += 1;
            let copy = msg.clone();
            self.core.push_event(dup_at, EventKind::Deliver { from: self.me, to, msg: copy });
        }
        self.core.push_event(at, EventKind::Deliver { from: self.me, to, msg });
        Ok(())
    }

    /// Start a bulk transfer owned by this process; `on_flow_complete`
    /// fires when the ack returns.
    pub fn start_flow(&mut self, dst: NodeId, bytes: Bytes, tag: u64) -> NetResult<FlowId> {
        let src = self.my_node();
        self.core.start_flow_inner(src, dst, bytes, Some(self.me), tag)
    }

    /// Arm a one-shot timer; `on_timer` fires with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: TimeDelta, tag: u64) -> TimerId {
        let timer = TimerId(self.core.next_timer);
        self.core.next_timer += 1;
        let at = self.core.now + delay;
        self.core.push_event(at, EventKind::Timer { to: self.me, timer, tag });
        timer
    }

    /// Cancel a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.core.cancelled_timers.insert(timer);
    }

    /// Measured RTT estimate from the routing tables (a cheap local
    /// computation, *not* a probe — sensors use flows for real probes).
    pub fn static_rtt(&self, dst: NodeId) -> NetResult<TimeDelta> {
        let src = self.my_node();
        let fwd = self.core.routes.latency(&self.core.topo, src, dst)?;
        let back = self.core.routes.latency(&self.core.topo, dst, src)?;
        Ok(TimeDelta::from_secs(fwd.as_secs() + back.as_secs()))
    }
}

impl<M> Engine<M> {
    /// Build an engine over a validated topology. Routes are computed once
    /// here; call [`Engine::recompute_routes`] after link state changes.
    pub fn new(topo: Topology) -> Self {
        let routes = RouteTable::compute(&topo);
        Self::from_snapshot(Arc::new(topo), Arc::new(routes))
    }

    /// Build an engine over an existing shared (topology, routes) snapshot
    /// without recomputing anything heavy — the per-worker entry point of
    /// the parallel mapper. Cost is O(links) (the allocator's resource
    /// interner), versus the all-pairs route computation `new` performs.
    /// The snapshot is immutable-by-contract: mutating through
    /// [`Engine::topo_mut`] copies-on-write, so sibling engines sharing
    /// the `Arc`s are unaffected.
    pub fn from_snapshot(topo: Arc<Topology>, routes: Arc<RouteTable>) -> Self {
        let fair = FairEngine::new(&topo, FairnessModel::default());
        Engine {
            core: Core {
                topo,
                routes,
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                flows: BTreeMap::new(),
                flow_slots: Vec::new(),
                fair,
                completions: BinaryHeap::new(),
                total_rate: 0.0,
                res_scratch: Vec::new(),
                next_flow: 0,
                next_timer: 0,
                finished: HashMap::new(),
                cancelled_timers: HashSet::new(),
                proc_nodes: Vec::new(),
                tcp_window: None,
                stats: EngineStats::default(),
                owner_of_finished: HashMap::new(),
                last_delivery: HashMap::new(),
                fault_rng: None,
                default_loss: None,
                link_loss: HashMap::new(),
            },
            procs: Vec::new(),
        }
    }

    /// Cap flow rates at `window / RTT` (TCP window modelling). `None`
    /// disables the cap (default).
    pub fn set_tcp_window(&mut self, window: Option<Bytes>) {
        self.core.tcp_window = window;
    }

    /// Select the bandwidth-sharing model (ablation hook; max-min default).
    /// Takes effect on the next flow-set change, as before.
    pub fn set_fairness_model(&mut self, model: FairnessModel) {
        self.core.fair.set_model(model);
    }

    /// Arm the fault plane with a dedicated seed (see [`crate::faults`]).
    /// Until armed, sends never consult the loss models and draw nothing.
    /// Re-arming resets the stream, so a run is reproducible from any
    /// checkpoint that re-seeds.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.core.fault_rng = Some(SmallRng::seed_from_u64(seed ^ 0x10_55_1e_af));
    }

    /// Engine-wide loss model applied to every cross-node control message
    /// (composed with any per-link models on the path). `None` clears it.
    pub fn set_default_loss(&mut self, model: Option<LossModel>) {
        self.core.default_loss = model;
    }

    /// Attach (or clear) a loss model on one link. Messages whose route
    /// crosses the link compose it into their effective model.
    pub fn set_link_loss(&mut self, link: LinkId, model: Option<LossModel>) {
        match model {
            Some(m) => {
                self.core.link_loss.insert(link, m);
            }
            None => {
                self.core.link_loss.remove(&link);
            }
        }
    }

    /// Register a process on a host. Its `on_start` runs when the engine
    /// next processes events.
    pub fn add_process(&mut self, node: NodeId, proc_: Box<dyn Process<M>>) -> ProcessId {
        let pid = ProcessId(self.core.proc_nodes.len() as u32);
        self.core.proc_nodes.push(node);
        self.procs.push(Some(proc_));
        let now = self.core.now;
        self.core.push_event(now, EventKind::Start { pid });
        pid
    }

    /// Start an ownerless flow (used by the probe API).
    pub fn start_probe_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: Bytes,
    ) -> NetResult<FlowId> {
        self.core.start_flow_inner(src, dst, bytes, None, 0)
    }

    /// Kill a process: it stops receiving events immediately (failure
    /// injection — e.g. a crashed NWS sensor whose clique must recover its
    /// token). Messages already in flight to it bounce back to their
    /// senders as [`Process::on_send_failed`] (the TCP-RST analog); its
    /// FIFO clamp entries are pruned so crash/restart churn cannot grow
    /// `last_delivery` unboundedly.
    pub fn kill_process(&mut self, pid: ProcessId) {
        if let Some(slot) = self.procs.get_mut(pid.index()) {
            *slot = None;
        }
        // lint: allow(D2) — retain's predicate is pure, so the surviving set is visit-order-independent
        self.core.last_delivery.retain(|&(s, r), _| s != pid && r != pid);
    }

    /// Number of live `(sender, receiver)` FIFO clamp entries
    /// (diagnostics: the crash-churn regression test asserts pruning).
    pub fn last_delivery_len(&self) -> usize {
        self.core.last_delivery.len()
    }

    /// Whether a process is still alive.
    pub fn process_alive(&self, pid: ProcessId) -> bool {
        self.procs.get(pid.index()).map(|s| s.is_some()).unwrap_or(false)
    }

    pub fn now(&self) -> SimTime {
        self.core.now
    }

    pub fn topo(&self) -> &Topology {
        &self.core.topo
    }

    /// Mutable topology access for failure injection; routes must be
    /// recomputed afterwards. Copy-on-write: if the topology snapshot is
    /// shared with other engines (parallel mapping workers), the first
    /// mutation clones it — sharers keep the platform they started with.
    pub fn topo_mut(&mut self) -> &mut Topology {
        Arc::make_mut(&mut self.core.topo)
    }

    /// The shared (topology, routes) snapshot — cheap `Arc` clones for
    /// standing up per-worker engines via [`Engine::from_snapshot`].
    pub fn snapshot(&self) -> (Arc<Topology>, Arc<RouteTable>) {
        (Arc::clone(&self.core.topo), Arc::clone(&self.core.routes))
    }

    pub fn recompute_routes(&mut self) {
        self.core.routes = Arc::new(RouteTable::compute(&self.core.topo));
        // Capacity mutations through topo_mut() must reach the interned
        // tables too; like the old from-scratch allocator, they take
        // effect on the next reallocation. Structural growth (hosts and
        // access links appended by the churn mutators) extends the interned
        // tables in place — resource ids are append-stable, so flows in
        // flight keep their resource lists and this is safe mid-traffic.
        self.core.fair.sync_topology(&self.core.topo);
    }

    pub fn routes(&self) -> &RouteTable {
        &self.core.routes
    }

    pub fn stats(&self) -> EngineStats {
        self.core.stats
    }

    pub fn outcome(&self, id: FlowId) -> Option<&FlowOutcome> {
        self.core.finished.get(&id)
    }

    pub fn active_flow_count(&self) -> usize {
        self.core.flows.len()
    }

    /// Current size of the lazy-deletion completion heap, stale entries
    /// included (diagnostics; the churn regression test samples this while
    /// flows are live, asserting the prune keeps it near
    /// `max(8, 2 × live flows)`, and checks it reads 0 once idle).
    pub fn completion_heap_len(&self) -> usize {
        self.core.completions.len()
    }

    pub fn process_node(&self, pid: ProcessId) -> NodeId {
        self.core.proc_nodes[pid.index()]
    }

    /// Instantaneous allocated rate of an active flow (for tests).
    pub fn flow_rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.core.flows.get(&id).map(|&key| {
            let f = self.core.flow_slots[key as usize]
                .as_ref()
                .expect("flow map entry has a live slot");
            Bandwidth::bytes_per_sec(f.rate)
        })
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start { pid } => {
                self.with_proc(pid, |p, ctx| p.on_start(ctx));
            }
            EventKind::Deliver { from, to, msg } => {
                let alive = self.procs.get(to.index()).is_some_and(|s| s.is_some());
                if alive {
                    self.with_proc(to, |p, ctx| p.on_message(ctx, from, msg));
                } else {
                    // The receiver died with the message in flight: notify
                    // the sender (the connection-reset a real NWS server
                    // would see) instead of losing the send silently.
                    let err = NetError::UnknownProcess(to.0);
                    self.with_proc(from, |p, ctx| p.on_send_failed(ctx, to, &err));
                }
            }
            EventKind::Timer { to, timer, tag } => {
                if self.core.cancelled_timers.remove(&timer) {
                    return;
                }
                self.with_proc(to, |p, ctx| p.on_timer(ctx, tag));
            }
            EventKind::FlowAck { flow } => {
                // Finalize the ack timestamp, then notify the owner.
                if let Some(o) = self.core.finished.get_mut(&flow) {
                    o.acked = self.core.now;
                }
                if let Some(Some(owner)) = self.core.owner_of_finished.remove(&flow) {
                    let outcome = self.core.finished[&flow].clone();
                    self.with_proc(owner, |p, ctx| p.on_flow_complete(ctx, &outcome));
                }
            }
        }
    }

    fn with_proc<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Ctx<'_, M>),
    {
        let Some(slot) = self.procs.get_mut(pid.index()) else { return };
        let Some(mut proc_) = slot.take() else { return };
        {
            let mut ctx = Ctx { core: &mut self.core, me: pid };
            f(proc_.as_mut(), &mut ctx);
        }
        self.procs[pid.index()] = Some(proc_);
    }

    /// Process one step (the earliest event or flow completion). Returns
    /// false when nothing remains.
    fn step(&mut self, limit: SimTime) -> bool {
        let t_ev = self.core.queue.peek().map(|e| e.time);
        let t_flow = self.core.next_completion();
        match (t_ev, t_flow) {
            (None, None) => false,
            (ev, flow) => {
                let tf = flow.map(|(t, _)| t);
                // Flow completions win ties so capacity frees before
                // same-instant events run.
                let use_flow = match (tf, ev) {
                    (Some(tf), Some(te)) => tf <= te,
                    (Some(_), None) => true,
                    _ => false,
                };
                if use_flow {
                    let (t, id) = flow.expect("checked above");
                    if t > limit {
                        self.core.advance_to(limit);
                        return false;
                    }
                    self.core.advance_to(t);
                    self.core.complete_flow(id);
                } else {
                    let te = ev.expect("checked above");
                    if te > limit {
                        self.core.advance_to(limit);
                        return false;
                    }
                    self.core.advance_to(te);
                    let entry = self.core.queue.pop().expect("peeked above");
                    self.core.stats.events_processed += 1;
                    self.dispatch(entry.kind);
                }
                true
            }
        }
    }

    /// Run until the clock reaches `until` (events at exactly `until` are
    /// processed).
    pub fn run_until(&mut self, until: SimTime) {
        while self.step(until) {}
        if self.core.now < until {
            self.core.advance_to(until);
        }
    }

    /// Run until no events or flows remain. Errors if the horizon passes
    /// first (a liveness guard against runaway simulations).
    pub fn run_until_quiescent(&mut self, horizon: TimeDelta) -> NetResult<SimTime> {
        let limit = self.core.now + horizon;
        while self.step(limit) {}
        if self.core.queue.is_empty() && self.core.flows.is_empty() {
            Ok(self.core.now)
        } else {
            Err(NetError::HorizonExceeded { horizon_secs: horizon.as_secs() })
        }
    }

    /// Run until all listed flows have been acked (their outcomes are
    /// available). Other events keep being processed meanwhile.
    pub fn run_until_flows_done(&mut self, flows: &[FlowId], horizon: TimeDelta) -> NetResult<()> {
        let limit = self.core.now + horizon;
        loop {
            let all_done = flows.iter().all(|f| {
                self.core.finished.contains_key(f) && !self.core.owner_of_finished.contains_key(f)
            });
            if all_done {
                return Ok(());
            }
            if !self.step(limit) {
                return Err(NetError::HorizonExceeded { horizon_secs: horizon.as_secs() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkMode, TopologyBuilder};
    use crate::units::Latency;

    fn two_hosts_hub() -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        (b.build().unwrap(), a, c)
    }

    #[test]
    fn single_flow_completes_with_correct_duration() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        let f = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f], TimeDelta::from_secs(60.0)).unwrap();
        let o = e.outcome(f).unwrap();
        // 1 MiB at 12.5 MB/s = 0.0839 s, plus 4*50us latency.
        let expect = 1024.0 * 1024.0 / 12_500_000.0 + 4.0 * 50e-6;
        assert!((o.duration().as_secs() - expect).abs() < 1e-6);
        assert!(o.throughput().as_mbps() > 99.0 && o.throughput().as_mbps() < 100.0);
    }

    #[test]
    fn concurrent_hub_flows_halve() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        let mut e: Sim = Engine::new(b.build().unwrap());
        let f1 = e.start_probe_flow(hosts[0], hosts[1], Bytes::mib(1)).unwrap();
        let f2 = e.start_probe_flow(hosts[2], hosts[3], Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f1, f2], TimeDelta::from_secs(60.0)).unwrap();
        let bw1 = e.outcome(f1).unwrap().throughput().as_mbps();
        let bw2 = e.outcome(f2).unwrap().throughput().as_mbps();
        assert!((bw1 - 50.0).abs() < 1.0, "got {bw1}");
        assert!((bw2 - 50.0).abs() < 1.0, "got {bw2}");
    }

    #[test]
    fn staggered_flows_share_then_speed_up() {
        // Start one flow; halfway through, start a second; the first's
        // total duration reflects the shared phase.
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        let f1 = e.start_probe_flow(a, c, Bytes::mib(10)).unwrap();
        e.run_until(SimTime::from_secs(0.4)); // ~48% drained
        let f2 = e.start_probe_flow(c, a, Bytes::mib(10)).unwrap();
        e.run_until_flows_done(&[f1, f2], TimeDelta::from_secs(60.0)).unwrap();
        let d1 = e.outcome(f1).unwrap().duration().as_secs();
        let d2 = e.outcome(f2).unwrap().duration().as_secs();
        // Alone, 10 MiB takes ~0.839 s. f1: 0.4 s alone, then shares.
        assert!(d1 > 0.9, "f1 must be slowed by sharing, got {d1}");
        assert!(d2 > d1 - 0.4, "f2 shares its whole life, got {d2}");
    }

    #[test]
    fn firewall_blocks_flow() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(10.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        b.firewall_deny_between(&[a], &[c]);
        let mut e: Sim = Engine::new(b.build().unwrap());
        assert!(matches!(
            e.start_probe_flow(a, c, Bytes::kib(64)),
            Err(NetError::Firewalled { .. })
        ));
    }

    #[test]
    fn self_and_empty_flows_rejected() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        assert!(matches!(e.start_probe_flow(a, a, Bytes::kib(1)), Err(NetError::SelfProbe(_))));
        assert!(matches!(e.start_probe_flow(a, c, Bytes::ZERO), Err(NetError::EmptyTransfer)));
    }

    #[test]
    fn tcp_window_caps_throughput() {
        // 1 ms each way → RTT 2 ms... here: hub port latency 1 ms, two
        // ports each way → one-way 2 ms, RTT 4 ms. 64 KiB window / 4 ms =
        // 16 MiB/s ≈ 134 Mbps... use a smaller window to make the cap bind:
        // 8 KiB / 4 ms = 2 MiB/s ≈ 16.8 Mbps < 100 Mbps.
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::millis(1.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, hub);
        let mut e: Sim = Engine::new(b.build().unwrap());
        e.set_tcp_window(Some(Bytes::kib(8)));
        let f = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f], TimeDelta::from_secs(60.0)).unwrap();
        let bw = e.outcome(f).unwrap().throughput().as_mbps();
        assert!(bw < 20.0, "window cap should bind, got {bw} Mbps");
    }

    #[test]
    fn quiescence_and_horizon() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        let _ = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        let end = e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert!(end.as_secs() > 0.0);
        // With an absurdly small horizon the guard trips.
        let mut e2: Sim = Engine::new(two_hosts_hub().0);
        let a2 = e2.topo().node_by_label("a").unwrap();
        let c2 = e2.topo().node_by_label("c").unwrap();
        let _ = e2.start_probe_flow(a2, c2, Bytes::mib(100)).unwrap();
        assert!(matches!(
            e2.run_until_quiescent(TimeDelta::from_millis(1.0)),
            Err(NetError::HorizonExceeded { .. })
        ));
    }

    // --- actor tests -----------------------------------------------------

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    /// Replies Pong(n+1) to every Ping(n).
    struct Echo;

    impl Process<TestMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: ProcessId, msg: TestMsg) {
            if let TestMsg::Ping(n) = msg {
                ctx.send(from, Bytes::new(8), TestMsg::Pong(n + 1)).unwrap();
            }
        }
    }

    /// Sends a Ping on start, records the Pong arrival time.
    struct Pinger {
        peer: Option<ProcessId>,
        got: std::rc::Rc<std::cell::RefCell<Option<(u32, SimTime)>>>,
    }

    impl Process<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            if let Some(p) = self.peer {
                ctx.send(p, Bytes::new(8), TestMsg::Ping(41)).unwrap();
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ProcessId, msg: TestMsg) {
            if let TestMsg::Pong(n) = msg {
                *self.got.borrow_mut() = Some((n, ctx.now()));
            }
        }
    }

    #[test]
    fn message_round_trip() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let echo = e.add_process(c, Box::new(Echo));
        let got = std::rc::Rc::new(std::cell::RefCell::new(None));
        let _pinger = e.add_process(a, Box::new(Pinger { peer: Some(echo), got: got.clone() }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        let (n, at) = got.borrow().expect("pong must arrive");
        assert_eq!(n, 42);
        // Two port latencies each way = 4 * 50 us, plus serialization.
        assert!(at.as_secs() >= 200e-6);
        assert!(at.as_secs() < 1e-3);
    }

    /// Fires a timer chain: 3 timers of 1 s each, then quiesces.
    struct TimerChain {
        fired: std::rc::Rc<std::cell::RefCell<Vec<(u64, SimTime)>>>,
    }

    impl Process<TestMsg> for TimerChain {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.set_timer(TimeDelta::from_secs(1.0), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
            self.fired.borrow_mut().push((tag, ctx.now()));
            if tag < 3 {
                ctx.set_timer(TimeDelta::from_secs(1.0), tag + 1);
            }
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let (t, a, _) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        e.add_process(a, Box::new(TimerChain { fired: fired.clone() }));
        e.run_until_quiescent(TimeDelta::from_secs(60.0)).unwrap();
        let fired = fired.borrow();
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0].0, 1);
        assert!((fired[0].1.as_secs() - 1.0).abs() < 1e-9);
        assert!((fired[2].1.as_secs() - 3.0).abs() < 1e-9);
    }

    /// Cancels its own timer before it can fire.
    struct Canceller {
        fired: std::rc::Rc<std::cell::RefCell<bool>>,
    }

    impl Process<TestMsg> for Canceller {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            let t = ctx.set_timer(TimeDelta::from_secs(1.0), 7);
            ctx.cancel_timer(t);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TestMsg>, _tag: u64) {
            *self.fired.borrow_mut() = true;
        }
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (t, a, _) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let fired = std::rc::Rc::new(std::cell::RefCell::new(false));
        e.add_process(a, Box::new(Canceller { fired: fired.clone() }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert!(!*fired.borrow());
    }

    /// Starts a flow from its host and records the observed throughput.
    struct FlowOwner {
        dst: NodeId,
        seen: std::rc::Rc<std::cell::RefCell<Option<Bandwidth>>>,
    }

    impl Process<TestMsg> for FlowOwner {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.start_flow(self.dst, Bytes::kib(64), 9).unwrap();
        }
        fn on_flow_complete(&mut self, _ctx: &mut Ctx<'_, TestMsg>, outcome: &FlowOutcome) {
            assert_eq!(outcome.tag, 9);
            *self.seen.borrow_mut() = Some(outcome.throughput());
        }
    }

    #[test]
    fn process_owned_flow_reports_completion() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(None));
        e.add_process(a, Box::new(FlowOwner { dst: c, seen: seen.clone() }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        let bw = seen.borrow().expect("flow must complete");
        assert!(bw.as_mbps() > 80.0, "got {}", bw.as_mbps());
    }

    /// Two back-to-back sends between one process pair must arrive in
    /// order even when the second is smaller (models TCP's FIFO stream).
    struct Burst {
        to: ProcessId,
    }
    impl Process<TestMsg> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            // Large then small: without per-pair FIFO the small one wins.
            ctx.send(self.to, Bytes::kib(512), TestMsg::Ping(1)).unwrap();
            ctx.send(self.to, Bytes::new(8), TestMsg::Ping(2)).unwrap();
        }
    }
    struct OrderCheck {
        seen: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl Process<TestMsg> for OrderCheck {
        fn on_message(&mut self, _c: &mut Ctx<'_, TestMsg>, _f: ProcessId, msg: TestMsg) {
            if let TestMsg::Ping(n) = msg {
                self.seen.borrow_mut().push(n);
            }
        }
    }

    #[test]
    fn messages_between_pair_are_fifo() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        e.add_process(a, Box::new(Burst { to: rx }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(*seen.borrow(), vec![1, 2], "sends must not be reordered");
    }

    #[test]
    fn send_to_unknown_process_errors() {
        let (t, a, _) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        struct BadSender;
        impl Process<TestMsg> for BadSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                let err = ctx
                    .send(ProcessId::from_raw(4040), Bytes::new(8), TestMsg::Ping(0))
                    .unwrap_err();
                assert!(matches!(err, NetError::UnknownProcess(4040)));
            }
        }
        e.add_process(a, Box::new(BadSender));
        e.run_until_quiescent(TimeDelta::from_secs(1.0)).unwrap();
    }

    #[test]
    fn killed_process_stops_receiving() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        let tx = e.add_process(a, Box::new(Burst { to: rx }));
        assert!(e.process_alive(rx));
        e.kill_process(rx);
        assert!(!e.process_alive(rx));
        assert!(e.process_alive(tx));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert!(seen.borrow().is_empty(), "dead processes receive nothing");
    }

    #[test]
    fn capacity_mutation_reaches_allocator_after_recompute() {
        // Failure injection: degrading a link through topo_mut must affect
        // flows started after recompute_routes (the interned capacities
        // are refreshed; the from-scratch allocator read them live).
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let r = b.router("r.x", "10.0.1.1");
        let l1 = b.link(a, r, Bandwidth::mbps(100.0), Latency::ZERO);
        b.link(r, c, Bandwidth::mbps(100.0), Latency::ZERO);
        let mut e: Sim = Engine::new(b.build().unwrap());

        let f1 = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f1], TimeDelta::from_secs(60.0)).unwrap();
        assert!(e.outcome(f1).unwrap().throughput().as_mbps() > 99.0);

        // Degrade the first hop to 10 Mbps.
        let link_id = l1;
        if let LinkMode::FullDuplex { capacity_ab, capacity_ba } =
            &mut e.topo_mut().link_mut(link_id).mode
        {
            *capacity_ab = Bandwidth::mbps(10.0);
            *capacity_ba = Bandwidth::mbps(10.0);
        }
        e.recompute_routes();

        let f2 = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f2], TimeDelta::from_secs(60.0)).unwrap();
        let bw = e.outcome(f2).unwrap().throughput().as_mbps();
        assert!(bw < 11.0, "degraded link must cap the flow, got {bw} Mbps");
    }

    #[test]
    fn completion_heap_stays_bounded_under_tiny_flow_churn() {
        // A long-lived flow keeps the engine busy (so clear-on-idle never
        // fires) while short flows churn on the shared medium: every
        // start/finish bumps push_seq on the survivor and pushes fresh
        // projections, so stale entries accumulate with the live-flow
        // count pinned at one. Only the prune floor bounds the heap in
        // this regime — the regime where the old 64-entry floor let stale
        // entries pile up unpruned.
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        let f_long = e.start_probe_flow(a, c, Bytes::mib(64)).unwrap();
        let mut max_seen = 0usize;
        for round in 0..200 {
            // Each churn flow halves f_long's rate, then restores it on
            // completion: at least two stale projections per round.
            let f2 = e.start_probe_flow(c, a, Bytes::kib(16)).unwrap();
            e.run_until_flows_done(&[f2], TimeDelta::from_secs(60.0)).unwrap();
            assert_eq!(e.active_flow_count(), 1, "f_long must outlive the churn");
            max_seen = max_seen.max(e.completion_heap_len());
            assert!(
                e.completion_heap_len() <= 16,
                "round {round}: heap grew to {} with one live flow",
                e.completion_heap_len()
            );
        }
        assert!(max_seen > 2, "churn must actually accumulate stale entries, saw {max_seen}");
        // Draining the last flow clears every projection.
        e.run_until_flows_done(&[f_long], TimeDelta::from_secs(600.0)).unwrap();
        assert_eq!(e.active_flow_count(), 0);
        assert_eq!(e.completion_heap_len(), 0, "idle heap must be empty");
    }

    #[test]
    fn mid_flight_capacity_and_growth_keep_heap_and_tables_consistent() {
        // Extends completion_heap_stays_bounded_under_tiny_flow_churn with
        // the churn subsystem's engine mutations *while flows are active*:
        // set_link_capacity-style edits (link_mut + medium_mut +
        // recompute_routes) and structural growth (add_host_like) must keep
        // the completion heap bounded and the interned capacity tables
        // consistent — the long-lived flow keeps draining throughout and
        // new rates take effect on the next flow-set change.
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let r = b.router("r.x", "10.0.1.1");
        b.attach(a, hub);
        b.attach(c, hub);
        let l_r = b.link(a, r, Bandwidth::mbps(100.0), Latency::micros(50.0));
        let d = b.host("d.x", "10.0.1.2");
        b.link(r, d, Bandwidth::mbps(100.0), Latency::micros(50.0));
        let mut e: Sim = Engine::new(b.build().unwrap());

        let f_long = e.start_probe_flow(a, c, Bytes::mib(64)).unwrap();
        let mut max_seen = 0usize;
        for round in 0..60 {
            // Tiny churn flows on the shared medium keep bumping f_long.
            let f2 = e.start_probe_flow(c, a, Bytes::kib(16)).unwrap();
            e.run_until_flows_done(&[f2], TimeDelta::from_secs(60.0)).unwrap();
            match round {
                20 => {
                    // Degrade the hub medium mid-flight.
                    let m = crate::topology::MediumId(0);
                    e.topo_mut().medium_mut(m).capacity = Bandwidth::mbps(50.0);
                    e.recompute_routes();
                }
                30 => {
                    // Degrade the router link mid-flight (unused by f_long;
                    // proves unrelated capacity edits don't disturb it).
                    if let LinkMode::FullDuplex { capacity_ab, capacity_ba } =
                        &mut e.topo_mut().link_mut(l_r).mode
                    {
                        *capacity_ab = Bandwidth::mbps(10.0);
                        *capacity_ba = Bandwidth::mbps(10.0);
                    }
                    e.recompute_routes();
                }
                40 => {
                    // Grow the topology mid-flight: a new host on the hub.
                    e.topo_mut().add_host_like("new.x", "10.0.0.99".parse().unwrap(), c).unwrap();
                    e.recompute_routes();
                }
                _ => {}
            }
            assert_eq!(e.active_flow_count(), 1, "f_long must outlive the churn");
            max_seen = max_seen.max(e.completion_heap_len());
            assert!(
                e.completion_heap_len() <= 16,
                "round {round}: heap grew to {} with one live flow",
                e.completion_heap_len()
            );
            if round == 41 {
                // The appended host is fully wired: flows route to it and
                // share the (degraded) medium with f_long.
                let new = e.topo().node_by_name("new.x").unwrap();
                let f3 = e.start_probe_flow(a, new, Bytes::kib(64)).unwrap();
                e.run_until_flows_done(&[f3], TimeDelta::from_secs(60.0)).unwrap();
                let bw = e.outcome(f3).unwrap().throughput().as_mbps();
                assert!(bw < 51.0, "degraded medium must cap the new host's flow, got {bw}");
            }
        }
        assert!(max_seen > 2, "churn must actually accumulate stale entries, saw {max_seen}");
        // After the medium degrade, a fresh exclusive probe sees 50 Mbps —
        // the interned capacities are consistent with the topology.
        e.run_until_flows_done(&[f_long], TimeDelta::from_secs(600.0)).unwrap();
        assert_eq!(e.completion_heap_len(), 0, "idle heap must be empty");
        let f4 = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f4], TimeDelta::from_secs(60.0)).unwrap();
        let bw = e.outcome(f4).unwrap().throughput().as_mbps();
        assert!((bw - 50.0).abs() < 2.0, "expected ~50 Mbps on degraded hub, got {bw}");
        // And the degraded router link binds too.
        let f5 = e.start_probe_flow(a, d, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f5], TimeDelta::from_secs(60.0)).unwrap();
        let bw = e.outcome(f5).unwrap().throughput().as_mbps();
        assert!(bw < 11.0, "degraded link must cap the flow, got {bw}");
    }

    #[test]
    fn isolated_node_becomes_unreachable_after_recompute() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        assert!(e.start_probe_flow(a, c, Bytes::kib(4)).is_ok());
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        e.topo_mut().isolate_node(c);
        e.recompute_routes();
        assert!(matches!(
            e.start_probe_flow(a, c, Bytes::kib(4)),
            Err(NetError::Unreachable { .. })
        ));
    }

    #[test]
    fn stats_accumulate() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Sim = Engine::new(t);
        let f = e.start_probe_flow(a, c, Bytes::mib(1)).unwrap();
        e.run_until_flows_done(&[f], TimeDelta::from_secs(10.0)).unwrap();
        let s = e.stats();
        assert_eq!(s.flows_started, 1);
        assert!(s.bytes_transferred >= 1024.0 * 1024.0 * 0.99);
    }

    /// Sends `count` numbered pings to a peer on start.
    struct Sprayer {
        to: ProcessId,
        count: u32,
    }
    impl Process<TestMsg> for Sprayer {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            for n in 0..self.count {
                ctx.send(self.to, Bytes::new(64), TestMsg::Ping(n)).unwrap();
            }
        }
    }

    fn lossy_run(seed: u64) -> (Vec<u32>, u64, u64) {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        e.set_fault_seed(seed);
        e.set_default_loss(Some(LossModel::degraded(0.3, 0.3, TimeDelta::from_millis(5.0))));
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        e.add_process(a, Box::new(Sprayer { to: rx, count: 200 }));
        e.run_until_quiescent(TimeDelta::from_secs(60.0)).unwrap();
        let s = e.stats();
        let seen = seen.borrow().clone();
        (seen, s.messages_dropped, s.messages_duplicated)
    }

    #[test]
    fn fault_plane_is_deterministic_and_accounts_every_message() {
        let (seen_a, dropped_a, duped_a) = lossy_run(11);
        let (seen_b, dropped_b, duped_b) = lossy_run(11);
        assert_eq!(seen_a, seen_b, "same fault seed must replay bit-identically");
        assert_eq!((dropped_a, duped_a), (dropped_b, duped_b));
        assert!(dropped_a > 0, "30% drop over 200 sends must lose something");
        assert!(duped_a > 0, "30% dup over 200 sends must duplicate something");
        // Delivery conservation: every survivor arrives once, plus a copy
        // per duplication.
        assert_eq!(seen_a.len() as u64, 200 - dropped_a + duped_a);
        let (seen_c, ..) = lossy_run(12);
        assert_ne!(seen_a, seen_c, "different fault seed must change the trace");
    }

    #[test]
    fn unarmed_fault_plane_changes_nothing() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        // Loss configured but no seed armed: all messages sail through.
        e.set_default_loss(Some(LossModel::lossy(1.0)));
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        e.add_process(a, Box::new(Sprayer { to: rx, count: 10 }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(seen.borrow().len(), 10);
        assert_eq!(e.stats().messages_dropped, 0);
    }

    #[test]
    fn jitter_preserves_pair_fifo() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        e.set_fault_seed(3);
        // Jitter only: nothing lost or duplicated, order must still hold.
        e.set_default_loss(Some(LossModel::degraded(0.0, 0.0, TimeDelta::from_millis(50.0))));
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        e.add_process(a, Box::new(Sprayer { to: rx, count: 50 }));
        e.run_until_quiescent(TimeDelta::from_secs(60.0)).unwrap();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(*seen.borrow(), expect, "jitter must not reorder a pair's stream");
    }

    /// Records `on_send_failed` notifications.
    struct BounceWatcher {
        to: ProcessId,
        bounced: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl Process<TestMsg> for BounceWatcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            ctx.send(self.to, Bytes::new(8), TestMsg::Ping(7)).unwrap();
        }
        fn on_send_failed(&mut self, _ctx: &mut Ctx<'_, TestMsg>, to: ProcessId, err: &NetError) {
            assert!(matches!(err, NetError::UnknownProcess(_)));
            self.bounced.borrow_mut().push(to.0);
        }
    }

    #[test]
    fn in_flight_message_to_killed_process_bounces_to_sender() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        let bounced = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        e.add_process(a, Box::new(BounceWatcher { to: rx, bounced: bounced.clone() }));
        e.kill_process(rx);
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert!(seen.borrow().is_empty());
        assert_eq!(*bounced.borrow(), vec![rx.0], "sender must hear about the dead receiver");
    }

    #[test]
    fn kill_process_prunes_fifo_clamp_entries() {
        let (t, a, c) = two_hosts_hub();
        let mut e: Engine<TestMsg> = Engine::new(t);
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rx = e.add_process(c, Box::new(OrderCheck { seen: seen.clone() }));
        let tx = e.add_process(a, Box::new(Sprayer { to: rx, count: 3 }));
        e.run_until_quiescent(TimeDelta::from_secs(10.0)).unwrap();
        assert_eq!(e.last_delivery_len(), 1, "one live (tx, rx) clamp entry");
        e.kill_process(rx);
        assert_eq!(e.last_delivery_len(), 0, "entries touching the corpse must go");
        let _ = tx;
    }
}
