//! Background cross-traffic generators.
//!
//! The paper worries about "the possible platform evolution: ... The results
//! given by ENV may be corrupted if the network load evolves greatly between
//! tests" (§4.3). These generators create that load so the reproduction can
//! quantify the mapper's robustness (experiment E6, threshold sensitivity
//! under noise).
//!
//! Generators are ordinary [`Process`]es and work with any engine message
//! type.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Ctx, Engine, Process};
use crate::time::TimeDelta;
use crate::topology::NodeId;
use crate::units::Bytes;

/// Constant-bit-rate generator: a transfer of `bytes` to `dst` every
/// `period`, with optional uniform jitter.
pub struct CbrTraffic {
    dst: NodeId,
    bytes: Bytes,
    period: TimeDelta,
    /// Jitter as a fraction of the period in `[0, 1)`; each interval is
    /// `period * (1 ± jitter)`.
    jitter: f64,
    rng: SmallRng,
}

impl CbrTraffic {
    pub fn new(dst: NodeId, bytes: Bytes, period: TimeDelta, jitter: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        CbrTraffic { dst, bytes, period, jitter, rng: SmallRng::seed_from_u64(seed) }
    }

    fn next_interval(&mut self) -> TimeDelta {
        if self.jitter == 0.0 {
            self.period
        } else {
            let f = 1.0 + self.rng.gen_range(-self.jitter..self.jitter);
            TimeDelta::from_secs(self.period.as_secs() * f)
        }
    }
}

impl<M> Process<M> for CbrTraffic {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let d = self.next_interval();
        ctx.set_timer(d, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, _tag: u64) {
        // Transfers that cannot start (firewalled during an experiment) are
        // simply skipped; background load is best-effort.
        let _ = ctx.start_flow(self.dst, self.bytes, 0);
        let d = self.next_interval();
        ctx.set_timer(d, 0);
    }
}

/// Poisson generator: exponentially distributed inter-arrival times with
/// the given mean.
pub struct PoissonTraffic {
    dst: NodeId,
    bytes: Bytes,
    mean_interval: TimeDelta,
    rng: SmallRng,
}

impl PoissonTraffic {
    pub fn new(dst: NodeId, bytes: Bytes, mean_interval: TimeDelta, seed: u64) -> Self {
        PoissonTraffic { dst, bytes, mean_interval, rng: SmallRng::seed_from_u64(seed) }
    }

    fn next_interval(&mut self) -> TimeDelta {
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        TimeDelta::from_secs(-u.ln() * self.mean_interval.as_secs())
    }
}

impl<M> Process<M> for PoissonTraffic {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let d = self.next_interval();
        ctx.set_timer(d, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, _tag: u64) {
        let _ = ctx.start_flow(self.dst, self.bytes, 0);
        let d = self.next_interval();
        ctx.set_timer(d, 0);
    }
}

/// Attach Poisson cross-traffic on each `(src, dst)` pair. `load` scales
/// intensity: the mean inter-arrival is `transfer_duration / load`, so
/// `load ≈ 0.3` keeps each pair busy ~30 % of the time.
pub fn attach_noise<M: 'static>(
    engine: &mut Engine<M>,
    pairs: &[(NodeId, NodeId)],
    bytes: Bytes,
    mean_interval: TimeDelta,
    seed: u64,
) {
    for (i, (src, dst)) in pairs.iter().enumerate() {
        engine.add_process(
            *src,
            Box::new(PoissonTraffic::new(*dst, bytes, mean_interval, seed.wrapping_add(i as u64))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, NoMsg};
    use crate::time::SimTime;
    use crate::topology::TopologyBuilder;
    use crate::units::{Bandwidth, Latency};

    fn hub_net() -> (crate::engine::Sim, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..3)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        (Engine::<NoMsg>::new(b.build().unwrap()), hosts)
    }

    #[test]
    fn cbr_generates_flows_at_the_configured_rate() {
        let (mut sim, h) = hub_net();
        sim.add_process(
            h[0],
            Box::new(CbrTraffic::new(h[1], Bytes::kib(64), TimeDelta::from_secs(1.0), 0.0, 1)),
        );
        sim.run_until(SimTime::from_secs(10.5));
        // One flow per second starting at t=1.
        assert_eq!(sim.stats().flows_started, 10);
    }

    #[test]
    fn cbr_jitter_changes_schedule_but_not_rate_much() {
        let (mut sim, h) = hub_net();
        sim.add_process(
            h[0],
            Box::new(CbrTraffic::new(h[1], Bytes::kib(16), TimeDelta::from_secs(1.0), 0.5, 7)),
        );
        sim.run_until(SimTime::from_secs(100.0));
        let n = sim.stats().flows_started;
        assert!((80..=125).contains(&n), "got {n} flows in 100 s");
    }

    #[test]
    fn poisson_mean_rate_is_respected() {
        let (mut sim, h) = hub_net();
        sim.add_process(
            h[0],
            Box::new(PoissonTraffic::new(h[1], Bytes::kib(16), TimeDelta::from_secs(0.5), 42)),
        );
        sim.run_until(SimTime::from_secs(200.0));
        let n = sim.stats().flows_started as f64;
        // Expect ~400; Poisson std is ±20, allow 5 sigma.
        assert!((300.0..500.0).contains(&n), "got {n} flows");
    }

    #[test]
    fn noise_slows_a_probe_on_shared_medium() {
        let (mut sim, h) = hub_net();
        // Saturating background traffic h1→h2.
        sim.add_process(
            h[1],
            Box::new(CbrTraffic::new(h[2], Bytes::mib(8), TimeDelta::from_secs(0.1), 0.0, 3)),
        );
        sim.run_until(SimTime::from_secs(2.0));
        let bw = sim.measure_bandwidth(h[0], h[1], Bytes::mib(1)).unwrap();
        assert!(bw.as_mbps() < 80.0, "probe should see contention, got {bw}");
    }

    #[test]
    fn attach_noise_spawns_one_process_per_pair() {
        let (mut sim, h) = hub_net();
        attach_noise(
            &mut sim,
            &[(h[0], h[1]), (h[1], h[2])],
            Bytes::kib(64),
            TimeDelta::from_secs(1.0),
            9,
        );
        sim.run_until(SimTime::from_secs(30.0));
        assert!(sim.stats().flows_started > 10);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        let run = || {
            let (mut sim, h) = hub_net();
            sim.add_process(
                h[0],
                Box::new(PoissonTraffic::new(h[1], Bytes::kib(16), TimeDelta::from_secs(0.5), 42)),
            );
            sim.run_until(SimTime::from_secs(50.0));
            sim.stats().flows_started
        };
        assert_eq!(run(), run());
    }
}
