//! # Simulated durable storage — the disk under the durability plane
//!
//! Real NWS memory hosts persist their measurement record; a simulation
//! that wants *true* crash-recovery (kill a process, rebuild it from what
//! survived) needs a disk with the same failure semantics, not a `Vec` that
//! conveniently survives because the harness kept a second `Rc` to it.
//!
//! [`SimDisk`] models one host's local filesystem as named byte files with
//! the only distinction that matters for crash-recovery: bytes that have
//! been **fsynced** (on stable storage, survive anything) versus bytes that
//! are merely **written** (in the page cache, survive a *process* crash but
//! not a *host* crash). The primitives are the ones a write-ahead log
//! needs:
//!
//! * [`SimDisk::append`] — buffered write to the tail of a file,
//! * [`SimDisk::fsync`] — flush a file's cached tail to stable storage,
//! * [`SimDisk::read`] — read the full current contents (cache included),
//! * [`SimDisk::truncate`] / [`SimDisk::rename`] / [`SimDisk::remove`] —
//!   metadata operations, modeled atomic and immediately durable, as on a
//!   journaled filesystem,
//! * [`SimDisk::crash`] — a host/power failure: every file keeps its synced
//!   bytes plus a **random prefix** of its cached tail (the torn tail /
//!   partial flush a real kernel produces when power dies mid-writeback).
//!
//! ## Determinism: the fixed-draw discipline
//!
//! Torn tails follow the same rule as [`crate::faults`]: a crash consumes
//! exactly **one uniform draw per file**, in sorted file-name order, whether
//! or not the file has any unsynced bytes to tear. The fault stream is
//! therefore a function of the crash sequence and the set of file names
//! alone — never of buffer sizes or incidental call order — so two runs
//! with the same seed produce bit-identical torn tails, and adding a
//! fault-free file to a workload does not shift the draws of the others
//! within a crash.
//!
//! ## Time
//!
//! The engine's processes handle each event atomically; a blocking disk
//! would need coroutine machinery the actor model deliberately avoids.
//! Instead the disk *accounts* time: every operation charges a
//! [`DiskProfile`]-derived cost to [`DiskStats::busy_s`], so experiments
//! can report how much I/O time a protocol would have spent (and compare
//! fsync-heavy against lazy policies) without perturbing event order.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Cost model for the time accounting (seconds).
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Fixed cost per fsync (head seek + cache flush barrier).
    pub fsync_s: f64,
    /// Transfer cost per byte moved (append, read, or flush).
    pub per_byte_s: f64,
}

impl Default for DiskProfile {
    /// A commodity 2003-era IDE disk: ~5 ms per fsync barrier, ~40 MB/s
    /// sequential transfer — the hardware under the paper's testbed hosts.
    fn default() -> Self {
        DiskProfile { fsync_s: 5e-3, per_byte_s: 1.0 / 40.0e6 }
    }
}

/// Operation counters and accounted I/O time for one disk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    pub appends: u64,
    pub bytes_appended: u64,
    pub fsyncs: u64,
    pub bytes_synced: u64,
    pub reads: u64,
    pub bytes_read: u64,
    pub truncates: u64,
    pub renames: u64,
    pub crashes: u64,
    /// Unsynced bytes destroyed by crashes (the torn tails).
    pub bytes_torn: u64,
    /// Accounted I/O busy time, seconds (see module doc).
    pub busy_s: f64,
}

/// One file: the durable prefix and the cached (unsynced) tail.
#[derive(Debug, Default, Clone)]
struct SimFile {
    synced: Vec<u8>,
    unsynced: Vec<u8>,
}

/// One host's simulated local filesystem. Usually handled through a
/// [`DiskHandle`] shared between the owning process and the harness (the
/// engine is single-threaded, so `Rc<RefCell<_>>` is the idiom — the same
/// one the NWS memory handles use).
#[derive(Debug)]
pub struct SimDisk {
    host: String,
    files: BTreeMap<String, SimFile>,
    profile: DiskProfile,
    stats: DiskStats,
    /// Armed fault stream for torn tails. `None` = crashes keep no
    /// unsynced bytes at all (the conservative default).
    rng: Option<SmallRng>,
}

/// Shared handle to a host's disk.
pub type DiskHandle = Rc<RefCell<SimDisk>>;

/// FNV-1a 64-bit, used to derive a per-host fault stream from one seed
/// (and by the WAL layers above for record checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SimDisk {
    /// A fresh, empty disk for `host`, with the default cost profile and
    /// no fault stream armed.
    pub fn new(host: &str) -> DiskHandle {
        Rc::new(RefCell::new(SimDisk {
            host: host.to_string(),
            files: BTreeMap::new(),
            profile: DiskProfile::default(),
            stats: DiskStats::default(),
            rng: None,
        }))
    }

    pub fn host(&self) -> &str {
        &self.host
    }

    pub fn set_profile(&mut self, profile: DiskProfile) {
        self.profile = profile;
    }

    /// Arm the torn-tail fault stream. The stream is derived from the
    /// given seed *and* the host name, so every disk in a deployment gets
    /// an independent — but seed-reproducible — sequence.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.rng = Some(SmallRng::seed_from_u64(seed ^ fnv1a64(self.host.as_bytes())));
    }

    /// Buffered write to the tail of `file` (created if absent). The bytes
    /// land in the cache: they survive a process crash, not a host crash.
    pub fn append(&mut self, file: &str, data: &[u8]) {
        self.files.entry(file.to_string()).or_default().unsynced.extend_from_slice(data);
        self.stats.appends += 1;
        self.stats.bytes_appended += data.len() as u64;
        self.stats.busy_s += data.len() as f64 * self.profile.per_byte_s;
    }

    /// Flush `file`'s cached tail to stable storage. A no-op (beyond the
    /// barrier cost) when there is nothing to flush.
    pub fn fsync(&mut self, file: &str) {
        let f = self.files.entry(file.to_string()).or_default();
        let n = f.unsynced.len();
        f.synced.append(&mut f.unsynced);
        self.stats.fsyncs += 1;
        self.stats.bytes_synced += n as u64;
        self.stats.busy_s += self.profile.fsync_s + n as f64 * self.profile.per_byte_s;
    }

    /// Full current contents of `file` — durable prefix plus cached tail —
    /// or `None` if it does not exist.
    pub fn read(&mut self, file: &str) -> Option<Vec<u8>> {
        let f = self.files.get(file)?;
        let mut out = f.synced.clone();
        out.extend_from_slice(&f.unsynced);
        self.stats.reads += 1;
        self.stats.bytes_read += out.len() as u64;
        self.stats.busy_s += out.len() as f64 * self.profile.per_byte_s;
        Some(out)
    }

    /// Current length of `file` (0 if absent).
    pub fn len(&self, file: &str) -> usize {
        self.files.get(file).map_or(0, |f| f.synced.len() + f.unsynced.len())
    }

    pub fn exists(&self, file: &str) -> bool {
        self.files.contains_key(file)
    }

    /// Is the whole disk empty (no files)?
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Truncate `file` to empty. Metadata operation: atomic and durable
    /// (journaled-filesystem semantics), creates the file if absent.
    pub fn truncate(&mut self, file: &str) {
        let f = self.files.entry(file.to_string()).or_default();
        f.synced.clear();
        f.unsynced.clear();
        self.stats.truncates += 1;
    }

    /// Atomically rename `from` over `to` (the `rename(2)` publish idiom).
    /// Durable for the *name*; the caller must fsync the data first if it
    /// wants the contents to survive a crash — exactly the real contract.
    pub fn rename(&mut self, from: &str, to: &str) {
        if let Some(f) = self.files.remove(from) {
            self.files.insert(to.to_string(), f);
        }
        self.stats.renames += 1;
    }

    /// Delete `file` (atomic, durable).
    pub fn remove(&mut self, file: &str) {
        self.files.remove(file);
    }

    /// Sorted list of file names.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Host/power failure: every file keeps its synced bytes plus a random
    /// prefix of its cached tail. Consumes exactly one uniform draw per
    /// file, in sorted name order, even for files with an empty cache —
    /// see the module doc's fixed-draw discipline. With no fault stream
    /// armed, the cache is lost entirely (keep-nothing is the conservative
    /// deterministic default).
    pub fn crash(&mut self) {
        self.stats.crashes += 1;
        for f in self.files.values_mut() {
            let keep = match &mut self.rng {
                // `+1` so "everything flushed" is drawable too.
                Some(rng) => (rng.next_u64() % (f.unsynced.len() as u64 + 1)) as usize,
                None => 0,
            };
            self.stats.bytes_torn += (f.unsynced.len() - keep) as u64;
            f.synced.extend_from_slice(&f.unsynced[..keep]);
            f.unsynced.clear();
        }
    }

    pub fn stats(&self) -> DiskStats {
        self.stats
    }
}

/// Per-host disk registry for a deployment: hands out [`DiskHandle`]s on
/// demand and owns the shared fault seed, so that a disk created lazily at
/// heal time gets the same stream it would have had at deploy time.
#[derive(Debug, Default)]
pub struct DiskRegistry {
    disks: BTreeMap<String, DiskHandle>,
    fault_seed: Option<u64>,
}

impl DiskRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or re-arm) every present and future disk's torn-tail stream.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_seed = Some(seed);
        for d in self.disks.values() {
            d.borrow_mut().set_fault_seed(seed);
        }
    }

    /// The disk for `host`, created empty on first use.
    pub fn disk(&mut self, host: &str) -> DiskHandle {
        if let Some(d) = self.disks.get(host) {
            return Rc::clone(d);
        }
        let d = SimDisk::new(host);
        if let Some(seed) = self.fault_seed {
            d.borrow_mut().set_fault_seed(seed);
        }
        self.disks.insert(host.to_string(), Rc::clone(&d));
        d
    }

    /// The disk for `host` if one has been created.
    pub fn get(&self, host: &str) -> Option<DiskHandle> {
        self.disks.get(host).map(Rc::clone)
    }

    /// Host/power failure for `host`'s disk (no-op if it has no disk yet —
    /// an empty disk has nothing to tear).
    pub fn crash_host(&mut self, host: &str) {
        if let Some(d) = self.disks.get(host) {
            d.borrow_mut().crash();
        }
    }

    /// Aggregate stats across every disk (for experiment reporting).
    pub fn total_stats(&self) -> DiskStats {
        let mut t = DiskStats::default();
        for d in self.disks.values() {
            let s = d.borrow().stats();
            t.appends += s.appends;
            t.bytes_appended += s.bytes_appended;
            t.fsyncs += s.fsyncs;
            t.bytes_synced += s.bytes_synced;
            t.reads += s.reads;
            t.bytes_read += s.bytes_read;
            t.truncates += s.truncates;
            t.renames += s.renames;
            t.crashes += s.crashes;
            t.bytes_torn += s.bytes_torn;
            t.busy_s += s.busy_s;
        }
        t
    }

    pub fn hosts(&self) -> Vec<String> {
        self.disks.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_read_round_trips_without_fsync() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.append("wal", b"hello ");
        d.append("wal", b"world");
        assert_eq!(d.read("wal").unwrap(), b"hello world");
        assert_eq!(d.len("wal"), 11);
        assert!(d.read("other").is_none());
    }

    #[test]
    fn crash_without_fault_stream_keeps_only_synced_bytes() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.append("wal", b"durable");
        d.fsync("wal");
        d.append("wal", b" lost");
        d.crash();
        assert_eq!(d.read("wal").unwrap(), b"durable");
        assert_eq!(d.stats().bytes_torn, 5);
    }

    #[test]
    fn crash_with_fault_stream_keeps_a_prefix_of_the_tail() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.set_fault_seed(42);
        d.append("wal", b"durable|");
        d.fsync("wal");
        d.append("wal", b"cached tail");
        d.crash();
        let got = d.read("wal").unwrap();
        assert!(got.starts_with(b"durable|"), "synced prefix must survive");
        let tail = &got[8..];
        assert!(b"cached tail".starts_with(tail), "tail must be a prefix, got {tail:?}");
    }

    #[test]
    fn crashes_are_deterministic_per_seed_and_host() {
        let run = |seed: u64| {
            let d = SimDisk::new("h0");
            let mut d = d.borrow_mut();
            d.set_fault_seed(seed);
            let mut out = Vec::new();
            for round in 0..20 {
                d.append("a.wal", &[round; 13]);
                d.append("b.wal", &[round; 7]);
                if round % 3 == 0 {
                    d.fsync("a.wal");
                }
                d.crash();
                out.push((d.read("a.wal").unwrap(), d.read("b.wal").unwrap()));
            }
            out
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should tear differently");
    }

    #[test]
    fn fixed_draw_discipline_draws_once_per_file_even_when_empty() {
        // Two disks, same seed. Disk A crashes with an extra fully-synced
        // file present; disk B without it. The torn tail of the shared
        // file must be identical: the empty file still consumed its draw
        // in name order, so the stream stays aligned by construction —
        // and the draw for "a.wal" (first in sorted order) is unaffected
        // by files sorting after it.
        let mk = |with_extra: bool| {
            let d = SimDisk::new("h0");
            let mut d = d.borrow_mut();
            d.set_fault_seed(1234);
            d.append("a.wal", b"0123456789abcdef");
            if with_extra {
                d.append("z.snap", b"synced");
                d.fsync("z.snap");
            }
            d.crash();
            d.read("a.wal").unwrap()
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn rename_is_atomic_publish() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.append("snap.new", b"v2");
        d.fsync("snap.new");
        d.append("snap", b"v1");
        d.fsync("snap");
        d.rename("snap.new", "snap");
        assert_eq!(d.read("snap").unwrap(), b"v2");
        assert!(!d.exists("snap.new"));
    }

    #[test]
    fn truncate_clears_both_layers() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.append("wal", b"synced");
        d.fsync("wal");
        d.append("wal", b"cached");
        d.truncate("wal");
        assert_eq!(d.len("wal"), 0);
        assert!(d.exists("wal"));
    }

    #[test]
    fn registry_hands_out_one_disk_per_host_and_crashes_by_host() {
        let mut reg = DiskRegistry::new();
        reg.set_fault_seed(9);
        let a = reg.disk("a");
        let a2 = reg.disk("a");
        assert!(Rc::ptr_eq(&a, &a2));
        a.borrow_mut().append("wal", b"tail");
        reg.crash_host("a");
        reg.crash_host("ghost"); // no disk yet: no-op
        assert_eq!(a.borrow().stats().crashes, 1);
        assert_eq!(reg.total_stats().crashes, 1);
        assert_eq!(reg.hosts(), vec!["a".to_string()]);
    }

    #[test]
    fn time_accounting_accumulates() {
        let d = SimDisk::new("h0");
        let mut d = d.borrow_mut();
        d.set_profile(DiskProfile { fsync_s: 1.0, per_byte_s: 0.5 });
        d.append("wal", b"ab"); // 2 bytes * 0.5
        d.fsync("wal"); // 1.0 + 2 * 0.5
        assert!((d.stats().busy_s - 3.0).abs() < 1e-12);
    }
}
