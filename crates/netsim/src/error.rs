//! Error types for the simulator.

use std::fmt;

use crate::topology::NodeId;

/// Result alias used across the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Errors that the simulator can report to its users.
///
/// These mirror the failures the paper's tools must cope with: unreachable
/// (firewalled) destinations, unknown names, malformed topologies.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// No route exists between the two nodes (disconnected or firewalled).
    Unreachable { src: NodeId, dst: NodeId },
    /// A firewall rule forbids the communication.
    Firewalled { src: NodeId, dst: NodeId },
    /// Node id out of range for this topology.
    UnknownNode(NodeId),
    /// Process id not registered with the engine.
    UnknownProcess(u32),
    /// A DNS lookup failed.
    NameNotFound(String),
    /// The topology under construction is invalid.
    InvalidTopology(String),
    /// A flow or probe was given an empty/zero-byte payload where one is
    /// required.
    EmptyTransfer,
    /// A probe was attempted from a node to itself.
    SelfProbe(NodeId),
    /// The simulation ran past its configured horizon without the awaited
    /// condition becoming true.
    HorizonExceeded { horizon_secs: f64 },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable { src, dst } => {
                write!(f, "no route from node {src:?} to node {dst:?}")
            }
            NetError::Firewalled { src, dst } => {
                write!(f, "firewall forbids traffic from node {src:?} to node {dst:?}")
            }
            NetError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            NetError::UnknownProcess(p) => write!(f, "unknown process id {p}"),
            NetError::NameNotFound(n) => write!(f, "name not found: {n}"),
            NetError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            NetError::EmptyTransfer => write!(f, "transfer size must be > 0 bytes"),
            NetError::SelfProbe(n) => write!(f, "cannot probe from node {n:?} to itself"),
            NetError::HorizonExceeded { horizon_secs } => {
                write!(f, "simulation horizon of {horizon_secs}s exceeded")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::NameNotFound("nowhere.example".into());
        assert!(e.to_string().contains("nowhere.example"));
        let e = NetError::HorizonExceeded { horizon_secs: 10.0 };
        assert!(e.to_string().contains("10"));
    }
}
