//! Simulated time.
//!
//! The simulator clock is a non-negative `f64` number of seconds wrapped in
//! [`SimTime`]. Durations are [`TimeDelta`]. Both are totally ordered (NaN is
//! rejected at construction), which lets them key the event queue.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::units::Latency;

/// An absolute instant on the simulated clock, in seconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May only be non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeDelta(f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "SimTime must be finite and >= 0, got {s}");
        SimTime(s)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Time elapsed since `earlier`. Saturates at zero for robustness against
    /// floating-point jitter.
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta((self.0 - earlier.0).max(0.0))
    }
}

impl TimeDelta {
    pub const ZERO: TimeDelta = TimeDelta(0.0);

    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "TimeDelta must be finite and >= 0, got {s}");
        TimeDelta(s)
    }

    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl From<Latency> for TimeDelta {
    fn from(l: Latency) -> Self {
        TimeDelta(l.as_secs())
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so partial_cmp always succeeds.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for TimeDelta {}

impl Ord for TimeDelta {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("TimeDelta is never NaN")
    }
}

impl PartialOrd for TimeDelta {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for SimTime {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = TimeDelta;
    fn sub(self, rhs: SimTime) -> TimeDelta {
        self.since(rhs)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: f64) -> TimeDelta {
        TimeDelta::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: f64) -> TimeDelta {
        TimeDelta::from_secs(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else {
            write!(f, "{:.3} ms", self.as_millis())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + TimeDelta::from_millis(1500.0);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        let d = t - SimTime::from_secs(0.5);
        assert!((d.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.since(b), TimeDelta::ZERO);
        assert!((b.since(a).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn latency_converts() {
        let d: TimeDelta = Latency::millis(3.0).into();
        assert!((d.as_millis() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn delta_scaling() {
        let d = TimeDelta::from_secs(2.0) * 1.5;
        assert!((d.as_secs() - 3.0).abs() < 1e-12);
        let h = TimeDelta::from_secs(2.0) / 4.0;
        assert!((h.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", TimeDelta::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", TimeDelta::from_millis(2.0)), "2.000 ms");
        assert_eq!(format!("{}", SimTime::from_secs(0.25)), "t=0.250000s");
    }
}
