//! Canned platforms, including the paper's evaluation network.
//!
//! [`ens_lyon`] encodes the ENS-Lyon LAN of the paper's Figure 1(a) — the
//! ground truth every experiment maps, plans against and deploys on. The
//! other generators build parametric platforms for scaling benchmarks:
//! star hubs/switches, dumbbells, an asymmetric-route pair, and random
//! hierarchical campuses / grid constellations.
//!
//! ## Encoding choices for ENS-Lyon (documented deltas)
//!
//! * The "10 Mbps" dashed segment of Figure 1(a) is modelled as the shared
//!   public hub (`Hub 2`) carrying `routlhpc` and the public interfaces of
//!   the three gateways. That is the only placement under which ENV's
//!   jammed-bandwidth experiment (paper thresholds 0.7/0.9) classifies the
//!   gateway cluster as *shared*, as Figure 1(b) reports: with the
//!   bottleneck *in front of* a faster hub, jamming would be invisible to
//!   the master's capped flow.
//! * The `sci` switch ports default to the paper's measured 32.65 Mbps
//!   (`Calibration::Paper`) so the regenerated GridML matches §4.2.2.4;
//!   `Calibration::Nominal` uses the nameplate 100 Mbps instead.
//! * Route asymmetry (§4.3) is not part of the base scenario — it is
//!   exercised separately by [`asym_pair`] (experiment E7), keeping the
//!   base traceroute tree identical to Figure 2.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::topology::{NodeId, Topology, TopologyBuilder};
use crate::units::{Bandwidth, Latency};

/// Whether to use nameplate link rates or the paper's measured ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calibration {
    /// Nameplate rates (100 Mbps switched ports).
    Nominal,
    /// Rates calibrated to the paper's measurements (sci ports at
    /// 32.65 Mbps, the `ENV_base_BW` of §4.2.2.4's GridML listing).
    Paper,
}

/// The ENS-Lyon platform of Figure 1(a), with every interesting node
/// exposed by name.
pub struct EnsLyon {
    pub topo: Topology,
    // infrastructure
    pub external: NodeId,
    pub border: NodeId,
    pub r13: NodeId,
    pub backbone: NodeId,
    pub routlhpc: NodeId,
    pub hub1: NodeId,
    pub hub2: NodeId,
    pub hub3: NodeId,
    pub sci_switch: NodeId,
    // ens-lyon.fr hosts
    pub the_doors: NodeId,
    pub canaria: NodeId,
    pub moby: NodeId,
    // dual-homed gateways
    pub popc0: NodeId,
    pub myri0: NodeId,
    pub sci0: NodeId,
    // popc.private hosts
    pub myri1: NodeId,
    pub myri2: NodeId,
    /// sci1..sci6
    pub sci: Vec<NodeId>,
}

impl EnsLyon {
    /// All end hosts of the platform (the machines ENV maps).
    pub fn all_hosts(&self) -> Vec<NodeId> {
        let mut v = vec![
            self.the_doors,
            self.canaria,
            self.moby,
            self.popc0,
            self.myri0,
            self.sci0,
            self.myri1,
            self.myri2,
        ];
        v.extend(&self.sci);
        v
    }

    /// Hosts visible from the public side (the outside ENV run's input).
    pub fn public_hosts(&self) -> Vec<NodeId> {
        vec![self.the_doors, self.canaria, self.moby, self.popc0, self.myri0, self.sci0]
    }

    /// Hosts of the private domain (the inside ENV run's input).
    pub fn private_hosts(&self) -> Vec<NodeId> {
        let mut v = vec![self.popc0, self.myri0, self.sci0, self.myri1, self.myri2];
        v.extend(&self.sci);
        v
    }
}

/// Build the ENS-Lyon platform.
pub fn ens_lyon(cal: Calibration) -> EnsLyon {
    let mut b = TopologyBuilder::new();
    let port_lat = Latency::micros(50.0);

    // ---- infrastructure --------------------------------------------------
    // Hub 1: the ens-lyon.fr segment with the master and two workstations.
    let hub1 = b.hub("Hub1", Bandwidth::mbps(100.0), port_lat);
    // Hub 2: the 10 Mbps public segment of the popc domain (see module
    // docs for why the bottleneck *is* the shared medium).
    let hub2 = b.hub("Hub2", Bandwidth::mbps(10.0), port_lat);
    // Hub 3: the myri cluster's private 100 Mbps hub.
    let hub3 = b.hub("Hub3", Bandwidth::mbps(100.0), port_lat);
    let sci_rate = match cal {
        Calibration::Nominal => Bandwidth::mbps(100.0),
        Calibration::Paper => Bandwidth::mbps(32.65),
    };
    let sci_switch = b.switch("SciSwitch", sci_rate, port_lat);

    let border = b.router_unnamed("192.168.254.1");
    let r13 = b.router_unnamed("140.77.13.1");
    let backbone = b.router("routeur-backbone.ens-lyon.fr", "140.77.161.1");
    let routlhpc = b.router("routlhpc.ens-lyon.fr", "140.77.12.1");
    let external = b.external("well-known.example.org", "198.51.100.1");

    // ---- ens-lyon.fr hosts ------------------------------------------------
    let the_doors = b.host("the-doors.ens-lyon.fr", "140.77.13.10");
    let canaria = b.host("canaria.ens-lyon.fr", "140.77.13.229");
    let moby = b.host("moby.cri2000.ens-lyon.fr", "140.77.13.82");

    // ---- dual-homed gateways (iface 0 public, iface 1 private) ------------
    let popc0 = b.host_multi(
        "popc0",
        &[("popc.ens-lyon.fr", "140.77.12.51"), ("popc0.popc.private", "192.168.81.51")],
    );
    let myri0 = b.host_multi(
        "myri0",
        &[("myri.ens-lyon.fr", "140.77.12.52"), ("myri0.popc.private", "192.168.81.50")],
    );
    let sci0 = b.host_multi(
        "sci0",
        &[("sci.ens-lyon.fr", "140.77.12.53"), ("sci0.popc.private", "192.168.81.53")],
    );
    for gw in [popc0, myri0, sci0] {
        b.set_forwards(gw, true);
    }

    // ---- popc.private hosts ------------------------------------------------
    let myri1 = b.host("myri1.popc.private", "192.168.81.61");
    let myri2 = b.host("myri2.popc.private", "192.168.81.62");
    let sci: Vec<NodeId> = (1..=6)
        .map(|i| b.host(&format!("sci{i}.popc.private"), &format!("192.168.81.7{i}")))
        .collect();

    // ---- wiring -------------------------------------------------------------
    b.attach(the_doors, hub1);
    b.attach(canaria, hub1);
    b.attach(moby, hub1);
    b.attach(r13, hub1);

    b.link(r13, border, Bandwidth::mbps(100.0), Latency::micros(200.0));
    b.link(backbone, border, Bandwidth::mbps(1000.0), Latency::micros(100.0));
    b.link(backbone, routlhpc, Bandwidth::mbps(100.0), Latency::micros(100.0));
    b.link(border, external, Bandwidth::mbps(100.0), Latency::millis(5.0));

    b.attach(routlhpc, hub2);
    b.attach_iface(popc0, 0, hub2);
    b.attach_iface(myri0, 0, hub2);
    b.attach_iface(sci0, 0, hub2);

    b.attach_iface(myri0, 1, hub3);
    b.attach(myri1, hub3);
    b.attach(myri2, hub3);

    b.attach_iface(sci0, 1, sci_switch);
    for s in &sci {
        b.attach(*s, sci_switch);
    }

    // ---- firewall -------------------------------------------------------------
    // Inner private hosts cannot cross to the public world; the gateways
    // (absent from the rule) can.
    let mut inner = vec![myri1, myri2];
    inner.extend(&sci);
    let outer = vec![the_doors, canaria, moby, external];
    b.firewall_deny_between(&inner, &outer);

    let topo = b.build().expect("ens-lyon scenario is well-formed");
    EnsLyon {
        topo,
        external,
        border,
        r13,
        backbone,
        routlhpc,
        hub1,
        hub2,
        hub3,
        sci_switch,
        the_doors,
        canaria,
        moby,
        popc0,
        myri0,
        sci0,
        myri1,
        myri2,
        sci,
    }
}

/// A generated platform plus the handles benchmarks need.
pub struct GeneratedNet {
    pub topo: Topology,
    pub hosts: Vec<NodeId>,
    /// A designated vantage point for ENV runs.
    pub master: NodeId,
    /// External traceroute target, when the platform has one.
    pub external: Option<NodeId>,
}

/// `n` hosts on one shared hub.
pub fn star_hub(n: usize, rate: Bandwidth) -> GeneratedNet {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new();
    let hub = b.hub("hub", rate, Latency::micros(50.0));
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = b.host(&format!("h{i}.hub.net"), &format!("10.1.{}.{}", i / 250, i % 250 + 1));
            b.attach(h, hub);
            h
        })
        .collect();
    let master = hosts[0];
    GeneratedNet { topo: b.build().unwrap(), hosts, master, external: None }
}

/// `n` hosts on one switch.
pub fn star_switch(n: usize, rate: Bandwidth) -> GeneratedNet {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new();
    let sw = b.switch("sw", rate, Latency::micros(50.0));
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = b.host(&format!("h{i}.sw.net"), &format!("10.2.{}.{}", i / 250, i % 250 + 1));
            b.attach(h, sw);
            h
        })
        .collect();
    let master = hosts[0];
    GeneratedNet { topo: b.build().unwrap(), hosts, master, external: None }
}

/// Two switched clusters joined by a bottleneck link:
/// `left` hosts — switch — router —(bottleneck)— router — switch — `right`
/// hosts.
pub fn dumbbell(left: usize, right: usize, bottleneck: Bandwidth) -> GeneratedNet {
    let mut b = TopologyBuilder::new();
    let sw_l = b.switch("swL", Bandwidth::mbps(100.0), Latency::micros(50.0));
    let sw_r = b.switch("swR", Bandwidth::mbps(100.0), Latency::micros(50.0));
    let r_l = b.router("gwL.dumb.net", "10.3.0.1");
    let r_r = b.router("gwR.dumb.net", "10.3.0.2");
    b.attach(r_l, sw_l);
    b.attach(r_r, sw_r);
    b.link(r_l, r_r, bottleneck, Latency::millis(1.0));
    let mut hosts = Vec::new();
    for i in 0..left {
        let h = b.host(&format!("l{i}.dumb.net"), &format!("10.3.1.{}", i + 1));
        b.attach(h, sw_l);
        hosts.push(h);
    }
    for i in 0..right {
        let h = b.host(&format!("r{i}.dumb.net"), &format!("10.3.2.{}", i + 1));
        b.attach(h, sw_r);
        hosts.push(h);
    }
    let master = hosts[0];
    GeneratedNet { topo: b.build().unwrap(), hosts, master, external: None }
}

/// Two hosts with asymmetric routes: the a→b direction crosses a 10 Mbps
/// link, the b→a direction 100 Mbps links only — the situation ENV's
/// one-way tests cannot detect (paper §4.3, experiment E7).
pub fn asym_pair() -> GeneratedNet {
    let mut b = TopologyBuilder::new();
    let a = b.host("a.asym.net", "10.4.0.1");
    let c = b.host("b.asym.net", "10.4.0.2");
    let r_slow = b.router("r-slow.asym.net", "10.4.1.1");
    let r_fast = b.router("r-fast.asym.net", "10.4.1.2");
    let l1 = b.link(a, r_slow, Bandwidth::mbps(10.0), Latency::millis(1.0));
    let l2 = b.link(r_slow, c, Bandwidth::mbps(10.0), Latency::millis(1.0));
    let l3 = b.link(a, r_fast, Bandwidth::mbps(100.0), Latency::millis(1.0));
    let l4 = b.link(r_fast, c, Bandwidth::mbps(100.0), Latency::millis(1.0));
    // a→b prefers the slow router; b→a prefers the fast one.
    b.set_weights(l1, 1.0, 50.0);
    b.set_weights(l2, 1.0, 50.0);
    b.set_weights(l3, 50.0, 1.0);
    b.set_weights(l4, 50.0, 1.0);
    GeneratedNet { topo: b.build().unwrap(), hosts: vec![a, c], master: a, external: None }
}

/// Parameters for [`random_campus`].
#[derive(Debug, Clone)]
pub struct CampusParams {
    /// Number of leaf LANs.
    pub lans: usize,
    /// Hosts per LAN (uniform in the given range).
    pub hosts_per_lan: (usize, usize),
    /// Probability that a LAN is a hub (vs a switch).
    pub hub_fraction: f64,
    /// LAN rate choices (picked uniformly).
    pub lan_rates_mbps: Vec<f64>,
    /// Backbone link rate.
    pub backbone_mbps: f64,
}

impl Default for CampusParams {
    fn default() -> Self {
        CampusParams {
            lans: 4,
            hosts_per_lan: (2, 6),
            hub_fraction: 0.5,
            lan_rates_mbps: vec![10.0, 100.0],
            backbone_mbps: 1000.0,
        }
    }
}

/// Ground truth for a generated campus LAN, used to score mapper output.
pub struct CampusTruth {
    /// For each LAN: (member hosts, is_hub, rate).
    pub lans: Vec<(Vec<NodeId>, bool, Bandwidth)>,
}

/// A random two-level campus: LANs (hub or switch) hang off routers on a
/// backbone, and an external destination sits behind a border router.
/// Deterministic for a given seed.
pub fn random_campus(seed: u64, params: &CampusParams) -> (GeneratedNet, CampusTruth) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let border = b.router_unnamed("192.168.254.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(border, external, Bandwidth::mbps(params.backbone_mbps), Latency::millis(5.0));
    let backbone = b.router("backbone.campus.net", "10.250.0.1");
    b.link(backbone, border, Bandwidth::mbps(params.backbone_mbps), Latency::micros(100.0));

    let mut hosts = Vec::new();
    let mut truth = Vec::new();
    for lan in 0..params.lans {
        let is_hub = rng.gen_range(0.0..1.0) < params.hub_fraction;
        let rate_mbps = params.lan_rates_mbps[rng.gen_range(0..params.lan_rates_mbps.len())];
        let rate = Bandwidth::mbps(rate_mbps);
        let n = rng.gen_range(params.hosts_per_lan.0..=params.hosts_per_lan.1);
        let router = b.router(&format!("gw{lan}.campus.net"), &format!("10.{}.0.1", lan + 1));
        b.link(router, backbone, Bandwidth::mbps(params.backbone_mbps), Latency::micros(100.0));
        let infra = if is_hub {
            b.hub(&format!("lan{lan}"), rate, Latency::micros(50.0))
        } else {
            b.switch(&format!("lan{lan}"), rate, Latency::micros(50.0))
        };
        b.attach(router, infra);
        let mut members = Vec::new();
        for h in 0..n {
            let host = b
                .host(&format!("h{h}.lan{lan}.campus.net"), &format!("10.{}.1.{}", lan + 1, h + 1));
            b.attach(host, infra);
            members.push(host);
            hosts.push(host);
        }
        truth.push((members, is_hub, rate));
    }
    let master = hosts[0];
    (
        GeneratedNet { topo: b.build().unwrap(), hosts, master, external: Some(external) },
        CampusTruth { lans: truth },
    )
}

/// A WAN constellation of campuses ("Grid testbeds are ... a WAN
/// constellation of LAN resources", paper §5): several campuses joined by
/// slow wide-area links to a core router.
pub fn grid_constellation(seed: u64, sites: usize, params: &CampusParams) -> GeneratedNet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let core = b.router_unnamed("192.0.2.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(core, external, Bandwidth::mbps(1000.0), Latency::millis(2.0));

    let mut hosts = Vec::new();
    for s in 0..sites {
        let site_router =
            b.router(&format!("border.site{s}.grid.org"), &format!("10.{}.250.1", 100 + s));
        let wan_mbps = [10.0, 34.0, 100.0][rng.gen_range(0..3)];
        b.link(
            site_router,
            core,
            Bandwidth::mbps(wan_mbps),
            Latency::millis(rng.gen_range(5.0..40.0)),
        );
        for lan in 0..params.lans {
            let is_hub = rng.gen_range(0.0..1.0) < params.hub_fraction;
            let rate = Bandwidth::mbps(
                params.lan_rates_mbps[rng.gen_range(0..params.lan_rates_mbps.len())],
            );
            let infra = if is_hub {
                b.hub(&format!("s{s}lan{lan}"), rate, Latency::micros(50.0))
            } else {
                b.switch(&format!("s{s}lan{lan}"), rate, Latency::micros(50.0))
            };
            let gw = b.router(
                &format!("gw{lan}.site{s}.grid.org"),
                &format!("10.{}.{}.1", 100 + s, lan + 1),
            );
            b.link(gw, site_router, Bandwidth::mbps(1000.0), Latency::micros(100.0));
            b.attach(gw, infra);
            let n = rng.gen_range(params.hosts_per_lan.0..=params.hosts_per_lan.1);
            for h in 0..n {
                let host = b.host(
                    &format!("h{h}.lan{lan}.site{s}.grid.org"),
                    &format!("10.{}.{}.{}", 100 + s, lan + 1, h + 2),
                );
                b.attach(host, infra);
                hosts.push(host);
            }
        }
    }
    let master = hosts[0];
    GeneratedNet { topo: b.build().unwrap(), hosts, master, external: Some(external) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::units::Bytes;

    #[test]
    fn ens_lyon_builds_and_exposes_hosts() {
        let net = ens_lyon(Calibration::Paper);
        assert_eq!(net.all_hosts().len(), 14);
        assert_eq!(net.public_hosts().len(), 6);
        assert_eq!(net.private_hosts().len(), 11);
        assert_eq!(net.topo.hosts().count(), 14);
    }

    #[test]
    fn ens_lyon_bottleneck_from_master() {
        let net = ens_lyon(Calibration::Paper);
        let mut sim = Sim::new(net.topo.clone());
        // the-doors → popc0 crosses the 10 Mbps Hub 2.
        let bw = sim.measure_bandwidth(net.the_doors, net.popc0, Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 10.0).abs() < 0.3, "got {bw}");
        // the-doors → canaria stays on the 100 Mbps Hub 1.
        let bw = sim.measure_bandwidth(net.the_doors, net.canaria, Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 100.0).abs() < 2.0, "got {bw}");
    }

    #[test]
    fn ens_lyon_sci_rate_depends_on_calibration() {
        let paper = ens_lyon(Calibration::Paper);
        let mut sim = Sim::new(paper.topo.clone());
        let bw = sim.measure_bandwidth(paper.sci[0], paper.sci[1], Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 32.65).abs() < 0.5, "got {bw}");

        let nominal = ens_lyon(Calibration::Nominal);
        let mut sim = Sim::new(nominal.topo.clone());
        let bw = sim.measure_bandwidth(nominal.sci[0], nominal.sci[1], Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 100.0).abs() < 2.0, "got {bw}");
    }

    #[test]
    fn ens_lyon_firewall_blocks_inner_hosts() {
        let net = ens_lyon(Calibration::Paper);
        let mut sim = Sim::new(net.topo.clone());
        assert!(sim.measure_bandwidth(net.the_doors, net.sci[0], Bytes::kib(64)).is_err());
        assert!(sim.measure_bandwidth(net.myri1, net.external, Bytes::kib(64)).is_err());
        // Gateways cross freely.
        assert!(sim.measure_bandwidth(net.the_doors, net.sci0, Bytes::kib(64)).is_ok());
        assert!(sim.measure_bandwidth(net.sci0, net.sci[2], Bytes::kib(64)).is_ok());
    }

    #[test]
    fn ens_lyon_traceroute_matches_figure_2() {
        let net = ens_lyon(Calibration::Paper);
        let mut sim = Sim::new(net.topo.clone());
        // From the ens-lyon.fr side: 140.77.13.1 then 192.168.254.1.
        let hops = sim.traceroute(net.the_doors, net.external).unwrap();
        let ips: Vec<String> = hops.iter().map(|h| h.ip.unwrap().to_string()).collect();
        assert_eq!(ips, vec!["140.77.13.1", "192.168.254.1"]);
        // From the gateways: routlhpc, routeur-backbone, 192.168.254.1.
        let hops = sim.traceroute(net.myri0, net.external).unwrap();
        let names: Vec<Option<&str>> = hops.iter().map(|h| h.name.as_deref()).collect();
        assert_eq!(
            names,
            vec![Some("routlhpc.ens-lyon.fr"), Some("routeur-backbone.ens-lyon.fr"), None]
        );
    }

    #[test]
    fn ens_lyon_myri_cluster_local_vs_master_bandwidth() {
        // The paper's "internal host bandwidth" motivation: myri1↔myri2 run
        // at 100 Mbps locally although the master only reaches them at 10.
        let net = ens_lyon(Calibration::Paper);
        let mut sim = Sim::new(net.topo.clone());
        let local = sim.measure_bandwidth(net.myri1, net.myri2, Bytes::mib(1)).unwrap();
        assert!((local.as_mbps() - 100.0).abs() < 2.0, "got {local}");
        let from_master = sim.measure_bandwidth(net.the_doors, net.myri0, Bytes::mib(1)).unwrap();
        assert!((from_master.as_mbps() - 10.0).abs() < 0.3, "got {from_master}");
    }

    #[test]
    fn star_generators() {
        let hub = star_hub(5, Bandwidth::mbps(100.0));
        assert_eq!(hub.hosts.len(), 5);
        let mut sim = Sim::new(hub.topo);
        let res = sim.measure_bandwidth_concurrent(
            &[(hub.hosts[1], hub.hosts[2]), (hub.hosts[3], hub.hosts[4])],
            Bytes::mib(1),
        );
        assert!((res[0].as_ref().unwrap().as_mbps() - 50.0).abs() < 1.0);

        let sw = star_switch(5, Bandwidth::mbps(100.0));
        let mut sim = Sim::new(sw.topo);
        let res = sim.measure_bandwidth_concurrent(
            &[(sw.hosts[1], sw.hosts[2]), (sw.hosts[3], sw.hosts[4])],
            Bytes::mib(1),
        );
        assert!((res[0].as_ref().unwrap().as_mbps() - 100.0).abs() < 2.0);
    }

    #[test]
    fn dumbbell_bottleneck_visible() {
        let net = dumbbell(3, 3, Bandwidth::mbps(10.0));
        let mut sim = Sim::new(net.topo);
        let bw = sim.measure_bandwidth(net.hosts[0], net.hosts[3], Bytes::mib(1)).unwrap();
        assert!((bw.as_mbps() - 10.0).abs() < 0.3);
        let bw = sim.measure_bandwidth(net.hosts[0], net.hosts[1], Bytes::mib(1)).unwrap();
        assert!(bw.as_mbps() > 90.0);
    }

    #[test]
    fn asym_pair_directions_differ() {
        let net = asym_pair();
        let mut sim = Sim::new(net.topo);
        let fwd = sim.measure_bandwidth(net.hosts[0], net.hosts[1], Bytes::mib(1)).unwrap();
        let back = sim.measure_bandwidth(net.hosts[1], net.hosts[0], Bytes::mib(1)).unwrap();
        assert!((fwd.as_mbps() - 10.0).abs() < 0.3, "fwd {fwd}");
        // The timed transfer includes 4 ms of round-trip latency, so the
        // observed figure sits a few percent under the nameplate rate.
        assert!(back.as_mbps() > 90.0, "back {back}");
        assert!(back.ratio(fwd) > 8.0, "asymmetry must be an order of magnitude");
    }

    #[test]
    fn random_campus_is_deterministic_and_mappable() {
        let (n1, t1) = random_campus(7, &CampusParams::default());
        let (n2, _) = random_campus(7, &CampusParams::default());
        assert_eq!(n1.hosts.len(), n2.hosts.len());
        assert_eq!(t1.lans.len(), 4);
        // Hosts on different LANs route via the backbone.
        let mut sim = Sim::new(n1.topo);
        let a = t1.lans[0].0[0];
        let b_ = t1.lans[1].0[0];
        assert!(sim.measure_bandwidth(a, b_, Bytes::kib(256)).is_ok());
        // Traceroute to the external target works (structural phase).
        assert!(sim.traceroute(a, n1.external.unwrap()).unwrap().len() >= 2);
    }

    #[test]
    fn grid_constellation_builds() {
        let net = grid_constellation(3, 3, &CampusParams::default());
        assert!(net.hosts.len() >= 3 * 4 * 2);
        let mut sim = Sim::new(net.topo);
        let bw = sim
            .measure_bandwidth(net.hosts[0], *net.hosts.last().unwrap(), Bytes::kib(256))
            .unwrap();
        assert!(bw.as_mbps() > 0.5);
    }
}
