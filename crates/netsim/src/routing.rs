//! Route computation: per-direction weighted shortest paths.
//!
//! Routes are computed per *ordered* pair — the forward and return paths of
//! a pair may differ when link weights are asymmetric, reproducing the
//! asymmetric routes the paper observed between `the-doors` and `popc`
//! (§4.3: 10 Mbps one way, 100 Mbps links only the other way).
//!
//! Only forwarding nodes (routers, switches, hubs, gateway hosts) may relay
//! traffic; plain hosts and the external stand-in can only be endpoints.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{NetError, NetResult};
use crate::topology::{LinkId, NodeId, Topology};
use crate::units::{Bandwidth, Latency};

/// A directed route through the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Link sequence; `links[i]` connects `nodes[i]` to `nodes[i+1]`.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Sum of one-way link latencies along the path.
    pub fn latency(&self, topo: &Topology) -> Latency {
        self.links.iter().map(|l| topo.link(*l).latency).sum()
    }

    /// The minimum directed capacity along the path — the best throughput a
    /// single flow alone on the network could reach.
    pub fn bottleneck(&self, topo: &Topology) -> Bandwidth {
        let mut min: Option<Bandwidth> = None;
        for (i, l) in self.links.iter().enumerate() {
            let cap = topo.link(*l).capacity_from(self.nodes[i], topo.mediums_internal());
            min = Some(match min {
                Some(m) => m.min(cap),
                None => cap,
            });
        }
        min.unwrap_or(Bandwidth::ZERO)
    }

    /// Intermediate layer-3 hops (routers and forwarding hosts), excluding
    /// the endpoints — the nodes a traceroute would reveal.
    pub fn l3_hops(&self, topo: &Topology) -> Vec<NodeId> {
        self.nodes[1..self.nodes.len().saturating_sub(1)]
            .iter()
            .copied()
            .filter(|n| topo.node(*n).is_l3_hop())
            .collect()
    }

    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// Distance key for Dijkstra: weight plus deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("route weights are never NaN")
    }
}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    dist: Dist,
    node: NodeId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-heap behaviour. Ties are
        // broken by node id so route computation is fully deterministic.
        other.dist.cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Sentinel in the dense predecessor table: no predecessor (the source's
/// own entry, or an unreachable node).
const NONE: u32 = u32::MAX;

/// All-sources shortest-path trees, precomputed at simulator start.
///
/// Storage is one flat `u32` per ordered node pair: the dense id of the
/// last link on the best path `src → node` (`NONE` for the source itself
/// and for unreachable nodes). The predecessor *node* is not stored — it is
/// recovered as `link.peer(cur)`, which is why the walking accessors take
/// the topology. At 12+ bytes per `Option<(NodeId, LinkId)>` plus a
/// parallel `bool` matrix, the previous array-of-struct layout cost ~13×
/// this; the flat table keeps the 10k-host tier in the hundreds of
/// megabytes and lets per-source rows be computed on independent workers.
#[derive(Debug, Clone)]
pub struct RouteTable {
    n: usize,
    /// `prev_link[src * n + node]` = dense link id, or `NONE`.
    prev_link: Vec<u32>,
}

impl RouteTable {
    /// Run Dijkstra from every node. Weights are the links' directed
    /// routing weights; intermediate nodes must be forwarders. Uses every
    /// core the process is allowed (see
    /// [`compute_with_threads`](Self::compute_with_threads)).
    pub fn compute(topo: &Topology) -> Self {
        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        Self::compute_with_threads(topo, threads)
    }

    /// [`compute`](Self::compute) with an explicit worker count. Per-source
    /// trees are independent, so the table is bit-identical for every
    /// `threads` value — workers own disjoint row ranges of the flat table.
    pub fn compute_with_threads(topo: &Topology, threads: usize) -> Self {
        let n = topo.node_count();
        let mut prev_link = vec![NONE; n * n];
        let threads = threads.clamp(1, n.max(1));
        if n > 0 {
            let rows_per = n.div_ceil(threads);
            std::thread::scope(|s| {
                for (chunk_idx, rows) in prev_link.chunks_mut(rows_per * n).enumerate() {
                    let first_src = chunk_idx * rows_per;
                    s.spawn(move || {
                        let mut dist = vec![f64::INFINITY; n];
                        let mut heap = BinaryHeap::new();
                        for (row_idx, row) in rows.chunks_mut(n).enumerate() {
                            let src = NodeId((first_src + row_idx) as u32);
                            dijkstra_row(topo, src, row, &mut dist, &mut heap);
                        }
                    });
                }
            });
        }
        RouteTable { n, prev_link }
    }

    #[inline]
    fn entry(&self, src: NodeId, dst: NodeId) -> u32 {
        self.prev_link[src.index() * self.n + dst.index()]
    }

    /// Whether a physical route exists (ignores firewall rules).
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.entry(src, dst) != NONE
    }

    /// Walk the directed route from `src` to `dst` in reverse hop order
    /// without allocating: the iterator yields `(from_node, link)` for each
    /// traversed link, starting at the destination. The engine's flow hot
    /// path extracts interned resource ids and latencies through this
    /// instead of materialising a [`Path`].
    pub fn hops_rev<'a>(
        &'a self,
        topo: &'a Topology,
        src: NodeId,
        dst: NodeId,
    ) -> NetResult<HopsRev<'a>> {
        if src != dst && !self.reachable(src, dst) {
            return Err(NetError::Unreachable { src, dst });
        }
        Ok(HopsRev {
            topo,
            row: &self.prev_link[src.index() * self.n..(src.index() + 1) * self.n],
            src,
            cur: dst,
        })
    }

    /// One-way latency of the directed route, computed without allocating.
    pub fn latency(&self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Latency> {
        let mut secs = 0.0;
        for (_, l) in self.hops_rev(topo, src, dst)? {
            secs += topo.link(l).latency.as_secs();
        }
        Ok(Latency::secs(secs))
    }

    /// One-way latency and minimum directed capacity of the route, in one
    /// allocation-free walk (the control-message delivery hot path).
    pub fn latency_and_bottleneck(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> NetResult<(Latency, Bandwidth)> {
        let mut secs = 0.0;
        let mut min_cap: Option<Bandwidth> = None;
        for (from, l) in self.hops_rev(topo, src, dst)? {
            let link = topo.link(l);
            secs += link.latency.as_secs();
            let cap = link.capacity_from(from, topo.mediums_internal());
            min_cap = Some(match min_cap {
                Some(m) => m.min(cap),
                None => cap,
            });
        }
        Ok((Latency::secs(secs), min_cap.unwrap_or(Bandwidth::ZERO)))
    }

    /// The directed route from `src` to `dst`.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> NetResult<Path> {
        if src == dst {
            return Ok(Path { nodes: vec![src], links: vec![] });
        }
        if !self.reachable(src, dst) {
            return Err(NetError::Unreachable { src, dst });
        }
        let mut nodes = vec![dst];
        let mut links = Vec::new();
        for (p, l) in self.hops_rev(topo, src, dst)? {
            links.push(l);
            nodes.push(p);
        }
        nodes.reverse();
        links.reverse();
        Ok(Path { nodes, links })
    }
}

/// One source's Dijkstra tree, written into its flat row of the table.
/// `dist` and `heap` are caller-owned scratch reused across rows.
fn dijkstra_row(
    topo: &Topology,
    src: NodeId,
    row: &mut [u32],
    dist: &mut [f64],
    heap: &mut BinaryHeap<HeapEntry>,
) {
    dist.fill(f64::INFINITY);
    heap.clear();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry { dist: Dist(0.0), node: src });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d.0 > dist[u.index()] {
            continue;
        }
        // Traffic may only be relayed through forwarding nodes.
        if u != src && !topo.node(u).forwards {
            continue;
        }
        for &(link_id, v) in topo.neighbours(u) {
            let link = topo.link(link_id);
            if !link.up {
                continue;
            }
            let w = link.weight_from(u);
            let nd = d.0 + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                row[v.index()] = link_id.raw();
                heap.push(HeapEntry { dist: Dist(nd), node: v });
            }
        }
    }
}

/// Allocation-free reverse walk of one route (see [`RouteTable::hops_rev`]).
pub struct HopsRev<'a> {
    topo: &'a Topology,
    row: &'a [u32],
    src: NodeId,
    cur: NodeId,
}

impl Iterator for HopsRev<'_> {
    type Item = (NodeId, LinkId);

    fn next(&mut self) -> Option<(NodeId, LinkId)> {
        if self.cur == self.src {
            return None;
        }
        let raw = self.row[self.cur.index()];
        debug_assert!(raw != NONE, "reachable implies a predecessor chain");
        let l = LinkId::from_raw(raw);
        let p = self.topo.link(l).peer(self.cur).expect("route link touches its own node");
        self.cur = p;
        Some((p, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::units::{Bandwidth, Latency};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::mbps(x)
    }

    /// a — r — b, plus an unrelated host c.
    fn line() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let r = b.router("r.x", "10.0.0.254");
        let c = b.host("c.x", "10.0.0.2");
        let d = b.host("d.x", "10.0.0.3");
        b.link(a, r, mbps(100.0), Latency::millis(1.0));
        b.link(r, c, mbps(10.0), Latency::millis(2.0));
        (b.build().unwrap(), a, r, c, d)
    }

    #[test]
    fn shortest_path_through_router() {
        let (t, a, r, c, _) = line();
        let rt = RouteTable::compute(&t);
        let p = rt.path(&t, a, c).unwrap();
        assert_eq!(p.nodes, vec![a, r, c]);
        assert_eq!(p.hop_count(), 2);
        assert!((p.latency(&t).as_millis() - 3.0).abs() < 1e-9);
        assert!((p.bottleneck(&t).as_mbps() - 10.0).abs() < 1e-9);
        assert_eq!(p.l3_hops(&t), vec![r]);
    }

    #[test]
    fn disconnected_is_unreachable() {
        let (t, a, _, _, d) = line();
        let rt = RouteTable::compute(&t);
        assert!(!rt.reachable(a, d));
        assert!(matches!(rt.path(&t, a, d), Err(NetError::Unreachable { .. })));
    }

    #[test]
    fn self_path_is_empty() {
        let (t, a, _, _, _) = line();
        let rt = RouteTable::compute(&t);
        let p = rt.path(&t, a, a).unwrap();
        assert_eq!(p.nodes, vec![a]);
        assert!(p.links.is_empty());
        assert_eq!(p.bottleneck(&t), Bandwidth::ZERO);
    }

    #[test]
    fn hosts_do_not_forward() {
        // a — h — c where h is a plain host: no route a→c.
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let h = b.host("h.x", "10.0.0.2");
        let c = b.host("c.x", "10.0.0.3");
        b.link(a, h, mbps(100.0), Latency::ZERO);
        b.link(h, c, mbps(100.0), Latency::ZERO);
        let t = b.build().unwrap();
        let rt = RouteTable::compute(&t);
        assert!(!rt.reachable(a, c));
        // But flipping the forwarding bit (gateway) opens the route.
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let h = b.host("h.x", "10.0.0.2");
        let c = b.host("c.x", "10.0.0.3");
        b.link(a, h, mbps(100.0), Latency::ZERO);
        b.link(h, c, mbps(100.0), Latency::ZERO);
        b.set_forwards(h, true);
        let t = b.build().unwrap();
        let rt = RouteTable::compute(&t);
        let p = rt.path(&t, a, c).unwrap();
        assert_eq!(p.l3_hops(&t), vec![h]);
    }

    #[test]
    fn asymmetric_weights_give_asymmetric_routes() {
        // Two parallel router paths between a and c; weights steer the a→c
        // direction through r1 (slow) and the c→a direction through r2.
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let r1 = b.router("r1.x", "10.0.1.1");
        let r2 = b.router("r2.x", "10.0.1.2");
        let l_a_r1 = b.link(a, r1, mbps(10.0), Latency::millis(1.0));
        let l_r1_c = b.link(r1, c, mbps(10.0), Latency::millis(1.0));
        let l_a_r2 = b.link(a, r2, mbps(100.0), Latency::millis(1.0));
        let l_r2_c = b.link(r2, c, mbps(100.0), Latency::millis(1.0));
        // a→c prefers r1; c→a prefers r2.
        b.set_weights(l_a_r1, 1.0, 50.0);
        b.set_weights(l_r1_c, 1.0, 50.0);
        b.set_weights(l_a_r2, 50.0, 1.0);
        b.set_weights(l_r2_c, 50.0, 1.0);
        let t = b.build().unwrap();
        let rt = RouteTable::compute(&t);
        let fwd = rt.path(&t, a, c).unwrap();
        let back = rt.path(&t, c, a).unwrap();
        assert_eq!(fwd.l3_hops(&t), vec![r1]);
        assert_eq!(back.l3_hops(&t), vec![r2]);
        assert!((fwd.bottleneck(&t).as_mbps() - 10.0).abs() < 1e-9);
        assert!((back.bottleneck(&t).as_mbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn downed_link_reroutes_or_disconnects() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let r = b.router("r.x", "10.0.1.1");
        let l = b.link(a, r, mbps(10.0), Latency::ZERO);
        b.link(r, c, mbps(10.0), Latency::ZERO);
        // Down the first link before build by mutating through set_weights
        // path: rebuild with the link up, then verify the `up` flag is
        // honoured by recomputation.
        let mut t = b.build().unwrap();
        let rt = RouteTable::compute(&t);
        assert!(rt.reachable(a, c));
        t.set_link_up(l, false);
        let rt = RouteTable::compute(&t);
        assert!(!rt.reachable(a, c));
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-weight parallel routers: the chosen path must be stable
        // across recomputations.
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let r1 = b.router("r1.x", "10.0.1.1");
        let r2 = b.router("r2.x", "10.0.1.2");
        b.link(a, r1, mbps(10.0), Latency::ZERO);
        b.link(r1, c, mbps(10.0), Latency::ZERO);
        b.link(a, r2, mbps(10.0), Latency::ZERO);
        b.link(r2, c, mbps(10.0), Latency::ZERO);
        let t = b.build().unwrap();
        let p1 = RouteTable::compute(&t).path(&t, a, c).unwrap();
        let p2 = RouteTable::compute(&t).path(&t, a, c).unwrap();
        assert_eq!(p1, p2);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::topology::{NodeId, TopologyBuilder};
    use crate::units::{Bandwidth, Latency};
    use proptest::prelude::*;

    /// Random two-level tree: a backbone of routers, each with a few hosts.
    fn arb_tree() -> impl Strategy<Value = (Topology, Vec<NodeId>)> {
        proptest::collection::vec(1usize..4, 1..5).prop_map(|sizes| {
            let mut b = TopologyBuilder::new();
            let root = b.router("root.x", "10.255.0.1");
            let mut hosts = Vec::new();
            for (r, n_hosts) in sizes.iter().enumerate() {
                let router = b.router(&format!("r{r}.x"), &format!("10.{r}.0.1"));
                b.link(router, root, Bandwidth::mbps(1000.0), Latency::micros(100.0));
                for h in 0..*n_hosts {
                    let host = b.host(&format!("h{h}.r{r}.x"), &format!("10.{r}.1.{}", h + 1));
                    b.link(host, router, Bandwidth::mbps(100.0), Latency::micros(50.0));
                    hosts.push(host);
                }
            }
            (b.build().unwrap(), hosts)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Paths are well-formed: correct endpoints, each link joins its
        /// adjacent nodes, and with symmetric weights the reverse path has
        /// the same hop count.
        #[test]
        fn paths_are_well_formed((topo, hosts) in arb_tree(), i in 0usize..16, j in 0usize..16) {
            let a = hosts[i % hosts.len()];
            let c = hosts[j % hosts.len()];
            prop_assume!(a != c);
            let rt = RouteTable::compute(&topo);
            let fwd = rt.path(&topo, a, c).unwrap();

            prop_assert_eq!(*fwd.nodes.first().unwrap(), a);
            prop_assert_eq!(*fwd.nodes.last().unwrap(), c);
            // Each link connects the consecutive node pair.
            for (k, l) in fwd.links.iter().enumerate() {
                let link = topo.link(*l);
                let (x, y) = (fwd.nodes[k], fwd.nodes[k + 1]);
                prop_assert!(
                    (link.a == x && link.b == y) || (link.a == y && link.b == x),
                    "link does not join consecutive nodes"
                );
            }
            // No repeated node (simple path).
            let mut seen = fwd.nodes.clone();
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), fwd.nodes.len());

            // Symmetric weights → same length both ways.
            let back = rt.path(&topo, c, a).unwrap();
            prop_assert_eq!(back.hop_count(), fwd.hop_count());

            // Latency and bottleneck agree with manual recomputation.
            let manual_lat: f64 =
                fwd.links.iter().map(|l| topo.link(*l).latency.as_secs()).sum();
            prop_assert!((fwd.latency(&topo).as_secs() - manual_lat).abs() < 1e-12);
            prop_assert!(fwd.bottleneck(&topo).as_mbps() > 0.0);
        }

        /// Reachability is symmetric and reflexive on connected platforms.
        #[test]
        fn reachability_properties((topo, hosts) in arb_tree(), i in 0usize..16) {
            let rt = RouteTable::compute(&topo);
            let a = hosts[i % hosts.len()];
            prop_assert!(rt.reachable(a, a));
            for &b in &hosts {
                prop_assert_eq!(rt.reachable(a, b), rt.reachable(b, a));
                prop_assert!(rt.reachable(a, b), "tree platforms are connected");
            }
        }
    }
}
