//! A miniature DNS: forward and reverse resolution plus machine aliases.
//!
//! The ENV structural phase groups hosts into sites by domain name; when a
//! machine has no name, the paper's patched ENV falls back to the classful
//! network of its address ([`crate::ip::Ipv4::class_domain`]). The firewall
//! merge (paper §4.3) relies on knowing that several names — one per side of
//! the firewall — designate the same machine; those are recorded here as
//! aliases.

use std::collections::{BTreeSet, HashMap};

use crate::ip::Ipv4;

/// Forward (name→address) and reverse (address→name) resolution tables.
#[derive(Debug, Clone, Default)]
pub struct Dns {
    by_name: HashMap<String, Ipv4>,
    by_ip: HashMap<Ipv4, String>,
    aliases: HashMap<String, BTreeSet<String>>,
}

impl Dns {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` ⇔ `ip`. The first name registered for an address
    /// becomes its canonical reverse-resolution result.
    pub fn register(&mut self, name: &str, ip: Ipv4) {
        self.by_name.insert(name.to_string(), ip);
        self.by_ip.entry(ip).or_insert_with(|| name.to_string());
    }

    /// Record that `alias` names the same machine as `name`.
    pub fn add_alias(&mut self, name: &str, alias: &str) {
        self.aliases.entry(name.to_string()).or_default().insert(alias.to_string());
    }

    /// Forward lookup.
    pub fn lookup(&self, name: &str) -> Option<Ipv4> {
        self.by_name.get(name).copied()
    }

    /// Reverse lookup. `None` models a PTR record that does not exist —
    /// the "machines without hostname" case of paper §4.3.
    pub fn reverse(&self, ip: Ipv4) -> Option<&str> {
        self.by_ip.get(&ip).map(|s| s.as_str())
    }

    /// All other names known to designate the same machine as `name`.
    pub fn aliases_of(&self, name: &str) -> Vec<String> {
        self.aliases.get(name).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// The DNS domain of a name: everything after the first dot. Returns
    /// `None` for dotless names.
    pub fn domain_of(name: &str) -> Option<&str> {
        name.split_once('.').map(|(_, d)| d)
    }

    /// The site grouping key ENV uses for a host: its DNS domain when the
    /// address reverse-resolves, otherwise the classful pseudo-domain.
    pub fn site_of(&self, ip: Ipv4) -> String {
        match self.reverse(ip).and_then(Self::domain_of) {
            Some(d) => d.to_string(),
            None => ip.class_domain(),
        }
    }

    /// Number of registered forward entries.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_reverse() {
        let mut d = Dns::new();
        let ip = Ipv4::new(140, 77, 13, 229);
        d.register("canaria.ens-lyon.fr", ip);
        assert_eq!(d.lookup("canaria.ens-lyon.fr"), Some(ip));
        assert_eq!(d.reverse(ip), Some("canaria.ens-lyon.fr"));
        assert_eq!(d.lookup("nothere"), None);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn first_name_is_canonical() {
        let mut d = Dns::new();
        let ip = Ipv4::new(10, 0, 0, 1);
        d.register("first.x", ip);
        d.register("second.x", ip);
        assert_eq!(d.reverse(ip), Some("first.x"));
        assert_eq!(d.lookup("second.x"), Some(ip));
    }

    #[test]
    fn aliases() {
        let mut d = Dns::new();
        d.register("popc.ens-lyon.fr", Ipv4::new(140, 77, 12, 52));
        d.register("popc0.popc.private", Ipv4::new(192, 168, 81, 51));
        d.add_alias("popc.ens-lyon.fr", "popc0.popc.private");
        assert_eq!(d.aliases_of("popc.ens-lyon.fr"), vec!["popc0.popc.private".to_string()]);
        assert!(d.aliases_of("unknown").is_empty());
    }

    #[test]
    fn domain_extraction() {
        assert_eq!(Dns::domain_of("moby.cri2000.ens-lyon.fr"), Some("cri2000.ens-lyon.fr"));
        assert_eq!(Dns::domain_of("localhost"), None);
    }

    #[test]
    fn site_grouping_falls_back_to_ip_class() {
        let mut d = Dns::new();
        let named = Ipv4::new(140, 77, 13, 229);
        d.register("canaria.ens-lyon.fr", named);
        assert_eq!(d.site_of(named), "ens-lyon.fr");
        // Unnamed private address → classful pseudo-domain (paper §4.3).
        let unnamed = Ipv4::new(192, 168, 81, 60);
        assert_eq!(d.site_of(unnamed), "net-192.168.81");
    }
}
