//! IPv4 addresses, address classes and routability.
//!
//! The paper's ENV fixes need two IP-level notions:
//!
//! * **address class** (RFC 1166 classful networks) — when a host has no
//!   DNS name, ENV falls back to grouping it by the network part of its
//!   classful address (§4.3 "Machines without hostname");
//! * **non-routable addresses** (RFC 1918 private ranges) — these are kept
//!   in the structural tree because they are routable *inside* the mapped
//!   network (§4.3: the root of Figure 2 is the non-routable 192.168.254.1).

use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4(u32);

/// Classful address classes (RFC 1166).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpClass {
    /// First octet 0–127, /8 network.
    A,
    /// First octet 128–191, /16 network.
    B,
    /// First octet 192–223, /24 network.
    C,
    /// First octet 224–239 (multicast).
    D,
    /// First octet 240–255 (reserved).
    E,
}

impl Ipv4 {
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    pub fn from_u32(raw: u32) -> Self {
        Ipv4(raw)
    }

    pub fn as_u32(self) -> u32 {
        self.0
    }

    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The classful class of this address.
    pub fn class(self) -> IpClass {
        let first = self.octets()[0];
        match first {
            0..=127 => IpClass::A,
            128..=191 => IpClass::B,
            192..=223 => IpClass::C,
            224..=239 => IpClass::D,
            _ => IpClass::E,
        }
    }

    /// The network address implied by the classful class: the part ENV uses
    /// to group unnamed hosts into pseudo-domains.
    pub fn class_network(self) -> Ipv4 {
        let o = self.octets();
        match self.class() {
            IpClass::A => Ipv4::new(o[0], 0, 0, 0),
            IpClass::B => Ipv4::new(o[0], o[1], 0, 0),
            // Classes C, D and E all keep three octets here; for D/E the
            // grouping is nonsensical anyway but total.
            IpClass::C | IpClass::D | IpClass::E => Ipv4::new(o[0], o[1], o[2], 0),
        }
    }

    /// True for RFC 1918 private ranges (10/8, 172.16/12, 192.168/16) plus
    /// loopback and link-local — addresses that are only routable inside the
    /// local network.
    pub fn is_private(self) -> bool {
        let o = self.octets();
        o[0] == 10
            || (o[0] == 172 && (16..=31).contains(&o[1]))
            || (o[0] == 192 && o[1] == 168)
            || o[0] == 127
            || (o[0] == 169 && o[1] == 254)
    }

    /// A pseudo-domain name derived from the classful network, used when DNS
    /// resolution fails (ENV's "use IP address class" fallback).
    pub fn class_domain(self) -> String {
        let n = self.class_network().octets();
        match self.class() {
            IpClass::A => format!("net-{}", n[0]),
            IpClass::B => format!("net-{}.{}", n[0], n[1]),
            IpClass::C | IpClass::D | IpClass::E => format!("net-{}.{}.{}", n[0], n[1], n[2]),
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error from parsing an IPv4 dotted-quad string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError(pub String);

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.0)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ipv4 {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseIpError(s.to_string()))?;
            *slot = part.parse::<u8>().map_err(|_| ParseIpError(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseIpError(s.to_string()));
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let ip: Ipv4 = "140.77.13.229".parse().unwrap();
        assert_eq!(ip.octets(), [140, 77, 13, 229]);
        assert_eq!(ip.to_string(), "140.77.13.229");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Ipv4>().is_err());
        assert!("1.2.3".parse::<Ipv4>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4>().is_err());
        assert!("1.2.3.256".parse::<Ipv4>().is_err());
        assert!("a.b.c.d".parse::<Ipv4>().is_err());
    }

    #[test]
    fn classes() {
        assert_eq!(Ipv4::new(10, 0, 0, 1).class(), IpClass::A);
        assert_eq!(Ipv4::new(140, 77, 13, 1).class(), IpClass::B);
        assert_eq!(Ipv4::new(192, 168, 81, 50).class(), IpClass::C);
        assert_eq!(Ipv4::new(224, 0, 0, 1).class(), IpClass::D);
        assert_eq!(Ipv4::new(250, 0, 0, 1).class(), IpClass::E);
    }

    #[test]
    fn class_networks() {
        assert_eq!(Ipv4::new(10, 1, 2, 3).class_network(), Ipv4::new(10, 0, 0, 0));
        assert_eq!(Ipv4::new(140, 77, 13, 229).class_network(), Ipv4::new(140, 77, 0, 0));
        assert_eq!(Ipv4::new(192, 168, 81, 50).class_network(), Ipv4::new(192, 168, 81, 0));
    }

    #[test]
    fn privateness() {
        // The paper's popc.private domain uses 192.168.81.x; the structural
        // root is 192.168.254.1 — both non-routable.
        assert!(Ipv4::new(192, 168, 81, 50).is_private());
        assert!(Ipv4::new(192, 168, 254, 1).is_private());
        assert!(Ipv4::new(10, 20, 30, 40).is_private());
        assert!(Ipv4::new(172, 16, 0, 1).is_private());
        assert!(Ipv4::new(172, 31, 255, 255).is_private());
        assert!(!Ipv4::new(172, 32, 0, 1).is_private());
        assert!(!Ipv4::new(140, 77, 13, 1).is_private());
    }

    #[test]
    fn class_domain_fallback() {
        assert_eq!(Ipv4::new(140, 77, 13, 229).class_domain(), "net-140.77");
        assert_eq!(Ipv4::new(192, 168, 81, 50).class_domain(), "net-192.168.81");
        assert_eq!(Ipv4::new(10, 1, 2, 3).class_domain(), "net-10");
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Ipv4::new(1, 2, 3, 4);
        let b = Ipv4::new(1, 2, 3, 5);
        assert!(a < b);
    }
}
