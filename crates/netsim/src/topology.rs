//! Network topology: nodes (hosts, gateways, routers, switches, hubs),
//! interfaces, links and shared mediums, plus the [`TopologyBuilder`].
//!
//! The model distinguishes the two layer-2 technologies whose difference is
//! the *whole point* of the paper's ENV mapping phase:
//!
//! * a **hub** is a single half-duplex collision domain: every flow that
//!   traverses any of its ports consumes the one shared medium, so
//!   concurrent transfers interfere;
//! * a **switch** gives each attached device a full-duplex port link with
//!   its own capacity; concurrent transfers through disjoint ports do not
//!   interfere (the backplane is ideal).
//!
//! Routers are layer-3 devices: they appear in traceroutes (unless
//! configured to drop probes) and can be named or anonymous. Hosts may have
//! several interfaces (the paper's firewall gateways `popc0`, `myri0`,
//! `sci0` are dual-homed with a name on each side) and may be configured to
//! forward traffic, which makes them layer-3 hops like real gateways.

use std::collections::HashMap;
use std::fmt;

use crate::error::{NetError, NetResult};
use crate::firewall::Firewall;
use crate::ip::Ipv4;
use crate::name::Dns;
use crate::units::{Bandwidth, Latency};

/// Identifier of a node in a [`Topology`]. Indexes are dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

/// Identifier of a shared medium (one per hub).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MediumId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index — only meaningful for ids belonging to a
    /// [`Topology`]; exposed for downstream test fixtures.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl LinkId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index — only meaningful for ids belonging to a
    /// [`Topology`]; used by the dense route table, which stores routes as
    /// flat `u32` link ids.
    pub fn from_raw(raw: u32) -> Self {
        LinkId(raw)
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

impl MediumId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host (may forward if configured as a gateway).
    Host,
    /// A layer-3 router: traceroute-visible hop.
    Router,
    /// A layer-2 switch: invisible to traceroute, per-port capacity.
    Switch,
    /// A layer-2 hub: invisible to traceroute, one shared medium.
    Hub,
    /// A stand-in for "the rest of the Internet" — the well-known external
    /// traceroute destination used by ENV's structural phase.
    External,
}

/// A network interface: an address plus an optional DNS name.
#[derive(Debug, Clone)]
pub struct Iface {
    pub ip: Ipv4,
    /// Fully-qualified domain name registered in DNS, if the machine has
    /// one (the paper patches ENV for machines *without* hostnames).
    pub name: Option<String>,
}

/// A node of the topology.
#[derive(Debug, Clone)]
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    /// Human-readable label for debugging and figure rendering (for a host
    /// this is usually its short name; for an anonymous router its IP).
    pub label: String,
    pub ifaces: Vec<Iface>,
    /// Whether this node forwards traffic for third parties. Routers,
    /// switches and hubs always do; hosts only if they are gateways.
    pub forwards: bool,
    /// Whether this node answers traceroute probes with an ICMP
    /// time-exceeded. Some routers silently drop them (paper §4.3).
    pub responds_to_traceroute: bool,
}

impl Node {
    /// The node's primary address, if it has any interface.
    pub fn primary_ip(&self) -> Option<Ipv4> {
        self.ifaces.first().map(|i| i.ip)
    }

    /// True for layer-3 hops: routers, and hosts that forward (gateways).
    pub fn is_l3_hop(&self) -> bool {
        matches!(self.kind, NodeKind::Router)
            || (matches!(self.kind, NodeKind::Host) && self.forwards)
    }

    /// True for transparent layer-2 devices.
    pub fn is_l2(&self) -> bool {
        matches!(self.kind, NodeKind::Switch | NodeKind::Hub)
    }
}

/// How a link's capacity is provisioned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkMode {
    /// Independent capacity in each direction.
    FullDuplex { capacity_ab: Bandwidth, capacity_ba: Bandwidth },
    /// The link is a port on a hub: its capacity is the hub's shared
    /// medium, consumed once per flow regardless of direction.
    Shared { medium: MediumId },
}

/// A point-to-point attachment between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    pub id: LinkId,
    pub a: NodeId,
    pub b: NodeId,
    /// Index into `a`'s / `b`'s interface list used by this link; lets
    /// traceroute report per-interface router addresses.
    pub a_iface: usize,
    pub b_iface: usize,
    pub latency: Latency,
    pub mode: LinkMode,
    /// Routing weight in the a→b (resp. b→a) direction. Asymmetric weights
    /// produce the asymmetric routes of paper §4.3.
    pub weight_ab: f64,
    pub weight_ba: f64,
    /// Links can be administratively downed for failure injection.
    pub up: bool,
}

impl Link {
    /// The opposite endpoint of `n` on this link, if `n` is an endpoint.
    pub fn peer(&self, n: NodeId) -> Option<NodeId> {
        if self.a == n {
            Some(self.b)
        } else if self.b == n {
            Some(self.a)
        } else {
            None
        }
    }

    /// Directed routing weight from `from` across this link.
    pub fn weight_from(&self, from: NodeId) -> f64 {
        if self.a == from {
            self.weight_ab
        } else {
            self.weight_ba
        }
    }

    /// Capacity in the direction starting at `from`.
    pub fn capacity_from(&self, from: NodeId, mediums: &[Medium]) -> Bandwidth {
        match self.mode {
            LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                if self.a == from {
                    capacity_ab
                } else {
                    capacity_ba
                }
            }
            LinkMode::Shared { medium } => mediums[medium.index()].capacity,
        }
    }
}

/// A hub's half-duplex shared medium.
#[derive(Debug, Clone)]
pub struct Medium {
    pub id: MediumId,
    pub capacity: Bandwidth,
    pub label: String,
}

/// Dense id of an interned DNS-visible name (interface names and extra
/// aliases) within a [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The interned name table: every name a lookup can resolve — interface
/// FQDNs *and* extra DNS aliases — is interned once at build into a dense
/// [`NameId`], with the owning node in a flat array. Consumers that resolve
/// the same names repeatedly (the mapper's input resolution, plan
/// validation) can intern once and then work entirely on dense ids; one
/// hash lookup per *distinct* string instead of one per call.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    lookup: HashMap<String, NameId>,
    names: Vec<String>,
    owner: Vec<NodeId>,
}

impl NameTable {
    fn with_capacity(n: usize) -> Self {
        NameTable {
            lookup: HashMap::with_capacity(n),
            names: Vec::with_capacity(n),
            owner: Vec::with_capacity(n),
        }
    }

    /// Intern `name` as owned by `node`. First registration wins, so ties
    /// resolve to the lowest node id — the order the builder walks nodes.
    fn insert(&mut self, name: &str, node: NodeId) {
        if !self.lookup.contains_key(name) {
            let id = NameId(self.names.len() as u32);
            self.lookup.insert(name.to_string(), id);
            self.names.push(name.to_string());
            self.owner.push(node);
        }
    }

    /// The dense id of a name, if it is registered.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.lookup.get(name).copied()
    }

    /// The node owning an interned name.
    pub fn owner(&self, id: NameId) -> NodeId {
        self.owner[id.index()]
    }

    /// The interned string of a dense id.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// One-shot resolution (`get` + `owner`).
    pub fn resolve(&self, name: &str) -> Option<NodeId> {
        self.get(name).map(|id| self.owner(id))
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An immutable, validated network topology.
///
/// Hot-path storage is structure-of-arrays keyed by the dense ids:
/// adjacency is one flat CSR array, addresses live in one sorted flat
/// table, and names are interned into a [`NameTable`] — so a worker-shared
/// snapshot is three contiguous allocations plus the node/link vectors,
/// not a heap-fragmented map-of-maps.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    mediums: Vec<Medium>,
    /// CSR adjacency: node `n`'s (link, neighbour) pairs are
    /// `adj[adj_off[n] .. adj_off[n + 1]]`.
    adj_off: Vec<u32>,
    adj: Vec<(LinkId, NodeId)>,
    dns: Dns,
    firewall: Firewall,
    /// Interned DNS-visible names (interface names and extra aliases) →
    /// owning node, built at [`TopologyBuilder::build`]. The capacity-only
    /// mutators ([`Topology::link_mut`], [`Topology::medium_mut`],
    /// [`Topology::set_link_up`]) never touch names or addresses, and the
    /// structural mutators ([`Topology::add_host_like`],
    /// [`Topology::isolate_node`]) maintain the indexes themselves — so
    /// they never go stale.
    names: NameTable,
    /// Interface address → owning node, sorted by address for binary
    /// search (addresses are unique, enforced at build).
    ip_table: Vec<(Ipv4, NodeId)>,
}

impl Topology {
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn try_node(&self, id: NodeId) -> NetResult<&Node> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    pub fn medium(&self, id: MediumId) -> &Medium {
        &self.mediums[id.index()]
    }

    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    pub fn mediums(&self) -> impl Iterator<Item = &Medium> {
        self.mediums.iter()
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of hub mediums — the dense id space `MediumId` indexes, used
    /// by the allocator's resource interner to pre-size its tables.
    pub fn medium_count(&self) -> usize {
        self.mediums.len()
    }

    /// All end hosts (kind `Host`).
    pub fn hosts(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind == NodeKind::Host)
    }

    pub fn neighbours(&self, n: NodeId) -> &[(LinkId, NodeId)] {
        let i = n.index();
        &self.adj[self.adj_off[i] as usize..self.adj_off[i + 1] as usize]
    }

    pub fn dns(&self) -> &Dns {
        &self.dns
    }

    pub fn firewall(&self) -> &Firewall {
        &self.firewall
    }

    /// Find a node by label (exact match).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.label == label).map(|n| n.id)
    }

    /// Find the node owning an interface with the given DNS name — one
    /// interner lookup (ties, if a name were ever duplicated, resolve to
    /// the lowest node id, as the old linear scan did). Extra DNS aliases
    /// resolve here too, since build interns them alongside interface
    /// names.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.resolve(name)
    }

    /// The interned name table — callers that resolve many names (input
    /// resolution, validation) should intern once and keep [`NameId`]s.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Find the node owning an interface with the given address — binary
    /// search in the flat sorted address table (addresses are unique;
    /// duplicates are rejected at build).
    pub fn node_by_ip(&self, ip: Ipv4) -> Option<NodeId> {
        self.ip_table.binary_search_by_key(&ip, |&(i, _)| i).ok().map(|i| self.ip_table[i].1)
    }

    /// The interface of node `n` bound to link `l` (used by traceroute to
    /// report the address facing the previous hop).
    pub fn iface_on_link(&self, n: NodeId, l: LinkId) -> Option<&Iface> {
        let link = self.link(l);
        let idx = if link.a == n {
            link.a_iface
        } else if link.b == n {
            link.b_iface
        } else {
            return None;
        };
        self.node(n).ifaces.get(idx)
    }

    /// Whether the firewall permits traffic from `src` to `dst`.
    pub fn allows(&self, src: NodeId, dst: NodeId) -> bool {
        self.firewall.allows(src, dst)
    }

    /// Administratively bring a link up or down (failure injection). Routes
    /// must be recomputed afterwards.
    pub fn set_link_up(&mut self, l: LinkId, up: bool) {
        self.links[l.index()].up = up;
    }

    /// Mutable link access for failure injection (e.g. degrading a
    /// direction's capacity). Call `Engine::recompute_routes` afterwards so
    /// routing and the allocator's interned capacity tables pick up the
    /// change.
    pub fn link_mut(&mut self, l: LinkId) -> &mut Link {
        &mut self.links[l.index()]
    }

    /// Mutable medium access for failure injection (e.g. degrading a hub).
    /// Call `Engine::recompute_routes` afterwards, as for [`link_mut`](Self::link_mut).
    pub fn medium_mut(&mut self, m: MediumId) -> &mut Medium {
        &mut self.mediums[m.index()]
    }

    pub(crate) fn mediums_internal(&self) -> &[Medium] {
        &self.mediums
    }

    // ---- post-build mutation (topology churn) ----------------------------
    //
    // The churn subsystem grows and shrinks a *running* platform: hosts
    // join a LAN, leave it, or a LAN's medium is re-provisioned. Node and
    // link ids are dense and never recycled, so additions append and
    // removals are administrative (links go down, the node stays). All
    // indexes (DNS, name, address, adjacency) are maintained here, and
    // `Engine::recompute_routes` must run afterwards so routing and the
    // allocator's interned capacity tables pick the change up.

    /// Add a named host attached like `sibling`: the new host gets one
    /// interface and one access link cloning the latency and capacity mode
    /// (shared medium or per-port duplex) of `sibling`'s first live link,
    /// to the same hub/switch. This is how churn joins a host to an
    /// existing LAN without re-running the builder.
    pub fn add_host_like(&mut self, fqdn: &str, ip: Ipv4, sibling: NodeId) -> NetResult<NodeId> {
        if self.names.get(fqdn).is_some() {
            return Err(NetError::InvalidTopology(format!("name {fqdn} already in use")));
        }
        if self.node_by_ip(ip).is_some() {
            return Err(NetError::InvalidTopology(format!("address {ip} already in use")));
        }
        if sibling.index() >= self.nodes.len() {
            return Err(NetError::InvalidTopology(format!(
                "sibling {sibling} has no live link to clone"
            )));
        }
        let &(sib_link, infra) = self
            .neighbours(sibling)
            .iter()
            .find(|(l, _)| self.links[l.index()].up)
            .ok_or_else(|| {
                NetError::InvalidTopology(format!("sibling {sibling} has no live link to clone"))
            })?;
        let template = &self.links[sib_link.index()];
        // Orient the cloned duplex capacities host→infra like the sibling's.
        let mode = match template.mode {
            LinkMode::Shared { medium } => LinkMode::Shared { medium },
            LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                if template.a == sibling {
                    LinkMode::FullDuplex { capacity_ab, capacity_ba }
                } else {
                    LinkMode::FullDuplex { capacity_ab: capacity_ba, capacity_ba: capacity_ab }
                }
            }
        };
        let latency = template.latency;

        let id = NodeId(self.nodes.len() as u32);
        let short = fqdn.split('.').next().unwrap_or(fqdn).to_string();
        self.nodes.push(Node {
            id,
            kind: NodeKind::Host,
            label: short,
            ifaces: vec![Iface { ip, name: Some(fqdn.to_string()) }],
            forwards: false,
            responds_to_traceroute: true,
        });
        let lid = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id: lid,
            a: id,
            b: infra,
            a_iface: 0,
            b_iface: 0,
            latency,
            mode,
            weight_ab: 1.0,
            weight_ba: 1.0,
            up: true,
        });
        // Splice the new entries into the flat CSR arrays: the new host's
        // single entry appends at the end; the infra side's entry is
        // inserted at the end of its existing range, shifting later ranges.
        // O(E) per growth — churn joins are rare next to route queries.
        let infra_end = self.adj_off[infra.index() + 1] as usize;
        self.adj.insert(infra_end, (lid, id));
        for off in &mut self.adj_off[infra.index() + 1..] {
            *off += 1;
        }
        self.adj_off.push(self.adj.len() as u32 + 1);
        self.adj.push((lid, infra));
        self.dns.register(fqdn, ip);
        self.names.insert(fqdn, id);
        let pos = self.ip_table.binary_search_by_key(&ip, |&(i, _)| i).unwrap_err();
        self.ip_table.insert(pos, (ip, id));
        Ok(id)
    }

    /// Administratively down every link attached to `n` — how churn models
    /// a host leaving the platform (or a partitioned LAN member). The node
    /// and its DNS entries remain: lookups still resolve, but nothing
    /// routes to it after `Engine::recompute_routes`.
    pub fn isolate_node(&mut self, n: NodeId) {
        let links: Vec<LinkId> = self.neighbours(n).iter().map(|(l, _)| *l).collect();
        for l in links {
            self.links[l.index()].up = false;
        }
    }
}

/// Defaults recorded for an infrastructure node so `attach` can create
/// port links without repeating parameters.
#[derive(Debug, Clone, Copy)]
struct InfraSpec {
    capacity: Bandwidth,
    latency: Latency,
    medium: Option<MediumId>,
}

/// Incremental constructor for [`Topology`].
///
/// ```
/// use netsim::prelude::*;
///
/// let mut b = TopologyBuilder::new();
/// let sw = b.switch("sw", Bandwidth::mbps(100.0), Latency::micros(20.0));
/// let h1 = b.host("h1.example.net", "10.0.0.1");
/// let h2 = b.host("h2.example.net", "10.0.0.2");
/// b.attach(h1, sw);
/// b.attach(h2, sw);
/// let topo = b.build().unwrap();
/// assert_eq!(topo.hosts().count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    mediums: Vec<Medium>,
    infra: HashMap<NodeId, InfraSpec>,
    firewall: Firewall,
    extra_aliases: Vec<(String, String)>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let mut node = node;
        node.id = id;
        self.nodes.push(node);
        id
    }

    /// A named host with a single interface. Panics on malformed `ip`
    /// (builder inputs are programmer-provided constants).
    pub fn host(&mut self, fqdn: &str, ip: &str) -> NodeId {
        let ip: Ipv4 = ip.parse().unwrap_or_else(|e| panic!("{e}"));
        let short = fqdn.split('.').next().unwrap_or(fqdn).to_string();
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Host,
            label: short,
            ifaces: vec![Iface { ip, name: Some(fqdn.to_string()) }],
            forwards: false,
            responds_to_traceroute: true,
        })
    }

    /// A host with an address but no DNS name (paper §4.3, "Machines
    /// without hostname").
    pub fn host_unnamed(&mut self, ip: &str) -> NodeId {
        let ip: Ipv4 = ip.parse().unwrap_or_else(|e| panic!("{e}"));
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Host,
            label: ip.to_string(),
            ifaces: vec![Iface { ip, name: None }],
            forwards: false,
            responds_to_traceroute: true,
        })
    }

    /// A multi-homed host: one interface per `(fqdn, ip)` pair. Used for
    /// the paper's firewall gateways which carry a name on each side.
    pub fn host_multi(&mut self, label: &str, ifaces: &[(&str, &str)]) -> NodeId {
        let ifaces = ifaces
            .iter()
            .map(|(name, ip)| Iface {
                ip: ip.parse().unwrap_or_else(|e| panic!("{e}")),
                name: Some((*name).to_string()),
            })
            .collect();
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Host,
            label: label.to_string(),
            ifaces,
            forwards: false,
            responds_to_traceroute: true,
        })
    }

    /// A named router.
    pub fn router(&mut self, fqdn: &str, ip: &str) -> NodeId {
        let ip: Ipv4 = ip.parse().unwrap_or_else(|e| panic!("{e}"));
        let short = fqdn.split('.').next().unwrap_or(fqdn).to_string();
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Router,
            label: short,
            ifaces: vec![Iface { ip, name: Some(fqdn.to_string()) }],
            forwards: true,
            responds_to_traceroute: true,
        })
    }

    /// A router whose address does not reverse-resolve (traceroute shows
    /// the bare IP, as for 192.168.254.1 in the paper's Figure 2).
    pub fn router_unnamed(&mut self, ip: &str) -> NodeId {
        let ip: Ipv4 = ip.parse().unwrap_or_else(|e| panic!("{e}"));
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Router,
            label: ip.to_string(),
            ifaces: vec![Iface { ip, name: None }],
            forwards: true,
            responds_to_traceroute: true,
        })
    }

    /// Mark a router (or gateway host) as silently dropping traceroute
    /// probes (paper §4.3 "Dropped traceroute").
    pub fn set_traceroute_silent(&mut self, n: NodeId) {
        self.nodes[n.index()].responds_to_traceroute = false;
    }

    /// Make a host forward traffic (a gateway). Gateways are layer-3 hops.
    pub fn set_forwards(&mut self, n: NodeId, forwards: bool) {
        self.nodes[n.index()].forwards = forwards;
    }

    /// A layer-2 switch whose ports default to the given capacity/latency.
    pub fn switch(
        &mut self,
        label: &str,
        port_capacity: Bandwidth,
        port_latency: Latency,
    ) -> NodeId {
        let id = self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Switch,
            label: label.to_string(),
            ifaces: vec![],
            forwards: true,
            responds_to_traceroute: false,
        });
        self.infra
            .insert(id, InfraSpec { capacity: port_capacity, latency: port_latency, medium: None });
        id
    }

    /// A layer-2 hub: one shared half-duplex medium of the given capacity.
    pub fn hub(&mut self, label: &str, capacity: Bandwidth, port_latency: Latency) -> NodeId {
        let medium = MediumId(self.mediums.len() as u32);
        self.mediums.push(Medium { id: medium, capacity, label: label.to_string() });
        let id = self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::Hub,
            label: label.to_string(),
            ifaces: vec![],
            forwards: true,
            responds_to_traceroute: false,
        });
        self.infra.insert(id, InfraSpec { capacity, latency: port_latency, medium: Some(medium) });
        id
    }

    /// The external traceroute destination ("the Internet").
    pub fn external(&mut self, fqdn: &str, ip: &str) -> NodeId {
        let ip: Ipv4 = ip.parse().unwrap_or_else(|e| panic!("{e}"));
        self.push_node(Node {
            id: NodeId(0),
            kind: NodeKind::External,
            label: fqdn.to_string(),
            ifaces: vec![Iface { ip, name: Some(fqdn.to_string()) }],
            forwards: false,
            responds_to_traceroute: true,
        })
    }

    /// Attach `node` (via its interface 0) to a hub or switch.
    pub fn attach(&mut self, node: NodeId, infra: NodeId) -> LinkId {
        self.attach_iface(node, 0, infra)
    }

    /// Attach `node` via a specific interface index to a hub or switch.
    pub fn attach_iface(&mut self, node: NodeId, iface: usize, infra: NodeId) -> LinkId {
        let spec = *self
            .infra
            .get(&infra)
            .unwrap_or_else(|| panic!("attach target {infra} is not a hub or switch"));
        let mode = match spec.medium {
            Some(m) => LinkMode::Shared { medium: m },
            None => LinkMode::FullDuplex { capacity_ab: spec.capacity, capacity_ba: spec.capacity },
        };
        self.push_link(node, iface, infra, 0, spec.latency, mode, 1.0, 1.0)
    }

    /// Attach with an overridden port capacity (e.g. a slower uplink port).
    pub fn attach_with_capacity(
        &mut self,
        node: NodeId,
        infra: NodeId,
        capacity: Bandwidth,
    ) -> LinkId {
        let spec = *self
            .infra
            .get(&infra)
            .unwrap_or_else(|| panic!("attach target {infra} is not a hub or switch"));
        let mode = match spec.medium {
            // Hub ports always share the medium; a per-port capacity on a
            // hub is not physically meaningful, so it is ignored.
            Some(m) => LinkMode::Shared { medium: m },
            None => LinkMode::FullDuplex { capacity_ab: capacity, capacity_ba: capacity },
        };
        self.push_link(node, 0, infra, 0, spec.latency, mode, 1.0, 1.0)
    }

    /// A symmetric point-to-point full-duplex link.
    pub fn link(&mut self, a: NodeId, b: NodeId, capacity: Bandwidth, latency: Latency) -> LinkId {
        self.push_link(
            a,
            0,
            b,
            0,
            latency,
            LinkMode::FullDuplex { capacity_ab: capacity, capacity_ba: capacity },
            1.0,
            1.0,
        )
    }

    /// A point-to-point link with distinct capacities per direction.
    pub fn link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_ab: Bandwidth,
        capacity_ba: Bandwidth,
        latency: Latency,
    ) -> LinkId {
        self.push_link(
            a,
            0,
            b,
            0,
            latency,
            LinkMode::FullDuplex { capacity_ab, capacity_ba },
            1.0,
            1.0,
        )
    }

    /// A link specifying the interface index used on each endpoint.
    pub fn link_ifaces(
        &mut self,
        a: NodeId,
        a_iface: usize,
        b: NodeId,
        b_iface: usize,
        capacity: Bandwidth,
        latency: Latency,
    ) -> LinkId {
        self.push_link(
            a,
            a_iface,
            b,
            b_iface,
            latency,
            LinkMode::FullDuplex { capacity_ab: capacity, capacity_ba: capacity },
            1.0,
            1.0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn push_link(
        &mut self,
        a: NodeId,
        a_iface: usize,
        b: NodeId,
        b_iface: usize,
        latency: Latency,
        mode: LinkMode,
        weight_ab: f64,
        weight_ba: f64,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a,
            b,
            a_iface,
            b_iface,
            latency,
            mode,
            weight_ab,
            weight_ba,
            up: true,
        });
        id
    }

    /// Override a link's directed routing weights. A large weight in one
    /// direction steers routes away, producing asymmetric routing.
    pub fn set_weights(&mut self, link: LinkId, weight_ab: f64, weight_ba: f64) {
        let l = &mut self.links[link.index()];
        l.weight_ab = weight_ab;
        l.weight_ba = weight_ba;
    }

    /// Forbid all traffic between the two host sets, in both directions
    /// (the paper's firewalled `popc.private` domain). Gateways simply are
    /// not listed.
    pub fn firewall_deny_between(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.firewall.deny_between(a, b);
    }

    /// Register an additional DNS alias (`alias` resolves like `canonical`).
    pub fn dns_alias(&mut self, alias: &str, canonical: &str) {
        self.extra_aliases.push((alias.to_string(), canonical.to_string()));
    }

    /// Validate and freeze the topology.
    pub fn build(self) -> NetResult<Topology> {
        let TopologyBuilder { nodes, links, mediums, infra: _, firewall, extra_aliases } = self;

        for l in &links {
            for (n, iface) in [(l.a, l.a_iface), (l.b, l.b_iface)] {
                let node = nodes
                    .get(n.index())
                    .ok_or(NetError::InvalidTopology(format!("link {l:?} references {n}")))?;
                if !node.ifaces.is_empty() && iface >= node.ifaces.len() {
                    return Err(NetError::InvalidTopology(format!(
                        "link {:?} uses interface {iface} of {} which has only {}",
                        l.id,
                        node.label,
                        node.ifaces.len()
                    )));
                }
            }
            if l.a == l.b {
                return Err(NetError::InvalidTopology(format!("self-link on {}", l.a)));
            }
        }

        // The flat sorted address table doubles as the duplicate-address
        // check (duplicates are a construction bug): collect every
        // interface once, sort, and scan adjacent entries. Pre-sized from
        // the interface count — at 50k hosts the old grow-by-rehash maps
        // spent more time rehashing than inserting.
        let iface_count: usize = nodes.iter().map(|n| n.ifaces.len()).sum();
        let mut ip_table: Vec<(Ipv4, NodeId)> = Vec::with_capacity(iface_count);
        for n in &nodes {
            for i in &n.ifaces {
                ip_table.push((i.ip, n.id));
            }
        }
        ip_table.sort_unstable_by_key(|&(ip, _)| ip);
        for w in ip_table.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(NetError::InvalidTopology(format!(
                    "address {} assigned to both {} and {}",
                    w[0].0,
                    nodes[w[0].1.index()].label,
                    nodes[w[1].1.index()].label
                )));
            }
        }

        // CSR adjacency: count-then-fill into one flat array.
        let mut adj_off = vec![0u32; nodes.len() + 1];
        for l in &links {
            adj_off[l.a.index() + 1] += 1;
            adj_off[l.b.index() + 1] += 1;
        }
        for i in 1..adj_off.len() {
            adj_off[i] += adj_off[i - 1];
        }
        let mut adj = vec![(LinkId(0), NodeId(0)); 2 * links.len()];
        let mut cursor = adj_off.clone();
        for l in &links {
            adj[cursor[l.a.index()] as usize] = (l.id, l.b);
            cursor[l.a.index()] += 1;
            adj[cursor[l.b.index()] as usize] = (l.id, l.a);
            cursor[l.b.index()] += 1;
        }

        let mut dns = Dns::new();
        for n in &nodes {
            let names: Vec<&str> = n.ifaces.iter().filter_map(|i| i.name.as_deref()).collect();
            for i in &n.ifaces {
                if let Some(name) = &i.name {
                    dns.register(name, i.ip);
                    // All names of one machine are aliases of each other —
                    // the information the firewall merge needs (§4.3).
                    for other in &names {
                        if *other != name.as_str() {
                            dns.add_alias(name, other);
                        }
                    }
                }
            }
        }
        for (alias, canonical) in &extra_aliases {
            let ip =
                dns.lookup(canonical).ok_or_else(|| NetError::NameNotFound(canonical.clone()))?;
            dns.register(alias, ip);
            dns.add_alias(canonical, alias);
            dns.add_alias(alias, canonical);
        }

        // The interned name table: `node_by_name` used to scan every node
        // × interface per call, which made every consumer that resolves
        // host names per pair (plan validation, the structural phase)
        // quadratic for no reason. Interface names are interned first
        // (lowest node id wins), then extra aliases resolve through DNS to
        // their owning node so alias lookups hit the same table.
        let mut names = NameTable::with_capacity(iface_count + extra_aliases.len());
        for n in &nodes {
            for i in &n.ifaces {
                if let Some(name) = &i.name {
                    names.insert(name, n.id);
                }
            }
        }
        for (alias, _) in &extra_aliases {
            let ip = dns.lookup(alias).expect("alias registered above");
            let pos = ip_table
                .binary_search_by_key(&ip, |&(i, _)| i)
                .expect("alias canonical resolves to a built interface");
            names.insert(alias, ip_table[pos].1);
        }

        Ok(Topology { nodes, links, mediums, adj_off, adj, dns, firewall, names, ip_table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::mbps(x)
    }

    #[test]
    fn build_hub_topology() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub0", mbps(100.0), Latency::micros(50.0));
        let h1 = b.host("a.example.net", "10.0.0.1");
        let h2 = b.host("b.example.net", "10.0.0.2");
        let l1 = b.attach(h1, hub);
        b.attach(h2, hub);
        let t = b.build().unwrap();

        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.mediums().count(), 1);
        match t.link(l1).mode {
            LinkMode::Shared { medium } => {
                assert!((t.medium(medium).capacity.as_mbps() - 100.0).abs() < 1e-9)
            }
            _ => panic!("hub port should be shared"),
        }
        assert_eq!(t.neighbours(hub).len(), 2);
        assert_eq!(t.node_by_name("a.example.net"), Some(h1));
        assert_eq!(t.node_by_label("a"), Some(h1));
    }

    #[test]
    fn build_switch_topology() {
        let mut b = TopologyBuilder::new();
        let sw = b.switch("sw0", mbps(100.0), Latency::micros(20.0));
        let h1 = b.host("a.example.net", "10.0.0.1");
        let l = b.attach(h1, sw);
        let t = b.build().unwrap();
        match t.link(l).mode {
            LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                assert!((capacity_ab.as_mbps() - 100.0).abs() < 1e-9);
                assert!((capacity_ba.as_mbps() - 100.0).abs() < 1e-9);
            }
            _ => panic!("switch port should be full duplex"),
        }
        assert_eq!(t.mediums().count(), 0);
    }

    #[test]
    fn multi_homed_gateway_names_are_aliases() {
        let mut b = TopologyBuilder::new();
        let gw = b.host_multi(
            "popc0",
            &[("popc.ens-lyon.fr", "140.77.12.52"), ("popc0.popc.private", "192.168.81.51")],
        );
        b.set_forwards(gw, true);
        let t = b.build().unwrap();
        assert_eq!(t.node_by_name("popc.ens-lyon.fr"), Some(gw));
        assert_eq!(t.node_by_name("popc0.popc.private"), Some(gw));
        assert!(t.node(gw).is_l3_hop());
        let aliases = t.dns().aliases_of("popc.ens-lyon.fr");
        assert!(aliases.contains(&"popc0.popc.private".to_string()));
    }

    #[test]
    fn name_and_ip_indexes_resolve_every_interface() {
        let mut b = TopologyBuilder::new();
        let gw = b.host_multi("gw", &[("gw.out.x", "10.0.0.1"), ("gw.in.x", "192.168.0.1")]);
        let h = b.host("h.x", "10.0.0.2");
        let t = b.build().unwrap();
        assert_eq!(t.node_by_name("gw.out.x"), Some(gw));
        assert_eq!(t.node_by_name("gw.in.x"), Some(gw));
        assert_eq!(t.node_by_name("h.x"), Some(h));
        assert_eq!(t.node_by_name("missing.x"), None);
        assert_eq!(t.node_by_ip("192.168.0.1".parse().unwrap()), Some(gw));
        assert_eq!(t.node_by_ip("10.0.0.2".parse().unwrap()), Some(h));
        assert_eq!(t.node_by_ip("10.9.9.9".parse().unwrap()), None);
    }

    #[test]
    fn duplicate_ip_rejected() {
        let mut b = TopologyBuilder::new();
        b.host("a.x", "10.0.0.1");
        b.host("b.x", "10.0.0.1");
        assert!(matches!(b.build(), Err(NetError::InvalidTopology(_))));
    }

    #[test]
    fn bad_iface_index_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.link_ifaces(a, 3, c, 0, mbps(10.0), Latency::ZERO);
        assert!(matches!(b.build(), Err(NetError::InvalidTopology(_))));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        b.link(a, a, mbps(10.0), Latency::ZERO);
        assert!(matches!(b.build(), Err(NetError::InvalidTopology(_))));
    }

    #[test]
    fn unnamed_host_uses_ip_label() {
        let mut b = TopologyBuilder::new();
        let h = b.host_unnamed("192.168.81.60");
        let t = b.build().unwrap();
        assert_eq!(t.node(h).label, "192.168.81.60");
        assert!(t.node(h).ifaces[0].name.is_none());
    }

    #[test]
    fn extra_alias_resolves() {
        let mut b = TopologyBuilder::new();
        b.host("a.example.net", "10.0.0.1");
        b.dns_alias("alias.example.net", "a.example.net");
        let t = b.build().unwrap();
        assert_eq!(t.dns().lookup("alias.example.net"), Some("10.0.0.1".parse().unwrap()));
    }

    #[test]
    fn alias_to_unknown_name_fails_build() {
        let mut b = TopologyBuilder::new();
        b.host("a.example.net", "10.0.0.1");
        b.dns_alias("x", "missing.example.net");
        assert!(matches!(b.build(), Err(NetError::NameNotFound(_))));
    }

    #[test]
    fn link_peer_and_weights() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        let l = b.link(a, c, mbps(10.0), Latency::ZERO);
        b.set_weights(l, 1.0, 100.0);
        let t = b.build().unwrap();
        let link = t.link(l);
        assert_eq!(link.peer(a), Some(c));
        assert_eq!(link.peer(c), Some(a));
        assert!((link.weight_from(a) - 1.0).abs() < 1e-12);
        assert!((link.weight_from(c) - 100.0).abs() < 1e-12);
    }
}
