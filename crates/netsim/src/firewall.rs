//! Firewall rules: which host pairs may communicate.
//!
//! The paper's ENS-Lyon platform contains the firewalled `popc.private`
//! domain: its inner hosts "cannot communicate with the outside world, but
//! they are connected to sci0, popc0 and myri0, which can act as gateways"
//! (§4.3). We model that with ordered allow/deny rules over node sets;
//! first matching rule wins, default is allow.

use std::collections::BTreeSet;

use crate::topology::NodeId;

/// A set of hosts a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostSet {
    All,
    Listed(BTreeSet<NodeId>),
}

impl HostSet {
    pub fn from_slice(nodes: &[NodeId]) -> Self {
        HostSet::Listed(nodes.iter().copied().collect())
    }

    pub fn contains(&self, n: NodeId) -> bool {
        match self {
            HostSet::All => true,
            HostSet::Listed(s) => s.contains(&n),
        }
    }
}

/// One firewall rule. `allow == false` blocks matching traffic.
#[derive(Debug, Clone)]
pub struct Rule {
    pub src: HostSet,
    pub dst: HostSet,
    pub allow: bool,
}

/// An ordered rule list; first match wins, default allow.
#[derive(Debug, Clone, Default)]
pub struct Firewall {
    rules: Vec<Rule>,
}

impl Firewall {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Block all traffic between the two sets, in both directions.
    pub fn deny_between(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.rules.push(Rule {
            src: HostSet::from_slice(a),
            dst: HostSet::from_slice(b),
            allow: false,
        });
        self.rules.push(Rule {
            src: HostSet::from_slice(b),
            dst: HostSet::from_slice(a),
            allow: false,
        });
    }

    /// Allow traffic between the two sets in both directions (useful as a
    /// higher-priority exception appended *before* a deny).
    pub fn allow_between(&mut self, a: &[NodeId], b: &[NodeId]) {
        self.rules.push(Rule {
            src: HostSet::from_slice(a),
            dst: HostSet::from_slice(b),
            allow: true,
        });
        self.rules.push(Rule {
            src: HostSet::from_slice(b),
            dst: HostSet::from_slice(a),
            allow: true,
        });
    }

    /// Whether `src` may send traffic to `dst`.
    pub fn allows(&self, src: NodeId, dst: NodeId) -> bool {
        for rule in &self.rules {
            if rule.src.contains(src) && rule.dst.contains(dst) {
                return rule.allow;
            }
        }
        true
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn default_allows_everything() {
        let fw = Firewall::new();
        assert!(fw.allows(n(0), n(1)));
    }

    #[test]
    fn deny_between_is_bidirectional() {
        let mut fw = Firewall::new();
        fw.deny_between(&[n(1), n(2)], &[n(5)]);
        assert!(!fw.allows(n(1), n(5)));
        assert!(!fw.allows(n(5), n(2)));
        assert!(fw.allows(n(1), n(2)));
        assert!(fw.allows(n(5), n(6)));
    }

    #[test]
    fn first_match_wins() {
        let mut fw = Firewall::new();
        // Exception first: gateway n(3) may cross.
        fw.allow_between(&[n(3)], &[n(5)]);
        fw.deny_between(&[n(1), n(2), n(3)], &[n(5)]);
        assert!(fw.allows(n(3), n(5)));
        assert!(fw.allows(n(5), n(3)));
        assert!(!fw.allows(n(1), n(5)));
    }

    #[test]
    fn all_matches_everything() {
        let mut fw = Firewall::new();
        fw.add_rule(Rule { src: HostSet::All, dst: HostSet::from_slice(&[n(9)]), allow: false });
        assert!(!fw.allows(n(42), n(9)));
        assert!(fw.allows(n(9), n(42)));
        assert_eq!(fw.rule_count(), 1);
    }

    #[test]
    fn paper_gateway_pattern() {
        // Inner private hosts 10..13, gateways 20..22, public hosts 30..32.
        let inner: Vec<NodeId> = (10..14).map(n).collect();
        let public: Vec<NodeId> = (30..33).map(n).collect();
        let mut fw = Firewall::new();
        fw.deny_between(&inner, &public);
        // Inner can talk to gateways (not listed in any rule).
        assert!(fw.allows(n(10), n(20)));
        assert!(fw.allows(n(20), n(10)));
        // Inner cannot cross to public.
        assert!(!fw.allows(n(10), n(30)));
        assert!(!fw.allows(n(31), n(12)));
        // Gateways reach the public side.
        assert!(fw.allows(n(21), n(31)));
    }
}
