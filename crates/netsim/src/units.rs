//! Physical units used throughout the simulator: bandwidth, data size,
//! one-way latency.
//!
//! All units are newtypes over `f64`/`u64` with explicit constructors so that
//! call-sites read like the paper ("64 Kb messages", "100 Mbps hub") and unit
//! mix-ups are compile errors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Network bandwidth (capacity or measured throughput).
///
/// Stored internally in **bytes per second**. Constructors use the
/// networking convention: 1 Mbps = 10^6 bits/s = 125 000 bytes/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Bandwidth from bytes per second.
    pub fn bytes_per_sec(b: f64) -> Self {
        debug_assert!(b.is_finite() && b >= 0.0, "bandwidth must be finite and >= 0");
        Bandwidth(b)
    }

    /// Bandwidth from bits per second.
    pub fn bps(bits: f64) -> Self {
        Self::bytes_per_sec(bits / 8.0)
    }

    /// Bandwidth from kilobits per second (10^3 bits/s).
    pub fn kbps(kbits: f64) -> Self {
        Self::bps(kbits * 1e3)
    }

    /// Bandwidth from megabits per second (10^6 bits/s).
    pub fn mbps(mbits: f64) -> Self {
        Self::bps(mbits * 1e6)
    }

    /// Bandwidth from gigabits per second (10^9 bits/s).
    pub fn gbps(gbits: f64) -> Self {
        Self::bps(gbits * 1e9)
    }

    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    pub fn as_bps(self) -> f64 {
        self.0 * 8.0
    }

    pub fn as_mbps(self) -> f64 {
        self.as_bps() / 1e6
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scale the bandwidth by a dimensionless factor (e.g. an efficiency).
    pub fn scaled(self, factor: f64) -> Self {
        Self::bytes_per_sec(self.0 * factor)
    }

    /// Ratio of two bandwidths (dimensionless). Returns `f64::INFINITY` when
    /// dividing by zero bandwidth.
    pub fn ratio(self, other: Bandwidth) -> f64 {
        if other.0 == 0.0 {
            f64::INFINITY
        } else {
            self.0 / other.0
        }
    }

    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    pub fn max(self, other: Bandwidth) -> Bandwidth {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mbps = self.as_mbps();
        if mbps >= 1000.0 {
            write!(f, "{:.2} Gbps", mbps / 1000.0)
        } else if mbps >= 1.0 {
            write!(f, "{mbps:.2} Mbps")
        } else {
            write!(f, "{:.1} Kbps", mbps * 1000.0)
        }
    }
}

/// A data size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Kibibytes (1024 bytes) — NWS's "64 Kb" throughput probe is 64 KiB.
    pub const fn kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    pub const fn mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    pub fn as_u64(self) -> u64 {
        self.0
    }

    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1} MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.1} KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// One-way link latency. Stored in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Latency(f64);

impl Latency {
    pub const ZERO: Latency = Latency(0.0);

    pub fn secs(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "latency must be finite and >= 0");
        Latency(s)
    }

    pub fn millis(ms: f64) -> Self {
        Self::secs(ms / 1e3)
    }

    pub fn micros(us: f64) -> Self {
        Self::secs(us / 1e6)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Sum for Latency {
    fn sum<I: Iterator<Item = Latency>>(iter: I) -> Latency {
        iter.fold(Latency::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.as_millis();
        if ms >= 1.0 {
            write!(f, "{ms:.2} ms")
        } else {
            write!(f, "{:.1} us", ms * 1000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions_round_trip() {
        let b = Bandwidth::mbps(100.0);
        assert!((b.as_mbps() - 100.0).abs() < 1e-9);
        assert!((b.as_bytes_per_sec() - 12_500_000.0).abs() < 1e-6);
        assert!((Bandwidth::gbps(1.0).as_mbps() - 1000.0).abs() < 1e-9);
        assert!((Bandwidth::kbps(500.0).as_mbps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_ratio_and_ordering() {
        let a = Bandwidth::mbps(100.0);
        let b = Bandwidth::mbps(10.0);
        assert!((a.ratio(b) - 10.0).abs() < 1e-9);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.ratio(Bandwidth::ZERO), f64::INFINITY);
    }

    #[test]
    fn bandwidth_arithmetic_saturates_at_zero() {
        let a = Bandwidth::mbps(10.0);
        let b = Bandwidth::mbps(100.0);
        assert_eq!(a - b, Bandwidth::ZERO);
        assert!(((a + b).as_mbps() - 110.0).abs() < 1e-9);
        assert!(((a * 2.0).as_mbps() - 20.0).abs() < 1e-9);
        assert!(((b / 4.0).as_mbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::kib(64).as_u64(), 65_536);
        assert_eq!(Bytes::mib(2).as_u64(), 2 * 1024 * 1024);
        assert_eq!(Bytes::new(4).as_u64(), 4);
    }

    #[test]
    fn latency_sum_and_display() {
        let l = Latency::millis(1.5) + Latency::micros(500.0);
        assert!((l.as_millis() - 2.0).abs() < 1e-9);
        let total: Latency = vec![Latency::millis(1.0); 3].into_iter().sum();
        assert!((total.as_millis() - 3.0).abs() < 1e-9);
        assert_eq!(format!("{}", Latency::millis(2.5)), "2.50 ms");
        assert_eq!(format!("{}", Latency::micros(100.0)), "100.0 us");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::mbps(100.0)), "100.00 Mbps");
        assert_eq!(format!("{}", Bandwidth::gbps(2.0)), "2.00 Gbps");
        assert_eq!(format!("{}", Bandwidth::kbps(512.0)), "512.0 Kbps");
        assert_eq!(format!("{}", Bytes::kib(64)), "64.0 KiB");
        assert_eq!(format!("{}", Bytes::new(100)), "100 B");
    }

    #[test]
    fn bandwidth_sum() {
        let s: Bandwidth = [Bandwidth::mbps(1.0), Bandwidth::mbps(2.0)].into_iter().sum();
        assert!((s.as_mbps() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_efficiency() {
        let b = Bandwidth::mbps(100.0).scaled(0.3265);
        assert!((b.as_mbps() - 32.65).abs() < 1e-9);
    }
}
