//! Seeded synthetic scenario families for pipeline-scale experiments.
//!
//! The paper validates ENV on a single hand-built campus LAN
//! ([`crate::scenarios::ens_lyon`]). The generators here produce *families*
//! of platforms at arbitrary host counts, each with **ground-truth cluster
//! labels**, so mapper output can be scored automatically instead of being
//! checked against one hand-written figure:
//!
//! * [`synth_campus`] — star-of-stars campus LANs (ENS-Lyon-like): hub or
//!   switch leaf LANs behind per-LAN routers on a backbone;
//! * [`synth_fat_tree`] — a pod/edge fat-tree cluster with over-provisioned
//!   uplinks;
//! * [`synth_grid`] — a multi-site grid whose private subnets sit behind
//!   dual-homed gateway hosts, optionally firewalled like the paper's
//!   `popc.private` domain;
//! * [`synth_wan`] — an asymmetric WAN backbone chain with per-direction
//!   link capacities, sites hanging off each backbone hop.
//!
//! ## Effective versus physical truth
//!
//! The labels emitted are the **effective** clusters a correct
//! master-dependent ENV run should report, which is not always the physical
//! layer-2 partition. In the fat-tree, for example, hosts of one pod sit on
//! several edge switches, but every master→host probe bottlenecks on the
//! master's own port, so ENV's pairwise test correctly finds all pod
//! members mutually dependent: the effective truth is *one cluster per
//! pod*. This mirrors the paper's own observation that the view is relative
//! to the master (§4.2.2) — the scoring target is "what a correct mapper
//! sees", not "what the wiring diagram says".
//!
//! All generators are deterministic for a given seed and hit the requested
//! host count exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::scenarios::GeneratedNet;
use crate::topology::{NodeId, TopologyBuilder};
use crate::units::{Bandwidth, Latency};

/// The scenario families the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthFamily {
    /// Star-of-stars campus: leaf LANs behind per-LAN routers.
    Campus,
    /// Pod/edge fat-tree cluster.
    FatTree,
    /// Multi-site grid with private subnets behind gateway hosts.
    Grid,
    /// Asymmetric WAN backbone chain.
    WanBackbone,
}

impl SynthFamily {
    pub const ALL: [SynthFamily; 4] =
        [SynthFamily::Campus, SynthFamily::FatTree, SynthFamily::Grid, SynthFamily::WanBackbone];

    pub fn name(self) -> &'static str {
        match self {
            SynthFamily::Campus => "campus",
            SynthFamily::FatTree => "fat_tree",
            SynthFamily::Grid => "grid_firewalled",
            SynthFamily::WanBackbone => "wan_backbone",
        }
    }
}

/// One ground-truth effective cluster.
#[derive(Debug, Clone)]
pub struct TruthCluster {
    /// Member hosts (mapped hosts only; may include the designated master,
    /// which scorers exclude).
    pub members: Vec<NodeId>,
    /// Whether the physical medium is a shared hub (vs switched / routed).
    pub is_hub: bool,
    /// Nominal medium rate.
    pub rate: Bandwidth,
}

/// Ground-truth labels for a generated scenario.
#[derive(Debug, Clone, Default)]
pub struct SynthTruth {
    pub clusters: Vec<TruthCluster>,
}

/// A generated scenario: the platform plus its scoring labels.
pub struct SynthScenario {
    pub family: SynthFamily,
    pub net: GeneratedNet,
    pub truth: SynthTruth,
}

impl SynthScenario {
    /// The DNS name of a mapped host (every synth host has one).
    pub fn host_name(&self, n: NodeId) -> String {
        self.net.topo.node(n).ifaces[0].name.clone().expect("synth hosts are named")
    }

    /// Names of the hosts an ENV run maps, master first.
    pub fn input_names(&self) -> Vec<String> {
        self.net.hosts.iter().map(|h| self.host_name(*h)).collect()
    }

    pub fn master_name(&self) -> String {
        self.host_name(self.net.master)
    }

    /// The external traceroute target's name, when the family has one.
    pub fn external_name(&self) -> Option<String> {
        self.net
            .external
            .map(|e| self.net.topo.node(e).ifaces[0].name.clone().expect("external is named"))
    }

    /// Ground-truth clusters as name lists (the scoring input).
    pub fn truth_labels(&self) -> Vec<Vec<String>> {
        self.truth
            .clusters
            .iter()
            .map(|c| c.members.iter().map(|m| self.host_name(*m)).collect())
            .collect()
    }
}

/// Generate one scenario of the given family with exactly `hosts` mapped
/// hosts. Deterministic per `(family, seed, hosts)`.
pub fn synth(family: SynthFamily, seed: u64, hosts: usize) -> SynthScenario {
    match family {
        SynthFamily::Campus => synth_campus(seed, hosts),
        SynthFamily::FatTree => synth_fat_tree(seed, hosts),
        SynthFamily::Grid => synth_grid(seed, hosts, true),
        SynthFamily::WanBackbone => synth_wan(seed, hosts),
    }
}

/// Split `total` into group sizes drawn from `lo..=hi`, hitting `total`
/// exactly (a too-small remainder is folded into the previous group).
fn group_sizes(rng: &mut SmallRng, total: usize, lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo >= 2 && hi >= lo);
    let mut sizes = Vec::new();
    let mut left = total;
    while left > 0 {
        let mut n = rng.gen_range(lo..=hi).min(left);
        let after = left - n;
        if after > 0 && after < lo {
            // Absorb the stub so every group keeps at least `lo` members.
            n = left.min(hi + lo);
        }
        sizes.push(n);
        left -= n;
    }
    sizes
}

/// Star-of-stars campus: `hosts` end hosts over hub/switch leaf LANs, each
/// LAN behind its own router on a gigabit backbone, with a border router
/// and an external traceroute target. Effective truth: one cluster per LAN.
pub fn synth_campus(seed: u64, hosts: usize) -> SynthScenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let border = b.router_unnamed("192.168.254.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(border, external, Bandwidth::mbps(1000.0), Latency::millis(5.0));
    let backbone = b.router("backbone.campus.synth", "10.254.0.1");
    b.link(backbone, border, Bandwidth::mbps(1000.0), Latency::micros(100.0));

    let sizes = group_sizes(&mut rng, hosts, 4, 10);
    // LANs 0..248 live under 10/8 exactly as before; each further block of
    // 250 LANs spills into the next /8 (11/8, 12/8, …) — the 50k-host tier
    // needs ~7.2k LANs, i.e. first octets up to ~39, far below the 192/198
    // anchors the border and external target occupy.
    assert!(sizes.len() < 45_000, "campus IP plan supports < 45k LANs");
    let mut all_hosts = Vec::new();
    let mut clusters = Vec::new();
    for (lan, &n) in sizes.iter().enumerate() {
        let is_hub = rng.gen_range(0.0..1.0) < 0.5;
        let rate = Bandwidth::mbps([10.0, 100.0][rng.gen_range(0..2)]);
        let (net8, oct) = (10 + (lan + 1) / 250, (lan + 1) % 250);
        let gw = b.router(&format!("gw{lan}.campus.synth"), &format!("{net8}.{oct}.0.1"));
        b.link(gw, backbone, Bandwidth::mbps(1000.0), Latency::micros(100.0));
        let infra = if is_hub {
            b.hub(&format!("lan{lan}"), rate, Latency::micros(50.0))
        } else {
            b.switch(&format!("lan{lan}"), rate, Latency::micros(50.0))
        };
        b.attach(gw, infra);
        let mut members = Vec::new();
        for h in 0..n {
            let host = b
                .host(&format!("h{h}.lan{lan}.campus.synth"), &format!("{net8}.{oct}.1.{}", h + 1));
            b.attach(host, infra);
            members.push(host);
            all_hosts.push(host);
        }
        clusters.push(TruthCluster { members, is_hub, rate });
    }
    let master = all_hosts[0];
    SynthScenario {
        family: SynthFamily::Campus,
        net: GeneratedNet {
            topo: b.build().expect("campus builds"),
            hosts: all_hosts,
            master,
            external: Some(external),
        },
        truth: SynthTruth { clusters },
    }
}

/// Pod/edge fat-tree: pods of 100 Mbps edge switches behind pod routers on
/// a 1 Gbps core. Physically each edge switch is its own segment, but from
/// any master the per-pod probes all bottleneck on the master's port, so
/// the effective truth is one (switched) cluster per pod — see the module
/// docs on effective vs physical truth.
pub fn synth_fat_tree(seed: u64, hosts: usize) -> SynthScenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let border = b.router_unnamed("192.168.254.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(border, external, Bandwidth::mbps(1000.0), Latency::millis(5.0));
    let core = b.router("core.fat.synth", "10.254.0.1");
    b.link(core, border, Bandwidth::mbps(1000.0), Latency::micros(100.0));

    // Pods of 8..=24 hosts, split internally over 100 Mbps edge switches.
    // Pods 0..248 keep their historical `10.{p+1}` second octet; each
    // further block of 250 pods spills into the next /8 (11/8, 12/8, …),
    // so the second octet never reaches the core's 10.254 anchor.
    let pod_sizes = group_sizes(&mut rng, hosts, 8, 24);
    assert!(pod_sizes.len() < 45_000, "fat-tree IP plan supports < 45k pods");
    let rate = Bandwidth::mbps(100.0);
    let mut all_hosts = Vec::new();
    let mut clusters = Vec::new();
    for (p, &n) in pod_sizes.iter().enumerate() {
        let (net8, oct) = (10 + (p + 1) / 250, (p + 1) % 250);
        let pod_r = b.router(&format!("pod{p}.fat.synth"), &format!("{net8}.{oct}.0.1"));
        b.link(pod_r, core, Bandwidth::mbps(1000.0), Latency::micros(100.0));
        let edge_sizes = group_sizes(&mut rng, n, 4, 8);
        let mut members = Vec::new();
        for (e, &en) in edge_sizes.iter().enumerate() {
            let sw = b.switch(&format!("p{p}e{e}"), rate, Latency::micros(30.0));
            b.attach(pod_r, sw);
            for h in 0..en {
                let host = b.host(
                    &format!("h{h}.e{e}.pod{p}.fat.synth"),
                    &format!("{net8}.{oct}.{}.{}", e + 1, h + 2),
                );
                b.attach(host, sw);
                members.push(host);
                all_hosts.push(host);
            }
        }
        clusters.push(TruthCluster { members, is_hub: false, rate });
    }
    let master = all_hosts[0];
    SynthScenario {
        family: SynthFamily::FatTree,
        net: GeneratedNet {
            topo: b.build().expect("fat-tree builds"),
            hosts: all_hosts,
            master,
            external: Some(external),
        },
        truth: SynthTruth { clusters },
    }
}

/// Multi-site grid with firewalled private subnets. Each site hangs a
/// dual-homed gateway host off a WAN core; behind it sit private leaf LANs.
/// With `firewalled`, inner hosts of different sites cannot cross (and
/// cannot reach the external target) — only the gateways can, exactly like
/// the paper's `popc.private` domain.
///
/// The mapped host set (and the `hosts` count) is what an *inside* ENV run
/// from site 0 can see: site 0's inner hosts plus every site's gateway.
/// Effective truth: one cluster per site-0 LAN, the foreign gateways as one
/// cluster (they share the exit path and the master's-port bottleneck), and
/// site 0's own gateway as a singleton.
pub fn synth_grid(seed: u64, hosts: usize, firewalled: bool) -> SynthScenario {
    const SITES: usize = 6;
    assert!(hosts > 2 * SITES, "grid needs room for site-0 LANs beside the gateways");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let core = b.router_unnamed("192.0.2.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(core, external, Bandwidth::mbps(1000.0), Latency::millis(2.0));

    let mut gateways = Vec::new();
    let mut inner_by_site: Vec<Vec<NodeId>> = Vec::new();
    let mut site0_clusters: Vec<TruthCluster> = Vec::new();
    for s in 0..SITES {
        let gw = b.host_multi(
            &format!("gw{s}"),
            &[
                (&format!("gw.site{s}.grid.synth"), &format!("10.{}.250.1", s + 1)),
                (&format!("gw{s}.priv.site{s}.grid.synth"), &format!("172.{}.0.1", 16 + s)),
            ],
        );
        b.set_forwards(gw, true);
        let wan_mbps = [100.0, 155.0, 622.0][rng.gen_range(0..3)];
        b.link_ifaces(
            gw,
            0,
            core,
            0,
            Bandwidth::mbps(wan_mbps),
            Latency::millis(rng.gen_range(2.0..20.0)),
        );
        let site_r = b.router(&format!("r.site{s}.grid.synth"), &format!("172.{}.0.2", 16 + s));
        b.link_ifaces(gw, 1, site_r, 0, Bandwidth::mbps(1000.0), Latency::micros(100.0));

        // Site 0 carries the mapped LANs; other sites a little scenery.
        let site_hosts = if s == 0 { hosts - SITES } else { 4 };
        let sizes = group_sizes(&mut rng, site_hosts, 4, 10);
        // LANs 0..248 of a site keep their 172.{16+s} octet; each further
        // block of 250 LANs steps the second octet by 16 (172.{32+s},
        // 172.{48+s}, …, still disjoint across the <16 sites), and after
        // 15 such blocks the *first* octet spills to 173, 174, … (only
        // site 0 is ever big enough to need any of this; the 50k tier
        // reaches o1 ≈ 175, far below the 192/198 anchors).
        assert!(sizes.len() < 45_000, "grid IP plan supports < 45k LANs per site");
        let mut inner = Vec::new();
        for (lan, &n) in sizes.iter().enumerate() {
            let is_hub = rng.gen_range(0.0..1.0) < 0.5;
            let rate = Bandwidth::mbps([10.0, 100.0][rng.gen_range(0..2)]);
            let block = (lan + 1) / 250;
            let (o1, o2, o3) = (172 + block / 15, 16 + s + 16 * (block % 15), (lan + 1) % 250);
            let lr = b.router(&format!("r{lan}.site{s}.grid.synth"), &format!("{o1}.{o2}.{o3}.1"));
            b.link(lr, site_r, Bandwidth::mbps(1000.0), Latency::micros(100.0));
            let infra = if is_hub {
                b.hub(&format!("s{s}lan{lan}"), rate, Latency::micros(50.0))
            } else {
                b.switch(&format!("s{s}lan{lan}"), rate, Latency::micros(50.0))
            };
            b.attach(lr, infra);
            let mut members = Vec::new();
            for h in 0..n {
                let host = b.host(
                    &format!("h{h}.lan{lan}.site{s}.grid.synth"),
                    &format!("{o1}.{o2}.{o3}.{}", h + 2),
                );
                b.attach(host, infra);
                members.push(host);
                inner.push(host);
            }
            if s == 0 {
                site0_clusters.push(TruthCluster { members, is_hub, rate });
            }
        }
        gateways.push(gw);
        inner_by_site.push(inner);
    }

    if firewalled {
        // Inner hosts may not cross sites nor reach the outside world; the
        // gateways (absent from the rules) pass freely.
        for i in 0..SITES {
            for j in (i + 1)..SITES {
                b.firewall_deny_between(&inner_by_site[i], &inner_by_site[j]);
            }
            b.firewall_deny_between(&inner_by_site[i], &[external]);
        }
    }

    // Mapped set: site-0 inner hosts first (master leads), then gateways.
    let mut mapped = inner_by_site[0].clone();
    mapped.extend(&gateways);
    let master = mapped[0];

    let mut clusters = site0_clusters;
    // Foreign gateways share the exit chain through site 0's gateway and
    // the master's-port bottleneck: one effective cluster.
    clusters.push(TruthCluster {
        members: gateways[1..].to_vec(),
        is_hub: false,
        rate: Bandwidth::mbps(100.0),
    });
    // Site 0's own gateway stands alone between the LANs and the WAN.
    clusters.push(TruthCluster {
        members: vec![gateways[0]],
        is_hub: false,
        rate: Bandwidth::mbps(1000.0),
    });

    SynthScenario {
        family: SynthFamily::Grid,
        net: GeneratedNet {
            topo: b.build().expect("grid builds"),
            hosts: mapped,
            master,
            // Inside a firewall the external target is unreachable; the
            // structural phase falls back to the master (paper §4.2.1.3).
            external: if firewalled { None } else { Some(external) },
        },
        truth: SynthTruth { clusters },
    }
}

/// Asymmetric WAN backbone: a short chain of core routers joined by trunks
/// with *distinct per-direction capacities*, each core serving several
/// sites of one or two leaf LANs behind their own routers. Effective
/// truth: one cluster per LAN.
///
/// The backbone depth is bounded (≤ 6 cores regardless of host count) and
/// trunk latencies kept in the low milliseconds: ENV's interference ratio
/// compares probe *durations*, so once the path RTT dominates the transfer
/// time the 1.25× threshold can no longer see contention — a real ENV
/// probe-sizing limitation (§4.3) that belongs in a dedicated experiment,
/// not silently inside every scaling row.
pub fn synth_wan(seed: u64, hosts: usize) -> SynthScenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let border = b.router_unnamed("192.168.254.1");
    let external = b.external("well-known.example.org", "198.51.100.1");
    b.link(border, external, Bandwidth::mbps(1000.0), Latency::millis(5.0));

    // Sites of 3..=16 hosts (one or two LANs each), spread over the cores.
    let site_sizes = group_sizes(&mut rng, hosts, 3, 16);
    // Cores live in 172.20/16; sites 0..248 own the historical 10.1–10.249
    // range and each further block of 250 sites spills into the next /8
    // (11/8, 12/8, … — the 50k tier reaches ~77, below the anchors).
    assert!(site_sizes.len() < 45_000, "wan IP plan supports < 45k sites");
    let n_cores = site_sizes.len().div_ceil(20).min(6);
    let mut cores = Vec::new();
    let mut prev = border;
    for c in 0..n_cores {
        let core = b.router(&format!("core{c}.wan.synth"), &format!("172.20.{c}.1"));
        // Asymmetric trunk: the two directions carry different rates (the
        // §4.3 situation ENV's one-way probes cannot distinguish).
        let down = Bandwidth::mbps([155.0, 622.0, 1000.0][rng.gen_range(0..3)]);
        let up = Bandwidth::mbps([622.0, 1000.0, 2400.0][rng.gen_range(0..3)]);
        b.link_asym(prev, core, down, up, Latency::millis(rng.gen_range(1.0..5.0)));
        prev = core;
        cores.push(core);
    }

    let mut all_hosts = Vec::new();
    let mut clusters = Vec::new();
    for (s, &n) in site_sizes.iter().enumerate() {
        let (net8, oct) = (10 + (s + 1) / 250, (s + 1) % 250);
        let bb = b.router(&format!("bb{s}.wan.synth"), &format!("{net8}.{oct}.0.254"));
        // Site uplinks are asymmetric too (ADSL-like tails).
        let down = Bandwidth::mbps([34.0, 100.0, 155.0][rng.gen_range(0..3)]);
        let up = Bandwidth::mbps([100.0, 155.0, 622.0][rng.gen_range(0..3)]);
        b.link_asym(cores[s % n_cores], bb, down, up, Latency::millis(rng.gen_range(1.0..4.0)));

        let lan_sizes = group_sizes(&mut rng, n, 3, 8);
        for (l, &ln) in lan_sizes.iter().enumerate() {
            let is_hub = rng.gen_range(0.0..1.0) < 0.5;
            let rate = Bandwidth::mbps([10.0, 100.0][rng.gen_range(0..2)]);
            let gw =
                b.router(&format!("gw{l}.site{s}.wan.synth"), &format!("{net8}.{oct}.{}.1", l + 1));
            b.link(gw, bb, Bandwidth::mbps(1000.0), Latency::micros(100.0));
            let infra = if is_hub {
                b.hub(&format!("w{s}lan{l}"), rate, Latency::micros(50.0))
            } else {
                b.switch(&format!("w{s}lan{l}"), rate, Latency::micros(50.0))
            };
            b.attach(gw, infra);
            let mut members = Vec::new();
            for h in 0..ln {
                let host = b.host(
                    &format!("h{h}.lan{l}.site{s}.wan.synth"),
                    &format!("{net8}.{oct}.{}.{}", l + 1, h + 2),
                );
                b.attach(host, infra);
                members.push(host);
                all_hosts.push(host);
            }
            clusters.push(TruthCluster { members, is_hub, rate });
        }
    }
    let master = all_hosts[0];
    SynthScenario {
        family: SynthFamily::WanBackbone,
        net: GeneratedNet {
            topo: b.build().expect("wan builds"),
            hosts: all_hosts,
            master,
            external: Some(external),
        },
        truth: SynthTruth { clusters },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::topology::Topology;
    use crate::units::Bytes;

    fn names(topo: &Topology, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|n| topo.node(*n).ifaces[0].name.clone().unwrap()).collect()
    }

    #[test]
    fn families_hit_exact_host_counts() {
        for family in SynthFamily::ALL {
            for hosts in [60usize, 100] {
                let sc = synth(family, 7, hosts);
                assert_eq!(sc.net.hosts.len(), hosts, "{} at {hosts}", family.name());
                // Truth covers exactly the mapped hosts, without overlap.
                let mut covered: Vec<NodeId> =
                    sc.truth.clusters.iter().flat_map(|c| c.members.iter().copied()).collect();
                covered.sort_unstable();
                covered.dedup();
                let mut mapped = sc.net.hosts.clone();
                mapped.sort_unstable();
                assert_eq!(covered, mapped, "{} truth must partition the host set", family.name());
            }
        }
    }

    /// The 10k tier's IP plans build for every family: the first-octet
    /// spill keeps thousands of LANs/pods/sites collision-free
    /// (`Topology::build` rejects duplicate addresses).
    #[test]
    fn families_build_at_ten_thousand_hosts() {
        for family in SynthFamily::ALL {
            let sc = synth(family, 2004, 10_000);
            assert_eq!(sc.net.hosts.len(), 10_000, "{}", family.name());
        }
    }

    #[test]
    fn same_seed_same_scenario() {
        for family in SynthFamily::ALL {
            let a = synth(family, 42, 80);
            let b = synth(family, 42, 80);
            assert_eq!(names(&a.net.topo, &a.net.hosts), names(&b.net.topo, &b.net.hosts));
            assert_eq!(a.truth_labels(), b.truth_labels());
            let c = synth(family, 43, 80);
            // A different seed shifts at least the cluster plan.
            assert!(
                a.truth_labels() != c.truth_labels()
                    || names(&a.net.topo, &a.net.hosts) != names(&c.net.topo, &c.net.hosts),
                "{} should vary with the seed",
                family.name()
            );
        }
    }

    #[test]
    fn clusters_have_at_least_two_members_except_grid_gateway() {
        for family in SynthFamily::ALL {
            let sc = synth(family, 3, 90);
            let singletons = sc.truth.clusters.iter().filter(|c| c.members.len() < 2).count();
            let allowed = if family == SynthFamily::Grid { 1 } else { 0 };
            assert!(singletons <= allowed, "{}: {singletons} singleton clusters", family.name());
        }
    }

    #[test]
    fn grid_firewall_blocks_cross_site_inner_traffic() {
        let sc = synth_grid(11, 60, true);
        let mut sim = Sim::new(sc.net.topo.clone());
        let site0_inner = sc.net.hosts[0];
        // A foreign inner host is *not* in the mapped set; find one by name.
        let foreign = sc.net.topo.node_by_name("h0.lan0.site1.grid.synth").unwrap();
        assert!(sim.measure_bandwidth(site0_inner, foreign, Bytes::kib(64)).is_err());
        // Gateways cross freely in both directions.
        let gw1 = sc.net.topo.node_by_name("gw.site1.grid.synth").unwrap();
        assert!(sim.measure_bandwidth(site0_inner, gw1, Bytes::kib(64)).is_ok());
        // The external target is unreachable from inside.
        let ext = sc.net.topo.node_by_name("well-known.example.org").unwrap();
        assert!(sim.measure_bandwidth(site0_inner, ext, Bytes::kib(64)).is_err());
        // Without the firewall everything is reachable.
        let open = synth_grid(11, 60, false);
        let mut sim = Sim::new(open.net.topo.clone());
        let a = open.net.hosts[0];
        let foreign = open.net.topo.node_by_name("h0.lan0.site1.grid.synth").unwrap();
        assert!(sim.measure_bandwidth(a, foreign, Bytes::kib(64)).is_ok());
    }

    #[test]
    fn wan_backbone_is_asymmetric_end_to_end() {
        let sc = synth_wan(5, 40);
        let mut sim = Sim::new(sc.net.topo.clone());
        // Some trunk link must carry different per-direction capacities.
        let asym = sc.net.topo.links().any(|l| match l.mode {
            crate::topology::LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                (capacity_ab.as_mbps() - capacity_ba.as_mbps()).abs() > 1.0
            }
            _ => false,
        });
        assert!(asym, "wan family must produce asymmetric trunks");
        // And probes across the chain complete.
        let first = sc.net.hosts[0];
        let last = *sc.net.hosts.last().unwrap();
        assert!(sim.measure_bandwidth(first, last, Bytes::kib(256)).is_ok());
    }

    #[test]
    fn campus_traceroutes_give_per_lan_chains() {
        let sc = synth_campus(9, 40);
        let mut sim = Sim::new(sc.net.topo.clone());
        let ext = sc.net.external.unwrap();
        // Hosts of one LAN share their chain; different LANs differ.
        let c0 = &sc.truth.clusters[0].members;
        let c1 = &sc.truth.clusters[1].members;
        let hops = |sim: &mut Sim, h: NodeId| {
            sim.traceroute(h, ext)
                .unwrap()
                .iter()
                .map(|x| x.ip.map(|ip| ip.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
        };
        assert_eq!(hops(&mut sim, c0[0]), hops(&mut sim, c0[1]));
        assert_ne!(hops(&mut sim, c0[0]), hops(&mut sim, c1[0]));
    }
}
