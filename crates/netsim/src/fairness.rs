//! Max-min fair bandwidth allocation by progressive filling.
//!
//! Every active flow occupies a set of *resources*: one per directed
//! full-duplex link it crosses, or the single shared medium of each hub it
//! crosses (counted **once** per flow — a hub is one collision domain, so a
//! flow entering and leaving a hub consumes the medium once, and flows in
//! opposite directions contend, which is what makes ENV's jammed-bandwidth
//! test distinguish hubs from switches).
//!
//! Progressive filling raises all unfrozen flows' rates together; whenever a
//! resource saturates, the flows crossing it freeze at their current rate.
//! A flow may additionally carry a rate cap (e.g. a TCP-window/RTT bound),
//! modelled as a private resource.

use std::collections::HashMap;

use crate::routing::Path;
use crate::topology::{LinkId, LinkMode, MediumId, Topology};
use crate::units::Bandwidth;

/// A capacity-constrained entity flows compete for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// One direction of a full-duplex link. `from_a` is true for the a→b
    /// direction.
    LinkDir { link: LinkId, from_a: bool },
    /// The half-duplex shared medium of a hub.
    Medium(MediumId),
}

impl Resource {
    /// The resource's capacity in the given topology.
    pub fn capacity(self, topo: &Topology) -> Bandwidth {
        match self {
            Resource::LinkDir { link, from_a } => match topo.link(link).mode {
                LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                    if from_a {
                        capacity_ab
                    } else {
                        capacity_ba
                    }
                }
                LinkMode::Shared { medium } => topo.medium(medium).capacity,
            },
            Resource::Medium(m) => topo.medium(m).capacity,
        }
    }
}

/// The deduplicated resource set of a directed path.
pub fn path_resources(topo: &Topology, path: &Path) -> Vec<Resource> {
    let mut out: Vec<Resource> = Vec::with_capacity(path.links.len());
    for (i, l) in path.links.iter().enumerate() {
        let link = topo.link(*l);
        let r = match link.mode {
            LinkMode::FullDuplex { .. } => {
                Resource::LinkDir { link: *l, from_a: path.nodes[i] == link.a }
            }
            LinkMode::Shared { medium } => Resource::Medium(medium),
        };
        out.push(r);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    pub resources: Vec<Resource>,
    /// Optional per-flow rate ceiling (TCP window / application limit).
    pub rate_cap: Option<Bandwidth>,
}

/// How concurrent flows share capacity — the fluid model underlying every
/// observable. Max-min is the default (and what TCP approximates over a
/// LAN); the naive equal-share model exists as an ablation target: ENV's
/// ratio thresholds must classify identically under both (DESIGN.md,
/// design decision 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessModel {
    /// Progressive filling: the unique allocation where no flow can grow
    /// without shrinking a slower one.
    #[default]
    MaxMin,
    /// Each flow gets the minimum over its resources of `capacity / users`,
    /// with every flow counted on every resource it crosses — simpler and
    /// pessimistic (capacity freed by remotely-bottlenecked flows is not
    /// redistributed).
    BottleneckEqualShare,
}

/// Allocate under the chosen fluid model.
pub fn allocate(topo: &Topology, flows: &[FlowDemand], model: FairnessModel) -> Vec<Bandwidth> {
    match model {
        FairnessModel::MaxMin => max_min_allocate(topo, flows),
        FairnessModel::BottleneckEqualShare => equal_share_allocate(topo, flows),
    }
}

/// The naive equal-share model (see [`FairnessModel::BottleneckEqualShare`]).
pub fn equal_share_allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<Bandwidth> {
    let mut users: HashMap<Resource, u32> = HashMap::new();
    for f in flows {
        for r in &f.resources {
            *users.entry(*r).or_insert(0) += 1;
        }
    }
    flows
        .iter()
        .map(|f| {
            let mut rate = f
                .rate_cap
                .map(|c| c.as_bytes_per_sec())
                .unwrap_or(f64::INFINITY);
            for r in &f.resources {
                let share = r.capacity(topo).as_bytes_per_sec() / users[r] as f64;
                rate = rate.min(share);
            }
            debug_assert!(rate.is_finite(), "flow without resources or cap");
            Bandwidth::bytes_per_sec(rate)
        })
        .collect()
}

/// Compute the max-min fair allocation for the given flows.
///
/// Panics (debug) if a flow has neither resources nor a rate cap — such a
/// flow has unbounded rate and should be special-cased by the caller
/// (same-host transfers never reach the allocator).
pub fn max_min_allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<Bandwidth> {
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    if n == 0 {
        return Vec::new();
    }

    // remaining capacity and unfrozen-flow count per resource
    let mut remaining: HashMap<Resource, f64> = HashMap::new();
    let mut users: HashMap<Resource, u32> = HashMap::new();
    for f in flows {
        debug_assert!(
            !f.resources.is_empty() || f.rate_cap.is_some(),
            "flow without resources or cap has unbounded rate"
        );
        for r in &f.resources {
            remaining.entry(*r).or_insert_with(|| r.capacity(topo).as_bytes_per_sec());
            *users.entry(*r).or_insert(0) += 1;
        }
    }

    let mut frozen = vec![false; n];
    let mut unfrozen = n;

    // Each iteration freezes at least one flow, so this terminates in <= n
    // rounds; each round is O(total resource references).
    while unfrozen > 0 {
        // The uniform rate increment all unfrozen flows can still take.
        let mut delta = f64::INFINITY;
        for (r, rem) in &remaining {
            let u = users[r];
            if u > 0 {
                delta = delta.min(*rem / u as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if let Some(cap) = f.rate_cap {
                delta = delta.min(cap.as_bytes_per_sec() - rate[i]);
            }
        }
        debug_assert!(delta.is_finite(), "unfrozen flow with no binding constraint");
        let delta = delta.max(0.0);

        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rate[i] += delta;
            for r in &f.resources {
                // Each unfrozen user consumed `delta` from the resource.
                // Subtract once per user below instead of here to keep the
                // bookkeeping O(refs): handled by the loop structure — we
                // subtract here, per reference, which is exactly once per
                // (flow, resource) pair.
                *remaining.get_mut(r).expect("resource was registered") -= delta;
            }
        }

        // Freeze flows on saturated resources or at their cap.
        const EPS: f64 = 1e-7;
        let mut to_freeze = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let saturated = f
                .resources
                .iter()
                .any(|r| remaining[r] <= EPS * r.capacity(topo).as_bytes_per_sec().max(1.0));
            let capped = f
                .rate_cap
                .map(|c| rate[i] + EPS >= c.as_bytes_per_sec())
                .unwrap_or(false);
            if saturated || capped {
                to_freeze.push(i);
            }
        }
        if to_freeze.is_empty() {
            // delta was 0 without progress — numerically stuck; freeze all
            // remaining flows to guarantee termination.
            for froze in frozen.iter_mut() {
                *froze = true;
            }
            break;
        }
        for i in to_freeze {
            frozen[i] = true;
            unfrozen -= 1;
            for r in &flows[i].resources {
                *users.get_mut(r).expect("registered") -= 1;
            }
        }
    }

    rate.into_iter().map(Bandwidth::bytes_per_sec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;
    use crate::topology::{NodeId, TopologyBuilder};
    use crate::units::Latency;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::mbps(x)
    }

    struct Net {
        topo: Topology,
        routes: RouteTable,
    }

    impl Net {
        fn demand(&self, src: NodeId, dst: NodeId) -> FlowDemand {
            let p = self.routes.path(src, dst).unwrap();
            FlowDemand { resources: path_resources(&self.topo, &p), rate_cap: None }
        }
    }

    fn hub_net(n_hosts: usize, rate: f64) -> (Net, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", mbps(rate), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..n_hosts)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        (Net { topo, routes }, hosts)
    }

    fn switch_net(n_hosts: usize, rate: f64) -> (Net, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let sw = b.switch("sw", mbps(rate), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..n_hosts)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, sw);
                h
            })
            .collect();
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        (Net { topo, routes }, hosts)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let (net, h) = hub_net(2, 100.0);
        let rates = max_min_allocate(&net.topo, &[net.demand(h[0], h[1])]);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn hub_flows_share_one_medium() {
        // Two disjoint pairs on one hub still halve each other — the
        // behaviour NWS's clique protocol exists to avoid (paper §2.3).
        let (net, h) = hub_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn hub_medium_counted_once_per_flow() {
        // A single flow through a hub crosses two ports but must still get
        // the full medium rate, not half.
        let (net, h) = hub_net(2, 100.0);
        let d = net.demand(h[0], h[1]);
        assert_eq!(d.resources.len(), 1, "medium must be deduplicated");
        let rates = max_min_allocate(&net.topo, &[d]);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn switch_flows_are_independent() {
        let (net, h) = switch_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn switch_flows_share_common_port() {
        // Both flows leave the same source host: its single port is the
        // bottleneck — the effect that keeps ENV's pairwise test from
        // splitting switched clusters.
        let (net, h) = switch_net(3, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[0], h[2])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn opposite_directions_share_hub_but_not_switch() {
        let (net, h) = hub_net(2, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[1], h[0])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6, "hub is half-duplex");

        let (net, h) = switch_net(2, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[1], h[0])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6, "switch is full-duplex");
        assert!((rates[1].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn rate_cap_binds() {
        let (net, h) = switch_net(2, 100.0);
        let mut d = net.demand(h[0], h[1]);
        d.rate_cap = Some(mbps(7.0));
        let rates = max_min_allocate(&net.topo, &[d]);
        assert!((rates[0].as_mbps() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn capped_flow_releases_capacity_to_others() {
        let (net, h) = switch_net(3, 100.0);
        let mut capped = net.demand(h[0], h[1]);
        capped.rate_cap = Some(mbps(10.0));
        let open = net.demand(h[0], h[2]);
        // Both flows share h0's egress port (100 Mbps): the capped flow
        // takes 10, the other grows to 90.
        let rates = max_min_allocate(&net.topo, &[capped, open]);
        assert!((rates[0].as_mbps() - 10.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn classic_line_network_max_min() {
        // a —10M— r1 —10M— r2 —10M— c with flows a→r2-side host etc.
        // Use 3 hosts in a line via two routers; long flow shares both
        // links with two short flows → long flow gets 5, shorts get 5 then
        // fill to... classic parking-lot: all get 5 on the contended link;
        // short flow on the other link also 5 since both links carry
        // (long, one short).
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let m = b.host("m.x", "10.0.0.2");
        let c = b.host("c.x", "10.0.0.3");
        let r1 = b.router("r1.x", "10.0.1.1");
        let r2 = b.router("r2.x", "10.0.1.2");
        b.link(a, r1, mbps(100.0), Latency::ZERO);
        b.link(r1, r2, mbps(10.0), Latency::ZERO);
        b.link(r2, c, mbps(100.0), Latency::ZERO);
        b.link(r1, m, mbps(100.0), Latency::ZERO);
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        let net = Net { topo, routes };
        // Flow 1: a→c (crosses r1-r2). Flow 2: m→c (crosses r1-r2 too).
        // Flow 3: a→m (does not cross the bottleneck).
        let flows =
            vec![net.demand(a, c), net.demand(m, c), net.demand(a, m)];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 5.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 5.0).abs() < 1e-6);
        // Flow 3 shares a→r1 with flow 1 (which froze at 5): gets 95.
        assert!((rates[2].as_mbps() - 95.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input() {
        let (net, _) = hub_net(2, 100.0);
        assert!(max_min_allocate(&net.topo, &[]).is_empty());
        assert!(equal_share_allocate(&net.topo, &[]).is_empty());
    }

    #[test]
    fn equal_share_matches_max_min_on_single_bottleneck() {
        // On one shared hub the two models agree exactly.
        let (net, h) = hub_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let mm = max_min_allocate(&net.topo, &flows);
        let es = equal_share_allocate(&net.topo, &flows);
        for (a, b) in mm.iter().zip(&es) {
            assert!((a.as_mbps() - b.as_mbps()).abs() < 1e-9);
        }
    }

    #[test]
    fn equal_share_is_pessimistic_on_parking_lot() {
        // Classic difference: a flow bottlenecked elsewhere still "uses"
        // its share under equal-share, so the co-located flow gets less
        // than max-min would grant it.
        let (net, h) = switch_net(3, 100.0);
        let mut capped = net.demand(h[0], h[1]);
        capped.rate_cap = Some(mbps(10.0));
        let open = net.demand(h[0], h[2]);
        let flows = vec![capped, open];
        let mm = max_min_allocate(&net.topo, &flows);
        let es = equal_share_allocate(&net.topo, &flows);
        assert!((mm[1].as_mbps() - 90.0).abs() < 1e-6, "max-min redistributes");
        assert!((es[1].as_mbps() - 50.0).abs() < 1e-6, "equal share does not");
        // The model selector dispatches correctly.
        let via_enum = allocate(&net.topo, &flows, FairnessModel::BottleneckEqualShare);
        assert_eq!(es, via_enum);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A platform mixing one hub and one switch behind a router.
        fn mixed_net(n_each: usize, rate: f64) -> (Net, Vec<NodeId>) {
            let mut b = TopologyBuilder::new();
            let hub = b.hub("hub", mbps(rate), Latency::micros(10.0));
            let sw = b.switch("sw", mbps(rate), Latency::micros(10.0));
            let r = b.router("r.x", "10.9.0.1");
            b.attach(r, hub);
            b.attach(r, sw);
            let mut hosts = Vec::new();
            for i in 0..n_each {
                let h = b.host(&format!("hh{i}.x"), &format!("10.1.0.{}", i + 1));
                b.attach(h, hub);
                hosts.push(h);
            }
            for i in 0..n_each {
                let h = b.host(&format!("sh{i}.x"), &format!("10.2.0.{}", i + 1));
                b.attach(h, sw);
                hosts.push(h);
            }
            let topo = b.build().unwrap();
            let routes = RouteTable::compute(&topo);
            (Net { topo, routes }, hosts)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Mixed hub+switch platforms keep the same invariants, and the
            /// hub medium is never oversubscribed by cross-device flows.
            #[test]
            fn max_min_invariants_mixed(
                n_each in 2usize..5,
                pairs in proptest::collection::vec((0usize..10, 0usize..10), 1..10),
                rate in 10.0f64..500.0,
            ) {
                let (net, hosts) = mixed_net(n_each, rate);
                let n = hosts.len();
                let flows: Vec<FlowDemand> = pairs
                    .iter()
                    .filter_map(|(s, d)| {
                        let s = s % n;
                        let d = d % n;
                        (s != d).then(|| net.demand(hosts[s], hosts[d]))
                    })
                    .collect();
                prop_assume!(!flows.is_empty());
                let rates = max_min_allocate(&net.topo, &flows);

                let mut usage: std::collections::HashMap<Resource, f64> =
                    std::collections::HashMap::new();
                for (f, r) in flows.iter().zip(&rates) {
                    prop_assert!(r.as_bytes_per_sec() > 0.0, "starved flow");
                    for res in &f.resources {
                        *usage.entry(*res).or_insert(0.0) += r.as_bytes_per_sec();
                    }
                }
                for (res, used) in &usage {
                    let cap = res.capacity(&net.topo).as_bytes_per_sec();
                    prop_assert!(*used <= cap * (1.0 + 1e-6),
                        "{res:?} oversubscribed");
                }
            }

            /// On a random star switch with random flows, no resource is
            /// oversubscribed and every flow is bottlenecked somewhere.
            #[test]
            fn max_min_invariants(
                n_hosts in 2usize..8,
                pairs in proptest::collection::vec((0usize..8, 0usize..8), 1..12),
                rate in 10.0f64..1000.0,
            ) {
                let (net, hosts) = switch_net(n_hosts, rate);
                let flows: Vec<FlowDemand> = pairs
                    .iter()
                    .filter_map(|(s, d)| {
                        let s = s % n_hosts;
                        let d = d % n_hosts;
                        (s != d).then(|| net.demand(hosts[s], hosts[d]))
                    })
                    .collect();
                prop_assume!(!flows.is_empty());
                let rates = max_min_allocate(&net.topo, &flows);

                // No resource oversubscribed.
                let mut usage: std::collections::HashMap<Resource, f64> =
                    std::collections::HashMap::new();
                for (f, r) in flows.iter().zip(&rates) {
                    for res in &f.resources {
                        *usage.entry(*res).or_insert(0.0) += r.as_bytes_per_sec();
                    }
                }
                for (res, used) in &usage {
                    let cap = res.capacity(&net.topo).as_bytes_per_sec();
                    prop_assert!(*used <= cap * (1.0 + 1e-6),
                        "resource {res:?} oversubscribed: {used} > {cap}");
                }

                // Every flow is bottlenecked: it crosses some resource
                // whose capacity is (nearly) fully used.
                for (f, r) in flows.iter().zip(&rates) {
                    prop_assert!(r.as_bytes_per_sec() > 0.0);
                    let bottlenecked = f.resources.iter().any(|res| {
                        let cap = res.capacity(&net.topo).as_bytes_per_sec();
                        usage[res] >= cap * (1.0 - 1e-6)
                    });
                    prop_assert!(bottlenecked, "flow has slack everywhere");
                }
            }
        }
    }
}
