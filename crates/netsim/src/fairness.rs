//! Max-min fair bandwidth allocation by progressive filling.
//!
//! Every active flow occupies a set of *resources*: one per directed
//! full-duplex link it crosses, or the single shared medium of each hub it
//! crosses (counted **once** per flow — a hub is one collision domain, so a
//! flow entering and leaving a hub consumes the medium once, and flows in
//! opposite directions contend, which is what makes ENV's jammed-bandwidth
//! test distinguish hubs from switches).
//!
//! Progressive filling raises all unfrozen flows' rates together; whenever a
//! resource saturates, the flows crossing it freeze at their current rate.
//! A flow may additionally carry a rate cap (e.g. a TCP-window/RTT bound),
//! modelled as a private resource.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::routing::Path;
use crate::topology::{LinkId, LinkMode, MediumId, Topology};
use crate::units::Bandwidth;

/// Relative slack under which a resource counts as saturated (and absolute
/// slack for rate caps). Shared by the reference allocator and the
/// incremental [`FairEngine`] so both freeze identically.
const EPS: f64 = 1e-7;

/// A capacity-constrained entity flows compete for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// One direction of a full-duplex link. `from_a` is true for the a→b
    /// direction.
    LinkDir { link: LinkId, from_a: bool },
    /// The half-duplex shared medium of a hub.
    Medium(MediumId),
}

impl Resource {
    /// The resource's capacity in the given topology.
    pub fn capacity(self, topo: &Topology) -> Bandwidth {
        match self {
            Resource::LinkDir { link, from_a } => match topo.link(link).mode {
                LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                    if from_a {
                        capacity_ab
                    } else {
                        capacity_ba
                    }
                }
                LinkMode::Shared { medium } => topo.medium(medium).capacity,
            },
            Resource::Medium(m) => topo.medium(m).capacity,
        }
    }
}

/// The deduplicated resource set of a directed path.
pub fn path_resources(topo: &Topology, path: &Path) -> Vec<Resource> {
    let mut out: Vec<Resource> = Vec::with_capacity(path.links.len());
    for (i, l) in path.links.iter().enumerate() {
        let link = topo.link(*l);
        let r = match link.mode {
            LinkMode::FullDuplex { .. } => {
                Resource::LinkDir { link: *l, from_a: path.nodes[i] == link.a }
            }
            LinkMode::Shared { medium } => Resource::Medium(medium),
        };
        out.push(r);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    pub resources: Vec<Resource>,
    /// Optional per-flow rate ceiling (TCP window / application limit).
    pub rate_cap: Option<Bandwidth>,
}

/// How concurrent flows share capacity — the fluid model underlying every
/// observable. Max-min is the default (and what TCP approximates over a
/// LAN); the naive equal-share model exists as an ablation target: ENV's
/// ratio thresholds must classify identically under both (DESIGN.md,
/// design decision 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessModel {
    /// Progressive filling: the unique allocation where no flow can grow
    /// without shrinking a slower one.
    #[default]
    MaxMin,
    /// Each flow gets the minimum over its resources of `capacity / users`,
    /// with every flow counted on every resource it crosses — simpler and
    /// pessimistic (capacity freed by remotely-bottlenecked flows is not
    /// redistributed).
    BottleneckEqualShare,
}

/// Allocate under the chosen fluid model.
pub fn allocate(topo: &Topology, flows: &[FlowDemand], model: FairnessModel) -> Vec<Bandwidth> {
    match model {
        FairnessModel::MaxMin => max_min_allocate(topo, flows),
        FairnessModel::BottleneckEqualShare => equal_share_allocate(topo, flows),
    }
}

/// The naive equal-share model (see [`FairnessModel::BottleneckEqualShare`]).
pub fn equal_share_allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<Bandwidth> {
    let mut users: HashMap<Resource, u32> = HashMap::new();
    for f in flows {
        for r in &f.resources {
            *users.entry(*r).or_insert(0) += 1;
        }
    }
    flows
        .iter()
        .map(|f| {
            let mut rate = f.rate_cap.map(|c| c.as_bytes_per_sec()).unwrap_or(f64::INFINITY);
            for r in &f.resources {
                let share = r.capacity(topo).as_bytes_per_sec() / users[r] as f64;
                rate = rate.min(share);
            }
            debug_assert!(rate.is_finite(), "flow without resources or cap");
            Bandwidth::bytes_per_sec(rate)
        })
        .collect()
}

/// Compute the max-min fair allocation for the given flows.
///
/// Panics (debug) if a flow has neither resources nor a rate cap — such a
/// flow has unbounded rate and should be special-cased by the caller
/// (same-host transfers never reach the allocator).
pub fn max_min_allocate(topo: &Topology, flows: &[FlowDemand]) -> Vec<Bandwidth> {
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    if n == 0 {
        return Vec::new();
    }

    // Remaining capacity and unfrozen-flow count per resource. BTreeMap,
    // not HashMap: the bottleneck scan below iterates this table, and the
    // oracle's visit order must not depend on the hash seed (lint rule D2).
    // `delta` is a pure min-fold so the result would be identical anyway,
    // but the oracle is the yardstick every differential suite compares
    // against — it stays canonically ordered.
    let mut remaining: BTreeMap<Resource, f64> = BTreeMap::new();
    let mut users: BTreeMap<Resource, u32> = BTreeMap::new();
    for f in flows {
        debug_assert!(
            !f.resources.is_empty() || f.rate_cap.is_some(),
            "flow without resources or cap has unbounded rate"
        );
        for r in &f.resources {
            remaining.entry(*r).or_insert_with(|| r.capacity(topo).as_bytes_per_sec());
            *users.entry(*r).or_insert(0) += 1;
        }
    }

    let mut frozen = vec![false; n];
    let mut unfrozen = n;

    // Each iteration freezes at least one flow, so this terminates in <= n
    // rounds; each round is O(total resource references).
    while unfrozen > 0 {
        // The uniform rate increment all unfrozen flows can still take.
        let mut delta = f64::INFINITY;
        for (r, rem) in &remaining {
            let u = users[r];
            if u > 0 {
                delta = delta.min(*rem / u as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if let Some(cap) = f.rate_cap {
                delta = delta.min(cap.as_bytes_per_sec() - rate[i]);
            }
        }
        debug_assert!(delta.is_finite(), "unfrozen flow with no binding constraint");
        let delta = delta.max(0.0);

        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rate[i] += delta;
            for r in &f.resources {
                // Each unfrozen user consumed `delta` of the resource, and
                // resource lists are deduplicated, so this subtraction runs
                // exactly once per (flow, resource) reference.
                *remaining.get_mut(r).expect("resource was registered") -= delta;
            }
        }

        // Freeze flows on saturated resources or at their cap.
        let mut to_freeze = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let saturated = f
                .resources
                .iter()
                .any(|r| remaining[r] <= EPS * r.capacity(topo).as_bytes_per_sec().max(1.0));
            let capped = f.rate_cap.map(|c| rate[i] + EPS >= c.as_bytes_per_sec()).unwrap_or(false);
            if saturated || capped {
                to_freeze.push(i);
            }
        }
        if to_freeze.is_empty() {
            // delta was 0 without progress — numerically stuck; freeze all
            // remaining flows to guarantee termination.
            for froze in frozen.iter_mut() {
                *froze = true;
            }
            break;
        }
        for i in to_freeze {
            frozen[i] = true;
            unfrozen -= 1;
            for r in &flows[i].resources {
                *users.get_mut(r).expect("registered") -= 1;
            }
        }
    }

    rate.into_iter().map(Bandwidth::bytes_per_sec).collect()
}

// ---------------------------------------------------------------------------
// Incremental allocation engine
// ---------------------------------------------------------------------------
//
// The reference allocators above rebuild `HashMap<Resource, _>` tables from
// scratch for every call — fine as an oracle, quadratic-with-allocations as
// the per-event hot path of the simulator. The types below replace them on
// the hot path:
//
// * [`ResourceTable`] interns every [`Resource`] of a topology into a dense
//   [`ResourceId`] once, so per-resource state lives in flat arrays;
// * [`FairEngine`] keeps per-resource user counts incrementally as flows
//   come and go, and reallocates into reusable scratch buffers — zero heap
//   allocation in steady state.
//
// `FairEngine::reallocate` is algorithmically identical to
// [`max_min_allocate`] / [`equal_share_allocate`] (same rounds, same
// floating-point operation order, same freeze thresholds), which the
// differential property suite below exploits: for random topologies and
// random add/remove sequences the two must agree bit-for-bit (tested with a
// tiny tolerance to stay robust to future refactors).

/// Dense index of a [`Resource`] within a [`ResourceTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(u32);

impl ResourceId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res{}", self.0)
    }
}

/// Interns the resources of one topology: hub mediums first, then the two
/// directions of every full-duplex link. Shared-mode (hub port) links map
/// both directions to their hub's medium resource, so interning a path
/// automatically collapses a hub crossed twice into one reference (after
/// the caller sorts and dedups, as [`path_resources`] does for the oracle).
#[derive(Debug, Clone)]
pub struct ResourceTable {
    /// `link_dir[link][0]` is the a→b direction, `[1]` the b→a direction.
    link_dir: Vec<[ResourceId; 2]>,
    capacity: Vec<f64>,
    /// Precomputed freeze threshold `EPS * capacity.max(1.0)` — identical
    /// to the oracle's per-round expression.
    freeze_eps: Vec<f64>,
    resources: Vec<Resource>,
}

impl ResourceTable {
    pub fn new(topo: &Topology) -> Self {
        let mut resources: Vec<Resource> =
            Vec::with_capacity(topo.medium_count() + 2 * topo.link_count());
        resources.extend(topo.mediums().map(|m| Resource::Medium(m.id)));
        let mut link_dir = Vec::with_capacity(topo.link_count());
        for link in topo.links() {
            match link.mode {
                LinkMode::Shared { medium } => {
                    let r = ResourceId(medium.index() as u32);
                    link_dir.push([r, r]);
                }
                LinkMode::FullDuplex { .. } => {
                    let ab = ResourceId(resources.len() as u32);
                    resources.push(Resource::LinkDir { link: link.id, from_a: true });
                    let ba = ResourceId(resources.len() as u32);
                    resources.push(Resource::LinkDir { link: link.id, from_a: false });
                    link_dir.push([ab, ba]);
                }
            }
        }
        let capacity: Vec<f64> =
            resources.iter().map(|r| r.capacity(topo).as_bytes_per_sec()).collect();
        let freeze_eps: Vec<f64> = capacity.iter().map(|c| EPS * c.max(1.0)).collect();
        ResourceTable { link_dir, capacity, freeze_eps, resources }
    }

    /// Number of distinct resources in the topology.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// The resource consumed by traversing `link` in the given direction.
    pub fn link_dir(&self, link: LinkId, from_a: bool) -> ResourceId {
        self.link_dir[link.index()][usize::from(!from_a)]
    }

    /// The resource of a hub's shared medium.
    pub fn medium(&self, m: MediumId) -> ResourceId {
        ResourceId(m.index() as u32)
    }

    /// The interned resource's identity (for diagnostics and tests).
    pub fn resource(&self, r: ResourceId) -> Resource {
        self.resources[r.index()]
    }

    /// Capacity in bytes/sec.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.capacity[r.index()]
    }

    /// Whether the table still covers the topology's structure (same link
    /// and medium populations). False after links were appended through
    /// the churn mutators, meaning the table must be extended.
    pub fn covers(&self, topo: &Topology) -> bool {
        self.link_dir.len() == topo.link_count()
            && self.resources.iter().filter(|r| matches!(r, Resource::Medium(_))).count()
                == topo.medium_count()
    }

    /// Extend the table over links appended to the topology since it was
    /// built, and re-read every capacity. Existing [`ResourceId`]s are
    /// stable (new resources are appended), so flows registered before the
    /// growth stay valid — this is what makes topology churn safe under
    /// live traffic. Mediums cannot be added post-build; links cannot be
    /// removed (only administratively downed), both enforced here.
    pub fn sync(&mut self, topo: &Topology) {
        assert!(
            self.link_dir.len() <= topo.link_count(),
            "links cannot be removed from a topology, only downed"
        );
        assert_eq!(
            self.resources.iter().filter(|r| matches!(r, Resource::Medium(_))).count(),
            topo.medium_count(),
            "mediums cannot be added or removed after build"
        );
        for link in topo.links().skip(self.link_dir.len()) {
            match link.mode {
                LinkMode::Shared { medium } => {
                    let r = ResourceId(medium.index() as u32);
                    self.link_dir.push([r, r]);
                }
                LinkMode::FullDuplex { .. } => {
                    let ab = ResourceId(self.resources.len() as u32);
                    self.resources.push(Resource::LinkDir { link: link.id, from_a: true });
                    let ba = ResourceId(self.resources.len() as u32);
                    self.resources.push(Resource::LinkDir { link: link.id, from_a: false });
                    self.link_dir.push([ab, ba]);
                }
            }
        }
        self.capacity.clear();
        self.capacity.extend(self.resources.iter().map(|r| r.capacity(topo).as_bytes_per_sec()));
        self.freeze_eps.clear();
        self.freeze_eps.extend(self.capacity.iter().map(|c| EPS * c.max(1.0)));
    }

    /// Intern a path's resource set (sorted, deduplicated) — the id-space
    /// equivalent of [`path_resources`].
    pub fn intern_path(&self, topo: &Topology, path: &Path, out: &mut Vec<ResourceId>) {
        out.clear();
        for (i, l) in path.links.iter().enumerate() {
            let link = topo.link(*l);
            out.push(self.link_dir(*l, path.nodes[i] == link.a));
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// One flow registered with a [`FairEngine`]. Freed slots keep their
/// resource vector so re-adding a flow in steady state allocates nothing.
#[derive(Debug, Default)]
struct FlowSlot {
    resources: Vec<ResourceId>,
    /// `f64::INFINITY` when uncapped.
    cap: f64,
    rate: f64,
    alive: bool,
}

/// Reusable working memory for [`FairEngine::reallocate`]. All vectors are
/// sized once (per-resource arrays) or grow to the high-water flow count
/// (per-slot arrays), after which reallocation performs no heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    /// Per-resource remaining capacity; only entries of active resources
    /// are (re)initialised each call.
    remaining: Vec<f64>,
    /// Per-resource count of *unfrozen* users this call.
    unfrozen: Vec<u32>,
    /// Resources still participating in the current progressive-filling
    /// rounds; pruned as their last user freezes.
    round: Vec<ResourceId>,
    /// Per-slot working rate.
    work: Vec<f64>,
    /// Per-slot frozen flag.
    frozen: Vec<bool>,
    to_freeze: Vec<u32>,
    /// Slots whose committed rate changed in the last reallocate.
    changed: Vec<u32>,
}

/// Incrementally-maintained fair-allocation engine: the hot-path
/// replacement for calling [`allocate`] from scratch on every flow change.
///
/// Flows are registered with [`add_flow`](Self::add_flow) (which returns a
/// dense key) and dropped with [`remove_flow`](Self::remove_flow); both
/// maintain per-resource user counts and the active-resource list, so
/// [`reallocate`](Self::reallocate) touches only resources that currently
/// carry flows and performs zero heap allocation in steady state.
#[derive(Debug)]
pub struct FairEngine {
    table: ResourceTable,
    model: FairnessModel,
    /// Per-resource count of live flows crossing it.
    users: Vec<u32>,
    /// Resources with `users > 0` (unordered; `active_pos` locates them).
    active: Vec<ResourceId>,
    /// Position of each resource in `active`, or `u32::MAX`.
    active_pos: Vec<u32>,
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    /// Live keys in insertion order — the order rates are filled, matching
    /// the oracle's demand-vector order for differential testing.
    live: Vec<u32>,
    scratch: Scratch,
}

impl FairEngine {
    pub fn new(topo: &Topology, model: FairnessModel) -> Self {
        let table = ResourceTable::new(topo);
        let n = table.len();
        FairEngine {
            table,
            model,
            users: vec![0; n],
            active: Vec::new(),
            active_pos: vec![u32::MAX; n],
            slots: Vec::new(),
            free: Vec::new(),
            live: Vec::new(),
            scratch: Scratch {
                remaining: vec![0.0; n],
                unfrozen: vec![0; n],
                ..Scratch::default()
            },
        }
    }

    pub fn table(&self) -> &ResourceTable {
        &self.table
    }

    pub fn model(&self) -> FairnessModel {
        self.model
    }

    /// Switch the sharing model. Takes effect on the next reallocate, like
    /// the from-scratch path did.
    pub fn set_model(&mut self, model: FairnessModel) {
        self.model = model;
    }

    /// Re-read resource capacities from the topology (whose structure must
    /// be unchanged — links and mediums cannot be added or removed after
    /// build). Call after mutating link or medium capacities for failure
    /// injection; like the from-scratch path, the new values take effect on
    /// the next reallocate.
    pub fn refresh_capacities(&mut self, topo: &Topology) {
        debug_assert_eq!(
            self.table.link_dir.len(),
            topo.link_count(),
            "topology structure changed under the interner"
        );
        for (i, r) in self.table.resources.iter().enumerate() {
            let cap = r.capacity(topo).as_bytes_per_sec();
            self.table.capacity[i] = cap;
            self.table.freeze_eps[i] = EPS * cap.max(1.0);
        }
    }

    /// Bring the engine in sync with a topology that may have *grown* (new
    /// hosts and access links appended by the churn mutators) as well as
    /// changed capacities. Resource ids are stable under growth, so live
    /// flows keep their interned resource lists; the per-resource state
    /// arrays are extended to match. Safe to call with flows active — the
    /// new capacities take effect on the next reallocate, exactly like
    /// [`refresh_capacities`](Self::refresh_capacities).
    pub fn sync_topology(&mut self, topo: &Topology) {
        if self.table.covers(topo) {
            self.refresh_capacities(topo);
            return;
        }
        self.table.sync(topo);
        let n = self.table.len();
        self.users.resize(n, 0);
        self.active_pos.resize(n, u32::MAX);
        self.scratch.remaining.resize(n, 0.0);
        self.scratch.unfrozen.resize(n, 0);
    }

    pub fn flow_count(&self) -> usize {
        self.live.len()
    }

    /// Committed rate (bytes/sec) of a registered flow.
    pub fn rate(&self, key: u32) -> f64 {
        self.slots[key as usize].rate
    }

    /// Live keys in allocation order.
    pub fn live_keys(&self) -> &[u32] {
        &self.live
    }

    /// The resource list of a registered flow (sorted, deduplicated).
    pub fn resources(&self, key: u32) -> &[ResourceId] {
        &self.slots[key as usize].resources
    }

    /// Optional rate cap (bytes/sec) of a registered flow.
    pub fn rate_cap(&self, key: u32) -> Option<f64> {
        let cap = self.slots[key as usize].cap;
        cap.is_finite().then_some(cap)
    }

    fn activate(&mut self, r: ResourceId) {
        self.active_pos[r.index()] = self.active.len() as u32;
        self.active.push(r);
    }

    fn deactivate(&mut self, r: ResourceId) {
        let pos = self.active_pos[r.index()] as usize;
        self.active.swap_remove(pos);
        if let Some(&moved) = self.active.get(pos) {
            self.active_pos[moved.index()] = pos as u32;
        }
        self.active_pos[r.index()] = u32::MAX;
    }

    /// Register a flow crossing the given resources (need not be sorted;
    /// duplicates are collapsed). Returns the flow's dense key. Does not
    /// reallocate — call [`reallocate`](Self::reallocate) after the batch
    /// of changes.
    pub fn add_flow(&mut self, resources: &[ResourceId], rate_cap: Option<f64>) -> u32 {
        debug_assert!(
            !resources.is_empty() || rate_cap.is_some(),
            "flow without resources or cap has unbounded rate"
        );
        let key = match self.free.pop() {
            Some(k) => k,
            None => {
                self.slots.push(FlowSlot::default());
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[key as usize];
        slot.resources.clear();
        slot.resources.extend_from_slice(resources);
        slot.resources.sort_unstable();
        slot.resources.dedup();
        slot.cap = rate_cap.unwrap_or(f64::INFINITY);
        slot.rate = 0.0;
        slot.alive = true;
        self.live.push(key);
        for i in 0..self.slots[key as usize].resources.len() {
            let r = self.slots[key as usize].resources[i];
            self.users[r.index()] += 1;
            if self.users[r.index()] == 1 {
                self.activate(r);
            }
        }
        key
    }

    /// Drop a registered flow, releasing its resource references. The slot
    /// (and its resource vector's capacity) is recycled by later adds.
    pub fn remove_flow(&mut self, key: u32) {
        let slot = &mut self.slots[key as usize];
        assert!(slot.alive, "removing dead flow {key}");
        slot.alive = false;
        slot.rate = 0.0;
        for i in 0..self.slots[key as usize].resources.len() {
            let r = self.slots[key as usize].resources[i];
            self.users[r.index()] -= 1;
            if self.users[r.index()] == 0 {
                self.deactivate(r);
            }
        }
        let pos =
            self.live.iter().position(|&k| k == key).expect("live list contains every alive flow");
        // Ordered removal keeps allocation order stable for the remaining
        // flows (and bit-for-bit agreement with the oracle's demand order).
        self.live.remove(pos);
        self.free.push(key);
    }

    /// Keys whose committed rate changed in the last
    /// [`reallocate`](Self::reallocate) (for completion-time invalidation).
    pub fn changed(&self) -> &[u32] {
        &self.scratch.changed
    }

    /// Recompute all rates under the configured model. The keys whose
    /// committed rate changed are readable via [`changed`](Self::changed).
    /// Allocation-free once scratch has grown to the high-water flow count.
    pub fn reallocate(&mut self) {
        // Grow per-slot scratch to the slot high-water mark (no-ops in
        // steady state).
        let n_slots = self.slots.len();
        if self.scratch.work.len() < n_slots {
            self.scratch.work.resize(n_slots, 0.0);
            self.scratch.frozen.resize(n_slots, false);
        }
        match self.model {
            FairnessModel::MaxMin => self.reallocate_max_min(),
            FairnessModel::BottleneckEqualShare => self.reallocate_equal_share(),
        }
        // Commit, collecting changed flows.
        let s = &mut self.scratch;
        s.changed.clear();
        for &k in &self.live {
            let slot = &mut self.slots[k as usize];
            if s.work[k as usize] != slot.rate {
                slot.rate = s.work[k as usize];
                s.changed.push(k);
            }
        }
    }

    /// Progressive filling over interned resources — the same rounds, in
    /// the same floating-point order, as [`max_min_allocate`].
    fn reallocate_max_min(&mut self) {
        let s = &mut self.scratch;
        for &r in &self.active {
            s.remaining[r.index()] = self.table.capacity[r.index()];
            s.unfrozen[r.index()] = self.users[r.index()];
        }
        s.round.clear();
        s.round.extend_from_slice(&self.active);
        for &k in &self.live {
            s.work[k as usize] = 0.0;
            s.frozen[k as usize] = false;
        }
        let mut unfrozen_flows = self.live.len();

        // Each round freezes at least one flow (or bails on numerical
        // stagnation), so this terminates in <= live.len() rounds.
        while unfrozen_flows > 0 {
            // The uniform increment all unfrozen flows can still take,
            // scanning only resources that still carry unfrozen users.
            let mut delta = f64::INFINITY;
            let mut i = 0;
            while i < s.round.len() {
                let r = s.round[i];
                let u = s.unfrozen[r.index()];
                if u == 0 {
                    s.round.swap_remove(i);
                    continue;
                }
                delta = delta.min(s.remaining[r.index()] / u as f64);
                i += 1;
            }
            for &k in &self.live {
                if s.frozen[k as usize] {
                    continue;
                }
                let cap = self.slots[k as usize].cap;
                if cap.is_finite() {
                    delta = delta.min(cap - s.work[k as usize]);
                }
            }
            debug_assert!(delta.is_finite(), "unfrozen flow with no binding constraint");
            let delta = delta.max(0.0);

            for &k in &self.live {
                if s.frozen[k as usize] {
                    continue;
                }
                s.work[k as usize] += delta;
                for &r in &self.slots[k as usize].resources {
                    s.remaining[r.index()] -= delta;
                }
            }

            s.to_freeze.clear();
            for &k in &self.live {
                if s.frozen[k as usize] {
                    continue;
                }
                let slot = &self.slots[k as usize];
                let saturated = slot
                    .resources
                    .iter()
                    .any(|r| s.remaining[r.index()] <= self.table.freeze_eps[r.index()]);
                let capped = slot.cap.is_finite() && s.work[k as usize] + EPS >= slot.cap;
                if saturated || capped {
                    s.to_freeze.push(k);
                }
            }
            if s.to_freeze.is_empty() {
                // delta was 0 without progress — numerically stuck; stop
                // raising rates (everything keeps its current share).
                break;
            }
            for ti in 0..s.to_freeze.len() {
                let k = s.to_freeze[ti];
                s.frozen[k as usize] = true;
                unfrozen_flows -= 1;
                for &r in &self.slots[k as usize].resources {
                    s.unfrozen[r.index()] -= 1;
                }
            }
        }
    }

    /// Flat-array equivalent of [`equal_share_allocate`]: every flow is
    /// counted on every resource it crosses.
    fn reallocate_equal_share(&mut self) {
        let s = &mut self.scratch;
        for &k in &self.live {
            let slot = &self.slots[k as usize];
            let mut rate = slot.cap;
            for &r in &slot.resources {
                let share = self.table.capacity[r.index()] / self.users[r.index()] as f64;
                rate = rate.min(share);
            }
            debug_assert!(rate.is_finite(), "flow without resources or cap");
            s.work[k as usize] = rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;
    use crate::topology::{NodeId, TopologyBuilder};
    use crate::units::Latency;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::mbps(x)
    }

    struct Net {
        topo: Topology,
        routes: RouteTable,
    }

    impl Net {
        fn demand(&self, src: NodeId, dst: NodeId) -> FlowDemand {
            let p = self.routes.path(&self.topo, src, dst).unwrap();
            FlowDemand { resources: path_resources(&self.topo, &p), rate_cap: None }
        }
    }

    fn hub_net(n_hosts: usize, rate: f64) -> (Net, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", mbps(rate), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..n_hosts)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, hub);
                h
            })
            .collect();
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        (Net { topo, routes }, hosts)
    }

    fn switch_net(n_hosts: usize, rate: f64) -> (Net, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let sw = b.switch("sw", mbps(rate), Latency::micros(10.0));
        let hosts: Vec<NodeId> = (0..n_hosts)
            .map(|i| {
                let h = b.host(&format!("h{i}.x"), &format!("10.0.0.{}", i + 1));
                b.attach(h, sw);
                h
            })
            .collect();
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        (Net { topo, routes }, hosts)
    }

    #[test]
    fn single_flow_gets_bottleneck() {
        let (net, h) = hub_net(2, 100.0);
        let rates = max_min_allocate(&net.topo, &[net.demand(h[0], h[1])]);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn hub_flows_share_one_medium() {
        // Two disjoint pairs on one hub still halve each other — the
        // behaviour NWS's clique protocol exists to avoid (paper §2.3).
        let (net, h) = hub_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn hub_medium_counted_once_per_flow() {
        // A single flow through a hub crosses two ports but must still get
        // the full medium rate, not half.
        let (net, h) = hub_net(2, 100.0);
        let d = net.demand(h[0], h[1]);
        assert_eq!(d.resources.len(), 1, "medium must be deduplicated");
        let rates = max_min_allocate(&net.topo, &[d]);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn switch_flows_are_independent() {
        let (net, h) = switch_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn switch_flows_share_common_port() {
        // Both flows leave the same source host: its single port is the
        // bottleneck — the effect that keeps ENV's pairwise test from
        // splitting switched clusters.
        let (net, h) = switch_net(3, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[0], h[2])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn opposite_directions_share_hub_but_not_switch() {
        let (net, h) = hub_net(2, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[1], h[0])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 50.0).abs() < 1e-6, "hub is half-duplex");

        let (net, h) = switch_net(2, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[1], h[0])];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 100.0).abs() < 1e-6, "switch is full-duplex");
        assert!((rates[1].as_mbps() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn rate_cap_binds() {
        let (net, h) = switch_net(2, 100.0);
        let mut d = net.demand(h[0], h[1]);
        d.rate_cap = Some(mbps(7.0));
        let rates = max_min_allocate(&net.topo, &[d]);
        assert!((rates[0].as_mbps() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn capped_flow_releases_capacity_to_others() {
        let (net, h) = switch_net(3, 100.0);
        let mut capped = net.demand(h[0], h[1]);
        capped.rate_cap = Some(mbps(10.0));
        let open = net.demand(h[0], h[2]);
        // Both flows share h0's egress port (100 Mbps): the capped flow
        // takes 10, the other grows to 90.
        let rates = max_min_allocate(&net.topo, &[capped, open]);
        assert!((rates[0].as_mbps() - 10.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn classic_line_network_max_min() {
        // a —10M— r1 —10M— r2 —10M— c with flows a→r2-side host etc.
        // Use 3 hosts in a line via two routers; long flow shares both
        // links with two short flows → long flow gets 5, shorts get 5 then
        // fill to... classic parking-lot: all get 5 on the contended link;
        // short flow on the other link also 5 since both links carry
        // (long, one short).
        let mut b = TopologyBuilder::new();
        let a = b.host("a.x", "10.0.0.1");
        let m = b.host("m.x", "10.0.0.2");
        let c = b.host("c.x", "10.0.0.3");
        let r1 = b.router("r1.x", "10.0.1.1");
        let r2 = b.router("r2.x", "10.0.1.2");
        b.link(a, r1, mbps(100.0), Latency::ZERO);
        b.link(r1, r2, mbps(10.0), Latency::ZERO);
        b.link(r2, c, mbps(100.0), Latency::ZERO);
        b.link(r1, m, mbps(100.0), Latency::ZERO);
        let topo = b.build().unwrap();
        let routes = RouteTable::compute(&topo);
        let net = Net { topo, routes };
        // Flow 1: a→c (crosses r1-r2). Flow 2: m→c (crosses r1-r2 too).
        // Flow 3: a→m (does not cross the bottleneck).
        let flows = vec![net.demand(a, c), net.demand(m, c), net.demand(a, m)];
        let rates = max_min_allocate(&net.topo, &flows);
        assert!((rates[0].as_mbps() - 5.0).abs() < 1e-6);
        assert!((rates[1].as_mbps() - 5.0).abs() < 1e-6);
        // Flow 3 shares a→r1 with flow 1 (which froze at 5): gets 95.
        assert!((rates[2].as_mbps() - 95.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input() {
        let (net, _) = hub_net(2, 100.0);
        assert!(max_min_allocate(&net.topo, &[]).is_empty());
        assert!(equal_share_allocate(&net.topo, &[]).is_empty());
    }

    #[test]
    fn equal_share_matches_max_min_on_single_bottleneck() {
        // On one shared hub the two models agree exactly.
        let (net, h) = hub_net(4, 100.0);
        let flows = vec![net.demand(h[0], h[1]), net.demand(h[2], h[3])];
        let mm = max_min_allocate(&net.topo, &flows);
        let es = equal_share_allocate(&net.topo, &flows);
        for (a, b) in mm.iter().zip(&es) {
            assert!((a.as_mbps() - b.as_mbps()).abs() < 1e-9);
        }
    }

    #[test]
    fn equal_share_is_pessimistic_on_parking_lot() {
        // Classic difference: a flow bottlenecked elsewhere still "uses"
        // its share under equal-share, so the co-located flow gets less
        // than max-min would grant it.
        let (net, h) = switch_net(3, 100.0);
        let mut capped = net.demand(h[0], h[1]);
        capped.rate_cap = Some(mbps(10.0));
        let open = net.demand(h[0], h[2]);
        let flows = vec![capped, open];
        let mm = max_min_allocate(&net.topo, &flows);
        let es = equal_share_allocate(&net.topo, &flows);
        assert!((mm[1].as_mbps() - 90.0).abs() < 1e-6, "max-min redistributes");
        assert!((es[1].as_mbps() - 50.0).abs() < 1e-6, "equal share does not");
        // The model selector dispatches correctly.
        let via_enum = allocate(&net.topo, &flows, FairnessModel::BottleneckEqualShare);
        assert_eq!(es, via_enum);
    }

    #[test]
    fn resource_table_interns_every_resource() {
        let mut b = TopologyBuilder::new();
        let hub = b.hub("hub", mbps(10.0), Latency::micros(10.0));
        let sw = b.switch("sw", mbps(100.0), Latency::micros(10.0));
        let a = b.host("a.x", "10.0.0.1");
        let c = b.host("c.x", "10.0.0.2");
        b.attach(a, hub);
        b.attach(c, sw);
        let r = b.router("r.x", "10.0.1.1");
        b.attach(r, hub);
        b.attach(r, sw);
        let topo = b.build().unwrap();
        let table = ResourceTable::new(&topo);
        // 1 medium + 2 directions for each of the 2 full-duplex switch
        // ports; the 2 hub ports share the medium resource.
        assert_eq!(table.len(), 5);
        let routes = RouteTable::compute(&topo);
        let path = routes.path(&topo, a, c).unwrap();
        let mut ids = Vec::new();
        table.intern_path(&topo, &path, &mut ids);
        let plain = path_resources(&topo, &path);
        assert_eq!(ids.len(), plain.len(), "interned set matches the oracle's");
        // Same multiset of resources, same capacities.
        let mut caps_interned: Vec<f64> = ids.iter().map(|&r| table.capacity(r)).collect();
        let mut caps_plain: Vec<f64> =
            plain.iter().map(|r| r.capacity(&topo).as_bytes_per_sec()).collect();
        caps_interned.sort_by(f64::total_cmp);
        caps_plain.sort_by(f64::total_cmp);
        assert_eq!(caps_interned, caps_plain);
        for &id in &ids {
            assert!(plain.contains(&table.resource(id)));
        }
    }

    #[test]
    fn fair_engine_recycles_slots_without_leaking_users() {
        let (net, h) = hub_net(3, 100.0);
        let mut fe = FairEngine::new(&net.topo, FairnessModel::MaxMin);
        let table = ResourceTable::new(&net.topo);
        let mut ids = Vec::new();
        let p = net.routes.path(&net.topo, h[0], h[1]).unwrap();
        table.intern_path(&net.topo, &p, &mut ids);
        let k1 = fe.add_flow(&ids, None);
        let k2 = fe.add_flow(&ids, None);
        fe.reallocate();
        // Two flows on one 100 Mbps hub medium: 50 Mbps each.
        assert!((fe.rate(k1) - mbps(50.0).as_bytes_per_sec()).abs() < 1.0);
        assert!((fe.rate(k2) - mbps(50.0).as_bytes_per_sec()).abs() < 1.0);
        assert_eq!(fe.flow_count(), 2);
        fe.remove_flow(k1);
        fe.reallocate();
        // The lone survivor gets the whole medium back.
        assert!((fe.rate(k2) - mbps(100.0).as_bytes_per_sec()).abs() < 1.0);
        // The freed slot is recycled.
        let k3 = fe.add_flow(&ids, None);
        assert_eq!(k3, k1, "freelist reuses the freed key");
        fe.reallocate();
        assert!((fe.rate(k2) - mbps(50.0).as_bytes_per_sec()).abs() < 1.0);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A platform mixing one hub and one switch behind a router.
        fn mixed_net(n_each: usize, rate: f64) -> (Net, Vec<NodeId>) {
            let mut b = TopologyBuilder::new();
            let hub = b.hub("hub", mbps(rate), Latency::micros(10.0));
            let sw = b.switch("sw", mbps(rate), Latency::micros(10.0));
            let r = b.router("r.x", "10.9.0.1");
            b.attach(r, hub);
            b.attach(r, sw);
            let mut hosts = Vec::new();
            for i in 0..n_each {
                let h = b.host(&format!("hh{i}.x"), &format!("10.1.0.{}", i + 1));
                b.attach(h, hub);
                hosts.push(h);
            }
            for i in 0..n_each {
                let h = b.host(&format!("sh{i}.x"), &format!("10.2.0.{}", i + 1));
                b.attach(h, sw);
                hosts.push(h);
            }
            let topo = b.build().unwrap();
            let routes = RouteTable::compute(&topo);
            (Net { topo, routes }, hosts)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Mixed hub+switch platforms keep the same invariants, and the
            /// hub medium is never oversubscribed by cross-device flows.
            #[test]
            fn max_min_invariants_mixed(
                n_each in 2usize..5,
                pairs in proptest::collection::vec((0usize..10, 0usize..10), 1..10),
                rate in 10.0f64..500.0,
            ) {
                let (net, hosts) = mixed_net(n_each, rate);
                let n = hosts.len();
                let flows: Vec<FlowDemand> = pairs
                    .iter()
                    .filter_map(|(s, d)| {
                        let s = s % n;
                        let d = d % n;
                        (s != d).then(|| net.demand(hosts[s], hosts[d]))
                    })
                    .collect();
                prop_assume!(!flows.is_empty());
                let rates = max_min_allocate(&net.topo, &flows);

                let mut usage: std::collections::BTreeMap<Resource, f64> =
                    std::collections::BTreeMap::new();
                for (f, r) in flows.iter().zip(&rates) {
                    prop_assert!(r.as_bytes_per_sec() > 0.0, "starved flow");
                    for res in &f.resources {
                        *usage.entry(*res).or_insert(0.0) += r.as_bytes_per_sec();
                    }
                }
                for (res, used) in &usage {
                    let cap = res.capacity(&net.topo).as_bytes_per_sec();
                    prop_assert!(*used <= cap * (1.0 + 1e-6),
                        "{res:?} oversubscribed");
                }
            }

            /// On a random star switch with random flows, no resource is
            /// oversubscribed and every flow is bottlenecked somewhere.
            #[test]
            fn max_min_invariants(
                n_hosts in 2usize..8,
                pairs in proptest::collection::vec((0usize..8, 0usize..8), 1..12),
                rate in 10.0f64..1000.0,
            ) {
                let (net, hosts) = switch_net(n_hosts, rate);
                let flows: Vec<FlowDemand> = pairs
                    .iter()
                    .filter_map(|(s, d)| {
                        let s = s % n_hosts;
                        let d = d % n_hosts;
                        (s != d).then(|| net.demand(hosts[s], hosts[d]))
                    })
                    .collect();
                prop_assume!(!flows.is_empty());
                let rates = max_min_allocate(&net.topo, &flows);

                // No resource oversubscribed.
                let mut usage: std::collections::BTreeMap<Resource, f64> =
                    std::collections::BTreeMap::new();
                for (f, r) in flows.iter().zip(&rates) {
                    for res in &f.resources {
                        *usage.entry(*res).or_insert(0.0) += r.as_bytes_per_sec();
                    }
                }
                for (res, used) in &usage {
                    let cap = res.capacity(&net.topo).as_bytes_per_sec();
                    prop_assert!(*used <= cap * (1.0 + 1e-6),
                        "resource {res:?} oversubscribed: {used} > {cap}");
                }

                // Every flow is bottlenecked: it crosses some resource
                // whose capacity is (nearly) fully used.
                for (f, r) in flows.iter().zip(&rates) {
                    prop_assert!(r.as_bytes_per_sec() > 0.0);
                    let bottlenecked = f.resources.iter().any(|res| {
                        let cap = res.capacity(&net.topo).as_bytes_per_sec();
                        usage[res] >= cap * (1.0 - 1e-6)
                    });
                    prop_assert!(bottlenecked, "flow has slack everywhere");
                }
            }

            /// Differential suite: the incremental [`FairEngine`] must
            /// produce the same per-flow rates as the from-scratch oracle
            /// after every step of a random add/remove sequence, on random
            /// mixed hub+switch topologies, under both sharing models.
            #[test]
            fn incremental_engine_matches_oracle(
                n_each in 2usize..5,
                rate in 10.0f64..500.0,
                // Each op: (src pick, dst pick, cap pick, remove?). cap 0 →
                // uncapped, otherwise a cap between rate/8 and rate Mbps.
                // remove=true drops the oldest live flow instead of adding.
                ops in proptest::collection::vec(
                    (0usize..12, 0usize..12, 0usize..8, proptest::bool::ANY),
                    1..25
                ),
                equal_share in proptest::bool::ANY,
            ) {
                let (net, hosts) = mixed_net(n_each, rate);
                let model = if equal_share {
                    FairnessModel::BottleneckEqualShare
                } else {
                    FairnessModel::MaxMin
                };
                let mut fe = FairEngine::new(&net.topo, model);
                let table = ResourceTable::new(&net.topo);
                // Shadow state, keyed in the engine's live order.
                let mut shadow: std::collections::HashMap<u32, FlowDemand> =
                    std::collections::HashMap::new();
                let mut ids = Vec::new();
                let n = hosts.len();

                for (s, d, cap_pick, remove) in ops {
                    if remove && !shadow.is_empty() {
                        // Remove the oldest live flow.
                        let key = fe.live_keys()[0];
                        fe.remove_flow(key);
                        shadow.remove(&key);
                    } else {
                        let s = s % n;
                        let d = d % n;
                        if s == d {
                            continue;
                        }
                        let mut demand = net.demand(hosts[s], hosts[d]);
                        if cap_pick > 0 {
                            demand.rate_cap = Some(mbps(cap_pick as f64 * rate / 8.0));
                        }
                        let p = net.routes.path(&net.topo, hosts[s], hosts[d]).unwrap();
                        table.intern_path(&net.topo, &p, &mut ids);
                        let key = fe.add_flow(
                            &ids,
                            demand.rate_cap.map(|c| c.as_bytes_per_sec()),
                        );
                        shadow.insert(key, demand);
                    }
                    fe.reallocate();

                    // Oracle demands in the engine's allocation order.
                    let demands: Vec<FlowDemand> = fe
                        .live_keys()
                        .iter()
                        .map(|k| shadow[k].clone())
                        .collect();
                    let oracle = allocate(&net.topo, &demands, model);
                    for (k, want) in fe.live_keys().iter().zip(&oracle) {
                        let got = fe.rate(*k);
                        let want = want.as_bytes_per_sec();
                        prop_assert!(
                            (got - want).abs() <= want.abs() * 1e-9 + 1e-9,
                            "flow {k}: incremental {got} vs oracle {want} \
                             ({} flows, model {model:?})",
                            demands.len()
                        );
                    }
                }
            }

            /// Interned path extraction agrees with [`path_resources`] on
            /// identity and capacity for every host pair.
            #[test]
            fn interned_paths_match_oracle(
                n_each in 2usize..5,
                rate in 10.0f64..500.0,
            ) {
                let (net, hosts) = mixed_net(n_each, rate);
                let table = ResourceTable::new(&net.topo);
                let mut ids = Vec::new();
                for &a in &hosts {
                    for &b in &hosts {
                        if a == b {
                            continue;
                        }
                        let p = net.routes.path(&net.topo, a, b).unwrap();
                        table.intern_path(&net.topo, &p, &mut ids);
                        let plain = path_resources(&net.topo, &p);
                        prop_assert_eq!(ids.len(), plain.len());
                        for &id in &ids {
                            prop_assert!(plain.contains(&table.resource(id)));
                        }
                    }
                }
            }
        }
    }
}
