//! Topology churn: seeded mutation schedules for the synthetic scenario
//! families, with maintained ground-truth effective clusters.
//!
//! The paper treats deployment as a single act; its real target (and the
//! autonomic framing of Dearle et al.) is a platform that *changes* under
//! a running NWS: hosts join a LAN, leave it, a LAN is re-provisioned or
//! partitioned off. This module produces such change as replayable
//! [`ChurnEvent`]s over a [`crate::synth`] scenario, in two halves:
//!
//! * [`apply_churn`] mutates an engine's topology (any engine — the
//!   mapping simulator and a live NWS engine can replay the same events)
//!   through the post-build mutators ([`Topology::add_host_like`],
//!   [`Topology::isolate_node`], capacity edits) and recomputes routes;
//! * [`ChurnState`] owns the bookkeeping: the current mapped host set and
//!   the current ground-truth effective clusters, plus a seeded generator
//!   ([`ChurnState::plan_epoch`]) that only proposes events which keep the
//!   truth well-defined (see below). [`ChurnState::commit`] folds events
//!   into the bookkeeping and reports the **dirty hosts** — the
//!   neighborhood whose measurements may have changed, which is exactly
//!   the contract `envmap`'s incremental re-mapper needs.
//!
//! ## Why the generated events keep the truth exact
//!
//! Events only ever touch *leaf-LAN* clusters that do not contain the
//! master (for the grid family, only site-0 inner LANs — never the
//! gateways). Within such a cluster:
//!
//! * adding/removing a member changes membership but not the sharing
//!   structure (the newcomer sits on the same hub medium or switch, behind
//!   the same LAN-router port, so pairwise dependence through that port is
//!   preserved);
//! * re-provisioning the LAN's rate changes measured bandwidths but not
//!   membership (members still share the LAN-router port / medium);
//! * partitioning downs every member's access link and drops the members
//!   from the managed set — the paper's operational answer to an
//!   unreachable subnet.
//!
//! Rate events are never generated for the fat-tree family: a pod's
//! effective cluster relies on the master's port being the shared
//! bottleneck, which a slower pod rate would break (the cluster would
//! legitimately dissolve into per-edge-switch clusters — a real effect,
//! but not one a maintained label set can track cheaply).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::Engine;
use crate::error::{NetError, NetResult};
use crate::synth::{SynthFamily, SynthScenario};
use crate::topology::{LinkMode, MediumId, NodeId, Topology};
use crate::units::Bandwidth;

/// One platform mutation. Events are name-based and self-contained so the
/// same schedule can be replayed onto several engines simulating the same
/// platform (e.g. the mapping simulator and the NWS engine).
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// A new host joins truth cluster `cluster`, attached like `sibling`
    /// (same hub medium or an identical switch port).
    AddHost { cluster: usize, name: String, ip: String, sibling: String },
    /// A member leaves the platform: its access link goes down and it
    /// drops out of the mapped set.
    RemoveHost { cluster: usize, name: String },
    /// The LAN carrying cluster `cluster` is re-provisioned: its medium
    /// (hub) or every port on its infrastructure node (switch) changes to
    /// `mbps`.
    SetLanRate { cluster: usize, members: Vec<String>, mbps: f64 },
    /// The LAN is partitioned off: every member's access link goes down
    /// and the members leave the managed set.
    Partition { cluster: usize, members: Vec<String> },
}

/// One maintained ground-truth cluster.
#[derive(Debug, Clone)]
pub struct ChurnCluster {
    pub members: Vec<String>,
    pub is_hub: bool,
    pub rate_mbps: f64,
    /// False once partitioned away.
    pub active: bool,
    /// Whether the churn generator may touch this cluster (leaf LAN, no
    /// master, and — for the grid family — not a gateway cluster).
    mutable: bool,
}

/// Churn bookkeeping over one synthetic scenario: the evolving mapped host
/// set and truth partition, plus the seeded event generator.
#[derive(Debug, Clone)]
pub struct ChurnState {
    pub family: SynthFamily,
    pub master: String,
    pub external: Option<String>,
    hosts: Vec<String>,
    pub clusters: Vec<ChurnCluster>,
    joined: usize,
    rng: SmallRng,
}

impl ChurnState {
    /// Ingest a freshly generated scenario. `seed` drives the event
    /// generator (independent of the scenario's own seed).
    pub fn new(sc: &SynthScenario, seed: u64) -> Self {
        let master = sc.master_name();
        let hosts = sc.input_names();
        let clusters = sc
            .truth
            .clusters
            .iter()
            .map(|c| {
                let members: Vec<String> = c.members.iter().map(|m| sc.host_name(*m)).collect();
                let mutable = members.len() >= 2
                    && !members.contains(&master)
                    && (sc.family != SynthFamily::Grid
                        || members.iter().all(|m| m.contains(".lan")));
                ChurnCluster {
                    members,
                    is_hub: c.is_hub,
                    rate_mbps: c.rate.as_mbps(),
                    active: true,
                    mutable,
                }
            })
            .collect();
        ChurnState {
            family: sc.family,
            master,
            external: sc.external_name(),
            hosts,
            clusters,
            joined: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0xc4a2_11fe),
        }
    }

    /// The current mapped host set (master first, joiners appended).
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// Current ground-truth effective clusters, for scoring.
    pub fn truth_labels(&self) -> Vec<Vec<String>> {
        self.clusters
            .iter()
            .filter(|c| c.active && !c.members.is_empty())
            .map(|c| c.members.clone())
            .collect()
    }

    fn eligible(&self, extra: impl Fn(&ChurnCluster) -> bool) -> Vec<usize> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active && c.mutable && extra(c))
            .map(|(i, _)| i)
            .collect()
    }

    /// Generate one epoch of `events` churn events against the current
    /// state. Deterministic per seed and call sequence. The events are not
    /// yet applied — replay them with [`apply_churn`] on every engine, then
    /// fold them in with [`ChurnState::commit`].
    pub fn plan_epoch(&mut self, events: usize) -> Vec<ChurnEvent> {
        let mut out = Vec::with_capacity(events);
        // Track pending membership changes so one epoch's events stay
        // consistent with each other (e.g. no removing the host an earlier
        // event of the same epoch already removed).
        let mut pending = self.clone_membership();
        for _ in 0..events {
            let kind = self.rng.gen_range(0u32..10);
            let ev = match kind {
                // 40% joins, 30% leaves, 20% rate changes, 10% partitions.
                0..=3 => self.plan_add(&mut pending),
                4..=6 => self.plan_remove(&mut pending),
                7..=8 => self.plan_rate(&pending),
                _ => self.plan_partition(&mut pending),
            };
            if let Some(ev) = ev {
                out.push(ev);
            }
        }
        out
    }

    fn clone_membership(&self) -> Vec<(Vec<String>, bool)> {
        self.clusters.iter().map(|c| (c.members.clone(), c.active)).collect()
    }

    fn pick(&mut self, pool: &[usize]) -> Option<usize> {
        if pool.is_empty() {
            return None;
        }
        Some(pool[self.rng.gen_range(0..pool.len())])
    }

    fn plan_add(&mut self, pending: &mut [(Vec<String>, bool)]) -> Option<ChurnEvent> {
        let pool: Vec<usize> =
            self.eligible(|_| true).into_iter().filter(|&i| pending[i].1).collect();
        let cluster = self.pick(&pool)?;
        let sibling = pending[cluster].0.last()?.clone();
        let n = self.joined;
        self.joined += 1;
        // Joiners live in 198.18/15 (benchmarking range), far from every
        // synth family's plan.
        let name = format!("joiner{n}.churn.synth");
        let ip = format!("198.18.{}.{}", n / 200, n % 200 + 1);
        pending[cluster].0.push(name.clone());
        Some(ChurnEvent::AddHost { cluster, name, ip, sibling })
    }

    fn plan_remove(&mut self, pending: &mut [(Vec<String>, bool)]) -> Option<ChurnEvent> {
        let pool: Vec<usize> = self
            .eligible(|_| true)
            .into_iter()
            .filter(|&i| pending[i].1 && pending[i].0.len() >= 3)
            .collect();
        let cluster = self.pick(&pool)?;
        let name = pending[cluster].0.pop()?;
        Some(ChurnEvent::RemoveHost { cluster, name })
    }

    fn plan_rate(&mut self, pending: &[(Vec<String>, bool)]) -> Option<ChurnEvent> {
        if self.family == SynthFamily::FatTree {
            return None; // see module docs: pod truth is rate-sensitive
        }
        let pool: Vec<usize> =
            self.eligible(|_| true).into_iter().filter(|&i| pending[i].1).collect();
        let cluster = self.pick(&pool)?;
        let mbps = if self.clusters[cluster].rate_mbps < 50.0 { 100.0 } else { 10.0 };
        Some(ChurnEvent::SetLanRate { cluster, members: pending[cluster].0.clone(), mbps })
    }

    fn plan_partition(&mut self, pending: &mut [(Vec<String>, bool)]) -> Option<ChurnEvent> {
        // Keep at least three live clusters so the platform stays worth
        // planning for (inter-clique and all).
        let live = pending.iter().filter(|(m, a)| *a && !m.is_empty()).count();
        if live <= 3 {
            return None;
        }
        let pool: Vec<usize> =
            self.eligible(|_| true).into_iter().filter(|&i| pending[i].1).collect();
        let cluster = self.pick(&pool)?;
        pending[cluster].1 = false;
        Some(ChurnEvent::Partition { cluster, members: pending[cluster].0.clone() })
    }

    /// Fold applied events into the bookkeeping. Returns the **dirty
    /// hosts**: every current host whose site/structural neighborhood was
    /// touched — the set the incremental re-mapper must re-probe. Removed
    /// and partitioned hosts leave the mapped set (and are not reported
    /// dirty: they are simply gone).
    pub fn commit(&mut self, events: &[ChurnEvent]) -> Vec<String> {
        let mut dirty: Vec<String> = Vec::new();
        for ev in events {
            match ev {
                ChurnEvent::AddHost { cluster, name, .. } => {
                    self.clusters[*cluster].members.push(name.clone());
                    self.hosts.push(name.clone());
                    dirty.extend(self.clusters[*cluster].members.iter().cloned());
                }
                ChurnEvent::RemoveHost { cluster, name } => {
                    self.clusters[*cluster].members.retain(|m| m != name);
                    self.hosts.retain(|h| h != name);
                    dirty.extend(self.clusters[*cluster].members.iter().cloned());
                }
                ChurnEvent::SetLanRate { cluster, mbps, .. } => {
                    self.clusters[*cluster].rate_mbps = *mbps;
                    dirty.extend(self.clusters[*cluster].members.iter().cloned());
                }
                ChurnEvent::Partition { cluster, members } => {
                    self.clusters[*cluster].active = false;
                    self.hosts.retain(|h| !members.contains(h));
                }
            }
        }
        // Only hosts still mapped can be dirty; dedup preserves first-seen
        // order for determinism.
        dirty.retain(|d| self.hosts.iter().any(|h| h == d));
        let mut seen = std::collections::BTreeSet::new();
        dirty.retain(|d| seen.insert(d.clone()));
        dirty
    }
}

/// The infrastructure node (hub/switch) a host hangs off: the peer of its
/// first live link.
fn infra_of(topo: &Topology, host: NodeId) -> NetResult<NodeId> {
    topo.neighbours(host)
        .iter()
        .find(|(l, _)| topo.link(*l).up)
        .map(|(_, n)| *n)
        .ok_or_else(|| NetError::InvalidTopology(format!("host {host} has no live link")))
}

/// Replay churn events onto an engine's topology and recompute routes.
/// Safe with traffic in flight: structural growth appends interned
/// resources (ids are stable), downs are administrative, and capacity
/// changes take effect on the next reallocation — exactly the semantics of
/// the pre-existing failure-injection path.
pub fn apply_churn<M>(eng: &mut Engine<M>, events: &[ChurnEvent]) -> NetResult<()> {
    for ev in events {
        match ev {
            ChurnEvent::AddHost { name, ip, sibling, .. } => {
                let sib = eng
                    .topo()
                    .node_by_name(sibling)
                    .ok_or_else(|| NetError::NameNotFound(sibling.clone()))?;
                let ip = ip.parse().map_err(|_| NetError::NameNotFound(ip.clone()))?;
                eng.topo_mut().add_host_like(name, ip, sib)?;
            }
            ChurnEvent::RemoveHost { name, .. } => {
                let n = eng
                    .topo()
                    .node_by_name(name)
                    .ok_or_else(|| NetError::NameNotFound(name.clone()))?;
                eng.topo_mut().isolate_node(n);
            }
            ChurnEvent::SetLanRate { members, mbps, .. } => {
                let Some(first) = members.first() else { continue };
                let host = eng
                    .topo()
                    .node_by_name(first)
                    .ok_or_else(|| NetError::NameNotFound(first.clone()))?;
                let infra = infra_of(eng.topo(), host)?;
                set_infra_rate(eng.topo_mut(), infra, Bandwidth::mbps(*mbps));
            }
            ChurnEvent::Partition { members, .. } => {
                for m in members {
                    let n = eng
                        .topo()
                        .node_by_name(m)
                        .ok_or_else(|| NetError::NameNotFound(m.clone()))?;
                    eng.topo_mut().isolate_node(n);
                }
            }
        }
    }
    eng.recompute_routes();
    Ok(())
}

/// Re-provision every port of an infrastructure node (and its medium, for
/// a hub) to `rate`.
fn set_infra_rate(topo: &mut Topology, infra: NodeId, rate: Bandwidth) {
    let links: Vec<_> = topo.neighbours(infra).iter().map(|(l, _)| *l).collect();
    let mut mediums: Vec<MediumId> = Vec::new();
    for l in links {
        match &mut topo.link_mut(l).mode {
            LinkMode::FullDuplex { capacity_ab, capacity_ba } => {
                *capacity_ab = rate;
                *capacity_ba = rate;
            }
            LinkMode::Shared { medium } => {
                if !mediums.contains(medium) {
                    mediums.push(*medium);
                }
            }
        }
    }
    for m in mediums {
        topo.medium_mut(m).capacity = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synth;
    use crate::units::Bytes;
    use crate::Sim;

    fn state_for(family: SynthFamily) -> (SynthScenario, ChurnState) {
        let sc = synth(family, 7, 80);
        let st = ChurnState::new(&sc, 99);
        (sc, st)
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for family in SynthFamily::ALL {
            let sc = synth(family, 7, 80);
            let mut a = ChurnState::new(&sc, 5);
            let mut b = ChurnState::new(&sc, 5);
            for _ in 0..3 {
                assert_eq!(a.plan_epoch(4), b.plan_epoch(4), "{}", family.name());
            }
            let mut c = ChurnState::new(&sc, 6);
            let differs = (0..3).any(|_| a.plan_epoch(4) != c.plan_epoch(4));
            assert!(differs, "{}: schedule must vary with the seed", family.name());
        }
    }

    #[test]
    fn truth_stays_a_partition_of_the_mapped_set() {
        for family in SynthFamily::ALL {
            let (sc, mut st) = state_for(family);
            let mut eng = Sim::new(sc.net.topo.clone());
            for _ in 0..5 {
                let evs = st.plan_epoch(3);
                apply_churn(&mut eng, &evs).unwrap();
                st.commit(&evs);
                let mut covered: Vec<String> = st.truth_labels().into_iter().flatten().collect();
                covered.sort();
                covered.dedup();
                let mut mapped: Vec<String> = st.hosts().to_vec();
                mapped.sort();
                assert_eq!(covered, mapped, "{}", family.name());
            }
        }
    }

    #[test]
    fn master_cluster_is_never_churned() {
        for family in SynthFamily::ALL {
            let (_, mut st) = state_for(family);
            let master = st.master.clone();
            let master_cluster = st
                .clusters
                .iter()
                .position(|c| c.members.contains(&master))
                .expect("master is in a cluster");
            for _ in 0..6 {
                for ev in st.plan_epoch(4) {
                    let c = match &ev {
                        ChurnEvent::AddHost { cluster, .. }
                        | ChurnEvent::RemoveHost { cluster, .. }
                        | ChurnEvent::SetLanRate { cluster, .. }
                        | ChurnEvent::Partition { cluster, .. } => *cluster,
                    };
                    assert_ne!(c, master_cluster, "{}: {ev:?}", family.name());
                    st.commit(&[ev]);
                }
            }
            assert!(st.hosts().contains(&master));
        }
    }

    #[test]
    fn grid_gateway_clusters_are_immutable() {
        let (_, st) = state_for(SynthFamily::Grid);
        for c in &st.clusters {
            if c.members.iter().any(|m| m.starts_with("gw")) {
                assert!(!c.mutable, "gateway cluster {:?} must not churn", c.members);
            }
        }
    }

    #[test]
    fn add_host_joins_the_lan_and_probes_work() {
        let (sc, mut st) = state_for(SynthFamily::Campus);
        let mut eng = Sim::new(sc.net.topo.clone());
        // Force an add by planning until one appears.
        let ev = loop {
            if let Some(ev) =
                st.plan_epoch(1).into_iter().find(|e| matches!(e, ChurnEvent::AddHost { .. }))
            {
                break ev;
            }
        };
        apply_churn(&mut eng, std::slice::from_ref(&ev)).unwrap();
        let dirty = st.commit(std::slice::from_ref(&ev));
        let (name, sibling) = match &ev {
            ChurnEvent::AddHost { name, sibling, .. } => (name.clone(), sibling.clone()),
            _ => unreachable!(),
        };
        assert!(dirty.contains(&name), "joiner must be dirty");
        assert!(dirty.contains(&sibling), "its LAN neighborhood must be dirty");
        let new = eng.topo().node_by_name(&name).expect("joiner resolves");
        let sib = eng.topo().node_by_name(&sibling).unwrap();
        // Same access infrastructure as the sibling, and probes complete.
        assert_eq!(infra_of(eng.topo(), new).unwrap(), infra_of(eng.topo(), sib).unwrap());
        let master = eng.topo().node_by_name(&st.master).unwrap();
        assert!(eng.measure_bandwidth(master, new, Bytes::kib(64)).is_ok());
    }

    #[test]
    fn remove_host_disconnects_it() {
        let (sc, mut st) = state_for(SynthFamily::Campus);
        let mut eng = Sim::new(sc.net.topo.clone());
        let ev = loop {
            if let Some(ev) =
                st.plan_epoch(1).into_iter().find(|e| matches!(e, ChurnEvent::RemoveHost { .. }))
            {
                break ev;
            }
        };
        let name = match &ev {
            ChurnEvent::RemoveHost { name, .. } => name.clone(),
            _ => unreachable!(),
        };
        apply_churn(&mut eng, std::slice::from_ref(&ev)).unwrap();
        st.commit(std::slice::from_ref(&ev));
        assert!(!st.hosts().contains(&name));
        let node = eng.topo().node_by_name(&name).unwrap();
        let master = eng.topo().node_by_name(&st.master).unwrap();
        assert!(eng.measure_bandwidth(master, node, Bytes::kib(64)).is_err());
    }

    #[test]
    fn set_lan_rate_reaches_the_medium_and_ports() {
        let (sc, mut st) = state_for(SynthFamily::Campus);
        let mut eng = Sim::new(sc.net.topo.clone());
        let ev = loop {
            if let Some(ev) =
                st.plan_epoch(1).into_iter().find(|e| matches!(e, ChurnEvent::SetLanRate { .. }))
            {
                break ev;
            }
        };
        let (members, mbps) = match &ev {
            ChurnEvent::SetLanRate { members, mbps, .. } => (members.clone(), *mbps),
            _ => unreachable!(),
        };
        apply_churn(&mut eng, std::slice::from_ref(&ev)).unwrap();
        st.commit(std::slice::from_ref(&ev));
        let a = eng.topo().node_by_name(&members[0]).unwrap();
        let master = eng.topo().node_by_name(&st.master).unwrap();
        let bw = eng.measure_bandwidth(master, a, Bytes::mib(1)).unwrap().as_mbps();
        // The master's own LAN may be slower than the new rate; the probe
        // must never exceed the re-provisioned rate and must reach it when
        // nothing slower sits on the path.
        assert!(bw <= mbps + 1.0, "probe {bw} exceeds re-provisioned rate {mbps}");
    }

    #[test]
    fn fat_tree_never_gets_rate_events() {
        let (_, mut st) = state_for(SynthFamily::FatTree);
        for _ in 0..20 {
            for ev in st.plan_epoch(4) {
                assert!(!matches!(ev, ChurnEvent::SetLanRate { .. }));
                st.commit(&[ev]);
            }
        }
    }
}
