//! # netsim — flow-level discrete-event network simulator
//!
//! This crate is the hardware substitute for the reproduction of
//! *"Automatic deployment of the Network Weather Service using the Effective
//! Network View"* (Legrand & Quinson, 2003). The paper's experiments ran on
//! the ENS-Lyon LAN; this simulator reproduces that LAN — and arbitrary other
//! platforms — at the level of detail the paper's tools can observe:
//!
//! * **end-to-end bandwidth** of one or several concurrent TCP transfers,
//!   governed by max-min fair sharing of link capacities ([`fairness`]),
//! * **round-trip latency** of small messages,
//! * **traceroute** hop lists (with routers that may drop probes or report
//!   per-interface addresses),
//! * **DNS** resolution (including hosts without names),
//! * **firewalled** sub-domains reachable only through gateway hosts,
//! * **asymmetric routes** (per-direction link weights / route overrides).
//!
//! The model is *flow-level*: a transfer is a fluid flow over a path of
//! resources (directed link capacities, or the shared medium of a hub), and
//! concurrently active flows share each resource max-min fairly. This is the
//! cheapest model that reproduces the observables ENV's thresholds test:
//! flows through a **hub** halve each other, flows through a **switch** do
//! not interfere, and bottleneck links cap end-to-end throughput.
//!
//! ## Layers
//!
//! * [`topology`] — nodes (hosts, routers, switches, hubs), links, builder.
//! * [`routing`] — per-direction shortest paths, overrides, reachability.
//! * [`fairness`] + [`flow`] — max-min progressive-filling allocator.
//! * [`engine`] — event queue, actor processes with mailboxes and timers.
//! * [`disk`] — per-host simulated durable storage (append/fsync/crash).
//! * [`probes`] — the user-level experiments ENV and NWS run.
//! * [`traffic`] — background cross-traffic generators.
//! * [`scenarios`] — canned platforms, including the paper's ENS-Lyon LAN.
//!
//! ## Quickstart
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Two hosts on a 100 Mbps hub.
//! let mut b = TopologyBuilder::new();
//! let hub = b.hub("hub", Bandwidth::mbps(100.0), Latency::micros(50.0));
//! let a = b.host("a", "10.0.0.1");
//! let c = b.host("c", "10.0.0.2");
//! b.attach(a, hub);
//! b.attach(c, hub);
//! let topo = b.build().unwrap();
//!
//! let mut sim: Sim = Sim::new(topo);
//! let bw = sim.measure_bandwidth(a, c, Bytes::mib(8)).unwrap();
//! assert!((bw.as_mbps() - 100.0).abs() < 1.0); // alone, the probe sees the hub rate
//! ```

pub mod churn;
pub mod disk;
pub mod dot;
pub mod engine;
pub mod error;
pub mod fairness;
pub mod faults;
pub mod firewall;
pub mod flow;
pub mod ip;
pub mod name;
pub mod probes;
pub mod routing;
pub mod scenarios;
pub mod synth;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod units;

pub use disk::{DiskHandle, DiskProfile, DiskRegistry, DiskStats, SimDisk};
pub use engine::{Ctx, Engine, NoMsg, Process, ProcessId, Sim};
pub use error::{NetError, NetResult};
pub use fairness::{FairEngine, FairnessModel, ResourceId, ResourceTable};
pub use faults::{FaultEvent, FaultPlan, LossModel, ScheduledFault, StormConfig};
pub use flow::{FlowId, FlowOutcome};
pub use ip::Ipv4;
pub use routing::{Path, RouteTable};
pub use time::{SimTime, TimeDelta};
pub use topology::{LinkId, NodeId, NodeKind, Topology, TopologyBuilder};
pub use units::{Bandwidth, Bytes, Latency};

/// Convenience glob-import for downstream crates and examples.
pub mod prelude {
    pub use crate::engine::{Ctx, Engine, NoMsg, Process, ProcessId, Sim};
    pub use crate::error::{NetError, NetResult};
    pub use crate::flow::{FlowId, FlowOutcome};
    pub use crate::ip::Ipv4;
    pub use crate::probes::TracerouteHop;
    pub use crate::time::{SimTime, TimeDelta};
    pub use crate::topology::{LinkId, NodeId, NodeKind, Topology, TopologyBuilder};
    pub use crate::units::{Bandwidth, Bytes, Latency};
}
