//! GridML parsing: token stream → [`GridDoc`].
//!
//! Parsing is lenient where the paper's examples are loose (a `MACHINE`
//! element may be a full declaration or a bare `name=` reference; labels
//! may carry `ip`, `name` or both) and strict about structure (tags must
//! nest properly).

use std::fmt;

use crate::xml::{tokenize, Token, XmlError};
use crate::{GridDoc, Machine, Network, NetworkType, Property, Site};

/// Error from [`GridDoc::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical error from the tokenizer.
    Xml(XmlError),
    /// Structural error (bad nesting, unexpected element).
    Structure(String),
    /// A property carrying a physical quantity (bandwidth, capacity,
    /// latency, jam ratio) holds a value that would poison downstream
    /// arithmetic: unparseable, non-finite, or negative.
    Numeric { property: String, value: String, reason: &'static str },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Xml(e) => write!(f, "{e}"),
            ParseError::Structure(m) => write!(f, "GridML structure error: {m}"),
            ParseError::Numeric { property, value, reason } => {
                write!(f, "GridML numeric property error: {property}={value:?} is {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<XmlError> for ParseError {
    fn from(e: XmlError) -> Self {
        ParseError::Xml(e)
    }
}

fn structure(msg: impl Into<String>) -> ParseError {
    ParseError::Structure(msg.into())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Attributes of a LABEL plus the names of its ALIAS children.
type LabelParts = (Vec<(String, String)>, Vec<String>);

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_close(&mut self, name: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Close { name: n }) if n == name => Ok(()),
            other => Err(structure(format!("expected </{name}>, got {other:?}"))),
        }
    }

    fn parse_grid(&mut self) -> Result<GridDoc, ParseError> {
        match self.next() {
            Some(Token::Open { name, self_closing: false, .. }) if name == "GRID" => {}
            other => return Err(structure(format!("expected <GRID>, got {other:?}"))),
        }
        let mut doc = GridDoc::new();
        loop {
            match self.peek() {
                Some(Token::Open { name, .. }) if name == "LABEL" => {
                    let attrs = self.take_label()?;
                    doc.label = attr(&attrs, "name");
                }
                Some(Token::Open { name, .. }) if name == "SITE" => {
                    doc.sites.push(self.parse_site()?);
                }
                Some(Token::Close { name }) if name == "GRID" => {
                    self.next();
                    return Ok(doc);
                }
                other => return Err(structure(format!("unexpected {other:?} in <GRID>"))),
            }
        }
    }

    /// Consume a LABEL element (self-closing or with ALIAS children);
    /// returns (label attrs, alias names).
    fn take_label_with_aliases(&mut self) -> Result<LabelParts, ParseError> {
        match self.next() {
            Some(Token::Open { name, attrs, self_closing }) if name == "LABEL" => {
                let mut aliases = Vec::new();
                if !self_closing {
                    loop {
                        match self.next() {
                            Some(Token::Open { name, attrs, self_closing: true })
                                if name == "ALIAS" =>
                            {
                                if let Some(a) = attr(&attrs, "name") {
                                    aliases.push(a);
                                }
                            }
                            Some(Token::Close { name }) if name == "LABEL" => break,
                            other => {
                                return Err(structure(format!(
                                    "unexpected {other:?} inside <LABEL>"
                                )))
                            }
                        }
                    }
                }
                Ok((attrs, aliases))
            }
            other => Err(structure(format!("expected <LABEL>, got {other:?}"))),
        }
    }

    fn take_label(&mut self) -> Result<Vec<(String, String)>, ParseError> {
        self.take_label_with_aliases().map(|(a, _)| a)
    }

    fn take_property(&mut self) -> Result<Property, ParseError> {
        match self.next() {
            Some(Token::Open { name, attrs, self_closing: true }) if name == "PROPERTY" => {
                Ok(Property {
                    name: attr(&attrs, "name")
                        .ok_or_else(|| structure("<PROPERTY> without name"))?,
                    value: attr(&attrs, "value")
                        .ok_or_else(|| structure("<PROPERTY> without value"))?,
                    units: attr(&attrs, "units"),
                })
            }
            other => Err(structure(format!("expected <PROPERTY/>, got {other:?}"))),
        }
    }

    fn parse_site(&mut self) -> Result<Site, ParseError> {
        let domain = match self.next() {
            Some(Token::Open { name, attrs, self_closing: false }) if name == "SITE" => {
                attr(&attrs, "domain").ok_or_else(|| structure("<SITE> without domain"))?
            }
            other => return Err(structure(format!("expected <SITE>, got {other:?}"))),
        };
        let mut site = Site::new(&domain);
        loop {
            match self.peek() {
                Some(Token::Open { name, .. }) if name == "LABEL" => {
                    let attrs = self.take_label()?;
                    site.label = attr(&attrs, "name");
                }
                Some(Token::Open { name, .. }) if name == "MACHINE" => {
                    site.machines.push(self.parse_machine_decl()?);
                }
                Some(Token::Open { name, .. }) if name == "NETWORK" => {
                    site.networks.push(self.parse_network()?);
                }
                Some(Token::Close { name }) if name == "SITE" => {
                    self.next();
                    return Ok(site);
                }
                other => return Err(structure(format!("unexpected {other:?} in <SITE>"))),
            }
        }
    }

    fn parse_machine_decl(&mut self) -> Result<Machine, ParseError> {
        let attrs0 = match self.next() {
            Some(Token::Open { name, attrs, self_closing }) if name == "MACHINE" => {
                if self_closing {
                    // A bare reference used as a declaration: tolerate it.
                    let name =
                        attr(&attrs, "name").ok_or_else(|| structure("<MACHINE/> without name"))?;
                    let mut m = Machine::new(&name);
                    m.ip = attr(&attrs, "ip");
                    return Ok(m);
                }
                attrs
            }
            other => return Err(structure(format!("expected <MACHINE>, got {other:?}"))),
        };
        let mut machine = Machine {
            name: attr(&attrs0, "name").unwrap_or_default(),
            ip: attr(&attrs0, "ip"),
            ..Default::default()
        };
        loop {
            match self.peek() {
                Some(Token::Open { name, .. }) if name == "LABEL" => {
                    let (attrs, aliases) = self.take_label_with_aliases()?;
                    if let Some(n) = attr(&attrs, "name") {
                        machine.name = n;
                    }
                    if machine.ip.is_none() {
                        machine.ip = attr(&attrs, "ip");
                    }
                    machine.aliases.extend(aliases);
                }
                Some(Token::Open { name, .. }) if name == "PROPERTY" => {
                    machine.properties.push(self.take_property()?);
                }
                Some(Token::Close { name }) if name == "MACHINE" => {
                    self.next();
                    if machine.name.is_empty() {
                        return Err(structure("<MACHINE> without a name"));
                    }
                    return Ok(machine);
                }
                other => return Err(structure(format!("unexpected {other:?} in <MACHINE>"))),
            }
        }
    }

    fn parse_network(&mut self) -> Result<Network, ParseError> {
        let net_type = match self.next() {
            Some(Token::Open { name, attrs, self_closing: false }) if name == "NETWORK" => {
                match attr(&attrs, "type") {
                    Some(t) => Some(
                        NetworkType::from_str_opt(&t)
                            .ok_or_else(|| structure(format!("unknown network type {t:?}")))?,
                    ),
                    None => None,
                }
            }
            other => return Err(structure(format!("expected <NETWORK>, got {other:?}"))),
        };
        let mut net = Network::new(net_type);
        loop {
            match self.peek() {
                Some(Token::Open { name, .. }) if name == "LABEL" => {
                    let attrs = self.take_label()?;
                    net.label_ip = attr(&attrs, "ip");
                    net.label_name = attr(&attrs, "name");
                }
                Some(Token::Open { name, .. }) if name == "PROPERTY" => {
                    net.properties.push(self.take_property()?);
                }
                Some(Token::Open { name, attrs, .. }) if name == "MACHINE" => {
                    // Inside a NETWORK, MACHINE elements are references.
                    let attrs = attrs.clone();
                    let tok = self.next().expect("peeked");
                    if let Token::Open { self_closing: false, .. } = tok {
                        self.expect_close("MACHINE")?;
                    }
                    let name = attr(&attrs, "name")
                        .ok_or_else(|| structure("<MACHINE/> reference without name"))?;
                    net.machines.push(name);
                }
                Some(Token::Open { name, .. }) if name == "NETWORK" => {
                    net.subnets.push(self.parse_network()?);
                }
                Some(Token::Close { name }) if name == "NETWORK" => {
                    self.next();
                    return Ok(net);
                }
                other => return Err(structure(format!("unexpected {other:?} in <NETWORK>"))),
            }
        }
    }
}

fn attr(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

/// Whether a property name denotes a physical quantity whose value must be
/// a finite, non-negative number: the ENV bandwidth/ratio properties of
/// §4.2.2.4 (`*_BW`, `ENV_jam_ratio`) plus the bare `bandwidth` /
/// `capacity` / `latency` annotations. Deliberately a closed set — a
/// substring match would turn free-text user properties like
/// `Memory_capacity="256 MB"` (the §4.2.1.2 host-information style) into
/// parse errors.
fn is_quantity_property(name: &str) -> bool {
    name.ends_with("_BW")
        || name == "ENV_jam_ratio"
        || name.eq_ignore_ascii_case("bandwidth")
        || name.eq_ignore_ascii_case("capacity")
        || name.eq_ignore_ascii_case("latency")
}

/// Reject quantity properties whose value would silently poison the
/// max-min allocator or the planner later (NaN and ±inf propagate through
/// every mean/median; negative capacities invert the progressive filling).
fn check_quantity(p: &Property) -> Result<(), ParseError> {
    if !is_quantity_property(&p.name) {
        return Ok(());
    }
    let numeric =
        |reason| ParseError::Numeric { property: p.name.clone(), value: p.value.clone(), reason };
    let v: f64 = p.value.trim().parse().map_err(|_| numeric("not a number"))?;
    if v.is_nan() {
        return Err(numeric("NaN"));
    }
    if v.is_infinite() {
        return Err(numeric("infinite"));
    }
    if v < 0.0 {
        return Err(numeric("negative"));
    }
    Ok(())
}

fn check_network_quantities(net: &Network) -> Result<(), ParseError> {
    for p in &net.properties {
        check_quantity(p)?;
    }
    for sub in &net.subnets {
        check_network_quantities(sub)?;
    }
    Ok(())
}

fn check_doc_quantities(doc: &GridDoc) -> Result<(), ParseError> {
    for site in &doc.sites {
        for m in &site.machines {
            for p in &m.properties {
                check_quantity(p)?;
            }
        }
        for net in &site.networks {
            check_network_quantities(net)?;
        }
    }
    Ok(())
}

impl GridDoc {
    /// Parse a GridML document.
    pub fn parse(input: &str) -> Result<GridDoc, ParseError> {
        let tokens = tokenize(input)?;
        let mut p = Parser { tokens, pos: 0 };
        let doc = p.parse_grid()?;
        if p.peek().is_some() {
            return Err(structure("trailing content after </GRID>"));
        }
        check_doc_quantities(&doc)?;
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.2.1.1 lookup listing, verbatim.
    const PAPER_LOOKUP: &str = r#"<?xml version="1.0"?>
<GRID>
<SITE domain="ens-lyon.fr">
<LABEL name="ENS-LYON-FR" />
<MACHINE>
<LABEL ip="140.77.13.229" name="canaria.ens-lyon.fr">
<ALIAS name="canaria" />
</LABEL>
</MACHINE>
<MACHINE>
<LABEL ip="140.77.13.82" name="moby.cri2000.ens-lyon.fr">
<ALIAS name="moby" />
</LABEL>
</MACHINE>
</SITE>
</GRID>"#;

    #[test]
    fn parses_paper_lookup_listing() {
        let doc = GridDoc::parse(PAPER_LOOKUP).unwrap();
        assert_eq!(doc.sites.len(), 1);
        let site = &doc.sites[0];
        assert_eq!(site.domain, "ens-lyon.fr");
        assert_eq!(site.label.as_deref(), Some("ENS-LYON-FR"));
        assert_eq!(site.machines.len(), 2);
        let canaria = site.machine("canaria").unwrap();
        assert_eq!(canaria.ip.as_deref(), Some("140.77.13.229"));
        assert_eq!(canaria.aliases, vec!["canaria"]);
    }

    /// The paper's §4.2.1.2 property listing.
    const PAPER_PROPS: &str = r#"<?xml version="1.0"?>
<GRID>
<SITE domain="cri2000.ens-lyon.fr">
<MACHINE>
<LABEL ip="140.77.13.92" name="pikaki.cri2000.ens-lyon.fr">
<ALIAS name="pikaki" />
</LABEL>
<PROPERTY name="CPU_clock" value="198.951" units="MHz" />
<PROPERTY name="CPU_model" value="Pentium Pro" />
<PROPERTY name="CPU_num" value="1" />
<PROPERTY name="Machine_type" value="i686" />
<PROPERTY name="OS_version" value="Linux 2.4.19-pre7-act" />
<PROPERTY name="kflops" value="17607" />
</MACHINE>
</SITE>
</GRID>"#;

    #[test]
    fn parses_paper_property_listing() {
        let doc = GridDoc::parse(PAPER_PROPS).unwrap();
        let m = doc.machine("pikaki").unwrap();
        assert_eq!(m.properties.len(), 6);
        assert_eq!(m.property("kflops").unwrap().value, "17607");
        assert_eq!(m.property("CPU_clock").unwrap().units.as_deref(), Some("MHz"));
    }

    /// The paper's §4.2.1.3 structural listing (nested networks with
    /// machine references).
    const PAPER_STRUCTURAL: &str = r#"<GRID>
<SITE domain="ens-lyon.fr">
<NETWORK type="Structural">
<LABEL ip="192.168.254.1" name="192.168.254.1" />
<NETWORK>
<LABEL ip="140.77.13.1" name="140.77.13.1" />
<MACHINE name="canaria.ens-lyon.fr" />
<MACHINE name="moby.cri2000.ens-lyon.fr" />
<MACHINE name="the-doors.ens-lyon.fr" />
</NETWORK>
<NETWORK>
<LABEL ip="140.77.161.1" name="routeur-backbone" />
<NETWORK>
<LABEL ip="140.77.12.1" name="routlhpc" />
<MACHINE name="myri.ens-lyon.fr" />
<MACHINE name="popc.ens-lyon.fr" />
<MACHINE name="sci.ens-lyon.fr" />
</NETWORK>
</NETWORK>
</NETWORK>
</SITE>
</GRID>"#;

    #[test]
    fn parses_paper_structural_listing() {
        let doc = GridDoc::parse(PAPER_STRUCTURAL).unwrap();
        let net = &doc.sites[0].networks[0];
        assert_eq!(net.net_type, Some(NetworkType::Structural));
        assert_eq!(net.label_ip.as_deref(), Some("192.168.254.1"));
        assert_eq!(net.subnets.len(), 2);
        assert_eq!(net.subnets[0].machines.len(), 3);
        assert_eq!(net.subnets[1].label_name.as_deref(), Some("routeur-backbone"));
        assert_eq!(
            net.subnets[1].subnets[0].machines,
            vec!["myri.ens-lyon.fr", "popc.ens-lyon.fr", "sci.ens-lyon.fr"]
        );
        assert_eq!(net.network_count(), 4);
    }

    #[test]
    fn write_parse_round_trip() {
        let doc = GridDoc::parse(PAPER_STRUCTURAL).unwrap();
        let xml = doc.to_xml();
        let doc2 = GridDoc::parse(&xml).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn structural_errors() {
        assert!(GridDoc::parse("<GRID>").is_err());
        assert!(GridDoc::parse("<SITE domain=\"x\"></SITE>").is_err());
        assert!(GridDoc::parse("<GRID><SITE></SITE></GRID>").is_err());
        assert!(GridDoc::parse("<GRID></GRID><GRID></GRID>").is_err());
        assert!(GridDoc::parse(
            r#"<GRID><SITE domain="x"><NETWORK type="Wrong"></NETWORK></SITE></GRID>"#
        )
        .is_err());
    }

    fn doc_with_network_property(name: &str, value: &str) -> String {
        format!(
            r#"<GRID><SITE domain="x"><NETWORK type="ENV_Switched">
<PROPERTY name="{name}" value="{value}" units="Mbps" />
</NETWORK></SITE></GRID>"#
        )
    }

    fn doc_with_machine_property(name: &str, value: &str) -> String {
        format!(
            r#"<GRID><SITE domain="x"><MACHINE name="a.x">
<PROPERTY name="{name}" value="{value}" />
</MACHINE></SITE></GRID>"#
        )
    }

    #[test]
    fn non_finite_and_negative_quantities_rejected() {
        // Each poisoned form, on a network bandwidth property…
        for bad in ["NaN", "nan", "inf", "+inf", "-inf", "-32.65", "fast"] {
            let err = GridDoc::parse(&doc_with_network_property("ENV_base_BW", bad))
                .expect_err(&format!("ENV_base_BW={bad} must be rejected"));
            assert!(matches!(err, ParseError::Numeric { .. }), "{bad}: {err}");
        }
        // …on the jam ratio…
        let err = GridDoc::parse(&doc_with_network_property("ENV_jam_ratio", "NaN")).unwrap_err();
        assert!(matches!(err, ParseError::Numeric { .. }));
        // …and on machine-level latency/capacity annotations.
        for (name, bad) in [("latency", "-5"), ("Capacity", "inf")] {
            let err = GridDoc::parse(&doc_with_machine_property(name, bad))
                .expect_err(&format!("{name}={bad} must be rejected"));
            assert!(matches!(err, ParseError::Numeric { .. }), "{name}={bad}: {err}");
        }
        // The error renders usefully.
        let err =
            GridDoc::parse(&doc_with_network_property("ENV_base_local_BW", "-1")).unwrap_err();
        assert!(err.to_string().contains("negative"), "{err}");
    }

    #[test]
    fn finite_quantities_and_free_text_properties_accepted() {
        assert!(GridDoc::parse(&doc_with_network_property("ENV_base_BW", "32.65")).is_ok());
        assert!(GridDoc::parse(&doc_with_network_property("ENV_jam_ratio", "0")).is_ok());
        // Non-quantity properties stay free-form (paper's CPU_model etc.),
        // including names that merely *contain* a quantity keyword.
        assert!(GridDoc::parse(&doc_with_machine_property("CPU_model", "Pentium Pro")).is_ok());
        assert!(GridDoc::parse(&doc_with_machine_property("OS_version", "Linux 2.4.19")).is_ok());
        assert!(GridDoc::parse(&doc_with_machine_property("Memory_capacity", "256 MB")).is_ok());
    }

    #[test]
    fn machine_reference_with_explicit_close_tag() {
        let doc = GridDoc::parse(
            r#"<GRID><SITE domain="x"><NETWORK><MACHINE name="a.x"></MACHINE></NETWORK></SITE></GRID>"#,
        )
        .unwrap();
        assert_eq!(doc.sites[0].networks[0].machines, vec!["a.x"]);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use crate::{Machine, Network, Property, Site};
        use proptest::prelude::*;

        fn name_strategy() -> impl Strategy<Value = String> {
            "[a-z][a-z0-9.-]{0,20}"
        }

        prop_compose! {
            fn arb_property()(
                name in name_strategy(),
                value in "[ -~&&[^\"<>&]]{0,16}",
                units in proptest::option::of("[A-Za-z]{1,6}"),
            ) -> Property {
                Property { name, value, units }
            }
        }

        prop_compose! {
            fn arb_machine()(
                name in name_strategy(),
                ip in proptest::option::of("[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"),
                aliases in proptest::collection::vec(name_strategy(), 0..3),
                props in proptest::collection::vec(arb_property(), 0..4),
            ) -> Machine {
                Machine { name, ip, aliases, properties: props }
            }
        }

        fn arb_network(depth: u32) -> BoxedStrategy<Network> {
            let leaf = (
                proptest::option::of(name_strategy()),
                proptest::collection::vec(name_strategy(), 0..4),
                proptest::collection::vec(arb_property(), 0..3),
            )
                .prop_map(|(label, machines, properties)| Network {
                    net_type: Some(crate::NetworkType::EnvShared),
                    label_ip: None,
                    label_name: label,
                    properties,
                    machines,
                    subnets: vec![],
                });
            if depth == 0 {
                leaf.boxed()
            } else {
                (leaf, proptest::collection::vec(arb_network(depth - 1), 0..2))
                    .prop_map(|(mut n, subs)| {
                        n.subnets = subs;
                        n
                    })
                    .boxed()
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn round_trip_arbitrary_docs(
                machines in proptest::collection::vec(arb_machine(), 0..5),
                networks in proptest::collection::vec(arb_network(2), 0..3),
                domain in name_strategy(),
            ) {
                let site = Site { domain, label: None, machines, networks };
                let doc = GridDoc { label: Some("Grid1".into()), sites: vec![site] };
                let xml = doc.to_xml();
                let parsed = GridDoc::parse(&xml).unwrap();
                prop_assert_eq!(doc, parsed);
            }
        }
    }
}
