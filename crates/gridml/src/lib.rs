//! # gridml — the ENV data format
//!
//! GridML is "a specialized form of XML ... a flexible format for describing
//! the physical and observable characteristics of resources and networks
//! constituting a Grid" (paper §4). ENV stores everything it learns in
//! GridML: the machine lookup, per-host properties, the structural
//! traceroute tree, and the refined `ENV_Switched` / `ENV_Shared` networks.
//!
//! This crate provides:
//!
//! * the document model ([`GridDoc`], [`Site`], [`Machine`], [`Network`],
//!   [`Property`]),
//! * a writer ([`GridDoc::to_xml`]) producing the paper's layout,
//! * a parser ([`GridDoc::parse`]) for a self-contained XML subset
//!   (elements, attributes, self-closing tags, comments, declarations,
//!   entity escapes),
//! * the firewall merge of paper §4.3 ([`merge::merge_sites`]): one
//!   document per side of a firewall, unified by gateway aliases.

pub mod merge;
pub mod parse;
pub mod write;
mod xml;

pub use parse::ParseError;

/// `<PROPERTY name=... value=... units=.../>` — a measured or looked-up
/// attribute of a machine or network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    pub name: String,
    pub value: String,
    pub units: Option<String>,
}

impl Property {
    pub fn new(name: &str, value: impl ToString) -> Self {
        Property { name: name.to_string(), value: value.to_string(), units: None }
    }

    pub fn with_units(name: &str, value: impl ToString, units: &str) -> Self {
        Property {
            name: name.to_string(),
            value: value.to_string(),
            units: Some(units.to_string()),
        }
    }
}

/// A machine: `<MACHINE><LABEL ip name><ALIAS/>…</LABEL><PROPERTY/>…</MACHINE>`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Machine {
    /// Primary address, when known.
    pub ip: Option<String>,
    /// Fully-qualified name (or the bare IP for nameless machines).
    pub name: String,
    /// Alternative names for the same machine — including, after a merge,
    /// its names on the other side of a firewall.
    pub aliases: Vec<String>,
    pub properties: Vec<Property>,
}

impl Machine {
    pub fn new(name: &str) -> Self {
        Machine { name: name.to_string(), ..Default::default() }
    }

    pub fn with_ip(name: &str, ip: &str) -> Self {
        Machine { name: name.to_string(), ip: Some(ip.to_string()), ..Default::default() }
    }

    /// All names this machine answers to (primary + aliases).
    pub fn all_names(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.name.as_str()).chain(self.aliases.iter().map(|s| s.as_str()))
    }

    pub fn property(&self, name: &str) -> Option<&Property> {
        self.properties.iter().find(|p| p.name == name)
    }
}

/// The kind of a `<NETWORK>` element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkType {
    /// Traceroute-derived grouping (first ENV phase).
    Structural,
    /// Refined: hosts interconnected by a switch (independent pairs).
    EnvSwitched,
    /// Refined: hosts on a shared medium (a hub or bus).
    EnvShared,
    /// Refined but inconclusive (jammed ratio between the thresholds).
    EnvUndetermined,
}

impl NetworkType {
    pub fn as_str(self) -> &'static str {
        match self {
            NetworkType::Structural => "Structural",
            NetworkType::EnvSwitched => "ENV_Switched",
            NetworkType::EnvShared => "ENV_Shared",
            NetworkType::EnvUndetermined => "ENV_Undetermined",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "Structural" => Some(NetworkType::Structural),
            "ENV_Switched" => Some(NetworkType::EnvSwitched),
            "ENV_Shared" => Some(NetworkType::EnvShared),
            "ENV_Undetermined" => Some(NetworkType::EnvUndetermined),
            _ => None,
        }
    }
}

/// A `<NETWORK>` element: label, properties, member machine references and
/// nested networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    pub net_type: Option<NetworkType>,
    /// `<LABEL ip=…/>` — the address of the gateway/router heading this
    /// (sub)network, when known.
    pub label_ip: Option<String>,
    /// `<LABEL name=…/>` — the name heading this network.
    pub label_name: Option<String>,
    pub properties: Vec<Property>,
    /// `<MACHINE name=…/>` references to machines declared in the site.
    pub machines: Vec<String>,
    pub subnets: Vec<Network>,
}

impl Network {
    pub fn new(net_type: Option<NetworkType>) -> Self {
        Network {
            net_type,
            label_ip: None,
            label_name: None,
            properties: Vec::new(),
            machines: Vec::new(),
            subnets: Vec::new(),
        }
    }

    /// Machines in this network and all nested ones, in document order.
    pub fn machines_recursive(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.machines.iter().map(|s| s.as_str()).collect();
        for sub in &self.subnets {
            out.extend(sub.machines_recursive());
        }
        out
    }

    /// Count of networks in this subtree (including self).
    pub fn network_count(&self) -> usize {
        1 + self.subnets.iter().map(Network::network_count).sum::<usize>()
    }
}

/// A `<SITE domain=…>` element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Site {
    pub domain: String,
    pub label: Option<String>,
    pub machines: Vec<Machine>,
    pub networks: Vec<Network>,
}

impl Site {
    pub fn new(domain: &str) -> Self {
        Site { domain: domain.to_string(), ..Default::default() }
    }

    pub fn machine(&self, name: &str) -> Option<&Machine> {
        self.machines.iter().find(|m| m.all_names().any(|n| n == name))
    }

    pub fn machine_mut(&mut self, name: &str) -> Option<&mut Machine> {
        self.machines.iter_mut().find(|m| m.name == name || m.aliases.iter().any(|a| a == name))
    }
}

/// A whole `<GRID>` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GridDoc {
    pub label: Option<String>,
    pub sites: Vec<Site>,
}

impl GridDoc {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn site(&self, domain: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.domain == domain)
    }

    /// Find a machine by any of its names, across all sites.
    pub fn machine(&self, name: &str) -> Option<&Machine> {
        self.sites.iter().find_map(|s| s.machine(name))
    }

    /// Total number of machine declarations.
    pub fn machine_count(&self) -> usize {
        self.sites.iter().map(|s| s.machines.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> GridDoc {
        let mut site = Site::new("ens-lyon.fr");
        site.label = Some("ENS-LYON-FR".to_string());
        let mut canaria = Machine::with_ip("canaria.ens-lyon.fr", "140.77.13.229");
        canaria.aliases.push("canaria".to_string());
        canaria.properties.push(Property::with_units("CPU_clock", "198.951", "MHz"));
        site.machines.push(canaria);
        let mut net = Network::new(Some(NetworkType::EnvSwitched));
        net.label_name = Some("sci0".to_string());
        net.properties.push(Property::with_units("ENV_base_BW", "32.65", "Mbps"));
        net.machines.push("sci1.popc.private".to_string());
        site.networks.push(net);
        GridDoc { label: Some("Grid1".to_string()), sites: vec![site] }
    }

    #[test]
    fn machine_lookup_by_alias() {
        let doc = sample_doc();
        assert!(doc.machine("canaria").is_some());
        assert!(doc.machine("canaria.ens-lyon.fr").is_some());
        assert!(doc.machine("nothere").is_none());
        assert_eq!(doc.machine_count(), 1);
    }

    #[test]
    fn property_access() {
        let doc = sample_doc();
        let m = doc.machine("canaria").unwrap();
        let p = m.property("CPU_clock").unwrap();
        assert_eq!(p.value, "198.951");
        assert_eq!(p.units.as_deref(), Some("MHz"));
        assert!(m.property("nope").is_none());
    }

    #[test]
    fn network_type_round_trip() {
        for t in [
            NetworkType::Structural,
            NetworkType::EnvSwitched,
            NetworkType::EnvShared,
            NetworkType::EnvUndetermined,
        ] {
            assert_eq!(NetworkType::from_str_opt(t.as_str()), Some(t));
        }
        assert_eq!(NetworkType::from_str_opt("bogus"), None);
    }

    #[test]
    fn machines_recursive_and_counts() {
        let mut outer = Network::new(Some(NetworkType::Structural));
        outer.machines.push("a".into());
        let mut inner = Network::new(Some(NetworkType::Structural));
        inner.machines.push("b".into());
        inner.machines.push("c".into());
        outer.subnets.push(inner);
        assert_eq!(outer.machines_recursive(), vec!["a", "b", "c"]);
        assert_eq!(outer.network_count(), 2);
    }

    #[test]
    fn site_machine_mut_updates_aliases() {
        let mut doc = sample_doc();
        let site = &mut doc.sites[0];
        site.machine_mut("canaria").unwrap().aliases.push("extra.name".to_string());
        assert!(doc.machine("extra.name").is_some());
    }
}
