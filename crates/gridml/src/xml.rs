//! A minimal XML tokenizer and escaping helpers, sufficient for GridML.
//!
//! Supported: the `<?xml …?>` declaration, comments, elements with
//! double-quoted attributes, self-closing tags, the five standard entity
//! escapes. Text content between elements is ignored (GridML carries data
//! only in attributes). Not supported (not needed): CDATA, DTDs,
//! namespaces, processing instructions beyond the declaration.

use std::fmt::Write as _;

/// One token of the XML stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<NAME attr="v" …>` — `self_closing` for `<NAME …/>`.
    Open { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</NAME>`
    Close { name: String },
}

/// Escape a string for use inside a double-quoted attribute.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`]. Unknown entities are left verbatim.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let known =
            [("&amp;", '&'), ("&lt;", '<'), ("&gt;", '>'), ("&quot;", '"'), ("&apos;", '\'')];
        if let Some((ent, ch)) = known.iter().find(|(e, _)| rest.starts_with(e)) {
            out.push(*ch);
            rest = &rest[ent.len()..];
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Render an opening tag with attributes.
pub fn open_tag(name: &str, attrs: &[(&str, &str)], self_closing: bool) -> String {
    let mut s = String::new();
    let _ = write!(s, "<{name}");
    for (k, v) in attrs {
        let _ = write!(s, " {k}=\"{}\"", escape(v));
    }
    s.push_str(if self_closing { " />" } else { ">" });
    s
}

/// Tokenizer error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Tokenize an XML document into open/close tags, skipping text content,
/// comments and the declaration.
pub fn tokenize(input: &str) -> Result<Vec<Token>, XmlError> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut tokens = Vec::new();

    let err = |offset: usize, message: &str| XmlError { offset, message: message.to_string() };

    while i < bytes.len() {
        match bytes[i] {
            b'<' => {
                if input[i..].starts_with("<!--") {
                    match input[i..].find("-->") {
                        Some(end) => i += end + 3,
                        None => return Err(err(i, "unterminated comment")),
                    }
                    continue;
                }
                if input[i..].starts_with("<?") {
                    match input[i..].find("?>") {
                        Some(end) => i += end + 2,
                        None => return Err(err(i, "unterminated declaration")),
                    }
                    continue;
                }
                if input[i..].starts_with("</") {
                    let end =
                        input[i..].find('>').ok_or_else(|| err(i, "unterminated closing tag"))?;
                    let name = input[i + 2..i + end].trim();
                    if name.is_empty() {
                        return Err(err(i, "empty closing tag"));
                    }
                    tokens.push(Token::Close { name: name.to_string() });
                    i += end + 1;
                    continue;
                }
                // Opening tag.
                let end = input[i..].find('>').ok_or_else(|| err(i, "unterminated tag"))?;
                let inner = &input[i + 1..i + end];
                let self_closing = inner.trim_end().ends_with('/');
                let inner = inner.trim_end().trim_end_matches('/').trim();
                let (name, attrs) = parse_tag_body(inner).map_err(|m| err(i, &m))?;
                tokens.push(Token::Open { name, attrs, self_closing });
                i += end + 1;
            }
            _ => i += 1, // text content between elements is ignored
        }
    }
    Ok(tokens)
}

/// Split `NAME attr="v" attr2="w"` into name and attribute pairs.
fn parse_tag_body(body: &str) -> Result<(String, Vec<(String, String)>), String> {
    // Element name: up to whitespace.
    let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
    let name = body[..name_end].to_string();
    if name.is_empty() {
        return Err("empty tag name".to_string());
    }
    let mut attrs = Vec::new();
    let mut r = body[name_end..].trim_start();
    while !r.is_empty() {
        let eq = r.find('=').ok_or_else(|| format!("attribute without '=' in <{name}>"))?;
        let key = r[..eq].trim().to_string();
        if key.is_empty() || key.contains(char::is_whitespace) {
            return Err(format!("malformed attribute name in <{name}>"));
        }
        let after = r[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("attribute value must be double-quoted in <{name}>"));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| format!("unterminated attribute value in <{name}>"))?;
        let value = unescape(&after[1..1 + close]);
        attrs.push((key, value));
        r = after[close + 2..].trim_start();
    }
    Ok((name, attrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let s = "a<b>&\"c'";
        assert_eq!(unescape(&escape(s)), s);
        assert_eq!(escape("a&b"), "a&amp;b");
        assert_eq!(unescape("&bogus;"), "&bogus;");
    }

    #[test]
    fn tokenize_simple_document() {
        let toks = tokenize(
            r#"<?xml version="1.0"?>
<GRID>
  <!-- comment -->
  <SITE domain="ens-lyon.fr">
    <LABEL name="ENS-LYON-FR" />
  </SITE>
</GRID>"#,
        )
        .unwrap();
        assert_eq!(toks.len(), 5);
        match &toks[0] {
            Token::Open { name, attrs, self_closing } => {
                assert_eq!(name, "GRID");
                assert!(attrs.is_empty());
                assert!(!self_closing);
            }
            _ => panic!("expected open"),
        }
        match &toks[2] {
            Token::Open { name, attrs, self_closing } => {
                assert_eq!(name, "LABEL");
                assert_eq!(attrs[0], ("name".to_string(), "ENS-LYON-FR".to_string()));
                assert!(self_closing);
            }
            _ => panic!("expected self-closing label"),
        }
        assert_eq!(toks[4], Token::Close { name: "GRID".to_string() });
    }

    #[test]
    fn tokenize_escaped_attribute() {
        let toks = tokenize(r#"<X name="a&amp;b" />"#).unwrap();
        match &toks[0] {
            Token::Open { attrs, .. } => assert_eq!(attrs[0].1, "a&b"),
            _ => panic!(),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("<unclosed").is_err());
        assert!(tokenize("<!-- forever").is_err());
        assert!(tokenize("<X attr=unquoted>").is_err());
        assert!(tokenize("<X attr=\"unterminated>").is_err());
        assert!(tokenize("</>").is_err());
    }

    #[test]
    fn open_tag_rendering() {
        assert_eq!(open_tag("LABEL", &[("name", "a<b")], true), r#"<LABEL name="a&lt;b" />"#);
        assert_eq!(open_tag("GRID", &[], false), "<GRID>");
    }

    #[test]
    fn multiple_attributes() {
        let toks =
            tokenize(r#"<PROPERTY name="CPU_clock" value="198.951" units="MHz" />"#).unwrap();
        match &toks[0] {
            Token::Open { attrs, .. } => {
                assert_eq!(attrs.len(), 3);
                assert_eq!(attrs[2], ("units".to_string(), "MHz".to_string()));
            }
            _ => panic!(),
        }
    }
}
