//! The firewall merge of paper §4.3.
//!
//! When a firewall splits the platform, ENV runs once on each side and the
//! results are merged: "a new GridML structure containing both sites is
//! created, and the aliases of hosts belonging to both sites are provided.
//! This operation is often as simple as a file concatenation. The only
//! information the user has to provide is the several aliases of the
//! gateways machines depending on the considered site."

use std::collections::BTreeMap;

use crate::GridDoc;

/// A user-provided statement that two names denote one gateway machine,
/// one name per side of the firewall — e.g.
/// `("popc.ens-lyon.fr", "popc0.popc.private")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayAlias {
    pub outside: String,
    pub inside: String,
}

impl GatewayAlias {
    pub fn new(outside: &str, inside: &str) -> Self {
        GatewayAlias { outside: outside.to_string(), inside: inside.to_string() }
    }
}

/// Merge per-side GridML documents into one, cross-aliasing the gateways.
///
/// Every site of every input document is carried over (document order
/// preserved); then for each gateway alias, both machine declarations gain
/// the other side's name as an `<ALIAS>`.
pub fn merge_sites(docs: &[GridDoc], gateways: &[GatewayAlias], label: &str) -> GridDoc {
    let mut out = GridDoc { label: Some(label.to_string()), sites: Vec::new() };
    for d in docs {
        out.sites.extend(d.sites.iter().cloned());
    }
    for gw in gateways {
        for site in &mut out.sites {
            if let Some(m) = site.machine_mut(&gw.outside) {
                if m.all_names().all(|n| n != gw.inside) {
                    m.aliases.push(gw.inside.clone());
                }
            }
            if let Some(m) = site.machine_mut(&gw.inside) {
                if m.all_names().all(|n| n != gw.outside) {
                    m.aliases.push(gw.outside.clone());
                }
            }
        }
    }
    out
}

/// Resolve every name to a canonical machine identity after a merge: two
/// names linked by any chain of aliases map to the same canonical string
/// (the lexicographically smallest name of the group).
///
/// This is what lets the deployment planner recognise that the outside
/// run's `myri.ens-lyon.fr` and the inside run's `myri0.popc.private` are
/// one machine.
#[derive(Debug, Clone, Default)]
pub struct AliasResolver {
    canon: BTreeMap<String, String>,
}

impl AliasResolver {
    /// Build from a merged document (union-find over alias edges).
    pub fn from_doc(doc: &GridDoc) -> Self {
        // parent map for union-find by name
        let mut parent: BTreeMap<String, String> = BTreeMap::new();

        fn find(parent: &mut BTreeMap<String, String>, x: &str) -> String {
            let p = parent.get(x).cloned();
            match p {
                None => {
                    parent.insert(x.to_string(), x.to_string());
                    x.to_string()
                }
                Some(p) if p == x => p,
                Some(p) => {
                    let root = find(parent, &p);
                    parent.insert(x.to_string(), root.clone());
                    root
                }
            }
        }

        fn union(parent: &mut BTreeMap<String, String>, a: &str, b: &str) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                // Attach the lexicographically larger root under the smaller
                // so the canonical representative is deterministic.
                if ra < rb {
                    parent.insert(rb, ra);
                } else {
                    parent.insert(ra, rb);
                }
            }
        }

        for site in &doc.sites {
            for m in &site.machines {
                for a in &m.aliases {
                    union(&mut parent, &m.name, a);
                }
                let _ = find(&mut parent, &m.name);
            }
        }

        let names: Vec<String> = parent.keys().cloned().collect();
        let mut canon = BTreeMap::new();
        for n in names {
            let root = find(&mut parent, &n);
            canon.insert(n, root);
        }
        AliasResolver { canon }
    }

    /// The canonical identity of `name` (itself if unknown).
    pub fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        self.canon.get(name).map(|s| s.as_str()).unwrap_or(name)
    }

    /// Whether two names denote the same machine.
    pub fn same_machine(&self, a: &str, b: &str) -> bool {
        self.canonical(a) == self.canonical(b)
    }

    /// Number of distinct machines known.
    pub fn machine_count(&self) -> usize {
        let mut roots: Vec<&str> = self.canon.values().map(|s| s.as_str()).collect();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, Site};

    fn outside_doc() -> GridDoc {
        let mut site = Site::new("ens-lyon.fr");
        site.label = Some("ENS-LYON-FR".to_string());
        for (name, ip) in [
            ("canaria.ens-lyon.fr", "140.77.13.229"),
            ("myri.ens-lyon.fr", "140.77.12.52"),
            ("popc.ens-lyon.fr", "140.77.12.51"),
        ] {
            site.machines.push(Machine::with_ip(name, ip));
        }
        GridDoc { label: None, sites: vec![site] }
    }

    fn inside_doc() -> GridDoc {
        let mut site = Site::new("popc.private");
        site.label = Some("POPC-PRIVATE".to_string());
        for (name, ip) in [
            ("myri0.popc.private", "192.168.81.50"),
            ("popc0.popc.private", "192.168.81.51"),
            ("sci1.popc.private", "192.168.81.71"),
        ] {
            site.machines.push(Machine::with_ip(name, ip));
        }
        GridDoc { label: None, sites: vec![site] }
    }

    fn paper_gateways() -> Vec<GatewayAlias> {
        vec![
            GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
            GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
        ]
    }

    #[test]
    fn merge_carries_both_sites_and_cross_aliases() {
        let merged = merge_sites(&[outside_doc(), inside_doc()], &paper_gateways(), "Grid1");
        assert_eq!(merged.label.as_deref(), Some("Grid1"));
        assert_eq!(merged.sites.len(), 2);
        // Outside declaration gained the inside alias (paper's example).
        let myri_out = merged.site("ens-lyon.fr").unwrap().machine("myri.ens-lyon.fr").unwrap();
        assert!(myri_out.aliases.contains(&"myri0.popc.private".to_string()));
        // Inside declaration gained the outside alias.
        let myri_in = merged.site("popc.private").unwrap().machine("myri0.popc.private").unwrap();
        assert!(myri_in.aliases.contains(&"myri.ens-lyon.fr".to_string()));
        // Non-gateways untouched.
        let sci1 = merged.site("popc.private").unwrap().machine("sci1.popc.private").unwrap();
        assert!(sci1.aliases.is_empty());
    }

    #[test]
    fn merge_is_idempotent_on_aliases() {
        let once = merge_sites(&[outside_doc(), inside_doc()], &paper_gateways(), "G");
        let twice = merge_sites(std::slice::from_ref(&once), &paper_gateways(), "G");
        assert_eq!(once.sites, twice.sites);
    }

    #[test]
    fn resolver_unifies_gateway_names() {
        let merged = merge_sites(&[outside_doc(), inside_doc()], &paper_gateways(), "G");
        let resolver = AliasResolver::from_doc(&merged);
        assert!(resolver.same_machine("myri.ens-lyon.fr", "myri0.popc.private"));
        assert!(resolver.same_machine("popc0.popc.private", "popc.ens-lyon.fr"));
        assert!(!resolver.same_machine("myri.ens-lyon.fr", "popc.ens-lyon.fr"));
        // 6 declarations, 2 unified pairs → 4 machines.
        assert_eq!(resolver.machine_count(), 4);
    }

    #[test]
    fn resolver_canonical_is_deterministic() {
        let merged = merge_sites(&[outside_doc(), inside_doc()], &paper_gateways(), "G");
        let r1 = AliasResolver::from_doc(&merged);
        let r2 = AliasResolver::from_doc(&merged);
        assert_eq!(r1.canonical("myri0.popc.private"), r2.canonical("myri.ens-lyon.fr"));
        // Lexicographically smallest name wins.
        assert_eq!(r1.canonical("myri0.popc.private"), "myri.ens-lyon.fr");
    }

    #[test]
    fn transitive_alias_chains_unify() {
        let mut site = Site::new("x");
        let mut a = Machine::new("a.x");
        a.aliases.push("b.x".into());
        let mut b = Machine::new("b.x");
        b.aliases.push("c.x".into());
        site.machines.push(a);
        site.machines.push(b);
        let doc = GridDoc { label: None, sites: vec![site] };
        let r = AliasResolver::from_doc(&doc);
        assert!(r.same_machine("a.x", "c.x"));
        assert_eq!(r.machine_count(), 1);
    }

    #[test]
    fn unknown_names_resolve_to_themselves() {
        let r = AliasResolver::from_doc(&GridDoc::new());
        assert_eq!(r.canonical("ghost.example"), "ghost.example");
        assert_eq!(r.machine_count(), 0);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        prop_compose! {
            fn arb_site()(
                domain in "[a-z]{2,8}\\.[a-z]{2,3}",
                machines in proptest::collection::vec("[a-z]{1,8}", 1..5),
            ) -> Site {
                let mut site = Site::new(&domain);
                for m in machines {
                    site.machines.push(Machine::new(&format!("{m}.{domain}")));
                }
                site
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// With no gateway aliases, merging is exactly concatenation
            /// ("often as simple as a file concatenation").
            #[test]
            fn merge_without_aliases_is_concatenation(
                sites_a in proptest::collection::vec(arb_site(), 0..3),
                sites_b in proptest::collection::vec(arb_site(), 0..3),
            ) {
                let a = GridDoc { label: None, sites: sites_a.clone() };
                let b = GridDoc { label: None, sites: sites_b.clone() };
                let merged = merge_sites(&[a, b], &[], "G");
                prop_assert_eq!(merged.sites.len(), sites_a.len() + sites_b.len());
                let expected: Vec<&Site> = sites_a.iter().chain(sites_b.iter()).collect();
                for (got, want) in merged.sites.iter().zip(expected) {
                    prop_assert_eq!(got, want);
                }
            }

            /// Merging twice with the same aliases never duplicates them.
            #[test]
            fn merge_alias_idempotence(sites in proptest::collection::vec(arb_site(), 1..3)) {
                let doc = GridDoc { label: None, sites };
                // Alias the first machine of the first site to a synthetic
                // inside name.
                let outside = doc.sites[0].machines[0].name.clone();
                let aliases = vec![GatewayAlias::new(&outside, "gw.inside.example")];
                let once = merge_sites(std::slice::from_ref(&doc), &aliases, "G");
                let twice = merge_sites(std::slice::from_ref(&once), &aliases, "G");
                prop_assert_eq!(&once.sites, &twice.sites);
                let m = once.machine(&outside).unwrap();
                let count = m.aliases.iter().filter(|a| *a == "gw.inside.example").count();
                prop_assert_eq!(count, 1);
            }
        }
    }

    #[test]
    fn merged_doc_serializes_like_paper_example() {
        let merged = merge_sites(&[outside_doc(), inside_doc()], &paper_gateways(), "Grid1");
        let xml = merged.to_xml();
        assert!(xml.contains(r#"<LABEL name="Grid1" />"#));
        assert!(xml.contains(r#"<SITE domain="ens-lyon.fr">"#));
        assert!(xml.contains(r#"<SITE domain="popc.private">"#));
        assert!(xml.contains(r#"<ALIAS name="myri0.popc.private" />"#));
        assert!(xml.contains(r#"<ALIAS name="myri.ens-lyon.fr" />"#));
        // And round-trips.
        let parsed = GridDoc::parse(&xml).unwrap();
        assert_eq!(parsed, merged);
    }
}
