//! GridML serialization, matching the layout of the paper's listings
//! (§4.2.1.1, §4.2.1.2, §4.2.1.3, §4.2.2.4, §4.3).

use std::fmt::Write as _;

use crate::xml::open_tag;
use crate::{GridDoc, Machine, Network, Property, Site};

const INDENT: &str = "  ";

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str(INDENT);
    }
}

fn write_property(out: &mut String, depth: usize, p: &Property) {
    pad(out, depth);
    let mut attrs: Vec<(&str, &str)> = vec![("name", &p.name), ("value", &p.value)];
    if let Some(u) = &p.units {
        attrs.push(("units", u));
    }
    let _ = writeln!(out, "{}", open_tag("PROPERTY", &attrs, true));
}

fn write_machine(out: &mut String, depth: usize, m: &Machine) {
    pad(out, depth);
    out.push_str("<MACHINE>\n");
    // LABEL with ip+name, containing ALIAS children (paper §4.2.1.1).
    pad(out, depth + 1);
    let mut attrs: Vec<(&str, &str)> = Vec::new();
    if let Some(ip) = &m.ip {
        attrs.push(("ip", ip));
    }
    attrs.push(("name", &m.name));
    if m.aliases.is_empty() {
        let _ = writeln!(out, "{}", open_tag("LABEL", &attrs, true));
    } else {
        let _ = writeln!(out, "{}", open_tag("LABEL", &attrs, false));
        for a in &m.aliases {
            pad(out, depth + 2);
            let _ = writeln!(out, "{}", open_tag("ALIAS", &[("name", a)], true));
        }
        pad(out, depth + 1);
        out.push_str("</LABEL>\n");
    }
    for p in &m.properties {
        write_property(out, depth + 1, p);
    }
    pad(out, depth);
    out.push_str("</MACHINE>\n");
}

fn write_network(out: &mut String, depth: usize, n: &Network) {
    pad(out, depth);
    match n.net_type {
        Some(t) => {
            let _ = writeln!(out, "{}", open_tag("NETWORK", &[("type", t.as_str())], false));
        }
        None => out.push_str("<NETWORK>\n"),
    }
    if n.label_ip.is_some() || n.label_name.is_some() {
        pad(out, depth + 1);
        let mut attrs: Vec<(&str, &str)> = Vec::new();
        if let Some(ip) = &n.label_ip {
            attrs.push(("ip", ip));
        }
        if let Some(name) = &n.label_name {
            attrs.push(("name", name));
        }
        let _ = writeln!(out, "{}", open_tag("LABEL", &attrs, true));
    }
    for p in &n.properties {
        write_property(out, depth + 1, p);
    }
    for m in &n.machines {
        pad(out, depth + 1);
        let _ = writeln!(out, "{}", open_tag("MACHINE", &[("name", m)], true));
    }
    for sub in &n.subnets {
        write_network(out, depth + 1, sub);
    }
    pad(out, depth);
    out.push_str("</NETWORK>\n");
}

fn write_site(out: &mut String, depth: usize, s: &Site) {
    pad(out, depth);
    let _ = writeln!(out, "{}", open_tag("SITE", &[("domain", &s.domain)], false));
    if let Some(label) = &s.label {
        pad(out, depth + 1);
        let _ = writeln!(out, "{}", open_tag("LABEL", &[("name", label)], true));
    }
    for m in &s.machines {
        write_machine(out, depth + 1, m);
    }
    for n in &s.networks {
        write_network(out, depth + 1, n);
    }
    pad(out, depth);
    out.push_str("</SITE>\n");
}

impl GridDoc {
    /// Serialize to GridML (XML) text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        out.push_str("<?xml version=\"1.0\"?>\n");
        out.push_str("<GRID>\n");
        if let Some(label) = &self.label {
            pad(&mut out, 1);
            let _ = writeln!(out, "{}", open_tag("LABEL", &[("name", label)], true));
        }
        for s in &self.sites {
            write_site(&mut out, 1, s);
        }
        out.push_str("</GRID>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{GridDoc, Machine, Network, NetworkType, Property, Site};

    /// Regenerates the shape of the paper's first listing (§4.2.1.1).
    #[test]
    fn lookup_listing_shape() {
        let mut site = Site::new("ens-lyon.fr");
        site.label = Some("ENS-LYON-FR".to_string());
        let mut canaria = Machine::with_ip("canaria.ens-lyon.fr", "140.77.13.229");
        canaria.aliases.push("canaria".to_string());
        site.machines.push(canaria);
        let mut moby = Machine::with_ip("moby.cri2000.ens-lyon.fr", "140.77.13.82");
        moby.aliases.push("moby".to_string());
        site.machines.push(moby);
        let doc = GridDoc { label: None, sites: vec![site] };
        let xml = doc.to_xml();
        assert!(xml.starts_with("<?xml version=\"1.0\"?>\n<GRID>\n"));
        assert!(xml.contains(r#"<SITE domain="ens-lyon.fr">"#));
        assert!(xml.contains(r#"<LABEL name="ENS-LYON-FR" />"#));
        assert!(xml.contains(r#"<LABEL ip="140.77.13.229" name="canaria.ens-lyon.fr">"#));
        assert!(xml.contains(r#"<ALIAS name="canaria" />"#));
        assert!(xml.ends_with("</GRID>\n"));
    }

    /// Regenerates the shape of the ENV_Switched listing (§4.2.2.4).
    #[test]
    fn switched_network_listing_shape() {
        let mut net = Network::new(Some(NetworkType::EnvSwitched));
        net.label_name = Some("sci0".to_string());
        net.properties.push(Property::with_units("ENV_base_BW", "32.65", "Mbps"));
        net.properties.push(Property::with_units("ENV_base_local_BW", "32.29", "Mbps"));
        for i in 1..=6 {
            net.machines.push(format!("sci{i}.popc.private"));
        }
        let mut site = Site::new("popc.private");
        site.networks.push(net);
        let xml = GridDoc { label: None, sites: vec![site] }.to_xml();
        assert!(xml.contains(r#"<NETWORK type="ENV_Switched">"#));
        assert!(xml.contains(r#"<LABEL name="sci0" />"#));
        assert!(xml.contains(r#"<PROPERTY name="ENV_base_BW" value="32.65" units="Mbps" />"#));
        assert!(xml.contains(r#"<MACHINE name="sci1.popc.private" />"#));
    }

    #[test]
    fn properties_without_units_omit_attribute() {
        let mut m = Machine::new("x.y");
        m.properties.push(Property::new("CPU_model", "Pentium Pro"));
        let mut site = Site::new("y");
        site.machines.push(m);
        let xml = GridDoc { label: None, sites: vec![site] }.to_xml();
        assert!(xml.contains(r#"<PROPERTY name="CPU_model" value="Pentium Pro" />"#));
        assert!(!xml.contains("units"));
    }

    #[test]
    fn nested_structural_networks_indent() {
        // The §4.2.1.3 structural listing: nested NETWORK elements.
        let mut inner = Network::new(None);
        inner.label_ip = Some("140.77.13.1".to_string());
        inner.label_name = Some("140.77.13.1".to_string());
        inner.machines.push("canaria.ens-lyon.fr".to_string());
        let mut outer = Network::new(Some(NetworkType::Structural));
        outer.label_ip = Some("192.168.254.1".to_string());
        outer.label_name = Some("192.168.254.1".to_string());
        outer.subnets.push(inner);
        let mut site = Site::new("ens-lyon.fr");
        site.networks.push(outer);
        let xml = GridDoc { label: None, sites: vec![site] }.to_xml();
        assert!(xml.contains(r#"<NETWORK type="Structural">"#));
        let outer_pos = xml.find(r#"ip="192.168.254.1""#).unwrap();
        let inner_pos = xml.find(r#"ip="140.77.13.1""#).unwrap();
        assert!(outer_pos < inner_pos);
        assert!(xml.matches("</NETWORK>").count() == 2);
    }
}
