//! Incremental plan repair: from an updated effective view to the minimal
//! set of deployment migrations.
//!
//! After topology churn, the re-mapped view yields a fresh plan via
//! [`plan_deployment`]; naively shipping it would restart cliques whose
//! *measured network* never changed, merely because an equal-cost
//! tie-break landed elsewhere (a joiner whose name sorts first would steal
//! a shared network's representative slot, restarting a healthy clique and
//! truncating its measurement series). [`repair_plan`] derives the fresh
//! plan and then — when [`RepairConfig::preserve_representatives`] is on —
//! pins every still-valid equal-cost choice of the *old* plan:
//!
//! * a shared network keeps its old representative pair while both hosts
//!   remain members (the paper picked canaria/moby by hand; any pair is
//!   equally informative on a shared medium, so keeping the measured one
//!   is free);
//! * the inter-network clique keeps each top-level network's old delegate
//!   while it remains a member.
//!
//! Everything that genuinely changed (membership, kinds, appearing or
//! vanishing networks) migrates exactly as the fresh plan dictates. The
//! result is validated like any plan (the PR-4 `CompiledView` machinery);
//! with preservation off, `repair_plan` is *identical* to
//! `plan_deployment` — the equivalence the differential tests pin.

use std::collections::BTreeMap;

use envmap::{EnvNet, EnvView};

use crate::plan::{diff_plans, CliqueRole, DeploymentPlan, PlanDelta};
use crate::planner::{plan_deployment, PlannerConfig};

/// Repair knobs.
#[derive(Debug, Clone, Default)]
pub struct RepairConfig {
    pub planner: PlannerConfig,
    /// Keep the old plan's equal-cost choices (shared representatives,
    /// inter delegates) while they remain valid, minimising restarts.
    pub preserve_representatives: bool,
}

impl RepairConfig {
    /// The minimal-migration configuration.
    pub fn preserving() -> Self {
        RepairConfig { planner: PlannerConfig::default(), preserve_representatives: true }
    }
}

/// The outcome of a repair: the plan to run next, and what changes to
/// apply to get there from the old one.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    pub plan: DeploymentPlan,
    pub delta: PlanDelta,
}

/// Derive the repaired plan for `new_view` relative to `old`, plus the
/// migration delta. See the module docs for the preservation rules.
pub fn repair_plan(old: &DeploymentPlan, new_view: &EnvView, cfg: &RepairConfig) -> RepairOutcome {
    let mut plan = plan_deployment(new_view, &cfg.planner);

    if cfg.preserve_representatives {
        // Label → network lookup over the new view (labels are unique per
        // view: they name the gateway or lexicographically-first member).
        let by_label: BTreeMap<&str, &EnvNet> =
            new_view.flatten().iter().map(|f| (f.net.label.as_str(), f.net)).collect();

        for c in &mut plan.cliques {
            match c.role {
                CliqueRole::SharedLocal => {
                    let Some(label) = c.network.as_deref() else { continue };
                    let Some((a, b)) = old.representatives.get(label) else { continue };
                    let Some(net) = by_label.get(label) else { continue };
                    let still_members =
                        net.hosts.iter().any(|h| h == a) && net.hosts.iter().any(|h| h == b);
                    if still_members {
                        c.members = vec![a.clone(), b.clone()];
                        plan.representatives.insert(label.to_string(), (a.clone(), b.clone()));
                    }
                }
                CliqueRole::Inter => {
                    // Keep each top-level network's old delegate while it
                    // is still a member; positions follow the fresh
                    // clique's order (one slot per top-level network, the
                    // master prefix untouched).
                    let Some(old_inter) =
                        old.cliques.iter().find(|oc| oc.role == CliqueRole::Inter)
                    else {
                        continue;
                    };
                    // The planner contributes one slot per non-empty
                    // top-level network (plus an optional master prefix).
                    let tops: Vec<&EnvNet> =
                        new_view.networks.iter().filter(|n| !n.hosts.is_empty()).collect();
                    let offset = c.members.len() - tops.len();
                    for (slot, net) in tops.iter().enumerate() {
                        // Skip candidates already in the prefix (with
                        // `include_master_in_inter` the old inter clique
                        // leads with the master, which is also a member of
                        // its own network — copying it into a delegate
                        // slot would duplicate it in the ring).
                        if let Some(delegate) = old_inter
                            .members
                            .iter()
                            .find(|m| net.hosts.contains(m) && !c.members[..offset].contains(m))
                        {
                            c.members[offset + slot] = delegate.clone();
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let delta = diff_plans(old, &plan);
    RepairOutcome { plan, delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_plan;
    use envmap::NetKind;

    fn net(label: &str, kind: NetKind, hosts: &[&str]) -> EnvNet {
        EnvNet {
            label: label.to_string(),
            kind,
            hosts: hosts.iter().map(|s| s.to_string()).collect(),
            via: None,
            router_path: vec![],
            base_bw_mbps: 100.0,
            local_bw_mbps: None,
            jam_ratio: None,
            children: vec![],
        }
    }

    fn view(nets: Vec<EnvNet>) -> EnvView {
        EnvView { master: "m.x".to_string(), networks: nets }
    }

    #[test]
    fn without_preservation_repair_equals_fresh_planning() {
        let v1 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Switched, &["b1.x", "b2.x"]),
        ]);
        let old = plan_deployment(&v1, &PlannerConfig::default());
        let v2 = view(vec![
            net("a", NetKind::Shared, &["a0.x", "a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Switched, &["b1.x", "b2.x", "b3.x"]),
        ]);
        let out = repair_plan(&old, &v2, &RepairConfig::default());
        assert_eq!(out.plan, plan_deployment(&v2, &PlannerConfig::default()));
        assert_eq!(out.delta, diff_plans(&old, &out.plan));
    }

    #[test]
    fn preserved_representatives_avoid_gratuitous_restarts() {
        // Shared net a: reps a1/a2. A joiner a0 sorts first; the fresh
        // plan would swap reps to (a0, a1) and restart the clique — the
        // preserving repair keeps (a1, a2), so only genuinely-changed
        // cliques migrate.
        let v1 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);
        let old = plan_deployment(&v1, &PlannerConfig::default());
        let v2 = view(vec![
            net("a", NetKind::Shared, &["a0.x", "a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);

        let fresh = repair_plan(&old, &v2, &RepairConfig::default());
        let kept = repair_plan(&old, &v2, &RepairConfig::preserving());

        // Fresh planning migrates the shared clique and the inter clique
        // (a0 steals both slots); the preserving repair only adds the
        // joiner's sensor — no running clique restarts.
        assert!(!fresh.delta.cliques_to_restart.is_empty(), "{:?}", fresh.delta);
        assert!(kept.delta.cliques_to_restart.is_empty(), "{:?}", kept.delta);
        assert_eq!(kept.delta.sensors_to_add, vec!["a0.x".to_string()]);
        assert!(kept.delta.action_count() < fresh.delta.action_count());
        assert_eq!(kept.plan.representatives["a"], ("a1.x".to_string(), "a2.x".to_string()));
        let inter = kept.plan.cliques.iter().find(|c| c.role == CliqueRole::Inter).unwrap();
        assert!(inter.members.contains(&"a1.x".to_string()), "{:?}", inter.members);
    }

    #[test]
    fn vanished_representative_falls_back_to_fresh_choice() {
        let v1 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);
        let old = plan_deployment(&v1, &PlannerConfig::default());
        // a1 (an old rep and the old inter delegate) left the platform.
        let v2 = view(vec![
            net("a", NetKind::Shared, &["a2.x", "a3.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);
        let kept = repair_plan(&old, &v2, &RepairConfig::preserving());
        assert_eq!(kept.plan.representatives["a"], ("a2.x".to_string(), "a3.x".to_string()));
        let local_a = kept.plan.cliques.iter().find(|c| c.network.as_deref() == Some("a")).unwrap();
        assert_eq!(local_a.members, vec!["a2.x".to_string(), "a3.x".to_string()]);
        // The delta restarts exactly the cliques that lost a member.
        assert!(kept.delta.cliques_to_restart.iter().any(|c| c.network.as_deref() == Some("a")));
        assert_eq!(kept.delta.sensors_to_remove, vec!["a1.x".to_string()]);
    }

    #[test]
    fn repaired_plans_stay_complete_under_validation() {
        // The §2.3 completeness contract must survive preservation: the
        // kept representatives are still members, so the CompiledView
        // validator (PR 4) accepts the repaired plan like a fresh one.
        let v1 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Switched, &["b1.x", "b2.x", "b3.x"]),
            net("c", NetKind::Shared, &["c1.x", "c2.x"]),
        ]);
        let old = plan_deployment(&v1, &PlannerConfig::default());
        let v2 = view(vec![
            net("a", NetKind::Shared, &["a0.x", "a1.x", "a2.x", "a3.x"]),
            net("b", NetKind::Switched, &["b1.x", "b3.x", "b4.x"]),
            net("c", NetKind::Shared, &["c1.x", "c2.x"]),
        ]);
        // A flat switch platform carrying every host, so the validator can
        // resolve names and walk routes.
        let mut b = netsim::TopologyBuilder::new();
        let sw = b.switch("sw", netsim::Bandwidth::mbps(100.0), netsim::Latency::micros(20.0));
        for (i, h) in
            ["m.x", "a0.x", "a1.x", "a2.x", "a3.x", "b1.x", "b3.x", "b4.x", "c1.x", "c2.x"]
                .iter()
                .enumerate()
        {
            let n = b.host(h, &format!("10.0.0.{}", i + 1));
            b.attach(n, sw);
        }
        let topo = b.build().unwrap();
        for cfg in [RepairConfig::default(), RepairConfig::preserving()] {
            let out = repair_plan(&old, &v2, &cfg);
            let report = validate_plan(&out.plan, &v2, &topo);
            assert!(report.complete, "{}", report.render());
            assert!(report.unresolved_hosts.is_empty());
        }
    }

    /// With `include_master_in_inter`, the old inter clique leads with the
    /// master; delegate preservation must not copy it into its own
    /// network's slot (that would duplicate it in the ring).
    #[test]
    fn preserved_inter_delegates_never_duplicate_the_master() {
        let planner = PlannerConfig { include_master_in_inter: true, ..PlannerConfig::default() };
        // The master's network: "m.x" is a member but NOT the lexicographic
        // minimum, so the fresh delegate differs from the master.
        let v1 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "m.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);
        let old = plan_deployment(&v1, &planner);
        let v2 = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x", "m.x"]),
            net("b", NetKind::Shared, &["b1.x", "b2.x"]),
        ]);
        let cfg = RepairConfig { planner, preserve_representatives: true };
        let out = repair_plan(&old, &v2, &cfg);
        let inter = out.plan.cliques.iter().find(|c| c.role == CliqueRole::Inter).unwrap();
        let masters = inter.members.iter().filter(|m| *m == "m.x").count();
        assert_eq!(masters, 1, "master duplicated in inter ring: {:?}", inter.members);
        // The old delegates are still preserved.
        assert!(inter.members.contains(&"a1.x".to_string()), "{:?}", inter.members);
        assert!(inter.members.contains(&"b1.x".to_string()), "{:?}", inter.members);
    }

    #[test]
    fn identical_views_yield_empty_delta() {
        let v = view(vec![
            net("a", NetKind::Shared, &["a1.x", "a2.x"]),
            net("b", NetKind::Switched, &["b1.x", "b2.x", "b3.x"]),
        ]);
        let old = plan_deployment(&v, &PlannerConfig::default());
        for cfg in [RepairConfig::default(), RepairConfig::preserving()] {
            let out = repair_plan(&old, &v, &cfg);
            assert!(out.delta.is_empty(), "{:?}", out.delta);
            assert_eq!(out.plan, old);
        }
    }
}
