//! The "NWS manager" of paper §5.2: a configuration file shared across all
//! involved hosts, applied locally on each one.
//!
//! "We realized a NWS manager program using a configuration file shared
//! across all involved hosts and applying the local parts on each hosts.
//! The actual deployment of NWS is then as easy as dispatching the
//! configuration file to the hosts (using for example NFS), and running
//! the manager on each machines."
//!
//! The format is a small INI dialect (the original was Perl); it
//! round-trips through [`render_config`] / [`parse_config`]. On the
//! simulator, [`apply_plan`] performs what running the manager on every
//! host performs in reality: starting the right processes with the right
//! options.

use std::collections::BTreeMap;

use netsim::engine::Engine;
use netsim::error::{NetError, NetResult};
use netsim::time::TimeDelta;

use nws::{CliqueSpec, NwsMsg, NwsSystem, NwsSystemSpec, ReconfigSpec, SensorMode, SensorSpec};

use crate::plan::{CliqueRole, DeploymentPlan, PlanDelta, PlannedClique};

/// Serialize a plan to the shared manager configuration.
pub fn render_config(plan: &DeploymentPlan) -> String {
    let mut s = String::new();
    s.push_str("# NWS deployment configuration (generated from an ENV mapping)\n");
    s.push_str("[global]\n");
    s.push_str(&format!("master = {}\n", plan.master));
    s.push_str(&format!("nameserver = {}\n", plan.nameserver));
    s.push_str(&format!("forecaster = {}\n", plan.forecaster));
    s.push_str(&format!("memories = {}\n", plan.memories.join(", ")));
    s.push_str(&format!("gap_ms = {}\n", plan.gap.as_millis()));
    s.push_str(&format!("wal_compact_kib = {}\n", plan.wal_compact_kib));
    s.push_str(&format!("serve_shards = {}\n", plan.serve_shards));
    s.push_str(&format!("hosts = {}\n", plan.hosts.join(", ")));
    s.push('\n');
    for c in &plan.cliques {
        s.push_str(&format!("[clique {}]\n", c.name));
        s.push_str(&format!("role = {}\n", c.role.as_str()));
        if let Some(net) = &c.network {
            s.push_str(&format!("network = {net}\n"));
        }
        s.push_str(&format!("members = {}\n", c.members.join(", ")));
        s.push('\n');
    }
    for (net, (a, b)) in &plan.representatives {
        s.push_str(&format!("[representative {net}]\n"));
        s.push_str(&format!("pair = {a}, {b}\n\n"));
    }
    if !plan.memory_of.is_empty() {
        s.push_str("[memory-assignment]\n");
        for (host, memory) in &plan.memory_of {
            s.push_str(&format!("{host} = {memory}\n"));
        }
        s.push('\n');
    }
    s
}

/// Parse a manager configuration back into a plan.
pub fn parse_config(text: &str) -> Result<DeploymentPlan, String> {
    let mut master = None;
    let mut nameserver = None;
    let mut forecaster = None;
    let mut memories = Vec::new();
    let mut gap_ms = 500.0f64;
    let mut wal_compact_kib = crate::plan::DEFAULT_WAL_COMPACT_KIB;
    let mut serve_shards = crate::plan::DEFAULT_SERVE_SHARDS;
    let mut hosts = Vec::new();
    let mut cliques: Vec<PlannedClique> = Vec::new();
    let mut representatives = BTreeMap::new();
    let mut memory_of = BTreeMap::new();

    #[derive(PartialEq)]
    enum Section {
        None,
        Global,
        Clique(usize),
        Representative(String),
        MemoryAssignment,
    }
    let mut section = Section::None;

    let list = |v: &str| -> Vec<String> {
        v.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect()
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match inner.split_once(' ') {
                None if inner == "global" => Section::Global,
                None if inner == "memory-assignment" => Section::MemoryAssignment,
                Some(("clique", name)) => {
                    cliques.push(PlannedClique {
                        name: name.trim().to_string(),
                        members: vec![],
                        role: CliqueRole::Inter,
                        network: None,
                    });
                    Section::Clique(cliques.len() - 1)
                }
                Some(("representative", net)) => Section::Representative(net.trim().to_string()),
                _ => return Err(format!("line {}: unknown section {inner:?}", lineno + 1)),
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
        let (key, value) = (key.trim(), value.trim());
        match &section {
            Section::Global => match key {
                "master" => master = Some(value.to_string()),
                "nameserver" => nameserver = Some(value.to_string()),
                "forecaster" => forecaster = Some(value.to_string()),
                "memories" => memories = list(value),
                "gap_ms" => {
                    gap_ms =
                        value.parse().map_err(|_| format!("line {}: bad gap_ms", lineno + 1))?
                }
                "wal_compact_kib" => {
                    wal_compact_kib = value
                        .parse()
                        .map_err(|_| format!("line {}: bad wal_compact_kib", lineno + 1))?
                }
                "serve_shards" => {
                    serve_shards = value
                        .parse()
                        .map_err(|_| format!("line {}: bad serve_shards", lineno + 1))?
                }
                "hosts" => hosts = list(value),
                _ => return Err(format!("line {}: unknown global key {key:?}", lineno + 1)),
            },
            Section::Clique(i) => {
                let c = &mut cliques[*i];
                match key {
                    "role" => {
                        c.role = CliqueRole::from_str_opt(value)
                            .ok_or_else(|| format!("line {}: bad role {value:?}", lineno + 1))?
                    }
                    "network" => c.network = Some(value.to_string()),
                    "members" => c.members = list(value),
                    _ => return Err(format!("line {}: unknown clique key {key:?}", lineno + 1)),
                }
            }
            Section::Representative(net) => match key {
                "pair" => {
                    let pair = list(value);
                    if pair.len() != 2 {
                        return Err(format!("line {}: pair needs two hosts", lineno + 1));
                    }
                    representatives.insert(net.clone(), (pair[0].clone(), pair[1].clone()));
                }
                _ => return Err(format!("line {}: unknown key {key:?}", lineno + 1)),
            },
            Section::MemoryAssignment => {
                memory_of.insert(key.to_string(), value.to_string());
            }
            Section::None => return Err(format!("line {}: key outside any section", lineno + 1)),
        }
    }

    Ok(DeploymentPlan {
        master: master.ok_or("missing master")?,
        cliques,
        nameserver: nameserver.ok_or("missing nameserver")?,
        memories,
        forecaster: forecaster.ok_or("missing forecaster")?,
        representatives,
        gap: TimeDelta::from_millis(gap_ms),
        hosts,
        memory_of,
        wal_compact_kib,
        serve_shards,
    })
}

/// The local actions the manager performs on one host (paper §5.2:
/// "applying the local parts on each hosts").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalAction {
    StartNameServer,
    StartMemory,
    StartForecaster,
    /// Start a sensor joining the named cliques.
    StartSensor {
        cliques: Vec<String>,
    },
}

/// What the manager would do on `host` given the shared configuration.
pub fn local_actions(plan: &DeploymentPlan, host: &str) -> Vec<LocalAction> {
    let mut actions = Vec::new();
    if plan.nameserver == host {
        actions.push(LocalAction::StartNameServer);
    }
    if plan.memories.iter().any(|m| m == host) {
        actions.push(LocalAction::StartMemory);
    }
    if plan.forecaster == host {
        actions.push(LocalAction::StartForecaster);
    }
    let cliques: Vec<String> = plan
        .cliques
        .iter()
        .filter(|c| c.members.iter().any(|m| m == host))
        .map(|c| c.name.clone())
        .collect();
    if !cliques.is_empty() || plan.hosts.iter().any(|h| h == host) {
        actions.push(LocalAction::StartSensor { cliques });
    }
    actions
}

/// Convert a plan to the deployable NWS system specification.
pub fn plan_to_spec(plan: &DeploymentPlan) -> NwsSystemSpec {
    plan_to_spec_with(plan, false)
}

/// As [`plan_to_spec`], optionally enabling the §6 host-locking extension
/// (the paper's proposed fix for inter-clique collisions at shared hosts).
pub fn plan_to_spec_with(plan: &DeploymentPlan, host_locking: bool) -> NwsSystemSpec {
    let sensors: Vec<SensorSpec> = plan
        .hosts
        .iter()
        .map(|h| SensorSpec {
            host: h.clone(),
            mode: SensorMode::Clique,
            host_sensing: true,
            memory: Some(plan.memory_for(h).to_string()),
        })
        .collect();
    // Stagger the token gaps so independent cliques do not phase-lock:
    // with identical periods, a clique overlapping another's medium (the
    // §6 caveat) would collide on *every* round instead of occasionally.
    let cliques: Vec<CliqueSpec> = plan
        .cliques
        .iter()
        .enumerate()
        .map(|(i, c)| CliqueSpec {
            name: c.name.clone(),
            members: c.members.clone(),
            gap: plan.gap * (1.0 + 0.137 * i as f64),
        })
        .collect();
    NwsSystemSpec {
        nameserver_host: plan.nameserver.clone(),
        memory_hosts: plan.memories.clone(),
        forecaster_host: plan.forecaster.clone(),
        sensors,
        cliques,
        probe_bytes: netsim::probes::BANDWIDTH_PROBE_BYTES,
        series_capacity: nws::Series::DEFAULT_CAPACITY,
        watchdog: TimeDelta::from_secs(30.0),
        host_sense_period: TimeDelta::from_secs(10.0),
        seed: 42,
        host_locking,
        wal_compact_kib: plan.wal_compact_kib,
        serve_shards: plan.serve_shards,
    }
}

/// Convert a plan delta (from [`crate::plan::diff_plans`] or
/// [`crate::repair::repair_plan`]) to the incremental reconfiguration the
/// running NWS system applies in place. `new_plan` supplies memory
/// assignments for joining sensors and the clique gaps — staggered by the
/// clique's index in the new plan, exactly as [`plan_to_spec`] staggers a
/// fresh deployment, so a reconfigured system and a freshly deployed one
/// agree on measurement frequency.
pub fn plan_delta_to_reconfig(delta: &PlanDelta, new_plan: &DeploymentPlan) -> ReconfigSpec {
    let gap_of = |name: &str| {
        let i = new_plan.cliques.iter().position(|c| c.name == name).unwrap_or(0);
        new_plan.gap * (1.0 + 0.137 * i as f64)
    };
    let to_spec = |c: &PlannedClique| CliqueSpec {
        name: c.name.clone(),
        members: c.members.clone(),
        gap: gap_of(&c.name),
    };
    ReconfigSpec {
        cliques_to_stop: delta.cliques_to_stop.clone(),
        cliques_to_upsert: delta
            .cliques_to_start
            .iter()
            .chain(&delta.cliques_to_restart)
            .map(to_spec)
            .collect(),
        sensors_to_add: delta
            .sensors_to_add
            .iter()
            .map(|h| SensorSpec {
                host: h.clone(),
                mode: SensorMode::Clique,
                host_sensing: true,
                memory: Some(new_plan.memory_for(h).to_string()),
            })
            .collect(),
        sensors_to_remove: delta.sensors_to_remove.clone(),
        memories_to_add: delta.memories_to_add.clone(),
        memories_to_remove: delta.memories_to_remove.clone(),
    }
}

/// Apply a plan delta to a running system — the incremental counterpart of
/// [`apply_plan`]: sensors, cliques and series are retargeted in place,
/// preserving memory contents and forecaster watermarks across the
/// transition.
pub fn apply_plan_delta(
    eng: &mut Engine<NwsMsg>,
    sys: &mut NwsSystem,
    delta: &PlanDelta,
    new_plan: &DeploymentPlan,
) -> NetResult<()> {
    sys.reconfigure(eng, &plan_delta_to_reconfig(delta, new_plan))
}

/// Deploy the plan onto a simulated platform — the manager run on every
/// host at once.
pub fn apply_plan(eng: &mut Engine<NwsMsg>, plan: &DeploymentPlan) -> NetResult<NwsSystem> {
    apply_plan_with(eng, plan, false)
}

/// As [`apply_plan`], optionally enabling host locking (§6 extension).
pub fn apply_plan_with(
    eng: &mut Engine<NwsMsg>,
    plan: &DeploymentPlan,
    host_locking: bool,
) -> NetResult<NwsSystem> {
    if plan.hosts.is_empty() {
        return Err(NetError::InvalidTopology("plan covers no hosts".to_string()));
    }
    NwsSystem::deploy(eng, &plan_to_spec_with(plan, host_locking))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_plan() -> DeploymentPlan {
        DeploymentPlan {
            master: "m.x".into(),
            cliques: vec![
                PlannedClique {
                    name: "local-hub".into(),
                    members: vec!["a.x".into(), "b.x".into()],
                    role: CliqueRole::SharedLocal,
                    network: Some("hub".into()),
                },
                PlannedClique {
                    name: "inter-top".into(),
                    members: vec!["a.x".into(), "c.x".into()],
                    role: CliqueRole::Inter,
                    network: None,
                },
            ],
            nameserver: "m.x".into(),
            memories: vec!["m.x".into()],
            forecaster: "m.x".into(),
            representatives: BTreeMap::from([(
                "hub".to_string(),
                ("a.x".to_string(), "b.x".to_string()),
            )]),
            gap: TimeDelta::from_millis(250.0),
            hosts: vec!["a.x".into(), "b.x".into(), "c.x".into()],
            memory_of: BTreeMap::from([("c.x".to_string(), "m.x".to_string())]),
            wal_compact_kib: 128,
            serve_shards: 4,
        }
    }

    #[test]
    fn config_round_trips() {
        let plan = sample_plan();
        let text = render_config(&plan);
        let parsed = parse_config(&text).unwrap();
        assert_eq!(plan, parsed);
    }

    #[test]
    fn config_mentions_paper_concepts() {
        let text = render_config(&sample_plan());
        assert!(text.contains("[clique local-hub]"));
        assert!(text.contains("role = shared-local"));
        assert!(text.contains("[representative hub]"));
        assert!(text.contains("pair = a.x, b.x"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_config("key = value").is_err());
        assert!(parse_config("[weird section]").is_err());
        assert!(parse_config("[global]\nmaster = m\n[clique c]\nrole = nope\n").is_err());
        assert!(parse_config("[global]\nnameserver = n\nforecaster = f\n").is_err()); // no master
        assert!(parse_config("[global]\nbroken line\n").is_err());
        assert!(parse_config(
            "[representative x]\npair = only-one\n[global]\nmaster=m\nnameserver=n\nforecaster=f\n"
        )
        .is_err());
    }

    #[test]
    fn local_actions_per_host() {
        let plan = sample_plan();
        let m = local_actions(&plan, "m.x");
        assert!(m.contains(&LocalAction::StartNameServer));
        assert!(m.contains(&LocalAction::StartMemory));
        assert!(m.contains(&LocalAction::StartForecaster));

        let a = local_actions(&plan, "a.x");
        assert_eq!(
            a,
            vec![LocalAction::StartSensor {
                cliques: vec!["local-hub".to_string(), "inter-top".to_string()]
            }]
        );

        let b = local_actions(&plan, "b.x");
        assert_eq!(b, vec![LocalAction::StartSensor { cliques: vec!["local-hub".to_string()] }]);

        assert!(local_actions(&plan, "stranger.x").is_empty());
    }

    /// The per-host actions (§5.2) and the global spec must agree: a host
    /// gets a sensor action iff the spec deploys a sensor there, and its
    /// clique list matches the cliques it belongs to.
    #[test]
    fn local_actions_agree_with_global_spec() {
        let plan = sample_plan();
        let spec = plan_to_spec(&plan);
        let mut all_hosts: Vec<String> = plan.hosts.clone();
        all_hosts.push(plan.master.clone());
        all_hosts.push("unrelated.host".to_string());
        for host in &all_hosts {
            let actions = local_actions(&plan, host);
            let has_sensor_action =
                actions.iter().any(|a| matches!(a, LocalAction::StartSensor { .. }));
            let spec_has_sensor = spec.sensors.iter().any(|s| &s.host == host);
            assert_eq!(has_sensor_action, spec_has_sensor, "host {host}");
            if let Some(LocalAction::StartSensor { cliques }) =
                actions.iter().find(|a| matches!(a, LocalAction::StartSensor { .. }))
            {
                let from_spec: Vec<&str> = spec
                    .cliques
                    .iter()
                    .filter(|c| c.members.iter().any(|m| m == host))
                    .map(|c| c.name.as_str())
                    .collect();
                let from_actions: Vec<&str> = cliques.iter().map(|c| c.as_str()).collect();
                assert_eq!(from_actions, from_spec, "host {host}");
            }
            let memory_action = actions.contains(&LocalAction::StartMemory);
            assert_eq!(memory_action, spec.memory_hosts.contains(host), "host {host}");
        }
    }

    #[test]
    fn spec_carries_cliques_and_sensors() {
        let plan = sample_plan();
        let spec = plan_to_spec(&plan);
        assert_eq!(spec.sensors.len(), 3);
        assert_eq!(spec.cliques.len(), 2);
        assert_eq!(spec.nameserver_host, "m.x");
        assert_eq!(spec.cliques[0].members, vec!["a.x", "b.x"]);
    }
}
