//! Completeness machinery (constraint 3 of paper §2.3).
//!
//! "Given two machines, if no direct measurement is conducted on their
//! connectivity, the system must be able to aggregate the conducted
//! experiments to estimate the network characteristics of their
//! interconnection. ... Latency between A and C can then be roughly
//! estimated by adding the latencies measured on AB and on BC. The minimum
//! of the bandwidths on AB and BC can be used to estimate the one on AC."
//!
//! Two mechanisms compose here:
//!
//! * **representative substitution** — on a shared network the measured
//!   pair stands in for any pair (the capability §6 laments NWS lacks:
//!   "NWS is then unable to substitute automatically the characteristics
//!   of the tested pair when another pair is asked");
//! * **segment aggregation** — paths crossing several effective networks
//!   combine per-segment values: latencies add, bandwidths take the min.

use envmap::{EnvNet, EnvView, NetKind};
use nws::{Resource, SeriesKey};

use crate::compiled::CompiledView;
use crate::plan::DeploymentPlan;

/// Where measured values come from (a live NWS system, or a table in
/// tests/benches).
pub trait MeasurementSource {
    /// Latest value for a series, if any measurement exists.
    fn latest(&self, key: &SeriesKey) -> Option<f64>;
}

/// A static map of measurements.
#[derive(Debug, Default)]
pub struct StaticSource(pub std::collections::BTreeMap<SeriesKey, f64>);

impl StaticSource {
    pub fn set(&mut self, key: SeriesKey, value: f64) {
        self.0.insert(key, value);
    }
}

impl MeasurementSource for StaticSource {
    fn latest(&self, key: &SeriesKey) -> Option<f64> {
        self.0.get(key).copied()
    }
}

/// A deployed NWS system answers with the most recent stored measurement.
impl MeasurementSource for nws::NwsSystem {
    fn latest(&self, key: &SeriesKey) -> Option<f64> {
        self.series(key).and_then(|points| points.last().map(|(_, v)| *v))
    }
}

/// Whether every segment of an estimate came from live measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// All segments backed by NWS series.
    Measured,
    /// At least one segment fell back to ENV's static mapping values.
    PartiallyStatic,
}

/// An end-to-end estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    pub bandwidth_mbps: f64,
    /// Summed path latency; `None` when a static segment had no latency.
    pub latency_ms: Option<f64>,
    /// Human-readable segment chain, for diagnostics.
    pub segments: Vec<String>,
    pub freshness: Freshness,
}

/// Estimator over a plan and the effective view it came from.
///
/// Since the cluster-granular rewrite this is a thin façade over the
/// interned [`CompiledView`] engine: `new` compiles the view/plan pair
/// once (interned host ids, flattened ancestry, clique bitsets), and
/// `estimate` runs on dense ids. The original string-walking
/// implementation survives unchanged as [`naive::NaiveEstimator`], the
/// differential-test oracle.
pub struct Estimator<'a> {
    compiled: CompiledView<'a>,
}

impl<'a> Estimator<'a> {
    pub fn new(view: &'a EnvView, plan: &'a DeploymentPlan) -> Self {
        Estimator { compiled: CompiledView::new(view, plan) }
    }

    /// [`Estimator::new`] over a pre-flattened forest — callers already
    /// holding `view.flatten()` skip the re-flatten and re-intern (see
    /// [`CompiledView::from_flat`]).
    pub fn from_flat(
        view: &'a EnvView,
        flat: &[envmap::FlatNet<'a>],
        plan: &'a DeploymentPlan,
    ) -> Self {
        Estimator { compiled: CompiledView::from_flat(view, flat, plan) }
    }

    /// Estimate connectivity from `src` to `dst`.
    ///
    /// Returns `None` only when the pair cannot be located in the view at
    /// all (unknown hosts).
    pub fn estimate(
        &self,
        src: &str,
        dst: &str,
        source: &dyn MeasurementSource,
    ) -> Option<Estimate> {
        // A name the view/plan never mentions cannot be clique-measured,
        // the master, or located — exactly the naive `None` cases.
        let s = self.compiled.host_id(src)?;
        let d = self.compiled.host_id(dst)?;
        let adapter = self.compiled.adapt(source);
        self.compiled.estimate_ids(s, d, &adapter)
    }

    /// The interned engine, for callers that want dense-id queries (e.g.
    /// the plan validator) without recompiling the view.
    pub fn compiled(&self) -> &CompiledView<'a> {
        &self.compiled
    }
}

/// The pre-interning estimator, kept verbatim as the differential-test
/// oracle (the engine pattern of PR 1's `max_min_allocate` and PR 3's
/// `forecast::naive`): `Estimator` must agree with it bit-for-bit.
pub mod naive {
    use super::*;

    /// One aggregation segment.
    #[derive(Debug, Clone)]
    enum Segment {
        /// a↔b within the named network (substitution applies).
        Within { net: String, a: String, b: String },
        /// a↔b across the inter-network clique.
        Inter { a: String, b: String },
        /// Static fallback: ENV's base bandwidth for the named network.
        StaticNet { net: String },
    }

    /// String-walking estimator over a plan and its effective view.
    pub struct NaiveEstimator<'a> {
        view: &'a EnvView,
        plan: &'a DeploymentPlan,
    }

    impl<'a> NaiveEstimator<'a> {
        pub fn new(view: &'a EnvView, plan: &'a DeploymentPlan) -> Self {
            NaiveEstimator { view, plan }
        }

        /// Estimate connectivity from `src` to `dst`.
        ///
        /// Returns `None` only when the pair cannot be located in the view
        /// at all (unknown hosts).
        pub fn estimate(
            &self,
            src: &str,
            dst: &str,
            source: &dyn MeasurementSource,
        ) -> Option<Estimate> {
            if src == dst {
                return None;
            }

            // Directly measured by some clique? Use the fresh values.
            if self.plan.clique_measuring(src, dst).is_some() {
                return Some(self.finish(
                    vec![Segment::Inter { a: src.to_string(), b: dst.to_string() }],
                    source,
                ));
            }

            let master = &self.view.master;
            if src == master || dst == master {
                let other = if src == master { dst } else { src };
                return self.estimate_from_master(other, source);
            }

            let chain_src = self.ancestry(src)?;
            let chain_dst = self.ancestry(dst)?;

            let mut segments = Vec::new();

            // Deepest common network in the two ancestries.
            let common_depth = chain_src
                .iter()
                .zip(chain_dst.iter())
                .take_while(|(a, b)| a.label == b.label)
                .count();

            if common_depth > 0 {
                // Same top-level subtree: climb both sides to the common net.
                let common = chain_src[common_depth - 1];
                let up = self.climb(src, &chain_src[common_depth - 1..], &mut segments);
                let mut down_segs = Vec::new();
                let down = self.climb(dst, &chain_dst[common_depth - 1..], &mut down_segs);
                if up != down {
                    segments.push(Segment::Within { net: common.label.clone(), a: up, b: down });
                }
                segments.extend(down_segs.into_iter().rev());
            } else {
                // Different top-level networks: go through the inter clique.
                let top_src = chain_src[0];
                let top_dst = chain_dst[0];
                let rep_src = self.top_rep(top_src);
                let rep_dst = self.top_rep(top_dst);
                let up = self.climb(src, &chain_src, &mut segments);
                if up != rep_src {
                    segments.push(Segment::Within {
                        net: top_src.label.clone(),
                        a: up,
                        b: rep_src.clone(),
                    });
                }
                segments.push(Segment::Inter { a: rep_src, b: rep_dst.clone() });
                let mut down_segs = Vec::new();
                let down = self.climb(dst, &chain_dst, &mut down_segs);
                if down != rep_dst {
                    down_segs.push(Segment::Within {
                        net: top_dst.label.clone(),
                        a: rep_dst,
                        b: down,
                    });
                }
                segments.extend(down_segs.into_iter().rev());
            }

            Some(self.finish(segments, source))
        }

        /// Master-to-host estimates: ENV measured master↔network bandwidth
        /// during the mapping (`base_bw`), so the leaf network's base value
        /// bounds the whole path — a static estimate unless the master was
        /// planned into the inter clique.
        fn estimate_from_master(
            &self,
            other: &str,
            source: &dyn MeasurementSource,
        ) -> Option<Estimate> {
            let chain = self.ancestry(other)?;
            let leaf = *chain.last().expect("ancestry is non-empty");

            // Fresh path when the master is in the inter clique: master↔top
            // rep is measured, the rest aggregates as usual.
            let master = self.view.master.clone();
            let top = chain[0];
            let rep = self.top_rep(top);
            if self.plan.clique_measuring(&master, &rep).is_some() {
                let mut segments = vec![Segment::Inter { a: master, b: rep.clone() }];
                let mut down_segs = Vec::new();
                let down = self.climb(other, &chain, &mut down_segs);
                if down != rep {
                    down_segs.push(Segment::Within { net: top.label.clone(), a: rep, b: down });
                }
                segments.extend(down_segs.into_iter().rev());
                return Some(self.finish(segments, source));
            }

            Some(self.finish(vec![Segment::StaticNet { net: leaf.label.clone() }], source))
        }

        /// Ancestry of the network containing `host`: root-level network
        /// first, leaf network last.
        fn ancestry(&self, host: &str) -> Option<Vec<&'a EnvNet>> {
            fn rec<'b>(net: &'b EnvNet, host: &str, path: &mut Vec<&'b EnvNet>) -> bool {
                path.push(net);
                if net.hosts.iter().any(|h| h == host) {
                    return true;
                }
                for c in &net.children {
                    if rec(c, host, path) {
                        return true;
                    }
                }
                path.pop();
                false
            }
            for net in &self.view.networks {
                let mut path = Vec::new();
                if rec(net, host, &mut path) {
                    return Some(path);
                }
            }
            None
        }

        /// Climb from `host` in the leaf of `chain` up to the first network of
        /// `chain`, emitting within-segments; returns the host reached in the
        /// first network of the chain (a gateway or `host` itself).
        fn climb(&self, host: &str, chain: &[&EnvNet], segments: &mut Vec<Segment>) -> String {
            let mut cur = host.to_string();
            // Walk leaf→up; chain is top→leaf, so iterate in reverse, stopping
            // before the first element.
            for i in (1..chain.len()).rev() {
                let net = chain[i];
                let gw = net
                    .via
                    .clone()
                    .unwrap_or_else(|| net.hosts.first().cloned().unwrap_or_else(|| cur.clone()));
                if cur != gw {
                    segments.push(Segment::Within {
                        net: net.label.clone(),
                        a: cur.clone(),
                        b: gw.clone(),
                    });
                }
                cur = gw;
            }
            cur
        }

        /// The inter-clique representative of a top-level network.
        fn top_rep(&self, net: &EnvNet) -> String {
            if let Some(inter) = self.plan.cliques.iter().find(|c| c.name == "inter-top") {
                if let Some(rep) = inter.members.iter().find(|m| net.hosts.contains(m)) {
                    return rep.clone();
                }
            }
            net.hosts.first().cloned().unwrap_or_else(|| self.view.master.clone())
        }

        /// Resolve the segment chain to numbers.
        fn finish(&self, segments: Vec<Segment>, source: &dyn MeasurementSource) -> Estimate {
            let mut bw = f64::INFINITY;
            let mut lat = Some(0.0f64);
            let mut fresh = Freshness::Measured;
            let mut descs = Vec::with_capacity(segments.len());

            for seg in &segments {
                match seg {
                    Segment::Within { net, a, b } => {
                        let (pa, pb, substituted) = self.substitute(net, a, b);
                        let b_bw = self.pair_value(Resource::Bandwidth, &pa, &pb, source);
                        let b_lat = self.pair_value(Resource::Latency, &pa, &pb, source);
                        match b_bw {
                            Some(v) => bw = bw.min(v),
                            None => {
                                // Static fallback for an unmeasured network.
                                if let Some(n) = find_net(&self.view.networks, net) {
                                    bw = bw.min(n.local_bw_mbps.unwrap_or(n.base_bw_mbps));
                                }
                                fresh = Freshness::PartiallyStatic;
                            }
                        }
                        match b_lat {
                            Some(v) => {
                                if let Some(l) = lat.as_mut() {
                                    *l += v;
                                }
                            }
                            None => lat = None,
                        }
                        let sub = if substituted { " (representative)" } else { "" };
                        descs.push(format!("{a}→{b} within {net}{sub}"));
                    }
                    Segment::Inter { a, b } => {
                        match self.pair_value(Resource::Bandwidth, a, b, source) {
                            Some(v) => bw = bw.min(v),
                            None => fresh = Freshness::PartiallyStatic,
                        }
                        match self.pair_value(Resource::Latency, a, b, source) {
                            Some(v) => {
                                if let Some(l) = lat.as_mut() {
                                    *l += v;
                                }
                            }
                            None => lat = None,
                        }
                        descs.push(format!("{a}→{b} (direct)"));
                    }
                    Segment::StaticNet { net } => {
                        if let Some(n) = find_net(&self.view.networks, net) {
                            bw = bw.min(n.base_bw_mbps);
                        }
                        lat = None;
                        fresh = Freshness::PartiallyStatic;
                        descs.push(format!("ENV base bandwidth of {net} (static)"));
                    }
                }
            }

            if !bw.is_finite() {
                bw = 0.0;
                fresh = Freshness::PartiallyStatic;
            }
            Estimate { bandwidth_mbps: bw, latency_ms: lat, segments: descs, freshness: fresh }
        }

        /// Apply representative substitution on a shared network when the pair
        /// itself is not measured.
        fn substitute(&self, net_label: &str, a: &str, b: &str) -> (String, String, bool) {
            if self.plan.clique_measuring(a, b).is_some() {
                return (a.to_string(), b.to_string(), false);
            }
            let net = find_net(&self.view.networks, net_label);
            if let Some(net) = net {
                if matches!(net.kind, NetKind::Shared) {
                    if let Some((r1, r2)) = self.plan.representatives.get(net_label) {
                        return (r1.clone(), r2.clone(), true);
                    }
                }
            }
            (a.to_string(), b.to_string(), false)
        }

        /// Measured value for a pair, trying both directions (NWS measures
        /// both over a clique round; early in a run only one may exist).
        fn pair_value(
            &self,
            resource: Resource,
            a: &str,
            b: &str,
            source: &dyn MeasurementSource,
        ) -> Option<f64> {
            source
                .latest(&SeriesKey::link(resource, a, b))
                .or_else(|| source.latest(&SeriesKey::link(resource, b, a)))
        }
    }

    fn find_net<'b>(nets: &'b [EnvNet], label: &str) -> Option<&'b EnvNet> {
        for n in nets {
            if n.label == label {
                return Some(n);
            }
            if let Some(f) = find_net(&n.children, label) {
                return Some(f);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CliqueRole, PlannedClique};
    use netsim::time::TimeDelta;
    use std::collections::BTreeMap;

    /// Hand-built two-hub view resembling Figure 1(b):
    /// hub1 {a, b}; hub2 {g1, g2} with switched child sw {s1, s2, s3} via g1.
    fn view() -> EnvView {
        EnvView {
            master: "master".to_string(),
            networks: vec![
                EnvNet {
                    label: "hub1".to_string(),
                    kind: NetKind::Shared,
                    hosts: vec!["a".to_string(), "b".to_string()],
                    via: None,
                    router_path: vec![],
                    base_bw_mbps: 100.0,
                    local_bw_mbps: Some(100.0),
                    jam_ratio: Some(0.5),
                    children: vec![],
                },
                EnvNet {
                    label: "hub2".to_string(),
                    kind: NetKind::Shared,
                    hosts: vec!["g1".to_string(), "g2".to_string(), "g3".to_string()],
                    via: None,
                    router_path: vec![],
                    base_bw_mbps: 10.0,
                    local_bw_mbps: Some(10.0),
                    jam_ratio: Some(0.5),
                    children: vec![EnvNet {
                        label: "sw".to_string(),
                        kind: NetKind::Switched,
                        hosts: vec!["s1".to_string(), "s2".to_string(), "s3".to_string()],
                        via: Some("g1".to_string()),
                        router_path: vec![],
                        base_bw_mbps: 10.0,
                        local_bw_mbps: Some(100.0),
                        jam_ratio: Some(1.0),
                        children: vec![],
                    }],
                },
            ],
        }
    }

    fn plan() -> DeploymentPlan {
        DeploymentPlan {
            master: "master".to_string(),
            cliques: vec![
                PlannedClique {
                    name: "local-hub1".into(),
                    members: vec!["a".into(), "b".into()],
                    role: CliqueRole::SharedLocal,
                    network: Some("hub1".into()),
                },
                PlannedClique {
                    name: "local-hub2".into(),
                    members: vec!["g1".into(), "g2".into()],
                    role: CliqueRole::SharedLocal,
                    network: Some("hub2".into()),
                },
                PlannedClique {
                    name: "local-sw".into(),
                    members: vec!["g1".into(), "s1".into(), "s2".into(), "s3".into()],
                    role: CliqueRole::SwitchedLocal,
                    network: Some("sw".into()),
                },
                PlannedClique {
                    name: "inter-top".into(),
                    members: vec!["a".into(), "g1".into()],
                    role: CliqueRole::Inter,
                    network: None,
                },
            ],
            nameserver: "master".into(),
            memories: vec!["master".into()],
            forecaster: "master".into(),
            representatives: BTreeMap::from([
                ("hub1".to_string(), ("a".to_string(), "b".to_string())),
                ("hub2".to_string(), ("g1".to_string(), "g2".to_string())),
            ]),
            gap: TimeDelta::from_millis(500.0),
            hosts: vec![
                "a".into(),
                "b".into(),
                "g1".into(),
                "g2".into(),
                "g3".into(),
                "s1".into(),
                "s2".into(),
                "s3".into(),
            ],
            memory_of: BTreeMap::new(),
            wal_compact_kib: crate::plan::DEFAULT_WAL_COMPACT_KIB,
            serve_shards: crate::plan::DEFAULT_SERVE_SHARDS,
        }
    }

    /// Measurements as a live run would have produced them.
    fn source() -> StaticSource {
        let mut s = StaticSource::default();
        let mut set = |a: &str, b: &str, bw: f64, lat: f64| {
            s.set(SeriesKey::link(Resource::Bandwidth, a, b), bw);
            s.set(SeriesKey::link(Resource::Latency, a, b), lat);
        };
        set("a", "b", 100.0, 0.2); // hub1 representative pair
        set("g1", "g2", 10.0, 0.4); // hub2 representative pair
        set("a", "g1", 9.5, 1.0); // inter clique
        for x in ["s1", "s2", "s3"] {
            set("g1", x, 95.0, 0.3); // switch clique pairs
        }
        set("s1", "s2", 96.0, 0.3);
        set("s1", "s3", 97.0, 0.3);
        set("s2", "s3", 94.0, 0.3);
        s
    }

    #[test]
    fn direct_pair_uses_measurement() {
        let (v, p, s) = (view(), plan(), source());
        let est = Estimator::new(&v, &p).estimate("s1", "s2", &s).unwrap();
        assert_eq!(est.bandwidth_mbps, 96.0);
        assert_eq!(est.latency_ms, Some(0.3));
        assert_eq!(est.freshness, Freshness::Measured);
        assert_eq!(est.segments.len(), 1);
    }

    #[test]
    fn representative_substitution_on_shared_net() {
        // g3 ↔ s1: the hub2 segment g3→g1 is NOT directly measured (the
        // clique holds g1 and g2 only), so the representative pair's
        // values stand in; then the switch segment g1→s1 is direct.
        let (v, p, s) = (view(), plan(), source());
        let est = Estimator::new(&v, &p).estimate("g3", "s1", &s).unwrap();
        // min(10 on hub2, 95 on switch) = 10; latencies add: 0.4 + 0.3.
        assert_eq!(est.bandwidth_mbps, 10.0);
        assert!((est.latency_ms.unwrap() - 0.7).abs() < 1e-9);
        assert_eq!(est.freshness, Freshness::Measured);
        assert!(est.segments.iter().any(|d| d.contains("representative")));
    }

    #[test]
    fn cross_tree_aggregation_latency_adds_bandwidth_mins() {
        // b (hub1) → s2 (switch under hub2):
        //   b→a within hub1 (representative 100, 0.2)
        //   a→g1 inter (9.5, 1.0)
        //   g1→s2 within switch (95, 0.3)
        let (v, p, s) = (view(), plan(), source());
        let est = Estimator::new(&v, &p).estimate("b", "s2", &s).unwrap();
        assert_eq!(est.bandwidth_mbps, 9.5);
        assert!((est.latency_ms.unwrap() - 1.5).abs() < 1e-9);
        assert_eq!(est.freshness, Freshness::Measured);
        assert_eq!(est.segments.len(), 3, "{:?}", est.segments);
    }

    #[test]
    fn master_estimate_is_static_without_inter_membership() {
        let (v, p, s) = (view(), plan(), source());
        let est = Estimator::new(&v, &p).estimate("master", "s3", &s).unwrap();
        // ENV's base bandwidth of the leaf network (10 Mbps), static.
        assert_eq!(est.bandwidth_mbps, 10.0);
        assert_eq!(est.latency_ms, None);
        assert_eq!(est.freshness, Freshness::PartiallyStatic);
    }

    #[test]
    fn master_estimate_fresh_when_in_inter_clique() {
        let v = view();
        let mut p = plan();
        // Add the master to the inter clique (planner option).
        p.cliques.iter_mut().find(|c| c.name == "inter-top").unwrap().members.push("master".into());
        let mut s = source();
        s.set(SeriesKey::link(Resource::Bandwidth, "master", "g1"), 9.0);
        s.set(SeriesKey::link(Resource::Latency, "master", "g1"), 0.9);
        let est = Estimator::new(&v, &p).estimate("master", "s3", &s).unwrap();
        assert_eq!(est.bandwidth_mbps, 9.0);
        assert_eq!(est.freshness, Freshness::Measured);
        assert!((est.latency_ms.unwrap() - 1.2).abs() < 1e-9);
    }

    /// Sibling subtrees under one parent: s1 (switch via g1) to a host of
    /// a second child network (hub via g2) must chain switch → hub2 → hub.
    #[test]
    fn sibling_subtrees_aggregate_through_common_parent() {
        let mut v = view();
        // Add a second child network under hub2, via g2.
        v.networks[1].children.push(EnvNet {
            label: "hubX".to_string(),
            kind: NetKind::Shared,
            hosts: vec!["x1".to_string(), "x2".to_string()],
            via: Some("g2".to_string()),
            router_path: vec![],
            base_bw_mbps: 10.0,
            local_bw_mbps: Some(50.0),
            jam_ratio: Some(0.5),
            children: vec![],
        });
        let mut p = plan();
        p.cliques.push(crate::plan::PlannedClique {
            name: "local-hubX".into(),
            members: vec!["x1".into(), "x2".into()],
            role: CliqueRole::SharedLocal,
            network: Some("hubX".into()),
        });
        p.representatives.insert("hubX".to_string(), ("x1".to_string(), "x2".to_string()));
        p.hosts.push("x1".into());
        p.hosts.push("x2".into());
        let mut s = source();
        s.set(SeriesKey::link(Resource::Bandwidth, "x1", "x2"), 50.0);
        s.set(SeriesKey::link(Resource::Latency, "x1", "x2"), 0.5);

        let est = Estimator::new(&v, &p).estimate("s2", "x1", &s).unwrap();
        // Chain: s2→g1 within sw (95), g1→g2 within hub2 (10), g2→x1
        // within hubX (substituted by x1/x2 pair, 50). Min = 10.
        assert_eq!(est.bandwidth_mbps, 10.0);
        assert_eq!(est.segments.len(), 3, "{:?}", est.segments);
        assert!((est.latency_ms.unwrap() - (0.3 + 0.4 + 0.5)).abs() < 1e-9);
        assert_eq!(est.freshness, Freshness::Measured);
    }

    #[test]
    fn both_directions_of_series_are_tried() {
        let (v, p, mut s) = (view(), plan(), source());
        // Remove a→b, keep only b→a.
        s.0.remove(&SeriesKey::link(Resource::Bandwidth, "a", "b"));
        s.set(SeriesKey::link(Resource::Bandwidth, "b", "a"), 99.0);
        let est = Estimator::new(&v, &p).estimate("b", "s2", &s).unwrap();
        assert_eq!(est.bandwidth_mbps, 9.5, "still bounded by the inter link");
        assert!(est.segments[0].contains("within hub1"));
    }

    #[test]
    fn unknown_host_is_none_and_self_is_none() {
        let (v, p, s) = (view(), plan(), source());
        let e = Estimator::new(&v, &p);
        assert!(e.estimate("nope", "s1", &s).is_none());
        assert!(e.estimate("s1", "s1", &s).is_none());
    }

    #[test]
    fn compiled_estimator_matches_naive_on_fixture() {
        // The interned engine must agree with the string-walking oracle on
        // every ordered pair — values, segment text and freshness included.
        let (mut v, p, s) = (view(), plan(), source());
        v.networks[1].children.push(EnvNet {
            label: "hubX".to_string(),
            kind: NetKind::Shared,
            hosts: vec!["x1".to_string(), "x2".to_string()],
            via: Some("g2".to_string()),
            router_path: vec![],
            base_bw_mbps: 10.0,
            local_bw_mbps: Some(50.0),
            jam_ratio: Some(0.5),
            children: vec![],
        });
        let fast = Estimator::new(&v, &p);
        let slow = naive::NaiveEstimator::new(&v, &p);
        let mut hosts: Vec<String> = p.hosts.clone();
        hosts.extend(["master".to_string(), "x1".to_string(), "nope".to_string()]);
        for a in &hosts {
            for b in &hosts {
                assert_eq!(fast.estimate(a, b, &s), slow.estimate(a, b, &s), "{a} → {b}");
            }
        }
        // And against an empty source (all-static fallbacks).
        let empty = StaticSource::default();
        for a in &hosts {
            for b in &hosts {
                assert_eq!(fast.estimate(a, b, &empty), slow.estimate(a, b, &empty), "{a} → {b}");
            }
        }
    }

    #[test]
    fn compiled_estimator_matches_naive_on_duplicate_labels() {
        // Degenerate but reachable: two sibling nets sharing a label (the
        // mapper labels clusters by gateway name, so two clusters behind
        // one gateway collide). The oracle's common-ancestor rule compares
        // labels positionally, treating the two as common — the compiled
        // engine must reproduce that, not identity-LCA semantics.
        let mut v = view();
        for host in ["x1", "x2"] {
            v.networks[1].children.push(EnvNet {
                label: "dup".to_string(),
                kind: NetKind::Shared,
                hosts: vec![host.to_string()],
                via: Some("g2".to_string()),
                router_path: vec![],
                base_bw_mbps: 10.0,
                local_bw_mbps: Some(50.0),
                jam_ratio: Some(0.5),
                children: vec![],
            });
        }
        let (p, s) = (plan(), source());
        let fast = Estimator::new(&v, &p);
        let slow = naive::NaiveEstimator::new(&v, &p);
        for (a, b) in [("x1", "x2"), ("x2", "x1"), ("x1", "s1"), ("a", "x2")] {
            assert_eq!(fast.estimate(a, b, &s), slow.estimate(a, b, &s), "{a} → {b}");
        }
    }

    #[test]
    fn missing_measurements_fall_back_to_static_env_values() {
        let (v, p) = (view(), plan());
        let empty = StaticSource::default();
        let est = Estimator::new(&v, &p).estimate("b", "s2", &empty).unwrap();
        assert_eq!(est.freshness, Freshness::PartiallyStatic);
        // Static chain: hub1 local (100) / inter (none → skip) / sw local (100)
        // bounded by hub1/sw statics.
        assert!(est.bandwidth_mbps <= 100.0);
        assert!(est.latency_ms.is_none());
    }
}
