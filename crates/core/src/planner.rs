//! The deployment-planning algorithm of paper §5.1.
//!
//! "For each network or subnetwork discovered by ENV, our deployment plan
//! contains at least two cliques:
//!
//! * If the network is **shared**, its hosts are supposed to be on the same
//!   physical link, so the latency and bandwidth of one couple of hosts is
//!   representative for any possible couple. The intra-network connectivity
//!   is then measured by a clique containing two arbitrary chosen hosts.
//! * If the network is **switched**, the network characteristics between
//!   each host pair are independents ... we deploy a NWS clique containing
//!   all the hosts to make sure that only one measurement will occur at the
//!   same time on the given group of hosts."
//!
//! Networks reached through a gateway need no extra inter-clique: the
//! gateway sits on both mediums, so representative substitution covers the
//! crossing (Hub 3's characteristics from `myri0` are those measured
//! between `myri1` and `myri2`). Top-level networks are tied together by
//! one **inter-network clique** holding one representative per network —
//! the hierarchical organization §5 argues for ("intra-site connectivity
//! is tested separately from the inter-site one").

use std::collections::BTreeMap;

use envmap::{EnvNet, EnvView, NetKind};

use netsim::time::TimeDelta;

use crate::plan::{CliqueRole, DeploymentPlan, PlannedClique};

/// Planner knobs. Defaults follow the paper.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Token-hold gap, controlling measurement frequency (constraint 2).
    pub gap: TimeDelta,
    /// Include the ENV master in the inter-network clique. The paper's
    /// Figure 3 leaves the master out (its connectivity is estimated from
    /// the representatives on its own network); setting this adds fresh
    /// master-relative measurements at the cost of one more member.
    pub include_master_in_inter: bool,
    /// Place one memory server per top-level network (hierarchical
    /// storage) instead of a single one on the master.
    pub memory_per_top_network: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            gap: TimeDelta::from_millis(500.0),
            include_master_in_inter: false,
            memory_per_top_network: false,
        }
    }
}

/// Derive a deployment plan from an effective view (paper §5.1).
pub fn plan_deployment(view: &EnvView, config: &PlannerConfig) -> DeploymentPlan {
    let mut cliques = Vec::new();
    let mut representatives = BTreeMap::new();
    let mut hosts: Vec<String> = Vec::new();

    // Walk every network in the tree, emitting local cliques.
    fn walk(
        net: &EnvNet,
        cliques: &mut Vec<PlannedClique>,
        representatives: &mut BTreeMap<String, (String, String)>,
        hosts: &mut Vec<String>,
    ) {
        let mut members: Vec<String> = net.hosts.clone();
        members.sort();
        hosts.extend(members.iter().cloned());

        match net.kind {
            NetKind::Shared if members.len() >= 2 => {
                // Two "arbitrary chosen" hosts; equal-cost on a shared
                // medium, so the tie-break is explicit: the two smallest in
                // name order (`members` was sorted above) — the paper
                // itself picked canaria/moby and myri0/popc0 by hand.
                let reps = vec![members[0].clone(), members[1].clone()];
                representatives.insert(net.label.clone(), (reps[0].clone(), reps[1].clone()));
                cliques.push(PlannedClique {
                    name: format!("local-{}", net.label),
                    members: reps,
                    role: CliqueRole::SharedLocal,
                    network: Some(net.label.clone()),
                });
            }
            NetKind::Switched if members.len() >= 2 => {
                // All hosts, plus the gateway that heads the network (the
                // paper's sci clique contains sci0 along with sci1..sci6).
                let mut all = members.clone();
                if let Some(via) = &net.via {
                    if !all.contains(via) {
                        all.insert(0, via.clone());
                    }
                }
                cliques.push(PlannedClique {
                    name: format!("local-{}", net.label),
                    members: all,
                    role: CliqueRole::SwitchedLocal,
                    network: Some(net.label.clone()),
                });
            }
            NetKind::Undetermined if members.len() >= 2 => {
                // Unknown sharing: the safe clique covers all hosts (full
                // mutual exclusion, every pair measured).
                cliques.push(PlannedClique {
                    name: format!("local-{}", net.label),
                    members,
                    role: CliqueRole::UndeterminedLocal,
                    network: Some(net.label.clone()),
                });
            }
            _ => {} // singletons need no local clique
        }

        for child in &net.children {
            walk(child, cliques, representatives, hosts);
        }
    }

    for net in &view.networks {
        walk(net, &mut cliques, &mut representatives, &mut hosts);
    }
    hosts.sort();
    hosts.dedup();

    // One inter-network clique across the top-level networks: the paper's
    // "connection between canaria and popc0 is used to test the connexion
    // between these hubs". Any member is an equal-cost choice on a shared
    // medium; the tie is broken by name (lexicographic minimum), never by
    // container iteration order, so repeated runs emit identical plans.
    let mut inter: Vec<String> =
        view.networks.iter().filter_map(|n| n.hosts.iter().min().cloned()).collect();
    if config.include_master_in_inter {
        inter.insert(0, view.master.clone());
        if !hosts.contains(&view.master) {
            hosts.push(view.master.clone());
            hosts.sort();
        }
    }
    if inter.len() >= 2 {
        cliques.push(PlannedClique {
            name: "inter-top".to_string(),
            members: inter,
            role: CliqueRole::Inter,
            network: None,
        });
    }

    // Process placement: directory and forecasting live with the master.
    // Memory servers: one with the master, one on each gateway heading a
    // nested network (hosts behind a firewall gateway could not reach an
    // outside memory), and optionally one per top-level network.
    let mut memories = vec![view.master.clone()];
    let mut memory_of = BTreeMap::new();

    fn assign_memories(
        net: &EnvNet,
        inherited: &str,
        memories: &mut Vec<String>,
        memory_of: &mut BTreeMap<String, String>,
    ) {
        // A network reached through a gateway stores on that gateway.
        let memory_host = match &net.via {
            Some(gw) => {
                if !memories.contains(gw) {
                    memories.push(gw.clone());
                }
                gw.clone()
            }
            None => inherited.to_string(),
        };
        for h in &net.hosts {
            memory_of.insert(h.clone(), memory_host.clone());
        }
        for c in &net.children {
            assign_memories(c, &memory_host, memories, memory_of);
        }
    }

    for net in &view.networks {
        let top_memory = if config.memory_per_top_network {
            // Equal-cost choice; tie broken by name like the inter clique.
            let m = net.hosts.iter().min().cloned().unwrap_or_else(|| view.master.clone());
            if !memories.contains(&m) {
                memories.push(m.clone());
            }
            m
        } else {
            view.master.clone()
        };
        assign_memories(net, &top_memory, &mut memories, &mut memory_of);
    }

    DeploymentPlan {
        master: view.master.clone(),
        cliques,
        nameserver: view.master.clone(),
        memories,
        forecaster: view.master.clone(),
        representatives,
        gap: config.gap,
        hosts,
        memory_of,
        wal_compact_kib: crate::plan::DEFAULT_WAL_COMPACT_KIB,
        serve_shards: crate::plan::DEFAULT_SERVE_SHARDS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
    use gridml::merge::GatewayAlias;
    use netsim::scenarios::{ens_lyon, Calibration};
    use netsim::Sim;

    /// Build the merged ENS-Lyon view (outside + inside runs).
    fn ens_lyon_view() -> EnvView {
        let net = ens_lyon(Calibration::Paper);
        let mut eng = Sim::new(net.topo.clone());
        let mapper = EnvMapper::new(EnvConfig::fast());
        let outside_hosts: Vec<HostInput> = [
            "the-doors.ens-lyon.fr",
            "canaria.ens-lyon.fr",
            "moby.cri2000.ens-lyon.fr",
            "myri.ens-lyon.fr",
            "popc.ens-lyon.fr",
            "sci.ens-lyon.fr",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let outside = mapper
            .map(&mut eng, &outside_hosts, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
            .unwrap();
        let inside_hosts: Vec<HostInput> = [
            "popc0.popc.private",
            "myri0.popc.private",
            "sci0.popc.private",
            "myri1.popc.private",
            "myri2.popc.private",
            "sci1.popc.private",
            "sci2.popc.private",
            "sci3.popc.private",
            "sci4.popc.private",
            "sci5.popc.private",
            "sci6.popc.private",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let inside = mapper.map(&mut eng, &inside_hosts, "sci0.popc.private", None).unwrap();
        merge_runs(
            &outside,
            &inside,
            &[
                GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
                GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
                GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
            ],
        )
    }

    /// The paper's Figure 3: five cliques on ENS-Lyon.
    #[test]
    fn ens_lyon_plan_matches_figure_3() {
        let view = ens_lyon_view();
        let plan = plan_deployment(&view, &PlannerConfig::default());

        // Hub 1: two representatives (paper: moby and canaria).
        let hub1 = plan
            .cliques
            .iter()
            .find(|c| {
                c.members.contains(&"canaria.ens-lyon.fr".to_string())
                    && c.role == CliqueRole::SharedLocal
            })
            .expect("hub1 clique");
        assert_eq!(hub1.members.len(), 2);
        assert!(hub1.members.contains(&"moby.cri2000.ens-lyon.fr".to_string()));

        // Hub 2: two of the three gateways (paper: myri0 and popc0).
        let hub2 = plan
            .cliques
            .iter()
            .find(|c| {
                c.members.contains(&"myri0.popc.private".to_string())
                    && c.role == CliqueRole::SharedLocal
            })
            .expect("hub2 clique");
        assert_eq!(
            hub2.members,
            vec!["myri0.popc.private".to_string(), "popc0.popc.private".to_string()]
        );

        // Hub 3: myri1 and myri2 (the paper: "we pick only two hosts for
        // the local clique (myri1 and myri2)").
        let hub3 = plan
            .cliques
            .iter()
            .find(|c| c.members.contains(&"myri1.popc.private".to_string()))
            .expect("hub3 clique");
        assert_eq!(
            hub3.members,
            vec!["myri1.popc.private".to_string(), "myri2.popc.private".to_string()]
        );

        // The sci cluster is switched: all machines form the clique
        // (paper: "we pick all its machines"), gateway included.
        let sci =
            plan.cliques.iter().find(|c| c.role == CliqueRole::SwitchedLocal).expect("sci clique");
        assert_eq!(sci.members.len(), 7);
        assert!(sci.members.contains(&"sci0.popc.private".to_string()));
        for i in 1..=6 {
            assert!(sci.members.contains(&format!("sci{i}.popc.private")));
        }

        // One inter-network clique connecting the two top-level hubs
        // (paper: canaria and popc0; any one representative per hub is
        // equivalent on shared media — we pick the first by name order).
        let inter = plan.cliques.iter().find(|c| c.role == CliqueRole::Inter).expect("inter");
        assert_eq!(inter.members.len(), 2);
        assert!(inter.members.contains(&"canaria.ens-lyon.fr".to_string()));

        // Five cliques in total, as in Figure 3.
        assert_eq!(plan.cliques.len(), 5, "{}", plan.render());

        // Process placement: directory/forecaster on the master; memories
        // on the master plus the two firewall gateways heading nested
        // networks (myri0 for Hub 3, sci0 for the switch).
        assert_eq!(plan.nameserver, "the-doors.ens-lyon.fr");
        assert_eq!(plan.forecaster, "the-doors.ens-lyon.fr");
        assert_eq!(
            plan.memories,
            vec![
                "the-doors.ens-lyon.fr".to_string(),
                "myri0.popc.private".to_string(),
                "sci0.popc.private".to_string()
            ]
        );
        // Hosts behind the gateways store locally.
        assert_eq!(plan.memory_for("myri1.popc.private"), "myri0.popc.private");
        assert_eq!(plan.memory_for("sci3.popc.private"), "sci0.popc.private");
        assert_eq!(plan.memory_for("canaria.ens-lyon.fr"), "the-doors.ens-lyon.fr");

        // Representatives recorded for every shared network.
        assert_eq!(plan.representatives.len(), 3);
    }

    #[test]
    fn intrusiveness_is_far_below_full_mesh() {
        // Constraint 4: the plan must measure far fewer pairs than n(n−1).
        let view = ens_lyon_view();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let measured = plan.measured_pair_count();
        let full = plan.full_mesh_pair_count();
        // 13 hosts → 156 directed pairs; the plan needs ~50 (the sci
        // switch dominates with 42).
        assert_eq!(full, 156);
        assert!(measured < full / 3, "measured {measured} of {full}");
    }

    #[test]
    fn master_can_join_inter_clique() {
        let view = ens_lyon_view();
        let cfg = PlannerConfig { include_master_in_inter: true, ..Default::default() };
        let plan = plan_deployment(&view, &cfg);
        let inter = plan.cliques.iter().find(|c| c.role == CliqueRole::Inter).unwrap();
        assert!(inter.members.contains(&"the-doors.ens-lyon.fr".to_string()));
        assert!(plan.hosts.contains(&"the-doors.ens-lyon.fr".to_string()));
    }

    #[test]
    fn memory_per_top_network_strategy() {
        let view = ens_lyon_view();
        let cfg = PlannerConfig { memory_per_top_network: true, ..Default::default() };
        let plan = plan_deployment(&view, &cfg);
        // Master + one per top-level network (hub1 rep, hub2 rep) + the
        // two nested-network gateways; dedup keeps myri0 single.
        assert!(plan.memories.contains(&"the-doors.ens-lyon.fr".to_string()));
        assert!(plan.memories.len() >= 4, "{:?}", plan.memories);
        // Top-level hosts store on their network's memory, not the master.
        assert_ne!(plan.memory_for("canaria.ens-lyon.fr"), "the-doors.ens-lyon.fr");
    }

    #[test]
    fn single_network_yields_local_clique_only() {
        use envmap::NetKind;
        let view = EnvView {
            master: "m.x".to_string(),
            networks: vec![EnvNet {
                label: "lan".to_string(),
                kind: NetKind::Switched,
                hosts: vec!["a.x".to_string(), "b.x".to_string(), "c.x".to_string()],
                via: None,
                router_path: vec![],
                base_bw_mbps: 100.0,
                local_bw_mbps: None,
                jam_ratio: None,
                children: vec![],
            }],
        };
        let plan = plan_deployment(&view, &PlannerConfig::default());
        // A single top-level network: no inter clique possible.
        assert_eq!(plan.cliques.len(), 1);
        assert_eq!(plan.cliques[0].role, CliqueRole::SwitchedLocal);
    }

    #[test]
    fn undetermined_network_gets_safe_clique() {
        use envmap::NetKind;
        let view = EnvView {
            master: "m.x".to_string(),
            networks: vec![
                EnvNet {
                    label: "mystery".to_string(),
                    kind: NetKind::Undetermined,
                    hosts: vec!["a.x".to_string(), "b.x".to_string(), "c.x".to_string()],
                    via: None,
                    router_path: vec![],
                    base_bw_mbps: 10.0,
                    local_bw_mbps: None,
                    jam_ratio: Some(0.8),
                    children: vec![],
                },
                EnvNet {
                    label: "lan".to_string(),
                    kind: NetKind::Shared,
                    hosts: vec!["d.x".to_string(), "e.x".to_string()],
                    via: None,
                    router_path: vec![],
                    base_bw_mbps: 100.0,
                    local_bw_mbps: None,
                    jam_ratio: None,
                    children: vec![],
                },
            ],
        };
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let mystery =
            plan.cliques.iter().find(|c| c.network.as_deref() == Some("mystery")).unwrap();
        assert_eq!(mystery.role, CliqueRole::UndeterminedLocal);
        assert_eq!(mystery.members.len(), 3);
        // And no representative pair was registered for it.
        assert!(!plan.representatives.contains_key("mystery"));
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::aggregate::{Estimator, StaticSource};
    use envmap::{EnvNet, EnvView, NetKind};
    use nws::{Resource, SeriesKey};
    use proptest::prelude::*;

    /// Strategy: a random effective view with unique labels/hosts, each
    /// top-level network optionally carrying one nested network behind a
    /// gateway member.
    fn arb_view() -> impl Strategy<Value = EnvView> {
        let kind = prop_oneof![
            Just(NetKind::Shared),
            Just(NetKind::Switched),
            Just(NetKind::Undetermined),
        ];
        let net = (kind, 1usize..6, proptest::bool::ANY);
        proptest::collection::vec(net, 1..5).prop_map(|specs| {
            let mut networks = Vec::new();
            for (i, (kind, hosts, with_child)) in specs.into_iter().enumerate() {
                let host_names: Vec<String> =
                    (0..hosts).map(|h| format!("h{h}.net{i}.example")).collect();
                let kind = if host_names.len() == 1 { NetKind::Single } else { kind };
                let children = if with_child && !host_names.is_empty() {
                    vec![EnvNet {
                        label: format!("sub{i}"),
                        kind: NetKind::Shared,
                        hosts: (0..2).map(|h| format!("s{h}.sub{i}.example")).collect(),
                        via: Some(host_names[0].clone()),
                        router_path: vec![],
                        base_bw_mbps: 10.0,
                        local_bw_mbps: Some(100.0),
                        jam_ratio: Some(0.5),
                        children: vec![],
                    }]
                } else {
                    vec![]
                };
                networks.push(EnvNet {
                    label: format!("net{i}"),
                    kind,
                    hosts: host_names,
                    via: None,
                    router_path: vec![format!("gw{i}")],
                    base_bw_mbps: 100.0,
                    local_bw_mbps: Some(100.0),
                    jam_ratio: None,
                    children,
                });
            }
            EnvView { master: "master.example".to_string(), networks }
        })
    }

    /// Collect all networks (any depth) of a view.
    fn all_nets(view: &EnvView) -> Vec<&EnvNet> {
        fn rec<'a>(n: &'a EnvNet, out: &mut Vec<&'a EnvNet>) {
            out.push(n);
            for c in &n.children {
                rec(c, out);
            }
        }
        let mut out = Vec::new();
        for n in &view.networks {
            rec(n, &mut out);
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// §5.1 structural invariants on arbitrary views.
        #[test]
        fn planner_invariants(view in arb_view()) {
            let plan = plan_deployment(&view, &PlannerConfig::default());

            for net in all_nets(&view) {
                let clique = plan
                    .cliques
                    .iter()
                    .find(|c| c.network.as_deref() == Some(net.label.as_str()));
                match net.kind {
                    NetKind::Shared if net.hosts.len() >= 2 => {
                        let c = clique.expect("shared net has a clique");
                        prop_assert_eq!(c.members.len(), 2, "shared → 2 representatives");
                        prop_assert!(c.members.iter().all(|m| net.hosts.contains(m)));
                        prop_assert!(plan.representatives.contains_key(&net.label));
                    }
                    NetKind::Switched if net.hosts.len() >= 2 => {
                        let c = clique.expect("switched net has a clique");
                        for h in &net.hosts {
                            prop_assert!(c.members.contains(h), "switched → all hosts");
                        }
                        prop_assert!(!plan.representatives.contains_key(&net.label));
                    }
                    NetKind::Undetermined if net.hosts.len() >= 2 => {
                        let c = clique.expect("undetermined net has a safe clique");
                        prop_assert_eq!(c.members.len(), net.hosts.len());
                    }
                    _ => prop_assert!(clique.is_none(), "singletons get no local clique"),
                }
            }

            // At most one inter clique; present iff ≥2 top-level networks.
            let inters: Vec<_> =
                plan.cliques.iter().filter(|c| c.role == CliqueRole::Inter).collect();
            if view.networks.len() >= 2 {
                prop_assert_eq!(inters.len(), 1);
                prop_assert_eq!(inters[0].members.len(), view.networks.len());
            } else {
                prop_assert!(inters.is_empty());
            }

            // Every planned host exists in the view; memory assignment is
            // total over hosts and points at a planned memory.
            let view_hosts: Vec<&str> = view.all_hosts();
            for h in &plan.hosts {
                prop_assert!(view_hosts.contains(&h.as_str()));
                let m = plan.memory_for(h);
                prop_assert!(plan.memories.iter().any(|x| x == m));
            }
        }

        /// Equal-cost tie-breaking is explicit (name order), so planning is
        /// a pure function of the view: repeated runs — under every config
        /// combination — must produce identical plans, member order and
        /// process placement included.
        #[test]
        fn planner_is_deterministic_across_runs(view in arb_view()) {
            for include_master in [false, true] {
                for memory_per_top in [false, true] {
                    let cfg = PlannerConfig {
                        include_master_in_inter: include_master,
                        memory_per_top_network: memory_per_top,
                        ..PlannerConfig::default()
                    };
                    let first = plan_deployment(&view, &cfg);
                    for _ in 0..3 {
                        prop_assert_eq!(&first, &plan_deployment(&view, &cfg));
                    }
                    // A deep-cloned view plans identically too (no hidden
                    // address- or allocation-order dependence).
                    prop_assert_eq!(&first, &plan_deployment(&view.clone(), &cfg));
                }
            }
        }

        /// Completeness (§2.3 constraint 3) holds on arbitrary views: once
        /// all planned pairs are measured, every host pair is estimable.
        #[test]
        fn planner_completeness(view in arb_view()) {
            let plan = plan_deployment(&view, &PlannerConfig::default());
            let mut source = StaticSource::default();
            for c in &plan.cliques {
                for (a, b) in c.measured_pairs() {
                    source.set(SeriesKey::link(Resource::Bandwidth, &a, &b), 1.0);
                    source.set(SeriesKey::link(Resource::Latency, &a, &b), 1.0);
                }
            }
            let estimator = Estimator::new(&view, &plan);
            let mut hosts: Vec<String> = plan.hosts.clone();
            hosts.push(view.master.clone());
            for a in &hosts {
                for b in &hosts {
                    if a == b {
                        continue;
                    }
                    prop_assert!(
                        estimator.estimate(a, b, &source).is_some(),
                        "no estimate for {} -> {}",
                        a,
                        b
                    );
                }
            }
        }
    }
}
