//! The deployment plan data model (what Figure 3 depicts).

use std::collections::BTreeMap;

use netsim::time::TimeDelta;

/// Why a clique exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliqueRole {
    /// Measures a shared network through one representative pair (§5.1:
    /// "the latency and bandwidth of one couple of hosts is representative
    /// for any possible couple").
    SharedLocal,
    /// Measures a switched network: every pair matters, every host joins
    /// ("we deploy a NWS clique containing all the hosts").
    SwitchedLocal,
    /// Measures a network ENV could not classify — treated like a switched
    /// clique (safe: mutual exclusion over all members).
    UndeterminedLocal,
    /// Ties networks together (the paper's canaria–popc0 clique "used to
    /// test the connexion between these hubs").
    Inter,
}

impl CliqueRole {
    pub fn as_str(self) -> &'static str {
        match self {
            CliqueRole::SharedLocal => "shared-local",
            CliqueRole::SwitchedLocal => "switched-local",
            CliqueRole::UndeterminedLocal => "undetermined-local",
            CliqueRole::Inter => "inter",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "shared-local" => Some(CliqueRole::SharedLocal),
            "switched-local" => Some(CliqueRole::SwitchedLocal),
            "undetermined-local" => Some(CliqueRole::UndeterminedLocal),
            "inter" => Some(CliqueRole::Inter),
            _ => None,
        }
    }
}

/// One planned measurement clique.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedClique {
    /// Unique name, derived from the network it measures.
    pub name: String,
    /// Member host names, in ring order.
    pub members: Vec<String>,
    pub role: CliqueRole,
    /// The effective network this clique measures (`None` for inter).
    pub network: Option<String>,
}

impl PlannedClique {
    /// Directed pairs this clique measures (token holder → each other
    /// member).
    pub fn measured_pairs(&self) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(self.measured_pair_count());
        for a in &self.members {
            for b in &self.members {
                if a != b {
                    out.push((a.clone(), b.clone()));
                }
            }
        }
        out
    }

    /// `measured_pairs().len()` without materialising the pairs.
    pub fn measured_pair_count(&self) -> usize {
        let mut count = 0;
        for (i, a) in self.members.iter().enumerate() {
            for (j, b) in self.members.iter().enumerate() {
                if i != j && a != b {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Default durable-state WAL compaction threshold (KiB) carried by plans
/// that do not override it.
pub const DEFAULT_WAL_COMPACT_KIB: u64 = 64;

/// Default forecaster serving-plane shard count carried by plans that do
/// not override it. One shard reproduces the single-actor serving path.
pub const DEFAULT_SERVE_SHARDS: usize = 1;

/// A complete NWS deployment plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// The ENV master the plan was derived from.
    pub master: String,
    pub cliques: Vec<PlannedClique>,
    /// Host running the name server.
    pub nameserver: String,
    /// Hosts running memory servers.
    pub memories: Vec<String>,
    /// Host running the forecaster.
    pub forecaster: String,
    /// For each shared network: the representative pair whose measurements
    /// stand in for every pair on that network. The paper notes NWS cannot
    /// substitute these automatically — our estimator does it (§6).
    pub representatives: BTreeMap<String, (String, String)>,
    /// Token-hold gap controlling measurement frequency.
    pub gap: TimeDelta,
    /// All hosts the plan covers (sensors).
    pub hosts: Vec<String>,
    /// Which memory server each sensor stores to. Hosts behind a gateway
    /// use the memory on their gateway: a firewall that lets ENV map the
    /// domain from inside also blocks stores to an outside memory, so the
    /// hierarchy gains a level exactly where the paper says it may
    /// ("If needed, this hierarchy can contain more than two levels", §5).
    pub memory_of: BTreeMap<String, String>,
    /// WAL compaction threshold (KiB) for the deployed durable state
    /// plane (memory servers and the forecaster log to their host's
    /// simulated disk; see `nws::persist`).
    pub wal_compact_kib: u64,
    /// Forecaster serving-plane shards (`nws::serve`): series are routed
    /// clique-aligned across this many shards. Answers are shard-count
    /// invariant; the knob trades publish/serve parallelism only.
    pub serve_shards: usize,
}

impl DeploymentPlan {
    /// Total directed pairs measured by all cliques (the intrusiveness
    /// numerator of constraint 4).
    pub fn measured_pair_count(&self) -> usize {
        self.cliques.iter().map(|c| c.measured_pair_count()).sum()
    }

    /// Full-mesh pair count over the covered hosts (the denominator:
    /// "given a set of n computers, there is n × (n − 1) links to test").
    pub fn full_mesh_pair_count(&self) -> usize {
        let n = self.hosts.len();
        n * n.saturating_sub(1)
    }

    /// The memory server a sensor reports to (the master's by default).
    pub fn memory_for(&self, host: &str) -> &str {
        self.memory_of
            .get(host)
            .map(|s| s.as_str())
            .unwrap_or_else(|| self.memories.first().map(|s| s.as_str()).unwrap_or(&self.master))
    }

    /// The clique a host pair is measured by, if any measures it directly.
    pub fn clique_measuring(&self, a: &str, b: &str) -> Option<&PlannedClique> {
        self.cliques
            .iter()
            .find(|c| c.members.iter().any(|m| m == a) && c.members.iter().any(|m| m == b))
    }

    /// Cliques a given host belongs to.
    pub fn cliques_of(&self, host: &str) -> Vec<&PlannedClique> {
        self.cliques.iter().filter(|c| c.members.iter().any(|m| m == host)).collect()
    }

    /// ASCII rendering in the spirit of Figure 3.
    pub fn render(&self) -> String {
        let mut s = format!(
            "NWS deployment plan (master {})\n  name server: {}\n  forecaster:  {}\n  memories:    {}\n",
            self.master,
            self.nameserver,
            self.forecaster,
            self.memories.join(", ")
        );
        for c in &self.cliques {
            s.push_str(&format!(
                "  clique {:<24} [{}] {{{}}}\n",
                c.name,
                c.role.as_str(),
                c.members.join(", ")
            ));
        }
        for (net, (a, b)) in &self.representatives {
            s.push_str(&format!("  representative for {net}: ({a}, {b})\n"));
        }
        s.push_str(&format!(
            "  intrusiveness: {} measured pairs of {} full-mesh\n",
            self.measured_pair_count(),
            self.full_mesh_pair_count()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeploymentPlan {
        DeploymentPlan {
            master: "m".into(),
            cliques: vec![
                PlannedClique {
                    name: "local-hub1".into(),
                    members: vec!["a".into(), "b".into()],
                    role: CliqueRole::SharedLocal,
                    network: Some("hub1".into()),
                },
                PlannedClique {
                    name: "local-sw".into(),
                    members: vec!["c".into(), "d".into(), "e".into()],
                    role: CliqueRole::SwitchedLocal,
                    network: Some("sw".into()),
                },
                PlannedClique {
                    name: "inter-root".into(),
                    members: vec!["a".into(), "c".into()],
                    role: CliqueRole::Inter,
                    network: None,
                },
            ],
            nameserver: "m".into(),
            memories: vec!["m".into()],
            forecaster: "m".into(),
            representatives: BTreeMap::from([(
                "hub1".to_string(),
                ("a".to_string(), "b".to_string()),
            )]),
            gap: TimeDelta::from_millis(500.0),
            hosts: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
            memory_of: BTreeMap::new(),
            wal_compact_kib: DEFAULT_WAL_COMPACT_KIB,
            serve_shards: DEFAULT_SERVE_SHARDS,
        }
    }

    #[test]
    fn measured_pairs_are_directed() {
        let p = sample();
        assert_eq!(p.cliques[0].measured_pairs().len(), 2);
        assert_eq!(p.cliques[1].measured_pairs().len(), 6);
        assert_eq!(p.measured_pair_count(), 2 + 6 + 2);
        assert_eq!(p.full_mesh_pair_count(), 20);
    }

    #[test]
    fn clique_lookup() {
        let p = sample();
        assert_eq!(p.clique_measuring("c", "e").unwrap().name, "local-sw");
        assert_eq!(p.clique_measuring("a", "c").unwrap().name, "inter-root");
        assert!(p.clique_measuring("b", "d").is_none());
        assert_eq!(p.cliques_of("a").len(), 2);
        assert_eq!(p.cliques_of("d").len(), 1);
    }

    #[test]
    fn render_mentions_everything() {
        let p = sample();
        let s = p.render();
        assert!(s.contains("local-hub1"));
        assert!(s.contains("inter-root"));
        assert!(s.contains("representative for hub1"));
        assert!(s.contains("10 measured pairs of 20"));
    }

    #[test]
    fn role_round_trip() {
        for r in [
            CliqueRole::SharedLocal,
            CliqueRole::SwitchedLocal,
            CliqueRole::UndeterminedLocal,
            CliqueRole::Inter,
        ] {
            assert_eq!(CliqueRole::from_str_opt(r.as_str()), Some(r));
        }
        assert_eq!(CliqueRole::from_str_opt("nope"), None);
    }
}

/// The difference between two deployment plans — what an operator must
/// change when a remapping (or a published-map update) produces a new
/// plan. Drives incremental redeployment instead of a full restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanDelta {
    /// Cliques present only in the old plan.
    pub cliques_to_stop: Vec<String>,
    /// Cliques present only in the new plan.
    pub cliques_to_start: Vec<PlannedClique>,
    /// Cliques with the same name but different membership or role.
    pub cliques_to_restart: Vec<PlannedClique>,
    /// Hosts gaining / losing a sensor.
    pub sensors_to_add: Vec<String>,
    pub sensors_to_remove: Vec<String>,
    /// Hosts gaining / losing a memory server.
    pub memories_to_add: Vec<String>,
    pub memories_to_remove: Vec<String>,
}

impl PlanDelta {
    pub fn is_empty(&self) -> bool {
        self.cliques_to_stop.is_empty()
            && self.cliques_to_start.is_empty()
            && self.cliques_to_restart.is_empty()
            && self.sensors_to_add.is_empty()
            && self.sensors_to_remove.is_empty()
            && self.memories_to_add.is_empty()
            && self.memories_to_remove.is_empty()
    }

    /// Number of individual actions the delta implies.
    pub fn action_count(&self) -> usize {
        self.cliques_to_stop.len()
            + self.cliques_to_start.len()
            + self.cliques_to_restart.len()
            + self.sensors_to_add.len()
            + self.sensors_to_remove.len()
            + self.memories_to_add.len()
            + self.memories_to_remove.len()
    }
}

/// Compute the incremental delta from `old` to `new`.
pub fn diff_plans(old: &DeploymentPlan, new: &DeploymentPlan) -> PlanDelta {
    let mut delta = PlanDelta::default();

    for oc in &old.cliques {
        match new.cliques.iter().find(|nc| nc.name == oc.name) {
            None => delta.cliques_to_stop.push(oc.name.clone()),
            Some(nc) if nc != oc => delta.cliques_to_restart.push(nc.clone()),
            Some(_) => {}
        }
    }
    for nc in &new.cliques {
        if !old.cliques.iter().any(|oc| oc.name == nc.name) {
            delta.cliques_to_start.push(nc.clone());
        }
    }

    for h in &new.hosts {
        if !old.hosts.contains(h) {
            delta.sensors_to_add.push(h.clone());
        }
    }
    for h in &old.hosts {
        if !new.hosts.contains(h) {
            delta.sensors_to_remove.push(h.clone());
        }
    }

    for m in &new.memories {
        if !old.memories.contains(m) {
            delta.memories_to_add.push(m.clone());
        }
    }
    for m in &old.memories {
        if !new.memories.contains(m) {
            delta.memories_to_remove.push(m.clone());
        }
    }

    delta
}

#[cfg(test)]
mod diff_tests {
    use super::*;

    fn base() -> DeploymentPlan {
        DeploymentPlan {
            master: "m".into(),
            cliques: vec![
                PlannedClique {
                    name: "local-a".into(),
                    members: vec!["a1".into(), "a2".into()],
                    role: CliqueRole::SharedLocal,
                    network: Some("a".into()),
                },
                PlannedClique {
                    name: "local-b".into(),
                    members: vec!["b1".into(), "b2".into(), "b3".into()],
                    role: CliqueRole::SwitchedLocal,
                    network: Some("b".into()),
                },
            ],
            nameserver: "m".into(),
            memories: vec!["m".into()],
            forecaster: "m".into(),
            representatives: BTreeMap::new(),
            gap: TimeDelta::from_millis(500.0),
            hosts: vec!["a1".into(), "a2".into(), "b1".into(), "b2".into(), "b3".into()],
            memory_of: BTreeMap::new(),
            wal_compact_kib: DEFAULT_WAL_COMPACT_KIB,
            serve_shards: DEFAULT_SERVE_SHARDS,
        }
    }

    #[test]
    fn identical_plans_have_empty_delta() {
        let p = base();
        let d = diff_plans(&p, &p);
        assert!(d.is_empty());
        assert_eq!(d.action_count(), 0);
    }

    #[test]
    fn grown_switched_network_restarts_its_clique() {
        let old = base();
        let mut new = base();
        new.cliques[1].members.push("b4".into());
        new.hosts.push("b4".into());
        let d = diff_plans(&old, &new);
        assert_eq!(d.cliques_to_restart.len(), 1);
        assert_eq!(d.cliques_to_restart[0].members.len(), 4);
        assert_eq!(d.sensors_to_add, vec!["b4".to_string()]);
        assert!(d.cliques_to_stop.is_empty());
        assert!(d.sensors_to_remove.is_empty());
    }

    #[test]
    fn removed_network_stops_its_clique_and_sensors() {
        let old = base();
        let mut new = base();
        new.cliques.remove(0);
        new.hosts.retain(|h| !h.starts_with('a'));
        let d = diff_plans(&old, &new);
        assert_eq!(d.cliques_to_stop, vec!["local-a".to_string()]);
        assert_eq!(d.sensors_to_remove, vec!["a1".to_string(), "a2".to_string()]);
    }

    #[test]
    fn new_memory_host_is_reported() {
        let old = base();
        let mut new = base();
        new.memories.push("gw".into());
        let d = diff_plans(&old, &new);
        assert_eq!(d.memories_to_add, vec!["gw".to_string()]);
        assert_eq!(d.action_count(), 1);
    }
}
