//! Plan validation against the four constraints of paper §2.3, checked
//! against ground truth (the simulator topology).
//!
//! The collision check is deliberately honest about the paper's own
//! admitted limitation (§6): a host sitting in two cliques (the paper's
//! `canaria`) can be probed by both at once, and those experiments share
//! its physical network. The report separates *intra-clique* safety
//! (guaranteed by the token ring) from *inter-clique* overlaps (minimised,
//! not eliminated — "a possibility to lock hosts (and not networks) is
//! still needed").

use std::collections::BTreeSet;

use envmap::EnvView;
use netsim::fairness::path_resources;
use netsim::routing::RouteTable;
use netsim::topology::{LinkMode, NodeId, Topology};

use crate::aggregate::{naive::NaiveEstimator, MeasurementSource};
use crate::compiled::{CompiledView, HostId};
use crate::plan::DeploymentPlan;
use nws::{Resource, SeriesKey};

/// Validation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Clique pairs whose measured paths share no physical resource.
    pub disjoint_clique_pairs: usize,
    /// Clique pairs with at least one shared resource: (clique A, clique
    /// B, example "a→b vs c→d" description). The paper's plan has these
    /// wherever a host joins two cliques.
    pub colliding_clique_pairs: Vec<(String, String, String)>,
    /// Whether every ordered host pair (master included) is estimable.
    pub complete: bool,
    pub incomplete_pairs: Vec<(String, String)>,
    /// Constraint-4 numbers.
    pub measured_pairs: usize,
    pub full_mesh_pairs: usize,
    /// Hosts named by the plan but missing from the platform.
    pub unresolved_hosts: Vec<String>,
}

impl PlanReport {
    /// True when no two cliques can interfere at all — stricter than the
    /// paper achieves on ENS-Lyon.
    pub fn strictly_collision_free(&self) -> bool {
        self.colliding_clique_pairs.is_empty()
    }

    /// Intrusiveness ratio: measured / full-mesh directed pairs.
    pub fn intrusiveness(&self) -> f64 {
        if self.full_mesh_pairs == 0 {
            return 0.0;
        }
        self.measured_pairs as f64 / self.full_mesh_pairs as f64
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "plan report: {} measured / {} full-mesh pairs (intrusiveness {:.1}%)\n",
            self.measured_pairs,
            self.full_mesh_pairs,
            100.0 * self.intrusiveness()
        ));
        s.push_str(&format!(
            "  clique pairs: {} disjoint, {} overlapping\n",
            self.disjoint_clique_pairs,
            self.colliding_clique_pairs.len()
        ));
        for (a, b, why) in &self.colliding_clique_pairs {
            s.push_str(&format!("    overlap {a} ↔ {b}: {why}\n"));
        }
        s.push_str(&format!(
            "  completeness: {}\n",
            if self.complete { "every pair estimable" } else { "INCOMPLETE" }
        ));
        for (a, b) in &self.incomplete_pairs {
            s.push_str(&format!("    no estimate for {a} → {b}\n"));
        }
        s
    }
}

/// A measurement source that "has" every pair some clique measures —
/// models the state after the system has run a full round. Answers
/// straight off the plan's clique membership instead of materialising one
/// `SeriesKey` string pair per measured pair per resource, so construction
/// is O(1) and allocation-free.
pub struct PostRoundSource<'a>(pub &'a DeploymentPlan);

impl MeasurementSource for PostRoundSource<'_> {
    fn latest(&self, key: &SeriesKey) -> Option<f64> {
        if matches!(key.resource, Resource::Bandwidth | Resource::Latency)
            && key.src != key.dst
            && self.0.clique_measuring(&key.src, &key.dst).is_some()
        {
            Some(1.0)
        } else {
            None
        }
    }
}

/// Validate a plan against the effective view it came from and the ground
/// truth topology.
///
/// This is the cluster-granular engine: completeness (constraint 3) is
/// decided per effective-network pair — O(C² + n) instead of one estimator
/// walk per ordered host pair — and the collision check of constraint 1
/// intersects per-clique resource footprints as bitsets over the dense
/// `LinkId`/`MediumId` space. The original per-host-pair implementation
/// survives as [`validate_plan_naive`], the differential-test oracle; both
/// produce identical reports.
pub fn validate_plan(plan: &DeploymentPlan, view: &EnvView, topo: &Topology) -> PlanReport {
    let routes = RouteTable::compute(topo);
    validate_plan_with_routes(plan, view, topo, &routes)
}

/// [`validate_plan`] against a precomputed route table — callers that
/// already hold one (the simulator computes it at startup) skip the
/// all-pairs Dijkstra, which dominates at several thousand hosts.
pub fn validate_plan_with_routes(
    plan: &DeploymentPlan,
    view: &EnvView,
    topo: &Topology,
    routes: &RouteTable,
) -> PlanReport {
    let compiled = CompiledView::new(view, plan);

    // --- constraint 1: collisions between cliques -------------------------
    // Resource footprint of each clique as a bitset over the dense resource
    // id space: bits [0, 2L) are directed full-duplex link halves, bits
    // [2L, 2L + M) are hub mediums — the same resources
    // `netsim::fairness::path_resources` extracts.
    let link_bits = 2 * topo.link_count();
    let words = (link_bits + topo.medium_count()).div_ceil(64);
    let nc = plan.cliques.len();
    let mut foot = vec![0u64; nc * words];
    let mut unresolved: BTreeSet<&str> = BTreeSet::new();
    let mut node_ids: Vec<Option<NodeId>> = Vec::new();
    for (ci, c) in plan.cliques.iter().enumerate() {
        node_ids.clear();
        node_ids.extend(c.members.iter().map(|m| topo.node_by_name(m)));
        // A member is reported unresolved when it takes part in at least
        // one measured pair, i.e. when the clique has two distinct names.
        if c.members.iter().any(|m| *m != c.members[0]) {
            for (m, id) in c.members.iter().zip(&node_ids) {
                if id.is_none() {
                    unresolved.insert(m);
                }
            }
        }
        let fp = &mut foot[ci * words..(ci + 1) * words];
        for (i, ida) in node_ids.iter().enumerate() {
            let Some(na) = *ida else { continue };
            for (j, idb) in node_ids.iter().enumerate() {
                if c.members[i] == c.members[j] {
                    continue;
                }
                let Some(nb) = *idb else { continue };
                let Ok(hops) = routes.hops_rev(topo, na, nb) else { continue };
                for (from, l) in hops {
                    let link = topo.link(l);
                    let bit = match link.mode {
                        LinkMode::FullDuplex { .. } => 2 * l.index() + usize::from(from == link.a),
                        LinkMode::Shared { medium } => link_bits + medium.index(),
                    };
                    fp[bit / 64] |= 1 << (bit % 64);
                }
            }
        }
    }

    let mut disjoint = 0usize;
    let mut colliding = Vec::new();
    for i in 0..nc {
        for j in (i + 1)..nc {
            let shared: u32 =
                (0..words).map(|w| (foot[i * words + w] & foot[j * words + w]).count_ones()).sum();
            if shared == 0 {
                disjoint += 1;
            } else {
                let example = format!(
                    "{} measured pairs share {} resource(s) with {}",
                    plan.cliques[i].name, shared, plan.cliques[j].name
                );
                colliding.push((
                    plan.cliques[i].name.clone(),
                    plan.cliques[j].name.clone(),
                    example,
                ));
            }
        }
    }

    // --- constraint 3: completeness, at cluster granularity ---------------
    // The paper defines completeness over effective networks: every member
    // of a cluster is estimable through the same representative/gateway
    // chain, so estimability is a property of the (source-net, dest-net)
    // pair, not of the host pair (see `CompiledView::estimable_ids`). We
    // decide it per cluster pair — O(C²) — and expand to host pairs only
    // to report counterexamples (hosts the view cannot locate).
    let master = compiled.master_id();
    let mut all: Vec<(HostId, &str)> = plan
        .hosts
        .iter()
        .map(|h| (compiled.host_id(h).expect("plan hosts are interned"), h.as_str()))
        .collect();
    if !plan.hosts.contains(&plan.master) {
        all.push((
            compiled.host_id(&plan.master).expect("plan master is interned"),
            plan.master.as_str(),
        ));
    }
    let is_bad: Vec<bool> =
        all.iter().map(|&(h, _)| h != master && !compiled.is_located(h)).collect();

    // One proxy pair per cluster (the master is its own pseudo-cluster):
    // any member stands for the whole cluster.
    let master_class = compiled.net_count();
    let mut proxies: Vec<[Option<HostId>; 2]> = vec![[None, None]; master_class + 1];
    for &(h, _) in &all {
        let class = if h == master {
            master_class
        } else if let Some(n) = compiled.net_of(h) {
            n.0 as usize
        } else {
            continue; // unlocated: the expansion below reports these
        };
        let p = &mut proxies[class];
        if p[0].is_none() {
            p[0] = Some(h);
        } else if p[1].is_none() && p[0] != Some(h) {
            p[1] = Some(h);
        }
    }

    let mut cluster_ok = true;
    'sweep: for a in 0..proxies.len() {
        let Some(pa) = proxies[a][0] else { continue };
        for b in 0..proxies.len() {
            let pb = if a == b { proxies[a][1] } else { proxies[b][0] };
            let Some(pb) = pb else { continue };
            let ok = compiled.estimable_ids(pa, pb);
            debug_assert_eq!(
                ok,
                compiled.estimate_ids(pa, pb, &compiled.post_round_source()).is_some(),
                "estimable_ids must agree with the chain construction"
            );
            if !ok {
                cluster_ok = false;
                break 'sweep;
            }
        }
    }

    let mut incomplete: Vec<(String, String)> = Vec::new();
    if !cluster_ok {
        // Defensive path (a located cluster pair failed — structurally
        // impossible, but never report "complete" on a shortcut): full
        // per-pair expansion, still on dense ids.
        for &(a, an) in &all {
            for &(b, bn) in &all {
                if a != b && !compiled.estimable_ids(a, b) {
                    incomplete.push((an.to_string(), bn.to_string()));
                }
            }
        }
    } else {
        // Every located pair is estimable; only hosts the view cannot
        // locate produce counterexamples, and only when no clique measures
        // them directly. Expansion is O(n · bad), in the oracle's order.
        let bad_idx: Vec<usize> = (0..all.len()).filter(|&i| is_bad[i]).collect();
        if !bad_idx.is_empty() {
            for (ai, &(a, an)) in all.iter().enumerate() {
                if is_bad[ai] {
                    for &(b, bn) in &all {
                        if a != b && !compiled.cliques_intersect(a, b) {
                            incomplete.push((an.to_string(), bn.to_string()));
                        }
                    }
                } else {
                    for &bi in &bad_idx {
                        let (b, bn) = all[bi];
                        if a != b && !compiled.cliques_intersect(a, b) {
                            incomplete.push((an.to_string(), bn.to_string()));
                        }
                    }
                }
            }
        }
    }

    PlanReport {
        disjoint_clique_pairs: disjoint,
        colliding_clique_pairs: colliding,
        complete: incomplete.is_empty(),
        incomplete_pairs: incomplete,
        measured_pairs: plan.measured_pair_count(),
        full_mesh_pairs: plan.full_mesh_pair_count(),
        unresolved_hosts: unresolved.into_iter().map(str::to_string).collect(),
    }
}

/// The original per-host-pair validator, kept as the differential-test
/// oracle: footprints by `Vec::contains` scan, completeness by one
/// [`NaiveEstimator`] walk per ordered host pair. Reports are identical to
/// [`validate_plan`]'s (the proptest suite in
/// `tests/validate_differential.rs` proves it over all four synth
/// families); only the asymptotics differ.
pub fn validate_plan_naive(plan: &DeploymentPlan, view: &EnvView, topo: &Topology) -> PlanReport {
    use netsim::fairness::Resource as NetResource;

    let routes = RouteTable::compute(topo);

    // --- constraint 1: collisions between cliques -------------------------
    // (clique name, deduped resources)
    type Footprint = (String, Vec<NetResource>);
    let mut footprints: Vec<Footprint> = Vec::new();
    let mut unresolved: BTreeSet<String> = BTreeSet::new();
    for c in &plan.cliques {
        let mut resources = Vec::new();
        for (a, b) in c.measured_pairs() {
            let (Some(na), Some(nb)) = (topo.node_by_name(&a), topo.node_by_name(&b)) else {
                for h in [&a, &b] {
                    if topo.node_by_name(h).is_none() {
                        unresolved.insert(h.clone());
                    }
                }
                continue;
            };
            if let Ok(path) = routes.path(topo, na, nb) {
                resources.extend(path_resources(topo, &path));
            }
        }
        resources.sort_unstable();
        resources.dedup();
        footprints.push((c.name.clone(), resources));
    }

    let mut disjoint = 0usize;
    let mut colliding = Vec::new();
    for i in 0..footprints.len() {
        for j in (i + 1)..footprints.len() {
            let shared: Vec<&NetResource> =
                footprints[i].1.iter().filter(|r| footprints[j].1.contains(r)).collect();
            if shared.is_empty() {
                disjoint += 1;
            } else {
                let example = format!(
                    "{} measured pairs share {} resource(s) with {}",
                    footprints[i].0,
                    shared.len(),
                    footprints[j].0
                );
                colliding.push((footprints[i].0.clone(), footprints[j].0.clone(), example));
            }
        }
    }

    // --- constraint 3: completeness ---------------------------------------
    // The original materialised post-round table (one key per measured
    // pair per resource): O(1) lookups keep this oracle's cost honest when
    // it is benched against the cluster-granular validator.
    let mut source = crate::aggregate::StaticSource::default();
    for c in &plan.cliques {
        for (a, b) in c.measured_pairs() {
            source.set(SeriesKey::link(Resource::Bandwidth, &a, &b), 1.0);
            source.set(SeriesKey::link(Resource::Latency, &a, &b), 1.0);
        }
    }
    let estimator = NaiveEstimator::new(view, plan);
    let mut all_hosts = plan.hosts.clone();
    if !all_hosts.contains(&plan.master) {
        all_hosts.push(plan.master.clone());
    }
    let mut incomplete = Vec::new();
    for a in &all_hosts {
        for b in &all_hosts {
            if a == b {
                continue;
            }
            if estimator.estimate(a, b, &source as &dyn MeasurementSource).is_none() {
                incomplete.push((a.clone(), b.clone()));
            }
        }
    }

    PlanReport {
        disjoint_clique_pairs: disjoint,
        colliding_clique_pairs: colliding,
        complete: incomplete.is_empty(),
        incomplete_pairs: incomplete,
        measured_pairs: plan.measured_pair_count(),
        full_mesh_pairs: plan.full_mesh_pair_count(),
        unresolved_hosts: unresolved.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_deployment, PlannerConfig};
    use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
    use gridml::merge::GatewayAlias;
    use netsim::scenarios::{ens_lyon, star_switch, Calibration};
    use netsim::units::Bandwidth;
    use netsim::Sim;

    fn ens_view_and_topo() -> (EnvView, Topology) {
        let net = ens_lyon(Calibration::Paper);
        let mut eng = Sim::new(net.topo.clone());
        let mapper = EnvMapper::new(EnvConfig::fast());
        let outside: Vec<HostInput> = [
            "the-doors.ens-lyon.fr",
            "canaria.ens-lyon.fr",
            "moby.cri2000.ens-lyon.fr",
            "myri.ens-lyon.fr",
            "popc.ens-lyon.fr",
            "sci.ens-lyon.fr",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let o = mapper
            .map(&mut eng, &outside, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
            .unwrap();
        let inside: Vec<HostInput> = [
            "popc0.popc.private",
            "myri0.popc.private",
            "sci0.popc.private",
            "myri1.popc.private",
            "myri2.popc.private",
            "sci1.popc.private",
            "sci2.popc.private",
            "sci3.popc.private",
            "sci4.popc.private",
            "sci5.popc.private",
            "sci6.popc.private",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let i = mapper.map(&mut eng, &inside, "sci0.popc.private", None).unwrap();
        let view = merge_runs(
            &o,
            &i,
            &[
                GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
                GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
                GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
            ],
        );
        (view, net.topo)
    }

    #[test]
    fn ens_lyon_plan_is_complete() {
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        assert!(report.unresolved_hosts.is_empty(), "{:?}", report.unresolved_hosts);
        assert!(report.complete, "{}", report.render());
        assert_eq!(report.measured_pairs, plan.measured_pair_count());
    }

    #[test]
    fn ens_lyon_plan_reproduces_papers_admitted_overlaps() {
        // Hosts in two cliques (canaria, myri0, sci0...) make some clique
        // pairs share a medium — exactly the §6 shortcoming. The report
        // must surface them without claiming strict collision-freedom.
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        assert!(
            !report.strictly_collision_free(),
            "the paper's own plan shape has inter/local overlaps"
        );
        // The inter clique is involved in every overlap.
        for (a, b, _) in &report.colliding_clique_pairs {
            assert!(
                a == "inter-top"
                    || b == "inter-top"
                    || a.contains("Hub2")
                    || b.contains("Hub2")
                    || a.contains("local")
                    || b.contains("local"),
                "unexpected overlap {a} vs {b}"
            );
        }
        // But most clique pairs are disjoint.
        assert!(report.disjoint_clique_pairs >= report.colliding_clique_pairs.len());
    }

    #[test]
    fn single_switch_plan_is_strictly_collision_free() {
        // One switched LAN, one clique: nothing to collide with.
        let net = star_switch(5, Bandwidth::mbps(100.0));
        let names: Vec<String> =
            net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
        let mut eng = Sim::new(net.topo.clone());
        let inputs: Vec<HostInput> = names.iter().map(|n| HostInput::new(n)).collect();
        let run =
            EnvMapper::new(EnvConfig::fast()).map(&mut eng, &inputs, &names[0], None).unwrap();
        let plan = plan_deployment(&run.view, &PlannerConfig::default());
        let report = validate_plan(&plan, &run.view, &net.topo);
        assert!(report.strictly_collision_free(), "{}", report.render());
        assert!(report.complete, "{}", report.render());
    }

    #[test]
    fn fast_and_naive_reports_agree_on_ens_lyon() {
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        assert_eq!(validate_plan(&plan, &view, &topo), validate_plan_naive(&plan, &view, &topo));
    }

    #[test]
    fn fast_and_naive_agree_on_perturbed_plans() {
        // Unresolvable clique members, a planned host the view cannot
        // locate, a dropped representative entry, a dropped clique: the
        // cluster-granular validator must report exactly what the per-pair
        // oracle reports, incomplete-pair order included.
        let (view, topo) = ens_view_and_topo();
        let mut plan = plan_deployment(&view, &PlannerConfig::default());
        plan.hosts.push("ghost.invalid".to_string());
        plan.cliques[0].members[0] = "phantom.invalid".to_string();
        plan.representatives.retain(|_, pair| pair.0 != "canaria.ens-lyon.fr");
        plan.cliques.remove(1);

        let fast = validate_plan(&plan, &view, &topo);
        let slow = validate_plan_naive(&plan, &view, &topo);
        assert_eq!(fast, slow);
        assert!(!fast.complete);
        assert!(fast.incomplete_pairs.iter().any(|(a, _)| a == "ghost.invalid"));
        assert!(fast.unresolved_hosts.contains(&"phantom.invalid".to_string()));
    }

    #[test]
    fn report_renders() {
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        let s = report.render();
        assert!(s.contains("intrusiveness"));
        assert!(s.contains("completeness"));
        assert!(report.intrusiveness() > 0.0 && report.intrusiveness() < 1.0);
    }
}
