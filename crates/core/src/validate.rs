//! Plan validation against the four constraints of paper §2.3, checked
//! against ground truth (the simulator topology).
//!
//! The collision check is deliberately honest about the paper's own
//! admitted limitation (§6): a host sitting in two cliques (the paper's
//! `canaria`) can be probed by both at once, and those experiments share
//! its physical network. The report separates *intra-clique* safety
//! (guaranteed by the token ring) from *inter-clique* overlaps (minimised,
//! not eliminated — "a possibility to lock hosts (and not networks) is
//! still needed").

use envmap::EnvView;
use netsim::fairness::{path_resources, Resource as NetResource};
use netsim::routing::RouteTable;
use netsim::topology::Topology;

use crate::aggregate::{Estimator, MeasurementSource, StaticSource};
use crate::plan::DeploymentPlan;
use nws::{Resource, SeriesKey};

/// Validation outcome.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Clique pairs whose measured paths share no physical resource.
    pub disjoint_clique_pairs: usize,
    /// Clique pairs with at least one shared resource: (clique A, clique
    /// B, example "a→b vs c→d" description). The paper's plan has these
    /// wherever a host joins two cliques.
    pub colliding_clique_pairs: Vec<(String, String, String)>,
    /// Whether every ordered host pair (master included) is estimable.
    pub complete: bool,
    pub incomplete_pairs: Vec<(String, String)>,
    /// Constraint-4 numbers.
    pub measured_pairs: usize,
    pub full_mesh_pairs: usize,
    /// Hosts named by the plan but missing from the platform.
    pub unresolved_hosts: Vec<String>,
}

impl PlanReport {
    /// True when no two cliques can interfere at all — stricter than the
    /// paper achieves on ENS-Lyon.
    pub fn strictly_collision_free(&self) -> bool {
        self.colliding_clique_pairs.is_empty()
    }

    /// Intrusiveness ratio: measured / full-mesh directed pairs.
    pub fn intrusiveness(&self) -> f64 {
        if self.full_mesh_pairs == 0 {
            return 0.0;
        }
        self.measured_pairs as f64 / self.full_mesh_pairs as f64
    }

    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "plan report: {} measured / {} full-mesh pairs (intrusiveness {:.1}%)\n",
            self.measured_pairs,
            self.full_mesh_pairs,
            100.0 * self.intrusiveness()
        ));
        s.push_str(&format!(
            "  clique pairs: {} disjoint, {} overlapping\n",
            self.disjoint_clique_pairs,
            self.colliding_clique_pairs.len()
        ));
        for (a, b, why) in &self.colliding_clique_pairs {
            s.push_str(&format!("    overlap {a} ↔ {b}: {why}\n"));
        }
        s.push_str(&format!(
            "  completeness: {}\n",
            if self.complete { "every pair estimable" } else { "INCOMPLETE" }
        ));
        for (a, b) in &self.incomplete_pairs {
            s.push_str(&format!("    no estimate for {a} → {b}\n"));
        }
        s
    }
}

/// A synthetic measurement source that "has" every pair some clique
/// measures — models the state after the system has run a full round.
fn post_round_source(plan: &DeploymentPlan) -> StaticSource {
    let mut s = StaticSource::default();
    for c in &plan.cliques {
        for (a, b) in c.measured_pairs() {
            s.set(SeriesKey::link(Resource::Bandwidth, &a, &b), 1.0);
            s.set(SeriesKey::link(Resource::Latency, &a, &b), 1.0);
        }
    }
    s
}

/// Validate a plan against the effective view it came from and the ground
/// truth topology.
pub fn validate_plan(plan: &DeploymentPlan, view: &EnvView, topo: &Topology) -> PlanReport {
    let routes = RouteTable::compute(topo);

    // --- constraint 1: collisions between cliques -------------------------
    // Resource footprint of each clique: union of resources of all its
    // measured pairs' directed paths.
    // (clique name, deduped resources, pairs actually routable)
    type Footprint = (String, Vec<NetResource>, Vec<(String, String)>);
    let mut footprints: Vec<Footprint> = Vec::new();
    let mut unresolved = Vec::new();
    for c in &plan.cliques {
        let mut resources = Vec::new();
        let mut pairs = Vec::new();
        for (a, b) in c.measured_pairs() {
            let (Some(na), Some(nb)) = (topo.node_by_name(&a), topo.node_by_name(&b)) else {
                for h in [&a, &b] {
                    if topo.node_by_name(h).is_none() && !unresolved.contains(h) {
                        unresolved.push(h.clone());
                    }
                }
                continue;
            };
            if let Ok(path) = routes.path(na, nb) {
                resources.extend(path_resources(topo, &path));
                pairs.push((a, b));
            }
        }
        resources.sort_unstable();
        resources.dedup();
        footprints.push((c.name.clone(), resources, pairs));
    }

    let mut disjoint = 0usize;
    let mut colliding = Vec::new();
    for i in 0..footprints.len() {
        for j in (i + 1)..footprints.len() {
            let shared: Vec<&NetResource> =
                footprints[i].1.iter().filter(|r| footprints[j].1.contains(r)).collect();
            if shared.is_empty() {
                disjoint += 1;
            } else {
                let example = format!(
                    "{} measured pairs share {} resource(s) with {}",
                    footprints[i].0,
                    shared.len(),
                    footprints[j].0
                );
                colliding.push((footprints[i].0.clone(), footprints[j].0.clone(), example));
            }
        }
    }

    // --- constraint 3: completeness ---------------------------------------
    let source = post_round_source(plan);
    let estimator = Estimator::new(view, plan);
    let mut all_hosts = plan.hosts.clone();
    if !all_hosts.contains(&plan.master) {
        all_hosts.push(plan.master.clone());
    }
    let mut incomplete = Vec::new();
    for a in &all_hosts {
        for b in &all_hosts {
            if a == b {
                continue;
            }
            if estimator.estimate(a, b, &source as &dyn MeasurementSource).is_none() {
                incomplete.push((a.clone(), b.clone()));
            }
        }
    }

    PlanReport {
        disjoint_clique_pairs: disjoint,
        colliding_clique_pairs: colliding,
        complete: incomplete.is_empty(),
        incomplete_pairs: incomplete,
        measured_pairs: plan.measured_pair_count(),
        full_mesh_pairs: plan.full_mesh_pair_count(),
        unresolved_hosts: unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_deployment, PlannerConfig};
    use envmap::{merge_runs, EnvConfig, EnvMapper, HostInput};
    use gridml::merge::GatewayAlias;
    use netsim::scenarios::{ens_lyon, star_switch, Calibration};
    use netsim::units::Bandwidth;
    use netsim::Sim;

    fn ens_view_and_topo() -> (EnvView, Topology) {
        let net = ens_lyon(Calibration::Paper);
        let mut eng = Sim::new(net.topo.clone());
        let mapper = EnvMapper::new(EnvConfig::fast());
        let outside: Vec<HostInput> = [
            "the-doors.ens-lyon.fr",
            "canaria.ens-lyon.fr",
            "moby.cri2000.ens-lyon.fr",
            "myri.ens-lyon.fr",
            "popc.ens-lyon.fr",
            "sci.ens-lyon.fr",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let o = mapper
            .map(&mut eng, &outside, "the-doors.ens-lyon.fr", Some("well-known.example.org"))
            .unwrap();
        let inside: Vec<HostInput> = [
            "popc0.popc.private",
            "myri0.popc.private",
            "sci0.popc.private",
            "myri1.popc.private",
            "myri2.popc.private",
            "sci1.popc.private",
            "sci2.popc.private",
            "sci3.popc.private",
            "sci4.popc.private",
            "sci5.popc.private",
            "sci6.popc.private",
        ]
        .iter()
        .map(|s| HostInput::new(s))
        .collect();
        let i = mapper.map(&mut eng, &inside, "sci0.popc.private", None).unwrap();
        let view = merge_runs(
            &o,
            &i,
            &[
                GatewayAlias::new("popc.ens-lyon.fr", "popc0.popc.private"),
                GatewayAlias::new("myri.ens-lyon.fr", "myri0.popc.private"),
                GatewayAlias::new("sci.ens-lyon.fr", "sci0.popc.private"),
            ],
        );
        (view, net.topo)
    }

    #[test]
    fn ens_lyon_plan_is_complete() {
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        assert!(report.unresolved_hosts.is_empty(), "{:?}", report.unresolved_hosts);
        assert!(report.complete, "{}", report.render());
        assert_eq!(report.measured_pairs, plan.measured_pair_count());
    }

    #[test]
    fn ens_lyon_plan_reproduces_papers_admitted_overlaps() {
        // Hosts in two cliques (canaria, myri0, sci0...) make some clique
        // pairs share a medium — exactly the §6 shortcoming. The report
        // must surface them without claiming strict collision-freedom.
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        assert!(
            !report.strictly_collision_free(),
            "the paper's own plan shape has inter/local overlaps"
        );
        // The inter clique is involved in every overlap.
        for (a, b, _) in &report.colliding_clique_pairs {
            assert!(
                a == "inter-top"
                    || b == "inter-top"
                    || a.contains("Hub2")
                    || b.contains("Hub2")
                    || a.contains("local")
                    || b.contains("local"),
                "unexpected overlap {a} vs {b}"
            );
        }
        // But most clique pairs are disjoint.
        assert!(report.disjoint_clique_pairs >= report.colliding_clique_pairs.len());
    }

    #[test]
    fn single_switch_plan_is_strictly_collision_free() {
        // One switched LAN, one clique: nothing to collide with.
        let net = star_switch(5, Bandwidth::mbps(100.0));
        let names: Vec<String> =
            net.hosts.iter().map(|h| net.topo.node(*h).ifaces[0].name.clone().unwrap()).collect();
        let mut eng = Sim::new(net.topo.clone());
        let inputs: Vec<HostInput> = names.iter().map(|n| HostInput::new(n)).collect();
        let run =
            EnvMapper::new(EnvConfig::fast()).map(&mut eng, &inputs, &names[0], None).unwrap();
        let plan = plan_deployment(&run.view, &PlannerConfig::default());
        let report = validate_plan(&plan, &run.view, &net.topo);
        assert!(report.strictly_collision_free(), "{}", report.render());
        assert!(report.complete, "{}", report.render());
    }

    #[test]
    fn report_renders() {
        let (view, topo) = ens_view_and_topo();
        let plan = plan_deployment(&view, &PlannerConfig::default());
        let report = validate_plan(&plan, &view, &topo);
        let s = report.render();
        assert!(s.contains("intrusiveness"));
        assert!(s.contains("completeness"));
        assert!(report.intrusiveness() > 0.0 && report.intrusiveness() < 1.0);
    }
}
