//! # envdeploy — automatic NWS deployment from Effective Network Views
//!
//! The paper's contribution (§5): given the effective topology discovered
//! by ENV, compute a Network Weather Service deployment plan that
//! satisfies the four constraints of §2.3 —
//!
//! 1. **Do not let experiments collide** — hosts on one physical network
//!    share a clique, so their measurements are mutually exclusive;
//! 2. **Scalability** — cliques are as small as possible so measurement
//!    frequency stays high;
//! 3. **Completeness** — any host pair's connectivity is either measured
//!    directly or estimable by aggregating measured segments (latency
//!    adds, bandwidth takes the minimum — the A–B–C example of §2.3);
//! 4. **Reduce intrusiveness** — on a shared network one host pair is
//!    representative of every pair, so only one pair is measured.
//!
//! and then apply it: generate the manager configuration, launch the NWS
//! processes on the simulated platform, and answer end-to-end queries.
//!
//! * [`planner`] — §5.1's algorithm: shared network → clique of two
//!   representatives; switched network → clique of all hosts (plus its
//!   gateway); one inter-network clique ties the top-level networks.
//! * [`plan`] — the [`plan::DeploymentPlan`] data model and its rendering
//!   (Figure 3).
//! * [`validate`] — checks the four constraints against ground truth,
//!   including the collision overlaps the paper itself concedes in §6
//!   ("a possibility to lock hosts (and not networks) is still needed").
//! * [`aggregate`] — the completeness machinery: representative
//!   substitution and segment aggregation over the effective tree.
//! * [`manager`] — the paper's "NWS manager": a shared configuration file
//!   applied per host (§5.2), plus actual deployment onto the simulator.

pub mod aggregate;
pub mod compiled;
pub mod manager;
pub mod plan;
pub mod planner;
pub mod repair;
pub mod validate;

pub use aggregate::{naive::NaiveEstimator, Estimate, Estimator, Freshness, MeasurementSource};
pub use compiled::{CompiledView, DenseSource, DenseStaticSource, HostId, NetId};
pub use manager::{
    apply_plan, apply_plan_delta, apply_plan_with, parse_config, plan_delta_to_reconfig,
    plan_to_spec, plan_to_spec_with, render_config,
};
pub use plan::{diff_plans, CliqueRole, DeploymentPlan, PlanDelta, PlannedClique};
pub use planner::{plan_deployment, PlannerConfig};
pub use repair::{repair_plan, RepairConfig, RepairOutcome};
pub use validate::{
    validate_plan, validate_plan_naive, validate_plan_with_routes, PlanReport, PostRoundSource,
};
